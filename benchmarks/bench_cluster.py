"""Cluster-path latency benches: submit-to-first-row and cache replay.

The multi-host service's two user-visible latencies, measured through
the full topology — HTTP gateway, coordinator sharding across two
in-process :class:`~repro.cluster.ShardAgent` hosts, plan-order
reassembly, cache replication:

* ``cluster_submit_to_first_row`` — cold path: from an HTTP ``submit``
  until the first streamed row lands (gateway dispatch, quota check,
  grid partitioning, one shard round-trip, stream write-back);
* ``cluster_cache_replay`` — warm path: a full submit → stream →
  results loop for a spec whose every trial is already in the
  coordinator's replicated cache (no agent touched).

Both are wall seconds (lower is better) and feed
``BENCH_substrate.json`` via ``bench_substrate_json.py``;
``check_regression.py`` holds them within 2x of the checked-in
baseline.  Standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import statistics
import tempfile
import time

from repro.cluster import Coordinator, HttpClusterClient, HttpGateway, ShardAgent
from repro.orchestrate import ResultCache
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec

#: replay measurements (median taken); cold runs use distinct seeds
REPLAY_ROUNDS = 5
COLD_ROUNDS = 3
N_AGENTS = 2


def _spec(seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-cluster",
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        machine="small_test_machine",
        trials=2,
        seed=seed,
    )


def _submit_to_first_row(client: HttpClusterClient, seed: int) -> float:
    """Seconds from HTTP submit until the first streamed row arrives."""
    t0 = time.perf_counter()
    ack = client.submit(_spec(seed))
    stream = client.stream(ack["job_id"])
    for event in stream:
        if event.get("event") == "row":
            elapsed = time.perf_counter() - t0
            break
    else:
        raise AssertionError("stream ended without a row")
    for _ in stream:  # drain to the end event
        pass
    return elapsed


def _cache_replay(client: HttpClusterClient, seed: int) -> float:
    """Seconds for a full HTTP run of an already-replicated spec."""
    t0 = time.perf_counter()
    outcome = client.run(_spec(seed))
    elapsed = time.perf_counter() - t0
    assert outcome.state == "done"
    assert all(e["cached"] for e in outcome.rows), "replay was not a cache hit"
    return elapsed


def bench_cluster_entries(workers: int = 2) -> dict[str, dict]:
    """The two cluster-latency entries for ``BENCH_substrate.json``."""
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        agents = [
            ShardAgent(
                port=0, workers=workers, cache=ResultCache(f"{tmp}/shard-{i}")
            )
            for i in range(N_AGENTS)
        ]
        for agent in agents:
            agent.start()
        try:
            coord = Coordinator(
                port=0,
                agents=[agent.address for agent in agents],
                cache=ResultCache(f"{tmp}/coordinator"),
            )
            with coord, HttpGateway(coord) as gateway:
                client = HttpClusterClient(*gateway.address)
                cold = [
                    _submit_to_first_row(client, seed)
                    for seed in range(COLD_ROUNDS)
                ]
                # seed 0 is computed now; replays must be pure cache hits
                warm = [
                    _cache_replay(client, 0) for _ in range(REPLAY_ROUNDS)
                ]
        finally:
            for agent in agents:
                agent.stop()
    shared = {
        "trials": 2,
        "workers": workers,
        "agents": N_AGENTS,
        "workload": "stream",
    }
    return {
        "cluster_submit_to_first_row": {
            "metric": "seconds",
            "value": statistics.median(cold),
            "rounds": COLD_ROUNDS,
            **shared,
        },
        "cluster_cache_replay": {
            "metric": "seconds",
            "value": statistics.median(warm),
            "rounds": REPLAY_ROUNDS,
            **shared,
        },
    }


if __name__ == "__main__":
    for name, entry in sorted(bench_cluster_entries().items()):
        print(f"{name}: {entry['value']:.4f} s")
