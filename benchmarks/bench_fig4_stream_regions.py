"""Fig. 4: STREAM triad address scatter with a/b/c tags, 8 threads.

Paper: each thread accesses a contiguous slice of each array -> "regular
incremental small line segments"; the "triad" tag brackets the kernel.
"""

from conftest import save_report

from repro.analysis.plotting import scatter_plot
from repro.evalharness.experiments import fig4_stream_regions


def test_fig4(benchmark, report_dir):
    out = benchmark.pedantic(
        fig4_stream_regions,
        kwargs={"n_threads": 8, "period": 1024, "n_elems": 1 << 20},
        rounds=1, iterations=1,
    )
    txt = scatter_plot(
        out["times"], out["addrs"], bands=out["bands"],
        title="Fig.4: STREAM sampled accesses (8 threads, tags a/b/c)",
    )
    save_report(report_dir, "fig4_stream_regions", txt)

    stats = out["stats"]
    # all three arrays sampled; store target is a, load sources b and c
    assert stats["a"].n_stores > stats["a"].n_loads
    assert stats["b"].n_loads > stats["b"].n_stores
    assert stats["c"].n_loads > stats["c"].n_stores
    # OpenMP chunking -> clean per-thread segments on every array
    for name in ("a", "b", "c"):
        assert stats[name].split_score > 0.8, name
    # the triad execution region was annotated
    assert len(out["triad_spans"]) >= 1
