"""Shared benchmark fixtures.

Every ``bench_fig*.py`` regenerates one paper exhibit: it runs the
experiment once (``benchmark.pedantic`` with a single round — these are
end-to-end reproductions, not micro-benchmarks), prints the same
rows/series the paper reports, writes the rendered report under
``benchmarks/out/``, and asserts the *shape* claims hold.
"""

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_report(report_dir: Path, name: str, text: str) -> None:
    (report_dir / f"{name}.txt").write_text(text)
    print(f"\n{text}\n[saved to benchmarks/out/{name}.txt]")
