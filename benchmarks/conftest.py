"""Shared benchmark fixtures.

Every ``bench_fig*.py`` regenerates one paper exhibit: it runs the
experiment once (``benchmark.pedantic`` with a single round — these are
end-to-end reproductions, not micro-benchmarks), prints the same
rows/series the paper reports, writes the rendered report under
``benchmarks/out/``, and asserts the *shape* claims hold.
"""

import os
from pathlib import Path

import pytest

from repro.orchestrate import make_cache

OUT_DIR = Path(__file__).parent / "out"


def orchestration_opts() -> dict:
    """Workers/cache for the sweep-style figure benches, from the env.

    ``REPRO_BENCH_WORKERS=N`` fans trials over N processes (0 = one per
    core); ``REPRO_BENCH_CACHE=1`` reuses trial results from the on-disk
    cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).  Defaults stay
    serial and uncached so benchmark numbers mean what they say.
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    enabled = os.environ.get("REPRO_BENCH_CACHE", "").lower() in (
        "1", "on", "yes", "true",
    )
    return {"workers": workers, "cache": make_cache(enabled)}


@pytest.fixture(scope="session")
def report_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_report(report_dir: Path, name: str, text: str) -> None:
    (report_dir / f"{name}.txt").write_text(text)
    print(f"\n{text}\n[saved to benchmarks/out/{name}.txt]")
