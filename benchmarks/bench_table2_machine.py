"""Table II: hardware specification of the simulated testbed."""

from conftest import save_report

from repro.analysis.plotting import table
from repro.evalharness.experiments import table2_machine_spec


def test_table2(benchmark, report_dir):
    spec = benchmark.pedantic(table2_machine_spec, rounds=1, iterations=1)
    rows = [[k, v] for k, v in spec.items()]
    txt = table(["Component", "Specification"], rows,
                title="Table II: ARM platform (simulated Ampere Altra Max)")
    save_report(report_dir, "table2_machine", txt)
    assert spec["Frequency"] == "3.0 GHz"
    assert spec["Peak bandwidth"] == "200 GB/s"
    assert spec["System Level Cache"] == "16 MB"
