"""Resilience-layer benches: journal replay and membership probing.

The two recurring costs the cluster resilience layer adds:

* ``journal_replay`` — a ``--resume`` boot's fixed cost: read, CRC-check
  and fold (:func:`~repro.cluster.recover`) a write-ahead log of ~2k
  records (8 jobs x admission + landings + terminal state), reported
  as records/s so bigger journals extrapolate linearly;
* ``membership_probe_overhead`` — one health-prober round over two live
  in-process :class:`~repro.cluster.ShardAgent` hosts (connect,
  handshake-free ping, state fold), in seconds per round — the steady
  per-``--probe-interval`` tax of failure detection.

Both feed ``BENCH_substrate.json`` via ``bench_substrate_json.py``;
``check_regression.py`` holds them within 2x of the checked-in
baseline.  Standalone::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import statistics
import tempfile
import time

from repro.cluster import JobJournal, Membership, RetryPolicy, ShardAgent
from repro.cluster import read_journal, recover
from repro.orchestrate import ResultCache

N_JOBS = 8
TRIALS_PER_JOB = 250  # ~2k row_landed records total
PROBE_ROUNDS = 20


def _write_journal(path) -> int:
    """A realistic WAL: admissions, landings, terminals; returns records."""
    records = 0
    with JobJournal(path) as journal:
        for j in range(N_JOBS):
            job_id = f"job-{j}"
            journal.append(
                "job_admitted", sync=True, job_id=job_id,
                spec={"name": f"bench-{j}", "trials": TRIALS_PER_JOB},
                tenant="bench", priority=0, trials=TRIALS_PER_JOB,
            )
            journal.append(
                "shard_assigned", job_id=job_id, agent="127.0.0.1:7201",
                indices=list(range(TRIALS_PER_JOB)),
            )
            for i in range(TRIALS_PER_JOB):
                journal.append(
                    "row_landed", job_id=job_id, index=i, key=f"k{j}-{i}"
                )
            journal.append(
                "job_state", sync=True, job_id=job_id, state="done",
                error=None, lost={},
            )
            records += TRIALS_PER_JOB + 3
    return records


def _median_seconds(fn, rounds: int) -> float:
    fn()  # warm
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def bench_journal_replay() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        path = f"{tmp}/wal.ndjson"
        n_records = _write_journal(path)

        def replay():
            records, dropped = read_journal(path)
            assert dropped == 0
            jobs = recover(records)
            assert len(jobs) == N_JOBS
            return jobs

        sec = _median_seconds(replay, rounds=5)
    return {
        "metric": "ops_per_s",
        "value": n_records / sec,
        "n": n_records,
        "jobs": N_JOBS,
    }


def bench_membership_probe() -> dict:
    policy = RetryPolicy(op_timeout_s=10.0, connect_timeout_s=2.0)
    with tempfile.TemporaryDirectory(prefix="bench-probe-") as tmp:
        agents = [
            ShardAgent(port=0, workers=1, cache=ResultCache(f"{tmp}/a{i}"))
            for i in range(2)
        ]
        for agent in agents:
            agent.start()
        try:
            membership = Membership(
                agents=[a.address for a in agents], policy=policy
            )
            sec = _median_seconds(
                lambda: membership.probe_once(), rounds=PROBE_ROUNDS
            )
            assert all(h.alive for h in membership.handles())
        finally:
            for agent in agents:
                agent.stop()
    return {
        "metric": "seconds",
        "value": sec,
        "agents": len(agents),
        "rounds": PROBE_ROUNDS,
    }


def bench_resilience_entries() -> dict[str, dict]:
    """The two resilience entries for ``BENCH_substrate.json``."""
    return {
        "journal_replay": bench_journal_replay(),
        "membership_probe_overhead": bench_membership_probe(),
    }


if __name__ == "__main__":
    for name, entry in sorted(bench_resilience_entries().items()):
        unit = "op/s" if entry["metric"] == "ops_per_s" else "s"
        value = (
            f"{entry['value']:,.0f}"
            if entry["metric"] == "ops_per_s"
            else f"{entry['value']:.4f}"
        )
        print(f"{name}: {value} {unit}")
