"""Colo: co-located processes on the contended DRAM channel.

Beyond-paper extension of Figs. 10-11: instead of one workload widening
its thread team, 1-4 whole processes (own SPE sessions, aux buffers,
profiles) are co-located on the simulated Altra Max and the shared
channel apportions bandwidth between them.

Shape claims checked:
* a solo STREAM saturates the channel (granted == usable); every added
  co-runner strictly cuts each STREAM's grant while the aggregate stays
  within the usable bandwidth,
* slowdown grows monotonically with the co-runner count for the
  homogeneous STREAM scenarios,
* in the mixed pairing, the low-demand CloudSuite timeline models are
  hurt less than the saturating STREAM.
"""

from conftest import orchestration_opts, save_report

from repro.evalharness.experiments import colo_interference
from repro.evalharness.report import render_colo


def test_colo_interference(benchmark, report_dir):
    rows = benchmark.pedantic(
        colo_interference,
        kwargs={"max_corunners": 4, "scale": 0.02, **orchestration_opts()},
        rounds=1, iterations=1,
    )
    save_report(report_dir, "colo_interference", render_colo(rows))

    by_scenario = {r["scenario"]: r for r in rows}
    usable = rows[0]["usable_gibs"]

    # aggregate grant never exceeds the channel's usable bandwidth
    for row in rows:
        assert row["granted_sum_gibs"] <= usable * (1 + 1e-9), row["scenario"]
        for r in row["runners"]:
            assert r["slowdown"] >= 1.0

    # solo STREAM saturates; every co-runner strictly cuts the grant
    stream_n = {
        row["n_corunners"]: row
        for row in rows
        if set(row["scenario"].split("+")) == {"stream"}
    }
    solo_grant = stream_n[1]["runners"][0]["granted_gibs"]
    assert abs(solo_grant - usable) < 1e-6
    prev_grant, prev_slow = solo_grant, stream_n[1]["runners"][0]["slowdown"]
    for n in (2, 3, 4):
        row = stream_n[n]
        for r in row["runners"]:
            assert r["granted_gibs"] < solo_grant
        assert row["runners"][0]["granted_gibs"] < prev_grant
        assert row["runners"][0]["slowdown"] > prev_slow
        prev_grant = row["runners"][0]["granted_gibs"]
        prev_slow = row["runners"][0]["slowdown"]

    # mixed pairing: the saturating STREAM pays more than the timeline models
    mix = by_scenario["stream+pagerank+inmem_analytics"]
    stream_slow = mix["runners"][0]["slowdown"]
    for r in mix["runners"][1:]:
        assert r["slowdown"] <= stream_slow
