"""Serve-path latency benches: submit-to-first-row and cache replay.

The profiling service's two user-visible latencies:

* ``serve_submit_to_first_row`` — cold path: from ``submit`` on an
  open connection until the first streamed row lands (includes queue
  admission, scheduler dispatch, one trial's execution on a pool
  worker, and the stream write-back);
* ``serve_cache_replay`` — warm path: a full submit → stream →
  results loop for a spec whose every trial is already in the shared
  :class:`~repro.orchestrate.ResultCache` (no worker touched).

Both are wall seconds (lower is better) and feed
``BENCH_substrate.json`` via ``bench_substrate_json.py``;
``check_regression.py`` holds them within 2x of the checked-in
baseline.  Standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import statistics
import tempfile
import time

from repro.orchestrate import ResultCache
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import ProfilingServer, ServerClient

#: replay measurements (median taken); cold runs use distinct seeds
REPLAY_ROUNDS = 5
COLD_ROUNDS = 3


def _spec(seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-serve",
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        machine="small_test_machine",
        trials=2,
        seed=seed,
    )


def _submit_to_first_row(client: ServerClient, seed: int) -> float:
    """Seconds from submit until the first streamed row arrives."""
    t0 = time.perf_counter()
    ack = client.submit(_spec(seed))
    stream = client.stream(ack["job_id"])
    for event in stream:
        if event.get("event") == "row":
            elapsed = time.perf_counter() - t0
            break
    else:
        raise AssertionError("stream ended without a row")
    for _ in stream:  # drain to the end event
        pass
    return elapsed


def _cache_replay(client: ServerClient, seed: int) -> float:
    """Seconds for a full run of an already-cached spec."""
    t0 = time.perf_counter()
    outcome = client.run(_spec(seed))
    elapsed = time.perf_counter() - t0
    assert outcome.state == "done"
    assert all(e["cached"] for e in outcome.rows), "replay was not a cache hit"
    return elapsed


def bench_serve_entries(workers: int = 2) -> dict[str, dict]:
    """The two serve-latency entries for ``BENCH_substrate.json``."""
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        with ProfilingServer(
            port=0, workers=workers, cache=ResultCache(tmp)
        ) as srv:
            with ServerClient(*srv.address) as client:
                cold = [
                    _submit_to_first_row(client, seed)
                    for seed in range(COLD_ROUNDS)
                ]
                # seed 0 is computed now; replays must be pure cache hits
                warm = [
                    _cache_replay(client, 0) for _ in range(REPLAY_ROUNDS)
                ]
    shared = {"trials": 2, "workers": workers, "workload": "stream"}
    return {
        "serve_submit_to_first_row": {
            "metric": "seconds",
            "value": statistics.median(cold),
            "rounds": COLD_ROUNDS,
            **shared,
        },
        "serve_cache_replay": {
            "metric": "seconds",
            "value": statistics.median(warm),
            "rounds": REPLAY_ROUNDS,
            **shared,
        },
    }


if __name__ == "__main__":
    for name, entry in sorted(bench_serve_entries().items()):
        print(f"{name}: {entry['value']:.4f} s")
