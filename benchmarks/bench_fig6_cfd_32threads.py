"""Fig. 6: CFD at 32 threads with high-resolution zoom.

Paper: "only normals variable is split properly with a similar length to
access in each thread and the other memory region shows an irregular
pattern" — visible in the high-resolution trace window.
"""

from conftest import save_report

from repro.analysis.plotting import scatter_plot, table
from repro.evalharness.experiments import fig6_cfd_32_threads


def test_fig6(benchmark, report_dir):
    out = benchmark.pedantic(
        fig6_cfd_32_threads,
        kwargs={"period": 512, "n_elems": 1 << 16},
        rounds=1, iterations=1,
    )
    full = scatter_plot(
        out["times"], out["addrs"], bands=out["bands"],
        title="Fig.6 (left): CFD 32 threads",
    )
    hr = out["hires"]
    zoom = scatter_plot(
        hr["times"], hr["addrs"], bands=out["bands"],
        title=f"Fig.6 (right): high-resolution window "
              f"[{hr['t0']:.4f}s, {hr['t1']:.4f}s]",
    )
    scores = out["split_scores"]
    tbl = table(
        ["object", "split score"],
        [[k, f"{v:.2f}"] for k, v in sorted(scores.items())],
        title="Per-object thread-split scores (1.0 = clean chunking)",
    )
    save_report(report_dir, "fig6_cfd_32threads", "\n\n".join([full, zoom, tbl]))

    # the paper's headline: normals splits cleanly, variables does not
    assert scores["normals"] > 0.7
    assert scores["variables"] < scores["normals"] - 0.2
    assert hr["times"].size < out["times"].size
