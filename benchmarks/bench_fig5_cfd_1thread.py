"""Fig. 5: CFD address scatter at one OpenMP thread.

Paper: "The memory access at a single thread shows a continuous
traverse" through the arrays within the tagged computation loop.
"""

import numpy as np
from conftest import save_report

from repro.analysis.plotting import scatter_plot
from repro.evalharness.experiments import fig5_cfd_single_thread


def test_fig5(benchmark, report_dir):
    out = benchmark.pedantic(
        fig5_cfd_single_thread,
        kwargs={"period": 2048, "n_elems": 1 << 16},
        rounds=1, iterations=1,
    )
    txt = scatter_plot(
        out["times"], out["addrs"], bands=out["bands"],
        title="Fig.5: CFD sampled accesses (1 thread, 'computation loop')",
    )
    save_report(report_dir, "fig5_cfd_1thread", txt)

    assert out["result"].n_threads == 1
    assert len(out["loop_spans"]) >= 1
    # continuous traverse: the sweep covers the variables array broadly
    stats = out["stats"]
    assert stats["variables"].n_samples > 0
    assert stats["normals"].n_samples > 0
    # the sequential sweep revisits low and high addresses each iteration:
    # sample addresses within 'normals' span most of the object
    s = stats["normals"]
    span = (s.end - s.start)
    t, a = out["profile"].scatter(tag="normals")
    assert (a.max() - a.min()) > 0.8 * span
