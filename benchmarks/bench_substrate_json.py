"""Machine-readable substrate benchmarks: ``BENCH_substrate.json``.

Times every hot path of the SPE record substrate — the vectorized
implementations against their retained scalar references where one
exists — and writes an op/s report::

    PYTHONPATH=src python benchmarks/bench_substrate_json.py \
        --out BENCH_substrate.json

Entries with a reference twin carry ``speedup_vs_reference`` plus the
floor (``min_speedup``) the PR guarantees; ``benchmarks/check_regression.py``
compares a fresh run against the checked-in baseline
(``benchmarks/baselines/BENCH_substrate.baseline.json``) and fails CI on
a >2x op/s regression or a broken speedup floor.  See
``docs/performance.md`` for how to read the numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

# sibling benchmark modules (this file usually runs as a script, but
# keep the import working when the caller's sys.path lacks our dir)
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_cluster import bench_cluster_entries  # noqa: E402
from bench_resilience import bench_resilience_entries  # noqa: E402
from bench_sampling import bench_sampling_entries  # noqa: E402
from bench_serve import bench_serve_entries  # noqa: E402

from repro.cpu.clock import GenericTimer
from repro.cpu.pipeline import PipelineModel
from repro.cpu.ops import OpKind
from repro.machine.hierarchy import MemLevel
from repro.machine.spec import ampere_altra_max, tiered_altra_max
from repro.machine.tiers import PagePlacement
from repro.nmo.backends import FixedAuxPagesBackend
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.orchestrate import ResultCache
from repro.spe.driver import SpeCostModel
from repro.spe.packets import (
    decode_buffer,
    decode_stream,
    encode_batch,
    encode_records,
)
from repro.spe.records import SampleBatch
from repro.spe.refpath import reference_path
from repro.spe.sampler import (
    _reference_collision_scan,
    collision_scan,
    sample_positions,
)
from repro.workloads.stream import StreamWorkload


def best_seconds(fn, repeats: int = 5) -> float:
    """Median wall time of ``repeats`` runs (first run warms caches)."""
    fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def scan_inputs(kind: str, n: int = 100_000):
    """Select-time/latency streams for the collision benches.

    ``overlapping`` is the paper's Fig. 8c worst case: a small sampling
    period (gaps ~100 cycles) under saturated DRAM (loaded latencies of
    thousands of cycles), where nearly every sample collides.  ``dense``
    is the mild regime where most samples survive.
    """
    rng = np.random.default_rng(0)
    t = np.sort(rng.uniform(0, n * 100.0, n))
    if kind == "overlapping":
        lat = rng.uniform(2000.0, 8000.0, n)
    else:
        lat = rng.uniform(1.0, 500.0, n)
    return t, lat


def bench_collision_scan(kind: str, min_speedup: float | None) -> dict:
    t, lat = scan_inputs(kind)
    n = t.shape[0]
    keep_v, coll_v = collision_scan(t, lat)
    keep_r, coll_r = _reference_collision_scan(t, lat)
    assert coll_v == coll_r and (keep_v == keep_r).all(), "parity broken"
    sec_v = best_seconds(lambda: collision_scan(t, lat))
    sec_r = best_seconds(lambda: _reference_collision_scan(t, lat))
    entry = {
        "metric": "ops_per_s",
        "value": n / sec_v,
        "reference_value": n / sec_r,
        "speedup_vs_reference": sec_r / sec_v,
        "collisions": int(coll_v),
        "n": n,
    }
    if min_speedup is not None:
        entry["min_speedup"] = min_speedup
    return entry


def fig9_small_aux_profile():
    """A Fig. 9-style profile run in the interrupt-bound corner: the
    minimum working aux buffer (4 pages) with an aggressive watermark,
    zero-loss service so every record crosses the wakeup path."""
    machine = ampere_altra_max()
    w = StreamWorkload(machine, n_threads=2, n_elems=1 << 22, iterations=3)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=128)
    return NmoProfiler(
        w,
        settings,
        seed=0,
        cost=SpeCostModel(service_loss_records=0),
        backend=FixedAuxPagesBackend(4, aux_watermark=256),
    ).run()


def bench_feed_profile(min_speedup: float) -> dict:
    res = fig9_small_aux_profile()
    sec_v = best_seconds(fig9_small_aux_profile, repeats=3)
    with reference_path():
        ref = fig9_small_aux_profile()
        sec_r = best_seconds(fig9_small_aux_profile, repeats=3)
    assert res.accuracy == ref.accuracy and res.wakeups == ref.wakeups, "parity broken"
    assert (res.batch.addr == ref.batch.addr).all(), "parity broken"
    return {
        "metric": "seconds",
        "value": sec_v,
        "reference_value": sec_r,
        "speedup_vs_reference": sec_r / sec_v,
        "min_speedup": min_speedup,
        "samples": int(res.n_samples),
        "wakeups": int(res.wakeups),
    }


def random_batch(n: int, rng) -> SampleBatch:
    return SampleBatch(
        pc=rng.integers(1, 1 << 48, n, dtype=np.uint64),
        addr=rng.integers(1, 1 << 48, n, dtype=np.uint64),
        ts=np.arange(1, n + 1, dtype=np.uint64),
        level=rng.integers(1, 5, n, dtype=np.uint8),
        kind=rng.integers(1, 3, n, dtype=np.uint8),
        total_lat=rng.integers(1, 500, n, dtype=np.uint16),
        issue_lat=rng.integers(1, 100, n, dtype=np.uint16),
    )


def bench_stream_decode() -> dict:
    """Streaming aux decode: a multi-MB record span through fixed-size
    chunk views (:func:`decode_stream`, the multi-GB-trace path that
    never materialises the span) vs concatenating the chunks first and
    calling :func:`decode_buffer` on the joined copy."""
    rng = np.random.default_rng(0)
    n = 200_000  # 12.8 MB of records
    raw = np.frombuffer(encode_batch(random_batch(n, rng)), dtype=np.uint8)
    step = 1 << 20

    def chunks():
        return [raw[i : i + step] for i in range(0, raw.shape[0], step)]

    got, _ = decode_stream(chunks())
    want, _ = decode_buffer(raw)
    assert (got.addr == want.addr).all(), "parity broken"
    sec_v = best_seconds(lambda: decode_stream(chunks()))
    sec_r = best_seconds(lambda: decode_buffer(np.concatenate(chunks())))
    return {
        "metric": "ops_per_s",
        "value": n / sec_v,
        "reference_value": n / sec_r,
        "speedup_vs_reference": sec_r / sec_v,
        "n": n,
    }


def bench_cache_hit_mmap(min_speedup: float) -> dict:
    """Warm-hit deserialization cost: a cached ~26 MB profile result
    served as zero-copy views off the ``mmap``'d columnar sidecar vs
    ``pickle.loads`` of the same entry (``use_substrate=False``)."""
    rng = np.random.default_rng(0)
    n = 1_000_000
    value = {"batch": random_batch(n, rng), "accuracy": 0.93}
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        mmap_cache = ResultCache(tmp)
        pickle_cache = ResultCache(tmp, use_substrate=False)
        key = mmap_cache.key("bench", {"n": n}, 0)
        mmap_cache.put(key, value)
        via_mmap = mmap_cache.get(key)
        via_pickle = pickle_cache.get(key)
        assert (via_mmap["batch"].addr == via_pickle["batch"].addr).all()
        sec_v = best_seconds(lambda: mmap_cache.get(key))
        sec_r = best_seconds(lambda: pickle_cache.get(key))
    return {
        "metric": "seconds",
        "value": sec_v,
        "reference_value": sec_r,
        "speedup_vs_reference": sec_r / sec_v,
        "min_speedup": min_speedup,
        "n": n,
    }


def bench_simple_rates() -> dict[str, dict]:
    rng = np.random.default_rng(0)
    n = 100_000
    batch = random_batch(n, rng)
    raw = encode_batch(batch)
    machine = ampere_altra_max()
    pm = PipelineModel(machine)
    m = 1_000_000
    kinds = rng.integers(0, 5, m).astype(np.uint8)
    levels = np.where(
        (kinds == OpKind.LOAD) | (kinds == OpKind.STORE),
        rng.integers(1, int(MemLevel.DRAM) + 1, m),
        0,
    ).astype(np.uint8)
    pos_rng = np.random.default_rng(0)
    return {
        "packet_encode_100k": {
            "metric": "ops_per_s",
            "value": n / best_seconds(lambda: encode_records(batch)),
        },
        "packet_decode_100k": {
            "metric": "ops_per_s",
            "value": n / best_seconds(lambda: decode_buffer(raw)),
        },
        "sample_positions_10m_ops": {
            "metric": "ops_per_s",
            "value": 10_000_000
            / best_seconds(
                lambda: sample_positions(10_000_000, 4096, True, pos_rng)
            ),
        },
        "op_latencies_lut_1m": {
            "metric": "ops_per_s",
            "value": m
            / best_seconds(
                lambda: pm.op_latencies(kinds, levels, rng=None, dram_scale=1.5)
            ),
        },
    }


def bench_tiering_remap() -> dict:
    """The tier-attribution hot path: 1M sampled addresses through
    ``PagePlacement.tier_of`` (sorted-page ``searchsorted`` lookup) on a
    1M-page map — the per-record cost the tiered-memory model adds to
    every DRAM-class sample (docs/memory-tiers.md)."""
    machine = tiered_altra_max()
    rng = np.random.default_rng(0)
    n_pages, n_addrs = 1_000_000, 1_000_000
    shift = int(machine.page_size).bit_length() - 1
    pages = np.sort(
        rng.choice(np.uint64(8 * n_pages), size=n_pages, replace=False)
    ).astype(np.uint64)
    tiers = rng.integers(0, 3, n_pages, dtype=np.uint8)
    placement = PagePlacement(pages, tiers, shift, 3)
    addrs = (
        pages[rng.integers(0, n_pages, n_addrs)] << np.uint64(shift)
    ) + np.uint64(64)
    out = placement.tier_of(addrs)
    counts = np.bincount(out, minlength=3)
    return {
        "metric": "ops_per_s",
        "value": n_addrs / best_seconds(lambda: placement.tier_of(addrs)),
        "n": n_addrs,
        "n_pages": n_pages,
        "tier_counts": [int(c) for c in counts],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_substrate.json", help="output path")
    args = ap.parse_args(argv)

    entries: dict[str, dict] = {}
    print("collision_scan (100k overlapping samples, Fig. 8c regime)...")
    entries["collision_scan_100k_overlapping"] = bench_collision_scan(
        "overlapping", min_speedup=5.0
    )
    print("collision_scan (100k dense-survivor samples)...")
    entries["collision_scan_100k_dense"] = bench_collision_scan("dense", None)
    print("Fig. 9-style small-aux profile run (feed hot path)...")
    entries["spe_feed_fig9_small_aux_profile"] = bench_feed_profile(min_speedup=10.0)
    print("streaming aux decode (12.8 MB span through 1 MiB chunks)...")
    entries["feed_stream_decode"] = bench_stream_decode()
    print("warm cache hit (mmap columnar sidecar vs pickle.loads)...")
    entries["cache_hit_mmap"] = bench_cache_hit_mmap(min_speedup=10.0)
    print("simple substrate rates...")
    entries.update(bench_simple_rates())
    print("tiering placement remap (1m samples over a 1m-page map)...")
    entries["tiering_placement_remap_1m"] = bench_tiering_remap()
    print("serve latencies (submit->first row, cache replay)...")
    entries.update(bench_serve_entries())
    print("cluster latencies (2 agents over HTTP: submit->first row, replay)...")
    entries.update(bench_cluster_entries())
    print("resilience costs (journal replay, membership probe round)...")
    entries.update(bench_resilience_entries())
    print("sampling zoo (preset wall time, per-strategy position rates)...")
    entries.update(bench_sampling_entries())

    report = {
        "schema": "repro-bench-substrate/1",
        "generated_by": "benchmarks/bench_substrate_json.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "entries": entries,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name, e in sorted(entries.items()):
        rate = (
            f"{e['value']:,.0f} op/s"
            if e["metric"] == "ops_per_s"
            else f"{e['value']:.3f} s"
        )
        speed = (
            f"  ({e['speedup_vs_reference']:.1f}x vs reference)"
            if "speedup_vs_reference" in e
            else ""
        )
        print(f"  {name}: {rate}{speed}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
