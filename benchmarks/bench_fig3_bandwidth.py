"""Fig. 3: temporal memory bandwidth of the CloudSuite pair.

Paper: In-memory Analytics shows ~15 s periodic peaks near 100 GiB/s;
PageRank spikes to ~120 GiB/s near 5 s (dataset load) then fluctuates
downwards through the rank iterations.
"""

import pytest
from conftest import save_report

from repro.evalharness.experiments import fig3_bandwidth
from repro.evalharness.report import render_bandwidth

SCALE = 0.1


def test_fig3(benchmark, report_dir):
    out = benchmark.pedantic(
        fig3_bandwidth, kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    save_report(report_dir, "fig3_bandwidth", render_bandwidth(out))

    ima, pr = out["inmem_analytics"], out["pagerank"]
    assert ima["peak_gibs"] == pytest.approx(97.0, rel=0.05)
    assert ima["period_s"] == pytest.approx(15.0 * SCALE, rel=0.25)
    assert pr["peak_gibs"] == pytest.approx(118.0, rel=0.05)
    # the PageRank spike sits in the load phase, early in the run
    assert pr["time_of_peak_s"] < 0.3 * pr["duration_s"]
    # rank iterations decline after the spike
    t, v = pr["series"]
    post_peak = v[t > 0.5 * pr["duration_s"]]
    assert post_peak.max() < 0.8 * v.max()
