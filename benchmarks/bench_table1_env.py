"""Table I: NMO environment variables and defaults."""

from conftest import save_report

from repro.analysis.plotting import table
from repro.evalharness.experiments import table1_env_defaults

DESCRIPTIONS = {
    "NMO_ENABLE": "Enable profile collection",
    "NMO_NAME": "Base name of output files",
    "NMO_MODE": "Profile collection mode",
    "NMO_PERIOD": "Sampling period",
    "NMO_TRACK_RSS": "Capture working set size",
    "NMO_BUFSIZE": "Ring buffer size [MiB]",
    "NMO_AUXBUFSIZE": "Aux buffer size [MiB]",
}


def test_table1(benchmark, report_dir):
    defaults = benchmark.pedantic(table1_env_defaults, rounds=1, iterations=1)
    rows = [[k, DESCRIPTIONS[k], v] for k, v in defaults.items()]
    txt = table(["Option", "Description", "Default"], rows,
                title="Table I: NMO environment variables")
    save_report(report_dir, "table1_env", txt)
    assert set(defaults) == set(DESCRIPTIONS)
    assert defaults["NMO_BUFSIZE"] == "1"
