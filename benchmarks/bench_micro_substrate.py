"""Micro-benchmarks of the substrate hot paths (proper pytest-benchmark
timing: these run multiple rounds)."""

import numpy as np

from repro.machine.cache import SetAssociativeCache
from repro.machine.spec import CacheSpec, ampere_altra_max
from repro.spe.packets import decode_buffer, encode_batch
from repro.spe.records import SampleBatch
from repro.spe.sampler import (
    _reference_collision_scan,
    collision_scan,
    sample_positions,
)


def _batch(n):
    rng = np.random.default_rng(0)
    return SampleBatch(
        pc=rng.integers(1, 1 << 48, n, dtype=np.uint64),
        addr=rng.integers(1, 1 << 48, n, dtype=np.uint64),
        ts=np.arange(1, n + 1, dtype=np.uint64),
        level=rng.integers(1, 5, n, dtype=np.uint8),
        kind=rng.integers(1, 3, n, dtype=np.uint8),
        total_lat=rng.integers(1, 500, n, dtype=np.uint16),
        issue_lat=rng.integers(1, 100, n, dtype=np.uint16),
    )


def test_packet_encode_100k(benchmark):
    b = _batch(100_000)
    out = benchmark(encode_batch, b)
    assert len(out) == 100_000 * 64


def test_packet_decode_100k(benchmark):
    raw = encode_batch(_batch(100_000))
    got, stats = benchmark(decode_buffer, raw)
    assert stats.n_valid == 100_000


def test_sample_positions_10m_ops(benchmark):
    rng = np.random.default_rng(0)
    pos, _ = benchmark(sample_positions, 10_000_000, 4096, True, rng)
    assert pos.size > 2000


def test_collision_scan_no_overlap_fast_path(benchmark):
    t = np.arange(200_000, dtype=np.float64) * 1000.0
    lat = np.full(200_000, 10.0)
    keep, n = benchmark(collision_scan, t, lat)
    assert n == 0


def test_collision_scan_dense(benchmark):
    rng = np.random.default_rng(0)
    t = np.sort(rng.uniform(0, 1e7, 100_000))
    lat = rng.uniform(1, 500, 100_000)
    keep, n = benchmark(collision_scan, t, lat)
    assert keep[0]


def _overlapping_inputs(n=100_000):
    """Fig. 8c worst case: ~100-cycle gaps under saturated-DRAM latencies."""
    rng = np.random.default_rng(0)
    return np.sort(rng.uniform(0, n * 100.0, n)), rng.uniform(2000.0, 8000.0, n)


def test_collision_scan_overlapping(benchmark):
    t, lat = _overlapping_inputs()
    keep, n = benchmark(collision_scan, t, lat)
    assert n > 90_000  # collision-heavy by construction


def test_collision_scan_overlapping_reference(benchmark):
    """The retained scalar loop on the same input, for comparison."""
    t, lat = _overlapping_inputs()
    keep, n = benchmark(_reference_collision_scan, t, lat)
    assert n > 90_000


def test_cache_sim_throughput(benchmark):
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 22, 20_000, dtype=np.uint64)

    def run():
        c = SetAssociativeCache(CacheSpec(64 * 1024, 4), "L1")
        return c.access_many(addrs)

    hits = benchmark(run)
    assert hits.shape[0] == 20_000


def test_statcache_draw_levels(benchmark):
    from repro.machine.statcache import AccessClass, StatCacheModel

    model = StatCacheModel(ampere_altra_max())
    classes = [AccessClass(footprint=1 << 30, stride=8)]
    rng = np.random.default_rng(0)
    levels = benchmark(model.draw_levels, classes, 100_000, rng)
    assert levels.shape[0] == 100_000
