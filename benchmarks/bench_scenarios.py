"""Declarative scenario API, end to end.

Runs the checked-in ``examples/scenarios/colo_smoke.json`` spec through
the :class:`repro.scenarios.Session` front door — the same file and
path CI smokes — and asserts the report carries its provenance and the
co-location shape claims hold.
"""

from pathlib import Path

from conftest import orchestration_opts, save_report

from repro.scenarios import Session, load_scenario

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


def test_scenario_colo_smoke(benchmark, report_dir):
    spec = load_scenario(EXAMPLES / "colo_smoke.json")
    opts = orchestration_opts()
    session = Session(workers=opts["workers"], cache=opts["cache"])
    report = benchmark.pedantic(
        session.run, args=(spec,), rounds=1, iterations=1
    )
    save_report(report_dir, "scenario_colo_smoke", report.render())

    assert report.provenance["spec_hash"] == spec.spec_hash()
    assert report.execution["total_trials"] == 3
    rows = report.results
    assert [r["n_corunners"] for r in rows] == [1, 2, 2]
    usable = rows[0]["usable_gibs"]
    for row in rows:
        assert row["granted_sum_gibs"] <= usable * (1 + 1e-9), row["scenario"]
        for r in row["runners"]:
            assert r["slowdown"] >= 1.0
