"""Fig. 8: accuracy (Eq. 1), time overhead, and sample collisions vs
sampling period for STREAM, CFD, BFS.

Paper claims checked:
* accuracy rises sharply below ~3000-4000 then stabilises at 94 %+,
* STREAM/CFD collide heavily at small periods (CFD worst), BFS < 10,
* BFS pays the highest overhead below 4000 (highest sample rate),
* overhead falls roughly as 1/period.
"""

import numpy as np
from conftest import orchestration_opts, save_report

from repro.evalharness.experiments import fig8_accuracy_overhead_collisions
from repro.evalharness.report import render_fig8

PERIODS = (1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000)
TRIALS = 5
SCALES = {"stream": 1 / 64, "cfd": 1 / 512, "bfs": 0.25}


def run():
    out = {}
    opts = orchestration_opts()
    for name, scale in SCALES.items():
        out.update(
            fig8_accuracy_overhead_collisions(
                periods=PERIODS, trials=TRIALS, workloads=(name,),
                scale=scale, **opts,
            )
        )
    return out


def test_fig8(benchmark, report_dir):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(report_dir, "fig8_accuracy_overhead_collisions",
                render_fig8(results))

    acc = {n: {p.period: p.accuracy_mean for p in pts}
           for n, pts in results.items()}
    ovh = {n: {p.period: p.overhead_mean for p in pts}
           for n, pts in results.items()}
    coll = {n: {p.period: p.collisions_mean for p in pts}
            for n, pts in results.items()}

    # accuracy: sharp rise below 4000, stable and high beyond
    for name in ("stream", "cfd"):
        assert acc[name][1000] < acc[name][4000]
        assert acc[name][8000] > 0.9
    assert acc["stream"][4000] > 0.94
    assert acc["bfs"][4000] > 0.94

    # BFS prominently higher at small periods
    assert acc["bfs"][1000] > acc["stream"][1000]
    assert acc["bfs"][1000] > acc["cfd"][1000] + 0.2

    # collisions: CFD > STREAM >> BFS, decreasing with period
    assert coll["cfd"][1000] > coll["stream"][1000] > coll["bfs"][1000]
    assert coll["bfs"][1000] < 10
    for name in ("stream", "cfd"):
        series = [coll[name][p] for p in PERIODS]
        assert series[0] > series[-1]
        assert series[-1] == 0

    # overhead: BFS highest below 4000; everyone decays with period
    for p in (1000, 2000):
        assert ovh["bfs"][p] > ovh["stream"][p]
        assert ovh["bfs"][p] > ovh["cfd"][p]
    for name in ("stream", "cfd", "bfs"):
        series = np.array([ovh[name][p] for p in PERIODS])
        assert series[0] > series[-1]
        assert series[-1] < 0.002  # sub-0.2% at period 128000
