"""Fig. 2: temporal memory capacity of the CloudSuite pair.

Paper: In-memory Analytics saturates at 52.3 GiB (20.4 % of the 256 GiB
container) over ~121 s; PageRank reaches 123.8 GiB (48.4 %) over ~25 s.
Run at ``SCALE`` x the paper's wall-clock (shapes are identical; only
the time axis shrinks).
"""

import pytest
from conftest import save_report

from repro.evalharness.experiments import fig2_capacity
from repro.evalharness.report import render_capacity

SCALE = 0.1


def test_fig2(benchmark, report_dir):
    out = benchmark.pedantic(
        fig2_capacity, kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    save_report(report_dir, "fig2_capacity", render_capacity(out))

    ima, pr = out["inmem_analytics"], out["pagerank"]
    # paper numbers: 52.3 GiB / 20.4 % and 123.8 GiB / 48.4 %
    assert ima["peak_gib"] == pytest.approx(52.3, rel=0.03)
    assert ima["peak_utilisation"] == pytest.approx(0.204, abs=0.01)
    assert pr["peak_gib"] == pytest.approx(123.8, rel=0.03)
    assert pr["peak_utilisation"] == pytest.approx(0.484, abs=0.01)
    # gradual increase, then saturation before the run ends
    assert ima["saturation_time_s"] < ima["duration_s"]
    assert pr["duration_s"] < ima["duration_s"]  # 25 s vs 121 s
