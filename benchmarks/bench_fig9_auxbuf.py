"""Fig. 9: impact of aux buffer size on overhead and accuracy (STREAM).

Paper claims checked:
* below 4 pages SPE produces no samples at all (and near-zero overhead),
* accuracy rises monotonically with buffer size (~93 % at 16 pages,
  > 99 % at large sizes),
* overhead is lowest at the inert 2-page point, jumps once SPE works,
  and falls again as interrupts amortise at large sizes.
"""

import pytest
from conftest import orchestration_opts, save_report

from repro.evalharness.experiments import FIG9_AUX_PAGES, fig9_aux_buffer
from repro.evalharness.report import render_fig9


def test_fig9(benchmark, report_dir):
    rows = benchmark.pedantic(
        fig9_aux_buffer,
        kwargs={"aux_pages": FIG9_AUX_PAGES, **orchestration_opts()},
        rounds=1, iterations=1,
    )
    save_report(report_dir, "fig9_auxbuf", render_fig9(rows))

    by_pages = {r["aux_pages"]: r for r in rows}

    # 2 pages: SPE loses everything; minimum working size is 4 pages
    assert by_pages[2]["samples"] == 0
    assert by_pages[4]["samples"] > 0
    # lowest overhead at the smallest (inert) size, then a jump
    assert by_pages[2]["overhead"] < 0.001
    assert by_pages[4]["overhead"] > 10 * by_pages[2]["overhead"]

    # accuracy rises monotonically with size and saturates high
    accs = [r["accuracy"] for r in rows]
    assert all(b >= a - 0.01 for a, b in zip(accs, accs[1:]))
    assert by_pages[16]["accuracy"] == pytest.approx(0.93, abs=0.03)
    assert by_pages[512]["accuracy"] > 0.99

    # beyond 32 pages, fewer interrupts -> lower overhead
    assert by_pages[2048]["overhead"] < by_pages[32]["overhead"]
    assert by_pages[2048]["wakeups"] < by_pages[16]["wakeups"]
