"""Figs. 10-11: thread-count sweep (STREAM, 16-page aux buffers).

Paper claims checked:
* Fig. 10: overhead grows with thread count (~0.3 % -> ~0.86 % on the
  testbed; our magnitudes differ, the growth must hold); accuracy sits
  in a narrow band, peaking near 32 threads and dipping at high counts,
* Fig. 11: sampling throttling (and collisions) blow up at high thread
  counts, explaining the accuracy dip.
"""

from conftest import orchestration_opts, save_report

from repro.evalharness.experiments import fig10_fig11_threads
from repro.evalharness.report import render_fig10_fig11

THREADS = (1, 2, 4, 8, 16, 32, 48, 64, 96, 128)


def test_fig10_fig11(benchmark, report_dir):
    rows = benchmark.pedantic(
        fig10_fig11_threads,
        kwargs={"thread_counts": THREADS, "scale": 2.0,
                **orchestration_opts()},
        rounds=1, iterations=1,
    )
    save_report(report_dir, "fig10_fig11_threads", render_fig10_fig11(rows))

    by_t = {r["threads"]: r for r in rows}

    # Fig. 10 overhead: general upward trend with thread count
    assert by_t[128]["overhead"] > by_t[1]["overhead"]
    assert by_t[64]["overhead"] > by_t[2]["overhead"]

    # Fig. 10 accuracy: narrow band, peak at a moderate count, dip at 128
    accs = {t: by_t[t]["accuracy"] for t in THREADS}
    peak_t = max(accs, key=accs.get)
    assert 8 <= peak_t <= 64
    assert accs[128] < accs[peak_t]
    assert accs[1] < accs[peak_t]
    assert all(0.8 < a <= 1.0 for a in accs.values())

    # Fig. 11: throttling appears only at high thread counts
    assert by_t[32]["throttle_events"] == 0
    assert by_t[128]["throttle_events"] > 0
    assert by_t[128]["throttled_samples"] > 0
    # collisions rise at high counts (overloaded memory latency)
    assert by_t[128]["collisions"] > by_t[16]["collisions"]
