"""Perf-smoke gate: compare a fresh ``BENCH_substrate.json`` against the
checked-in baseline and fail on regressions.

Two kinds of failure::

    PYTHONPATH=src python benchmarks/check_regression.py \
        BENCH_substrate.json benchmarks/baselines/BENCH_substrate.baseline.json

* **throughput regression** — an entry's op/s fell below ``baseline /
  max-slowdown`` (or its wall seconds grew past ``baseline *
  max-slowdown``).  The default factor of 2 absorbs machine-to-machine
  variance while catching an accidentally de-vectorized hot path;
* **speedup floor** — entries that benchmark a vectorized path against
  its retained reference carry a ``min_speedup`` (e.g. 5x for the
  collision-heavy scan, 10x for the small-aux profile run and for the
  mmap cache-hit deserialization vs ``pickle.loads``).  Floors are
  ratios on the *same* machine, so they are checked against the fresh
  run alone and are machine-independent.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(current: dict, baseline: dict, max_slowdown: float) -> list[str]:
    failures: list[str] = []
    cur_entries = current.get("entries", {})
    base_entries = baseline.get("entries", {})
    for name, entry in sorted(cur_entries.items()):
        floor = entry.get("min_speedup")
        speedup = entry.get("speedup_vs_reference")
        if floor is not None and speedup is not None and speedup < floor:
            failures.append(
                f"{name}: speedup vs reference {speedup:.2f}x is below the "
                f"{floor:.1f}x floor"
            )
        base = base_entries.get(name)
        if base is None or base.get("metric") != entry.get("metric"):
            continue
        value, ref = entry["value"], base["value"]
        if entry["metric"] == "ops_per_s":
            if value < ref / max_slowdown:
                failures.append(
                    f"{name}: {value:,.0f} op/s is more than "
                    f"{max_slowdown:.1f}x below baseline {ref:,.0f} op/s"
                )
        elif entry["metric"] == "seconds":
            if value > ref * max_slowdown:
                failures.append(
                    f"{name}: {value:.3f}s is more than {max_slowdown:.1f}x "
                    f"above baseline {ref:.3f}s"
                )
    missing = sorted(set(base_entries) - set(cur_entries))
    for name in missing:
        failures.append(f"{name}: present in baseline but missing from the run")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly generated BENCH_substrate.json")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument(
        "--max-slowdown", type=float, default=2.0,
        help="tolerated per-entry slowdown factor vs the baseline (default 2)",
    )
    args = ap.parse_args(argv)
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = check(current, baseline, args.max_slowdown)
    if failures:
        print("PERF REGRESSION:")
        for f in failures:
            print(f"  - {f}")
        return 1
    n = len(current.get("entries", {}))
    print(f"perf smoke OK: {n} entries within {args.max_slowdown:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
