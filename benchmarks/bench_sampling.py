"""Sampling-strategy zoo benches: preset wall time and per-strategy cost.

Two things the zoo adds that must not regress:

* ``sampling_zoo_small`` — one full ``sampling_zoo`` preset run
  (5 strategies x 2 periods over a tiny STREAM, each trial scored
  against an exhaustive ground-truth pass), in seconds: the cost of
  the CI smoke job and of anyone iterating on a strategy;
* ``sampling_positions_<strategy>`` — raw position-selection
  throughput of each registered strategy over a ~2M-op trace at
  period 4096, in ops/s, so a slow new selection rule (or a perf
  regression in an old one) is visible per strategy rather than
  hidden inside an end-to-end number.

Both feed ``BENCH_substrate.json`` via ``bench_substrate_json.py``;
``check_regression.py`` holds them within 2x of the checked-in
baseline.  Standalone::

    PYTHONPATH=src python benchmarks/bench_sampling.py
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.cpu.ops import OpKind
from repro.machine.hierarchy import MemLevel
from repro.scenarios import Session, sampling_zoo_spec
from repro.spe.sampler import TraceOpSource
from repro.spe.strategies import STRATEGIES

N_OPS = 2_000_000
PERIOD = 4096


def _median_seconds(fn, rounds: int = 5) -> float:
    fn()  # warm-up
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _trace() -> TraceOpSource:
    rng = np.random.default_rng(0)
    kinds = np.full(N_OPS, OpKind.LOAD, np.uint8)
    addrs = rng.integers(1, 1 << 40, N_OPS, dtype=np.uint64)
    levels = np.full(N_OPS, int(MemLevel.L1), np.uint8)
    return TraceOpSource(kinds, addrs, levels, cpi=1.0)


def bench_zoo_preset() -> dict:
    sec = _median_seconds(
        lambda: Session().run(sampling_zoo_spec()), rounds=3
    )
    report = Session().run(sampling_zoo_spec())
    return {
        "metric": "seconds",
        "value": sec,
        "trials": len(report.results),
    }


def bench_strategy_positions() -> dict[str, dict]:
    src = _trace()
    entries: dict[str, dict] = {}
    for name, strat in STRATEGIES.items():
        def run(strat=strat):
            strat.sample(src, PERIOD, False, np.random.default_rng(0), None)
        pos, _ = strat.sample(
            src, PERIOD, False, np.random.default_rng(0), None
        )
        entries[f"sampling_positions_{name}"] = {
            "metric": "ops_per_s",
            "value": N_OPS / _median_seconds(run),
            "n": N_OPS,
            "period": PERIOD,
            "samples": int(pos.size),
        }
    return entries


def bench_sampling_entries() -> dict[str, dict]:
    """The zoo entries for ``BENCH_substrate.json``."""
    entries = {"sampling_zoo_small": bench_zoo_preset()}
    entries.update(bench_strategy_positions())
    return entries


if __name__ == "__main__":
    for name, entry in sorted(bench_sampling_entries().items()):
        value = (
            f"{entry['value']:,.0f} op/s"
            if entry["metric"] == "ops_per_s"
            else f"{entry['value']:.3f} s"
        )
        print(f"{name}: {value}")
