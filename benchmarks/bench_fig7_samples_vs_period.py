"""Fig. 7: collected SPE samples vs sampling period, five trials.

Paper: counts scale linearly with 1/period; the smallest periods deviate
(collision losses) with visible trial variance, worst for CFD.  Sample
counts here are SCALE x the paper's (op volumes are scaled; the
linearity and deviations are scale-free).
"""

import numpy as np
import pytest
from conftest import orchestration_opts, save_report

from repro.analysis.accuracy import linearity_check
from repro.evalharness.experiments import fig7_samples_vs_period
from repro.evalharness.report import render_fig7

PERIODS = (512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)
TRIALS = 5
SCALES = {"stream": 1 / 64, "cfd": 1 / 512, "bfs": 0.25}


def run():
    out = {}
    opts = orchestration_opts()
    for name, scale in SCALES.items():
        out.update(
            fig7_samples_vs_period(
                periods=PERIODS, trials=TRIALS, workloads=(name,),
                scale=scale, **opts,
            )
        )
    return out


def test_fig7(benchmark, report_dir):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(report_dir, "fig7_samples_vs_period", render_fig7(results))

    for name, pts in results.items():
        counts = np.array([p.samples_mean for p in pts])
        periods = np.array([p.period for p in pts], dtype=float)
        # monotone decrease with period
        assert (np.diff(counts) < 0).all(), name
        # near-ideal log-log slope of 1 over the clean region (>= 4096)
        clean = periods >= 4096
        slope, r2 = linearity_check(periods[clean], counts[clean])
        assert slope == pytest.approx(1.0, abs=0.1), name
        assert r2 > 0.99, name
        assert all(len(p.samples_trials) == TRIALS for p in pts)

    # deviation from linearity at the smallest periods for STREAM/CFD:
    # the 512->2048 ratio falls short of the ideal 4x
    for name in ("stream", "cfd"):
        pts = {p.period: p.samples_mean for p in results[name]}
        assert pts[512] / pts[2048] < 3.8, name
    # CFD has by far the largest sample volume (biggest dataset)
    assert (
        results["cfd"][0].samples_mean * SCALES["stream"] / SCALES["cfd"]
        > results["stream"][0].samples_mean
    )
