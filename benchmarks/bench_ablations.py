"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation switches off one mechanism of the SPE model and shows the
paper-shape it is responsible for:

* **service loss window** -> the Fig. 9 accuracy-vs-buffer curve,
* **loaded DRAM latency** -> the Fig. 8c collision curves,
* **interval-counter carry** -> sample conservation across phases,
* **jitter window** -> sampling-bias protection on periodic code.
"""

import numpy as np
from conftest import save_report

from repro.analysis.plotting import table
from repro.machine.spec import ampere_altra_max
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.spe.driver import SpeCostModel
from repro.workloads.stream import StreamWorkload

MACHINE = ampere_altra_max()


def profile(period=2048, cost=None, scale=1 / 32, threads=32):
    w = StreamWorkload(MACHINE, n_threads=threads, scale=scale)
    s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)
    return NmoProfiler(w, s, cost=cost, seed=0).run()


def test_ablation_service_loss(benchmark, report_dir):
    """Without the per-service torn window, buffer size stops mattering."""

    def run():
        lossless = SpeCostModel(service_loss_records=0)
        # period/scale chosen so per-thread volume crosses several
        # watermarks (the loss only applies at buffer services)
        return (
            profile(cost=lossless, period=512, scale=1 / 4),
            profile(period=512, scale=1 / 4),
        )

    without, with_loss = benchmark.pedantic(run, rounds=1, iterations=1)
    txt = table(
        ["variant", "accuracy", "samples"],
        [
            ["service loss OFF", f"{without.accuracy:.3f}", without.samples_processed],
            ["service loss ON", f"{with_loss.accuracy:.3f}", with_loss.samples_processed],
        ],
        title="Ablation: per-service record loss (drives Fig. 9)",
    )
    save_report(report_dir, "ablation_service_loss", txt)
    assert without.accuracy > with_loss.accuracy


def test_ablation_loaded_latency(benchmark, report_dir):
    """Without loaded DRAM latency, STREAM stops colliding at p=1000."""

    def run():
        w = StreamWorkload(MACHINE, n_threads=32, scale=1 / 32)
        for p in w.phases:
            p.dram_latency_scale = 1.0  # unloaded latency everywhere
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=1000)
        unloaded = NmoProfiler(w, s, seed=0).run()
        loaded = profile(period=1000)
        return unloaded, loaded

    unloaded, loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    txt = table(
        ["variant", "collisions", "accuracy"],
        [
            ["unloaded DRAM", unloaded.collisions, f"{unloaded.accuracy:.3f}"],
            ["loaded DRAM", loaded.collisions, f"{loaded.accuracy:.3f}"],
        ],
        title="Ablation: loaded DRAM latency (drives Fig. 8c collisions)",
    )
    save_report(report_dir, "ablation_loaded_latency", txt)
    assert unloaded.collisions == 0
    assert loaded.collisions > 1000


def test_ablation_carry(benchmark, report_dir):
    """Resetting the interval counter per phase loses ~period/2 ops per
    phase; the carry keeps multi-phase sample counts unbiased."""

    def run():
        from repro.spe.sampler import sample_positions

        rng = np.random.default_rng(0)
        n_phases, ops, period = 60, 40_000, 16_000
        no_carry = sum(
            sample_positions(ops, period, False, np.random.default_rng(i))[0].size
            for i in range(n_phases)
        )
        carry = None
        with_carry = 0
        for i in range(n_phases):
            pos, carry = sample_positions(ops, period, False, rng, carry)
            with_carry += pos.size
        ideal = n_phases * ops / period
        return no_carry, with_carry, ideal

    no_carry, with_carry, ideal = benchmark.pedantic(run, rounds=1, iterations=1)
    txt = table(
        ["variant", "samples", "ideal"],
        [
            ["counter reset per phase", no_carry, f"{ideal:.0f}"],
            ["counter carried", with_carry, f"{ideal:.0f}"],
        ],
        title="Ablation: interval-counter carry across phases",
    )
    save_report(report_dir, "ablation_carry", txt)
    assert abs(with_carry - ideal) < abs(no_carry - ideal)
    # resetting per phase throws away the partial interval at each phase
    # end: short phases are systematically under-sampled
    assert no_carry < ideal * 0.9


def test_ablation_jitter_window(benchmark, report_dir):
    """The jitter config bit widens interval spread (bias protection)."""

    def run():
        from repro.spe.sampler import sample_positions

        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        quiet, _ = sample_positions(4_000_000, 4096, False, rng1)
        noisy, _ = sample_positions(4_000_000, 4096, True, rng2)
        return float(np.diff(quiet).std()), float(np.diff(noisy).std())

    q, n = benchmark.pedantic(run, rounds=1, iterations=1)
    txt = table(
        ["variant", "interval stddev"],
        [["inherent perturbation", f"{q:.1f}"], ["jitter bit set", f"{n:.1f}"]],
        title="Ablation: sampling-interval randomisation window",
    )
    save_report(report_dir, "ablation_jitter", txt)
    assert n > 3 * q
