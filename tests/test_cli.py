"""CLI runner tests (python -m repro)."""

import pytest

from repro.__main__ import COMMANDS, EXPERIMENTS, PARALLEL_EXPERIMENTS, main
from repro.orchestrate import ResultCache, make_cache


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig8", "fig9", "table1", "table2"):
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NMO_PERIOD" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "3.0 GHz" in out

    def test_fig2_scaled(self, capsys):
        assert main(["fig2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2" in out and "GiB" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_colo_interference_tiny(self, capsys):
        assert main(
            ["colo_interference", "--corunners", "1",
             "--workload-scale", "0.002"]
        ) == 0
        out = capsys.readouterr().out
        assert "contended channel" in out
        assert "stream" in out

    def test_bad_corunners_rejected(self):
        with pytest.raises(SystemExit):
            main(["colo_interference", "--corunners", "0"])
        # more co-runners than fit on the machine fail at flag parsing,
        # not as a traceback from run_colocation
        with pytest.raises(SystemExit):
            main(["colo_interference", "--corunners", "17"])

    def test_every_registered_experiment_has_callable(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())

    def test_every_command_has_description(self):
        for name, (fn, desc) in COMMANDS.items():
            assert callable(fn) and desc, name

    def test_list_shows_descriptions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name, (_fn, desc) in COMMANDS.items():
            assert desc in out, name

    def test_action_rejected_for_experiments(self):
        with pytest.raises(SystemExit):
            main(["fig2", "stats"])

    def test_action_rejected_for_list(self):
        with pytest.raises(SystemExit):
            main(["list", "stats"])


FIG9_ARGS = ["fig9"]  # smallest parallel exhibit


class TestOrchestrationFlags:
    def test_parallel_experiments_registered(self):
        assert set(PARALLEL_EXPERIMENTS) <= set(EXPERIMENTS)

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9", "--workers", "-1"])

    def test_workers_flag_accepted(self, capsys, monkeypatch):
        # tiny grid via the library defaults is too slow for a unit test;
        # patch the exhibit to a stub and just check flag plumbing
        import repro.__main__ as cli

        seen = {}

        def stub(args):
            seen["workers"] = args.workers
            seen["cache"] = make_cache(args.cache, args.cache_dir)
            return "ok"

        monkeypatch.setitem(cli.COMMANDS, "fig9", (stub, "stub"))
        assert main(["fig9", "--workers", "3"]) == 0
        assert seen["workers"] == 3
        assert seen["cache"] is None

    def test_cache_dir_implies_cache(self, monkeypatch, tmp_path, capsys):
        import repro.__main__ as cli

        seen = {}

        def stub(args):
            seen["cache"] = make_cache(args.cache, args.cache_dir)
            return "ok"

        monkeypatch.setitem(cli.COMMANDS, "fig9", (stub, "stub"))
        assert main(["fig9", "--cache-dir", str(tmp_path)]) == 0
        assert isinstance(seen["cache"], ResultCache)
        assert seen["cache"].dir == tmp_path

    def test_no_cache_wins_over_cache_dir(self, monkeypatch, tmp_path, capsys):
        import repro.__main__ as cli

        seen = {}

        def stub(args):
            seen["cache"] = make_cache(args.cache, args.cache_dir)
            return "ok"

        monkeypatch.setitem(cli.COMMANDS, "fig9", (stub, "stub"))
        assert main(["fig9", "--no-cache", "--cache-dir", str(tmp_path)]) == 0
        assert seen["cache"] is None


class TestRunCommand:
    def test_requires_scenario_argument(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_unknown_scenario_name_fails_cleanly(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "fig8" in err

    def test_runs_scenario_json_end_to_end(self, capsys, tmp_path):
        from repro.scenarios import colo_interference_spec

        spec = colo_interference_spec(max_corunners=1, scale=0.002)
        path = tmp_path / "tiny_colo.json"
        path.write_text(spec.to_json())
        assert main(["run", str(path), "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "contended channel" in out
        assert f"sha256:{spec.spec_hash()[:12]}" in out
        # rerun is a full cache hit and prints byte-identical output
        assert main(["run", str(path), "--cache-dir", str(tmp_path / "c")]) == 0
        assert capsys.readouterr().out == out

    def test_report_json_dumped(self, capsys, tmp_path):
        import json

        from repro.scenarios import colo_interference_spec

        spec = colo_interference_spec(max_corunners=1, scale=0.002)
        path = tmp_path / "tiny_colo.json"
        path.write_text(spec.to_json())
        report_path = tmp_path / "report.json"
        assert main(["run", str(path), "--report-json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["provenance"]["spec_hash"] == spec.spec_hash()
        assert report["spec"] == spec.to_dict()
        assert report["results"][0]["runners"][0]["workload"] == "stream"

    def test_missing_json_file_fails_cleanly(self, capsys):
        assert main(["run", "does/not/exist.json"]) == 2
        assert "cannot read scenario file" in capsys.readouterr().err

    def test_unknown_workload_in_file_fails_cleanly(self, capsys, tmp_path):
        import json

        from repro.scenarios import quickstart_spec

        d = json.loads(quickstart_spec().to_json())
        d["workloads"][0]["name"] = "nope"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(d))
        assert main(["run", str(path)]) == 2
        assert "known:" in capsys.readouterr().err

    def test_report_json_rejected_outside_run(self):
        with pytest.raises(SystemExit):
            main(["table1", "--report-json", "out.json"])

    def test_malformed_scenario_values_fail_cleanly(self, capsys, tmp_path):
        import json

        from repro.scenarios import fig9_spec

        d = json.loads(fig9_spec().to_json())
        d["sweep"]["values"] = 4096  # non-list: a bare TypeError inside
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(d))
        assert main(["run", str(path)]) == 2
        assert "malformed scenario value" in capsys.readouterr().err

    def test_grid_flags_rejected_for_run(self):
        # the grid comes from the spec; flags that would be silently
        # ignored must be refused
        for flags in (["--trials", "2"], ["--workload-scale", "0.1"],
                      ["--corunners", "2"], ["--scale", "0.5"]):
            with pytest.raises(SystemExit):
                main(["run", "fig8", *flags])


class TestScenariosCommand:
    def test_requires_list_action(self):
        with pytest.raises(SystemExit):
            main(["scenarios"])
        with pytest.raises(SystemExit):
            main(["scenarios", "nuke"])

    def test_list_names_presets(self, capsys):
        from repro.scenarios import SCENARIO_PRESETS

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name, (_factory, desc) in SCENARIO_PRESETS.items():
            assert name in out and desc in out


class TestCacheSubcommand:
    def test_requires_action(self):
        with pytest.raises(SystemExit):
            main(["cache"])

    def test_bad_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["cache", "nuke"])

    def test_stats_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert "hits: 0" in out

    def test_stats_reflect_populated_cache(self, capsys, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key("exp", {"p": 1}, 0), {"x": 1.0})
        cache.flush_stats()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "stores: 1" in out

    def test_clear(self, capsys, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key("exp", {"p": 1}, 0), {"x": 1.0})
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out
        assert ResultCache(tmp_path).entries() == []
