"""CLI runner tests (python -m repro)."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig8", "fig9", "table1", "table2"):
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NMO_PERIOD" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "3.0 GHz" in out

    def test_fig2_scaled(self, capsys):
        assert main(["fig2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2" in out and "GiB" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_every_registered_experiment_has_callable(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())
