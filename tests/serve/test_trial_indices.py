"""``submit`` with ``trial_indices``: the cluster sharding primitive.

A sub-grid job must plan exactly like the full job (same cache keys
for the selected rows) and finish ``done`` with rows but no report.
"""

import pytest

from repro.errors import ServeError
from repro.orchestrate import ResultCache, cache_key
from repro.scenarios import Session
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import ProfilingServer, ServerClient


def subset_spec(name="subset-wire", trials=3, seed=71):
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("subset-cache"))
    with ProfilingServer(port=0, workers=2, cache=cache) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServerClient(*server.address) as c:
        yield c


class TestSubGridSubmit:
    def test_sub_grid_runs_only_selected_trials(self, server, client):
        spec = subset_spec()
        ack = client.submit(spec, trial_indices=[0, 2])
        assert ack["trials"] == 2
        job = server.queue.get(ack["job_id"])
        assert job.wait_terminal(timeout=60) == "done"
        assert job.subset is True
        results = client.results(ack["job_id"])
        assert len(results["rows"]) == 2
        assert results["report"] is None  # sub-grids never aggregate

    def test_sub_grid_rows_hit_the_same_cache_keys(self, server, client):
        # running indices [1] then the full grid: trial 1 is a hit
        spec = subset_spec(name="subset-keys", seed=72)
        ack = client.submit(spec, trial_indices=[1])
        job = server.queue.get(ack["job_id"])
        assert job.wait_terminal(timeout=60) == "done"
        planned = Session().plan(spec)[1]
        key = cache_key(planned.experiment, planned.config, planned.seed)
        assert job.keys == [key]
        assert server.cache.contains(key)
        outcome = client.run(spec)
        assert outcome.state == "done"
        cached = {e["index"] for e in outcome.rows if e["cached"]}
        assert 1 in cached

    @pytest.mark.parametrize(
        "indices",
        [[], [0, 0], [3], [-1], ["0"], [True]],
    )
    def test_bad_indices_rejected_structurally(self, client, indices):
        with pytest.raises(ServeError) as exc:
            client.submit(subset_spec(seed=73), trial_indices=indices)
        assert exc.value.code == "bad_request"

    def test_non_list_indices_rejected_at_the_wire(self, client):
        # the typed client can't even send this; a raw request can
        with pytest.raises(ServeError) as exc:
            client.request(
                "submit",
                spec=subset_spec(seed=75).to_dict(),
                trial_indices=7,
            )
        assert exc.value.code == "bad_request"

    def test_full_submit_is_unchanged(self, client):
        ack = client.submit(subset_spec(name="full-grid", seed=74))
        assert ack["trials"] == 3
