"""Cache concurrency: compute-at-most-once and no torn reads.

The serve scheduler promises that N concurrent jobs over one cache
directory never compute the same trial twice — in-flight duplicates
ride along on one task, and trials reaching dispatch after their twin
completed are resolved from the cache.  The counting trial function
appends one line per *execution* (``O_APPEND`` writes of one short
line are atomic), so the ledger is exact under concurrency.
"""

import os
import threading

from repro.orchestrate import ResultCache, cache_key
from repro.scenarios import Session
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.scenarios.trials import TRIAL_FNS
from repro.serve import ProfilingServer, ServerClient


def counting_trial(machine, tspec):
    """Record this execution in the shared ledger, then return a row."""
    ledger = tspec.config["kwargs"]["ledger"]
    fd = os.open(ledger, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, f"seed={tspec.seed}\n".encode())
    finally:
        os.close(fd)
    return {"metric": float(tspec.seed)}


def counted_spec(name, ledger, trials=3, seed=0):
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=(
            WorkloadSpec(
                "stream", n_threads=2, scale=0.02,
                kwargs={"ledger": str(ledger)},
            ),
        ),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


class TestComputeAtMostOnce:
    def test_identical_concurrent_jobs_share_every_trial(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(TRIAL_FNS, "profile", counting_trial)
        ledger = tmp_path / "ledger"
        spec = counted_spec("dup-stress", ledger, trials=3)
        outcomes = []
        with ProfilingServer(
            port=0, workers=2, cache=ResultCache(tmp_path / "cache"),
            queue_limit=16,
        ) as srv:

            def one_submission():
                with ServerClient(*srv.address) as c:
                    outcomes.append(c.run(spec))

            threads = [
                threading.Thread(target=one_submission) for _ in range(5)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

        assert [o.state for o in outcomes] == ["done"] * 5
        # 5 jobs x 3 trials, but only 3 unique trials => 3 executions
        lines = ledger.read_text().splitlines()
        assert sorted(lines) == ["seed=0", "seed=1", "seed=2"]
        # every job saw the same rows, by value
        rows0 = sorted(
            (e["index"], e["row"]["metric"]) for e in outcomes[0].rows
        )
        for o in outcomes[1:]:
            assert sorted(
                (e["index"], e["row"]["metric"]) for e in o.rows
            ) == rows0

    def test_distinct_jobs_still_execute_their_own_trials(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(TRIAL_FNS, "profile", counting_trial)
        ledger = tmp_path / "ledger"
        with ProfilingServer(
            port=0, workers=2, cache=ResultCache(tmp_path / "cache")
        ) as srv:
            with ServerClient(*srv.address) as c:
                a = c.run(counted_spec("job-a", ledger, trials=2, seed=0))
                b = c.run(counted_spec("job-b", ledger, trials=2, seed=50))
        assert a.state == b.state == "done"
        lines = sorted(ledger.read_text().splitlines())
        assert lines == ["seed=0", "seed=1", "seed=50", "seed=51"]


class TestResultCacheConcurrency:
    def test_concurrent_get_put_never_tears(self, tmp_path):
        """Readers racing writers on one cache dir see either a miss or
        the complete payload — never a partial pickle."""
        payload = {"rows": list(range(512)), "label": "x" * 4096}
        keys = [f"stress{i:04d}{'0' * 56}" for i in range(20)]
        errors = []
        stop = threading.Event()

        def writer():
            cache = ResultCache(tmp_path)
            for _ in range(5):
                for key in keys:
                    cache.put(key, dict(payload, key=key))

        def reader():
            cache = ResultCache(tmp_path)
            miss = object()
            while not stop.is_set():
                for key in keys:
                    value = cache.get(key, miss)
                    if value is miss:
                        continue
                    if value.get("key") != key or value["rows"] != payload["rows"]:
                        errors.append(f"torn read for {key}")
                        return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writers = [threading.Thread(target=writer) for _ in range(3)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=60)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert errors == []

    def test_duplicate_put_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "dupkey" + "0" * 58
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 1})
        assert cache.get(key) == {"v": 1}

    def test_server_scheduler_counters_reconcile(self, tmp_path, monkeypatch):
        """trials_executed + trials_cached covers every landed row."""
        monkeypatch.setitem(TRIAL_FNS, "profile", counting_trial)
        ledger = tmp_path / "ledger"
        spec = counted_spec("counted", ledger, trials=2)
        with ProfilingServer(
            port=0, workers=2, cache=ResultCache(tmp_path / "cache")
        ) as srv:
            with ServerClient(*srv.address) as c:
                c.run(spec)
                c.run(spec)
                info = c.ping()
        assert info["trials_executed"] == 2
        assert info["trials_cached"] == 2
