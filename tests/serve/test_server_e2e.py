"""End-to-end: submit -> stream -> results over a real socket.

Pins the tentpole guarantees of ``repro.serve``:

* streamed rows and the final report are **byte-identical** to what
  :meth:`repro.scenarios.Session.run` produces for the same spec —
  down to the pickled cache payloads on disk,
* resubmitting a computed spec is a full cache hit (no trial executes
  twice),
* a full queue rejects with a structured ``queue_full`` error, and
  protocol misuse gets machine-readable error codes, never a hang.
"""

import json
import socket
import threading
import time

import pytest

from repro.errors import ServeError
from repro.orchestrate import ResultCache, cache_key
from repro.scenarios import Session
from repro.scenarios.session import _json_safe
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import ProfilingServer, ServerClient, protocol


def e2e_spec(name="serve-e2e", trials=2, seed=11):
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


@pytest.fixture(scope="module")
def server_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-cache")


@pytest.fixture(scope="module")
def server(server_cache_dir):
    with ProfilingServer(
        port=0, workers=2, cache=ResultCache(server_cache_dir), queue_limit=4
    ) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServerClient(*server.address) as c:
        yield c


class TestSubmitStreamResults:
    def test_full_round_trip_matches_session_run(
        self, server, client, server_cache_dir, tmp_path
    ):
        spec = e2e_spec()
        outcome = client.run(spec)
        assert outcome.state == "done"
        assert len(outcome.rows) == 2
        assert all(not e["cached"] for e in outcome.rows)

        # the direct Session path on its own cache dir
        session_cache = tmp_path / "session-cache"
        session = Session(cache=ResultCache(session_cache))
        report = session.run(spec)

        # streamed rows == Session's raw trial rows (JSON-rendered)
        by_index = {e["index"]: e["row"] for e in outcome.rows}
        direct_rows = [
            _json_safe(
                session.cache.get(cache_key(t.experiment, t.config, t.seed))
            )
            for t in session.plan(spec)
        ]
        assert [by_index[i] for i in range(2)] == direct_rows

        # final report: identical results + provenance (execution is
        # runtime-dependent by design and excluded from render)
        want = report.to_dict()
        got = outcome.report
        assert got["results"] == want["results"]
        assert got["provenance"] == want["provenance"]
        assert got["spec"] == want["spec"]

        # cached payloads are byte-identical files on disk
        def objects(cache_dir):
            return {
                p.relative_to(cache_dir): p.read_bytes()
                for p in (cache_dir / "objects").rglob("*.pkl")
            }

        server_objects = objects(server_cache_dir)
        session_objects = objects(session_cache)
        assert set(session_objects) <= set(server_objects)
        for rel, payload in session_objects.items():
            assert server_objects[rel] == payload

    def test_resubmission_is_a_full_cache_hit(self, client):
        spec = e2e_spec()
        first = client.run(spec)
        replay = client.run(spec)
        assert replay.state == "done"
        assert all(e["cached"] for e in replay.rows)
        assert [e["row"] for e in sorted(replay.rows, key=lambda e: e["index"])] == [
            e["row"] for e in sorted(first.rows, key=lambda e: e["index"])
        ]
        assert replay.report["results"] == first.report["results"]

    def test_stream_replays_rows_already_landed(self, client):
        spec = e2e_spec(name="late-stream", seed=12)
        ack = client.submit(spec)
        job_id = ack["job_id"]
        # wait for completion first, then open the stream: every row
        # must still be delivered (the event log is replayable)
        state = None
        for _ in range(300):
            state = client.status(job_id)["state"]
            if state == "done":
                break
            time.sleep(0.05)
        assert state == "done"
        events = list(client.stream(job_id))
        assert [e["event"] for e in events] == ["row", "row", "end"]
        assert events[-1]["state"] == "done"

    def test_status_reports_progress(self, client):
        ack = client.submit(e2e_spec(name="status-check", seed=13))
        snap = client.status(ack["job_id"])
        assert snap["job_id"] == ack["job_id"]
        assert snap["total"] == 2
        assert snap["state"] in ("queued", "running", "done")

    def test_submit_accepts_plain_dict_spec(self, client):
        ack = client.submit(e2e_spec(name="dict-spec", seed=14).to_dict())
        assert ack["trials"] == 2


class TestErrors:
    def test_queue_full_is_structured(self, server, server_cache_dir):
        # a private server with limit 1 and a job parked in the queue
        big = e2e_spec(name="parked", trials=4, seed=21)
        with ProfilingServer(port=0, workers=1, queue_limit=1) as srv:
            with ServerClient(*srv.address) as c:
                c.submit(big)
                with pytest.raises(ServeError) as exc:
                    c.submit(e2e_spec(name="rejected", seed=22))
        err = exc.value
        assert err.code == "queue_full"
        assert err.details["limit"] == 1
        assert err.details["active"] == 1

    def test_bad_spec_rejected(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit({"name": "broken", "kind": "no_such_kind"})
        assert exc.value.code == "bad_spec"

    def test_unknown_job(self, client):
        with pytest.raises(ServeError) as exc:
            client.status("job-999-deadbeef")
        assert exc.value.code == "unknown_job"

    def test_results_before_terminal_is_not_finished(self, server):
        # big enough to still be in flight when we ask
        with ServerClient(*server.address) as c:
            ack = c.submit(e2e_spec(name="early-ask", trials=6, seed=23))
            try:
                c.results(ack["job_id"])
            except ServeError as e:
                assert e.code == "not_finished"
            else:  # the job can legitimately win the race and finish
                assert c.status(ack["job_id"])["state"] == "done"

    def test_cancelled_job_results_are_job_failed(self, client):
        ack = client.submit(e2e_spec(name="cancel-me", trials=6, seed=24))
        client.cancel(ack["job_id"])
        with pytest.raises(ServeError) as exc:
            client.results(ack["job_id"])
        assert exc.value.code == "job_failed"

    def test_malformed_line_is_bad_request(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad_request"

    def test_unknown_op_is_bad_request(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            f = sock.makefile("rwb")
            protocol.write_message(f, {"op": "frobnicate"})
            reply = protocol.read_message(f)
        assert reply["ok"] is False
        assert "known:" in reply["error"]["reason"]


class TestServerPlumbing:
    def test_ping_reports_pool_and_queue(self, client, server):
        info = client.ping()
        assert info["protocol"] == protocol.PROTOCOL_VERSION
        assert info["workers"] == 2
        assert len(info["worker_pids"]) == 2
        assert info["queue_limit"] == 4
        assert info["cached"] is True

    def test_many_clients_share_one_server(self, server):
        results = []

        def one_client(seed):
            with ServerClient(*server.address) as c:
                results.append(
                    c.run(e2e_spec(name=f"multi-{seed}", seed=seed)).state
                )

        threads = [
            threading.Thread(target=one_client, args=(30 + i,))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert results == ["done", "done", "done"]

    def test_shutdown_op_stops_the_server(self):
        with ProfilingServer(port=0, workers=1) as srv:
            addr = srv.address
            with ServerClient(*addr) as c:
                assert c.shutdown()["stopping"] is True
            assert srv.stopping.wait(timeout=5)
        # a fresh connection must now fail
        with pytest.raises(OSError):
            socket.create_connection(addr, timeout=0.5)
