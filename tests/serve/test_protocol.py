"""The serve wire protocol: framing, limits, request parsing."""

import io

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
    read_message,
    write_message,
)


class TestFraming:
    def test_round_trip(self):
        msg = {"op": "submit", "spec": {"name": "x"}, "priority": 3}
        assert decode_message(encode_message(msg)) == msg

    def test_one_line_per_message(self):
        line = encode_message({"a": 1})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_canonical_bytes(self):
        # sorted keys + compact separators: identical dicts encode
        # identically regardless of insertion order
        a = encode_message({"x": 1, "y": 2})
        b = encode_message({"y": 2, "x": 1})
        assert a == b

    def test_non_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_message(b"not json at all\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2, 3]\n")

    def test_stream_round_trip(self):
        buf = io.BytesIO()
        write_message(buf, {"op": "ping"})
        write_message(buf, {"op": "status", "job_id": "j1"})
        buf.seek(0)
        assert read_message(buf) == {"op": "ping"}
        assert read_message(buf) == {"op": "status", "job_id": "j1"}
        assert read_message(buf) is None  # clean EOF

    def test_blank_line_is_empty_message(self):
        assert read_message(io.BytesIO(b"\n")) == {}

    def test_oversized_line_rejected(self):
        big = b'{"pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            read_message(io.BytesIO(big))


class TestResponses:
    def test_ok_carries_fields(self):
        r = ok_response(job_id="j1", state="queued")
        assert r["ok"] is True
        assert r["job_id"] == "j1"

    def test_error_shape(self):
        r = error_response("queue_full", "full", active=4, limit=4)
        assert r["ok"] is False
        assert r["error"]["code"] == "queue_full"
        assert r["error"]["reason"] == "full"
        assert r["error"]["active"] == 4

    def test_unknown_code_asserts(self):
        with pytest.raises(AssertionError):
            error_response("no_such_code", "x")


class TestParseRequest:
    @pytest.mark.parametrize("op", OPS)
    def test_every_op_parses(self, op):
        parsed_op, params = parse_request({"op": op, "job_id": "j"})
        assert parsed_op == op
        assert params == {"job_id": "j"}

    def test_unknown_op_is_none(self):
        assert parse_request({"op": "frobnicate"}) == (None, {})

    def test_missing_op_is_none(self):
        assert parse_request({"job_id": "j"}) == (None, {})

    def test_non_string_op_is_none(self):
        assert parse_request({"op": 7}) == (None, {})


class TestProtocolVersionCheck:
    def test_absent_version_is_accepted(self):
        # pre-versioning clients omit the field; same-version semantics
        assert protocol.check_protocol({"op": "ping"}) is None

    def test_matching_version_is_accepted(self):
        msg = {"op": "ping", "protocol": protocol.PROTOCOL_VERSION}
        assert protocol.check_protocol(msg) is None

    def test_mismatch_is_a_machine_readable_rejection(self):
        skew = protocol.check_protocol({"op": "ping", "protocol": 99})
        assert skew["ok"] is False
        assert skew["error"]["code"] == "protocol_mismatch"
        assert skew["error"]["server"] == protocol.PROTOCOL_VERSION
        assert skew["error"]["client"] == 99

    def test_extended_ops_parse_with_the_ops_parameter(self):
        ops = OPS + ("cache_export",)
        op, params = parse_request(
            {"op": "cache_export", "key": "k"}, ops
        )
        assert op == "cache_export"
        assert params == {"key": "k"}
        assert parse_request({"op": "cache_export"}) == (None, {})
