"""JobQueue: job states, priorities, bounded admission."""

import pytest

from repro.errors import QueueFullError, ServeError
from repro.orchestrate import cache_key
from repro.scenarios import Session
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import JOB_STATES, TERMINAL_STATES, JobQueue


def smoke_spec(name="queue-test", trials=2, seed=0):
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


def submit(queue, spec=None, priority=0):
    spec = spec or smoke_spec()
    trial_specs = Session().plan(spec)
    keys = [cache_key(t.experiment, t.config, t.seed) for t in trial_specs]
    return queue.submit(spec, trial_specs, keys, priority=priority)


class TestStates:
    def test_new_job_is_queued(self):
        job = submit(JobQueue())
        assert job.state == "queued"
        assert not job.is_terminal()
        assert job.pending == list(range(job.total))

    def test_terminal_states_are_terminal(self):
        assert TERMINAL_STATES == {"done", "partial", "failed", "cancelled"}
        assert set(JOB_STATES) >= TERMINAL_STATES

    def test_terminal_state_is_sticky(self):
        job = submit(JobQueue())
        job.set_state("cancelled")
        job.set_state("running")  # no-op: cancelled is terminal
        assert job.state == "cancelled"

    def test_land_row_counts_and_events(self):
        job = submit(JobQueue())
        job.land_row(1, {"v": 1}, cached=True)
        job.land_row(0, {"v": 0}, cached=False)
        assert (job.completed, job.cached) == (2, 1)
        assert [e["index"] for e in job.events] == [1, 0]
        assert job.rows == [{"v": 0}, {"v": 1}]

    def test_relanding_does_not_double_count(self):
        job = submit(JobQueue())
        job.land_row(0, {"v": 0}, cached=False)
        job.land_row(0, {"v": 0}, cached=False)
        assert job.completed == 1

    def test_snapshot_shape(self):
        job = submit(JobQueue())
        snap = job.snapshot()
        assert snap["job_id"] == job.id
        assert snap["state"] == "queued"
        assert snap["total"] == 2
        assert snap["spec_hash"] == job.spec.spec_hash()

    def test_events_since_returns_new_events(self):
        job = submit(JobQueue())
        job.land_row(0, {"v": 0}, cached=False)
        events, state = job.events_since(0, timeout=0.01)
        assert len(events) == 1 and state == "queued"
        events, _ = job.events_since(1, timeout=0.01)
        assert events == []

    def test_wait_terminal_returns_state(self):
        job = submit(JobQueue())
        job.set_state("done")
        assert job.wait_terminal(timeout=0.1) == "done"


class TestAdmission:
    def test_bounded_with_structured_rejection(self):
        queue = JobQueue(limit=2)
        submit(queue, smoke_spec(seed=1))
        submit(queue, smoke_spec(seed=2))
        with pytest.raises(QueueFullError) as exc:
            submit(queue, smoke_spec(seed=3))
        err = exc.value
        assert err.code == "queue_full"
        assert err.details == {"active": 2, "limit": 2}

    def test_terminal_jobs_free_capacity(self):
        queue = JobQueue(limit=1)
        first = submit(queue, smoke_spec(seed=1))
        first.set_state("done")
        submit(queue, smoke_spec(seed=2))  # admitted: first no longer active
        assert queue.active_count() == 1

    def test_job_ids_are_unique(self):
        queue = JobQueue(limit=4)
        spec = smoke_spec()
        ids = {submit(queue, spec).id for _ in range(3)}
        assert len(ids) == 3

    def test_limit_must_be_positive(self):
        with pytest.raises(ServeError):
            JobQueue(limit=0)


class TestLookupAndOrder:
    def test_get_unknown_job_is_structured(self):
        with pytest.raises(ServeError) as exc:
            JobQueue().get("job-nope")
        assert exc.value.code == "unknown_job"

    def test_runnable_orders_by_priority_then_fifo(self):
        queue = JobQueue(limit=8)
        low = submit(queue, smoke_spec(seed=1), priority=0)
        high = submit(queue, smoke_spec(seed=2), priority=5)
        low2 = submit(queue, smoke_spec(seed=3), priority=0)
        assert [j.id for j in queue.runnable()] == [high.id, low.id, low2.id]

    def test_runnable_excludes_terminal(self):
        queue = JobQueue(limit=8)
        job = submit(queue)
        queue.cancel(job.id)
        assert queue.runnable() == []

    def test_cancel_is_idempotent(self):
        queue = JobQueue(limit=8)
        job = submit(queue)
        assert queue.cancel(job.id) == "cancelled"
        assert queue.cancel(job.id) == "cancelled"

    def test_cancel_does_not_override_done(self):
        queue = JobQueue(limit=8)
        job = submit(queue)
        job.set_state("running")
        job.set_state("done")
        assert queue.cancel(job.id) == "done"

    def test_prune_keeps_recent_terminal_jobs(self):
        queue = JobQueue(limit=16)
        jobs = [submit(queue, smoke_spec(seed=i)) for i in range(5)]
        for j in jobs:
            j.set_state("done")
        assert queue.prune(keep=2) == 3
        kept = [j.id for j in queue.jobs()]
        assert kept == [jobs[3].id, jobs[4].id]
