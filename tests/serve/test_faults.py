"""Fault injection: dead workers and vanished clients.

A worker killed mid-trial must degrade the job (retry, then
``partial``) — never hang it; a client that disconnects mid-stream
must not take the server or its job down.  The trial functions here
are module-level so the fork-started workers can unpickle them, and
the ``profile`` trial function is monkeypatched per test — patching in
the parent works because :meth:`Session.trial_fn` resolves the
function at dispatch time, then ships it to the worker by reference.
"""

import os
import signal
import socket
import time
from pathlib import Path

from repro.orchestrate import ResultCache, cache_key
from repro.scenarios import Session
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.scenarios.trials import TRIAL_FNS
from repro.serve import ProfilingServer, ServerClient, protocol


def flaky_trial(machine, tspec):
    """Announce the worker pid, then stall — but only the first time.

    The marker file makes the retry (on the replacement worker) return
    instantly, so the retry path is exercised without re-waiting.
    """
    kw = tspec.config["kwargs"]
    marker = Path(kw["scratch"]) / f"ran-{tspec.seed}"
    if not marker.exists():
        marker.write_text(str(os.getpid()))
        (Path(kw["scratch"]) / f"pid-{tspec.seed}").write_text(
            str(os.getpid())
        )
        time.sleep(kw.get("stall", 60))
    return {"metric": float(tspec.seed)}


def slow_trial(machine, tspec):
    kw = tspec.config["kwargs"]
    time.sleep(kw.get("stall", 1.0))
    return {"metric": float(tspec.seed)}


def fault_spec(name, scratch, stall, trials=1, seed=100):
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=(
            WorkloadSpec(
                "stream",
                n_threads=2,
                scale=0.02,
                kwargs={"scratch": str(scratch), "stall": stall},
            ),
        ),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestWorkerDeath:
    def test_killed_worker_trial_is_retried_to_done(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(TRIAL_FNS, "profile", flaky_trial)
        spec = fault_spec("kill-retry", tmp_path, stall=60, seed=100)
        pidfile = tmp_path / "pid-100"
        with ProfilingServer(port=0, workers=1, max_retries=1) as srv:
            with ServerClient(*srv.address) as c:
                ack = c.submit(spec)
                assert wait_for(pidfile.exists), "trial never started"
                os.kill(int(pidfile.read_text()), signal.SIGKILL)
                assert wait_for(
                    lambda: c.status(ack["job_id"])["state"] == "done"
                ), "job did not recover from the worker death"
                result = c.results(ack["job_id"])
        assert result["state"] == "done"
        assert result["rows"][0]["row"] == {"metric": 100.0}
        # the pool replaced the dead worker: capacity never decayed
        assert len(srv.pool.pids()) == 0  # closed on exit

    def test_exhausted_retries_degrade_to_partial_not_hang(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(TRIAL_FNS, "profile", flaky_trial)
        spec = fault_spec("kill-partial", tmp_path, stall=60, seed=200)
        pidfile = tmp_path / "pid-200"
        with ProfilingServer(port=0, workers=1, max_retries=0) as srv:
            with ServerClient(*srv.address) as c:
                ack = c.submit(spec)
                assert wait_for(pidfile.exists), "trial never started"
                os.kill(int(pidfile.read_text()), signal.SIGKILL)
                assert wait_for(
                    lambda: c.status(ack["job_id"])["state"] == "partial"
                ), "job did not degrade to partial"
                snap = c.status(ack["job_id"])
                assert snap["lost"] == [0]
                # results are still retrievable for the partial job
                result = c.results(ack["job_id"])
                assert result["state"] == "partial"
                assert result["report"] is None
                assert result["lost"] == [0]
                assert "lost" in result["error"]
                # the server keeps serving after the fault
                assert c.ping()["workers"] == 1

    def test_replacement_worker_restores_capacity(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(TRIAL_FNS, "profile", flaky_trial)
        spec = fault_spec("respawn", tmp_path, stall=60, seed=300)
        pidfile = tmp_path / "pid-300"
        with ProfilingServer(port=0, workers=2, max_retries=1) as srv:
            with ServerClient(*srv.address) as c:
                before = set(c.ping()["worker_pids"])
                ack = c.submit(spec)
                assert wait_for(pidfile.exists)
                dead = int(pidfile.read_text())
                os.kill(dead, signal.SIGKILL)
                assert wait_for(
                    lambda: c.status(ack["job_id"])["state"] == "done"
                )
                after = set(c.ping()["worker_pids"])
        assert len(after) == 2
        assert dead in before and dead not in after


class TestClientDisconnect:
    def test_disconnect_mid_stream_leaves_job_running(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(TRIAL_FNS, "profile", slow_trial)
        cache = ResultCache(tmp_path / "cache")
        spec = fault_spec(
            "vanish", tmp_path, stall=1.0, trials=2, seed=400
        )
        with ProfilingServer(port=0, workers=1, cache=cache) as srv:
            sock = socket.create_connection(srv.address, timeout=10)
            f = sock.makefile("rwb")
            protocol.write_message(f, {"op": "submit", "spec": spec.to_dict()})
            ack = protocol.read_message(f)
            assert ack["ok"]
            job_id = ack["job_id"]
            protocol.write_message(f, {"op": "stream", "job_id": job_id})
            assert protocol.read_message(f)["streaming"] is True
            # hang up abruptly, mid-stream, before any row lands
            sock.close()

            # the server keeps serving and the job completes into cache
            with ServerClient(*srv.address) as c:
                assert wait_for(
                    lambda: c.status(job_id)["state"] == "done", timeout=60
                ), "job died with its streaming client"
                result = c.results(job_id)
        assert len(result["rows"]) == 2
        keys = [
            cache_key(t.experiment, t.config, t.seed)
            for t in Session().plan(spec)
        ]
        missing = object()
        for key in keys:
            assert cache.get(key, missing) is not missing
