"""Client connect retry/backoff and the version handshake.

Satellites of the cluster PR: a dead host must fail in bounded time
with a structured ``connect_failed`` error (the coordinator's agent
registration depends on it), and version-skewed peers must be
rejected with ``protocol_mismatch`` in both directions.
"""

import random
import socket

import pytest

from repro.errors import ServeError
from repro.serve import ProfilingServer, RetryPolicy, ServerClient, protocol


@pytest.fixture(scope="module")
def server():
    with ProfilingServer(port=0, workers=1) as srv:
        yield srv


def closed_port():
    """A port nothing listens on (bound then immediately released)."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestConnectRetry:
    def test_dead_host_fails_with_structured_error(self):
        port = closed_port()
        client = ServerClient(
            "127.0.0.1", port, connect_retries=2, backoff_s=0.01
        )
        with pytest.raises(ServeError) as exc:
            client.connect()
        err = exc.value
        assert err.code == "connect_failed"
        assert err.details["host"] == "127.0.0.1"
        assert err.details["port"] == port
        assert err.details["attempts"] == 3

    def test_zero_retries_fails_fast(self):
        client = ServerClient(
            "127.0.0.1", closed_port(), connect_retries=0, backoff_s=0.01
        )
        with pytest.raises(ServeError) as exc:
            client.connect()
        assert exc.value.details["attempts"] == 1

    def test_backoff_is_exponential(self, monkeypatch):
        # legacy kwargs synthesize a jitter-free policy, so the sleeps
        # are the exact exponential bounds
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", sleeps.append
        )
        client = ServerClient(
            "127.0.0.1", closed_port(), connect_retries=3, backoff_s=0.1
        )
        with pytest.raises(ServeError):
            client.connect()
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_connect_failed_reports_elapsed_time(self):
        client = ServerClient(
            "127.0.0.1", closed_port(), connect_retries=0, backoff_s=0.0
        )
        with pytest.raises(ServeError) as exc:
            client.connect()
        assert exc.value.details["elapsed_s"] >= 0.0


class TestPolicyConnect:
    def test_full_jitter_draws_below_the_exponential_bounds(
        self, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        policy = RetryPolicy(
            max_attempts=4, base_backoff_s=0.1, backoff_cap_s=10.0,
            jitter=True,
        )
        client = ServerClient(
            "127.0.0.1", closed_port(), policy=policy,
            rng=random.Random(11),
        )
        with pytest.raises(ServeError):
            client.connect()
        assert len(sleeps) == 3
        for pause, bound in zip(sleeps, [0.1, 0.2, 0.4]):
            assert 0.0 <= pause <= bound

    def test_backoff_cap_bounds_every_sleep(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        policy = RetryPolicy(
            max_attempts=6, base_backoff_s=0.1, backoff_cap_s=0.15,
            jitter=False,
        )
        client = ServerClient("127.0.0.1", closed_port(), policy=policy)
        with pytest.raises(ServeError):
            client.connect()
        assert sleeps == pytest.approx([0.1, 0.15, 0.15, 0.15, 0.15])

    def test_deadline_overrides_the_attempt_budget(self, monkeypatch):
        # with a deadline, attempts are unbounded: a 1-attempt policy
        # keeps dialing until the wall clock says stop
        monkeypatch.setattr("repro.serve.client.time.sleep", lambda _s: None)
        policy = RetryPolicy(
            max_attempts=1, base_backoff_s=0.0, jitter=False,
            deadline_s=0.3, connect_timeout_s=0.05,
        )
        client = ServerClient("127.0.0.1", closed_port(), policy=policy)
        with pytest.raises(ServeError) as exc:
            client.connect()
        err = exc.value
        assert err.code == "connect_failed"
        assert err.details["attempts"] > 1
        assert err.details["deadline_s"] == 0.3
        assert err.details["elapsed_s"] >= 0.3

    def test_policy_sets_socket_timeouts(self, server):
        policy = RetryPolicy(op_timeout_s=12.5, connect_timeout_s=1.25)
        with ServerClient(*server.address, policy=policy) as client:
            assert client._sock.gettimeout() == 12.5
        assert client.timeout == 12.5
        assert client.connect_timeout == 1.25

    def test_transient_refusal_is_retried_to_success(
        self, server, monkeypatch
    ):
        real_connect = socket.create_connection
        failures = [2]  # first two attempts refused, third real

        def flaky(address, **kwargs):
            if failures[0] > 0:
                failures[0] -= 1
                raise ConnectionRefusedError("simulated refusal")
            return real_connect(address, **kwargs)

        monkeypatch.setattr(
            "repro.serve.client.socket.create_connection", flaky
        )
        with ServerClient(
            *server.address, connect_retries=2, backoff_s=0.01
        ) as client:
            assert client.ping()["workers"] == 1
        assert failures[0] == 0

    def test_connect_timeout_bounds_each_attempt(self, monkeypatch):
        seen = []

        def capture(address, **kwargs):
            seen.append(kwargs.get("timeout"))
            raise OSError("down")

        monkeypatch.setattr(
            "repro.serve.client.socket.create_connection", capture
        )
        client = ServerClient(
            "127.0.0.1", 7123, connect_timeout=1.5,
            connect_retries=1, backoff_s=0.0,
        )
        with pytest.raises(ServeError):
            client.connect()
        assert seen == [1.5, 1.5]


class TestHandshake:
    def test_matching_versions_shake_hands(self, server):
        with ServerClient(*server.address) as client:
            info = client.handshake()
        assert info["protocol"] == protocol.PROTOCOL_VERSION

    def test_server_rejects_skewed_client(self, server):
        # a future client announcing a version this server won't speak
        with ServerClient(*server.address) as client:
            with pytest.raises(ServeError) as exc:
                client.request("ping", protocol=99)
        err = exc.value
        assert err.code == "protocol_mismatch"
        assert err.details["server"] == protocol.PROTOCOL_VERSION
        assert err.details["client"] == 99

    def test_unversioned_ping_still_works(self, server):
        # plain pings (no protocol field) are not rejected — the
        # version gate only fires on an explicit mismatch
        with ServerClient(*server.address) as client:
            assert client.ping()["workers"] == 1

    def test_client_rejects_skewed_server(self):
        import socketserver
        import threading

        class SkewHandler(socketserver.StreamRequestHandler):
            def handle(self):
                msg = protocol.read_message(self.rfile)
                if msg:
                    protocol.write_message(
                        self.wfile, protocol.ok_response(protocol=99)
                    )

        with socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), SkewHandler
        ) as skew:
            threading.Thread(target=skew.serve_forever, daemon=True).start()
            with ServerClient(*skew.server_address[:2]) as client:
                with pytest.raises(ServeError) as exc:
                    client.handshake()
            skew.shutdown()
        assert exc.value.code == "protocol_mismatch"
        assert exc.value.details["server"] == 99
        assert exc.value.details["client"] == protocol.PROTOCOL_VERSION
