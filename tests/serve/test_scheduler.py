"""Scheduler policy: fairness, priorities, cache fast path, faults.

These tests drive the scheduler's decision methods synchronously
against a stub pool, so dispatch order and fault handling are pinned
deterministically (no threads, no real workers).  The real-pool path
is covered end-to-end in ``test_server_e2e.py`` / ``test_faults.py``.
"""

import itertools

from repro.orchestrate import ResultCache, cache_key
from repro.scenarios import Session
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import JobQueue, Scheduler


class StubPool:
    """Records submissions; completions are injected by the test."""

    def __init__(self, workers=2):
        self.workers = workers
        self.submitted = []  # (task_id, fn, arg) in dispatch order
        self._ids = itertools.count()

    def submit(self, fn, arg):
        task_id = next(self._ids)
        self.submitted.append((task_id, fn, arg))
        return task_id


def profile_spec(name, trials, seed=0):
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


def submit(queue, spec, priority=0):
    trial_specs = Session().plan(spec)
    keys = [cache_key(t.experiment, t.config, t.seed) for t in trial_specs]
    return queue.submit(spec, trial_specs, keys, priority=priority)


def make_scheduler(workers=2, cache=None, max_retries=1, limit=16):
    queue = JobQueue(limit=limit)
    pool = StubPool(workers=workers)
    sched = Scheduler(queue, pool, cache=cache, max_retries=max_retries)
    return queue, pool, sched


def drain(sched, pool, row=None, rounds=100):
    """Admit/dispatch/complete until the pool goes idle; returns the
    per-task completion order as job ids."""
    order = []
    for _ in range(rounds):
        sched._admit()
        sched._dispatch()
        if not sched._task_key:
            return order
        task_id = min(sched._task_key)  # oldest in-flight finishes first
        owners = sched._owners[sched._task_key[task_id]]
        order.extend(job.id for job, _ in owners)
        sched._handle_event("done", task_id, row or {"metric": 1.0})
    raise AssertionError("scheduler did not drain")


class TestFairness:
    def test_small_job_is_not_starved_by_big_sweep(self):
        queue, pool, sched = make_scheduler(workers=1)
        big = submit(queue, profile_spec("big", trials=8, seed=1))
        small = submit(queue, profile_spec("small", trials=2, seed=2))
        order = drain(sched, pool)
        # round-robin: the 2-trial job's last trial lands well before
        # the 8-trial job's, even though the sweep was submitted first
        assert order.index(small.id, order.index(small.id) + 1) <= 3
        assert small.state == "done" and big.state == "done"

    def test_equal_priority_jobs_interleave(self):
        queue, pool, sched = make_scheduler(workers=1)
        a = submit(queue, profile_spec("a", trials=3, seed=1))
        b = submit(queue, profile_spec("b", trials=3, seed=2))
        order = drain(sched, pool)
        assert order[:4] == [a.id, b.id, a.id, b.id]

    def test_higher_priority_runs_first(self):
        queue, pool, sched = make_scheduler(workers=1)
        low = submit(queue, profile_spec("low", trials=2, seed=1), priority=0)
        high = submit(
            queue, profile_spec("high", trials=2, seed=2), priority=9
        )
        order = drain(sched, pool)
        assert order[:2] == [high.id, high.id]
        assert low.state == "done"

    def test_dispatch_bounded_by_pool_capacity(self):
        queue, pool, sched = make_scheduler(workers=2)
        submit(queue, profile_spec("j", trials=6))
        sched._admit()
        sched._dispatch()
        assert len(pool.submitted) == 2  # never more in flight than workers


class TestCacheFastPath:
    def test_full_hit_job_never_touches_the_pool(self, tmp_path):
        cache = ResultCache(tmp_path)
        queue, pool, sched = make_scheduler(cache=cache)
        job = submit(queue, profile_spec("warm", trials=2))
        for key in job.keys:
            cache.put(key, {"metric": 1.0})
        sched._admit()
        assert job.state == "done"
        assert pool.submitted == []
        assert job.cached == job.total == 2
        assert sched.trials_cached == 2
        assert job.report is not None

    def test_partial_hits_only_dispatch_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        queue, pool, sched = make_scheduler(workers=4, cache=cache)
        job = submit(queue, profile_spec("mixed", trials=3))
        cache.put(job.keys[1], {"metric": 1.0})
        sched._admit()
        sched._dispatch()
        assert len(pool.submitted) == 2
        assert job.cached == 1

    def test_executed_results_are_cached_for_replay(self, tmp_path):
        cache = ResultCache(tmp_path)
        queue, pool, sched = make_scheduler(workers=4, cache=cache)
        job = submit(queue, profile_spec("first", trials=2))
        drain(sched, pool)
        assert job.state == "done"
        replay = submit(queue, profile_spec("first", trials=2))
        sched._admit()
        assert replay.state == "done" and replay.cached == 2


class TestDedup:
    def test_identical_inflight_trials_computed_once(self):
        queue, pool, sched = make_scheduler(workers=4)
        spec = profile_spec("dup", trials=2)
        a = submit(queue, spec)
        b = submit(queue, spec)
        sched._admit()
        sched._dispatch()
        assert len(pool.submitted) == 2  # 2 unique trials, not 4
        drain(sched, pool)
        assert a.state == b.state == "done"
        assert a.rows == b.rows


class TestFaults:
    def test_lost_trial_is_retried_then_done(self):
        queue, pool, sched = make_scheduler(workers=1, max_retries=1)
        job = submit(queue, profile_spec("retry", trials=1))
        sched._admit()
        sched._dispatch()
        (task_id, _fn, _arg) = pool.submitted[0]
        sched._handle_event("lost", task_id, "worker 123 died")
        assert job.state == "running" and job.pending == [0]
        drain(sched, pool)
        assert job.state == "done" and job.retries == {0: 1}

    def test_exhausted_retries_degrade_to_partial(self):
        queue, pool, sched = make_scheduler(workers=1, max_retries=0)
        job = submit(queue, profile_spec("lossy", trials=2))
        sched._admit()
        sched._dispatch()
        (task_id, _fn, _arg) = pool.submitted[0]
        sched._handle_event("lost", task_id, "worker 123 died")
        drain(sched, pool)
        assert job.state == "partial"
        assert list(job.lost) == [0]
        assert "worker 123 died" in job.lost[0]
        assert "lost" in job.error

    def test_raising_trial_fails_the_job(self):
        queue, pool, sched = make_scheduler(workers=1)
        job = submit(queue, profile_spec("bad", trials=1))
        sched._admit()
        sched._dispatch()
        (task_id, _fn, _arg) = pool.submitted[0]
        sched._handle_event("error", task_id, ValueError("boom"))
        assert job.state == "failed"
        assert "ValueError: boom" in job.error

    def test_cancelled_job_ignores_late_completions(self):
        queue, pool, sched = make_scheduler(workers=1)
        job = submit(queue, profile_spec("gone", trials=2))
        sched._admit()
        sched._dispatch()
        queue.cancel(job.id)
        (task_id, _fn, _arg) = pool.submitted[0]
        sched._handle_event("done", task_id, {"metric": 1.0})
        assert job.state == "cancelled"
        assert job.completed == 0


class CancelOnEnter:
    """Condition proxy that fires a callback in the lock-acquisition
    window — the exact interleaving where a cancel races ``_pick``'s
    pending-pop."""

    def __init__(self, cond, fire):
        self._cond = cond
        self._fire = fire

    def __enter__(self):
        self._fire()
        return self._cond.__enter__()

    def __exit__(self, *exc):
        return self._cond.__exit__(*exc)

    def __getattr__(self, name):
        return getattr(self._cond, name)


class TestCancelRacesDispatch:
    """A cancel landing between admission and the first trial dispatch
    must yield a sticky ``cancelled`` — never a running-forever job,
    never a dispatched orphan trial."""

    def test_cancel_between_admission_and_dispatch(self):
        queue, pool, sched = make_scheduler(workers=2)
        job = submit(queue, profile_spec("race", trials=3))
        sched._admit()        # queued -> running
        queue.cancel(job.id)  # lands before any dispatch happened
        sched._dispatch()
        assert pool.submitted == []       # no orphan trial
        assert job.state == "cancelled"   # sticky
        sched._admit()
        sched._dispatch()
        assert pool.submitted == [] and job.state == "cancelled"

    def test_cancel_in_the_pick_window_dispatches_nothing(self):
        # the narrowest race: the scheduler snapshotted this job as a
        # running candidate, then the cancel lands just as _pick goes
        # to pop its first pending index
        queue, pool, sched = make_scheduler(workers=2)
        job = submit(queue, profile_spec("race-window", trials=2))
        sched._admit()
        fired = []

        def fire():
            if not fired:
                fired.append(True)
                queue.cancel(job.id)

        job.cond = CancelOnEnter(job.cond, fire)
        sched._dispatch()
        assert fired, "the race window was never exercised"
        assert pool.submitted == []
        assert job.state == "cancelled"
        assert job.pending == [0, 1]  # nothing was popped for dispatch

    def test_cancel_before_admission_never_runs(self):
        queue, pool, sched = make_scheduler(workers=2)
        job = submit(queue, profile_spec("race-early", trials=2))
        queue.cancel(job.id)
        sched._admit()
        sched._dispatch()
        assert pool.submitted == [] and job.state == "cancelled"


class TestSubsetJobs:
    """Sub-grid jobs (the cluster sharding primitive) finish ``done``
    without a report — only the full grid aggregates meaningfully."""

    def test_subset_job_completes_without_a_report(self):
        queue, pool, sched = make_scheduler(workers=2)
        spec = profile_spec("subset", trials=3)
        trial_specs = Session().plan(spec)
        keys = [
            cache_key(t.experiment, t.config, t.seed) for t in trial_specs
        ]
        job = queue.submit(
            spec, trial_specs[:2], keys[:2], subset=True
        )
        drain(sched, pool)
        assert job.state == "done"
        assert job.report is None
        assert job.completed == 2
        assert job.snapshot()["subset"] is True

    def test_full_job_snapshot_says_not_subset(self):
        queue, pool, sched = make_scheduler(workers=1)
        job = submit(queue, profile_spec("full", trials=1))
        assert job.snapshot()["subset"] is False
