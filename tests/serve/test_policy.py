"""Unit tests for the unified RetryPolicy / Deadline.

The policy is the one object that decides how every client-side
network op times out, backs off, and gives up — these tests pin its
arithmetic (exponential bounds, cap, full jitter), its deadline
semantics (structured ``deadline_exceeded``, remaining-budget
clipping), and the retry runner's interaction between attempt budgets
and wall-clock budgets, all with injected clocks/rngs/sleeps so
nothing here waits on real time.
"""

import random

import pytest

from repro.errors import DeadlineExceededError, ServeError
from repro.serve import DEFAULT_POLICY, Deadline, RetryPolicy


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestBackoff:
    def test_bound_is_exponential_from_base(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_cap_s=100.0)
        assert [policy.backoff_bound(k) for k in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8]
        )

    def test_bound_is_capped(self):
        policy = RetryPolicy(base_backoff_s=0.5, backoff_cap_s=1.0)
        assert policy.backoff_bound(0) == 0.5
        assert policy.backoff_bound(1) == 1.0
        assert policy.backoff_bound(10) == 1.0

    def test_no_jitter_sleeps_the_bound_exactly(self):
        policy = RetryPolicy(jitter=False, base_backoff_s=0.1)
        assert policy.backoff_s(2) == pytest.approx(0.4)

    def test_full_jitter_draws_uniform_below_the_bound(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_cap_s=2.0)
        rng = random.Random(7)
        draws = [policy.backoff_s(3, rng) for _ in range(200)]
        bound = policy.backoff_bound(3)
        assert all(0.0 <= d <= bound for d in draws)
        # genuinely jittered, not a constant
        assert len({round(d, 6) for d in draws}) > 100

    def test_replace_derives_a_variant(self):
        probe = DEFAULT_POLICY.replace(max_attempts=1)
        assert probe.max_attempts == 1
        assert probe.base_backoff_s == DEFAULT_POLICY.base_backoff_s
        assert DEFAULT_POLICY.max_attempts == 3  # original untouched

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(connect_timeout_s=0)


class TestDeadline:
    def test_unbounded_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired
        assert deadline.remaining_s() is None
        deadline.check()  # no raise

    def test_expiry_raises_structured_error(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        clock.advance(1.0)
        deadline.check()
        clock.advance(1.5)
        with pytest.raises(DeadlineExceededError) as exc:
            deadline.check("the op")
        err = exc.value
        assert err.code == "deadline_exceeded"
        assert err.details["budget_s"] == 2.0
        assert err.details["elapsed_s"] == pytest.approx(2.5)
        assert isinstance(err, ServeError)  # protocol-mappable

    def test_cap_clips_a_socket_timeout_to_the_remaining_budget(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.cap(5.0) == 5.0
        clock.advance(8.0)
        assert deadline.cap(5.0) == pytest.approx(2.0)
        assert Deadline(None, clock=clock).cap(5.0) == 5.0
        assert deadline.cap(None) == pytest.approx(2.0)


class TestCallRunner:
    def test_returns_first_success_without_sleeping(self):
        sleeps = []
        result = RetryPolicy().call(lambda: 42, sleep=sleeps.append)
        assert result == 42
        assert sleeps == []

    def test_retries_transient_failures_then_succeeds(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionRefusedError("down")
            return "up"

        policy = RetryPolicy(max_attempts=3, jitter=False, base_backoff_s=0.1)
        assert policy.call(flaky, sleep=sleeps.append) == "up"
        assert sleeps == pytest.approx([0.1, 0.2])

    def test_attempts_exhausted_reraises_the_last_error(self):
        policy = RetryPolicy(max_attempts=2, jitter=False, base_backoff_s=0.0)
        with pytest.raises(ConnectionRefusedError):
            policy.call(
                self._always_refuse, sleep=lambda _d: None
            )

    @staticmethod
    def _always_refuse():
        raise ConnectionRefusedError("down")

    def test_non_transient_errors_propagate_immediately(self):
        calls = {"n": 0}

        def bad_request():
            calls["n"] += 1
            raise ServeError("nope")

        with pytest.raises(ServeError):
            RetryPolicy(max_attempts=5).call(
                bad_request, sleep=lambda _d: None
            )
        assert calls["n"] == 1

    def test_deadline_cuts_retries_short_with_structured_error(self):
        clock = FakeClock()

        def refuse_slowly():
            clock.advance(3.0)
            raise ConnectionRefusedError("down")

        policy = RetryPolicy(
            max_attempts=100, jitter=False, base_backoff_s=0.0,
            deadline_s=5.0,
        )
        with pytest.raises(DeadlineExceededError) as exc:
            policy.call(refuse_slowly, clock=clock, sleep=lambda _d: None)
        err = exc.value
        assert err.details["budget_s"] == 5.0
        # the deadline error chains the last transient failure
        assert isinstance(err.__cause__, ConnectionRefusedError)

    def test_deadline_refuses_a_sleep_that_would_overshoot(self):
        clock = FakeClock()
        slept = []

        def refuse():
            clock.advance(0.9)
            raise ConnectionRefusedError("down")

        policy = RetryPolicy(
            max_attempts=10, jitter=False, base_backoff_s=10.0,
            deadline_s=1.0,
        )
        with pytest.raises(DeadlineExceededError):
            policy.call(refuse, clock=clock, sleep=slept.append)
        assert slept == []  # a 10s backoff never fit the 0.1s remainder


class TestProtocolIntegration:
    def test_deadline_exceeded_is_a_protocol_error_code(self):
        from repro.serve import ERROR_CODES, error_response

        assert "deadline_exceeded" in ERROR_CODES
        response = error_response("deadline_exceeded", "too slow", budget_s=1)
        assert response["error"]["code"] == "deadline_exceeded"

    def test_deadline_exceeded_maps_to_http_504(self):
        from repro.cluster import STATUS_BY_CODE

        assert STATUS_BY_CODE["deadline_exceeded"] == 504

    def test_cluster_reexport_is_the_same_object(self):
        from repro.cluster import RetryPolicy as ClusterRetryPolicy

        assert ClusterRetryPolicy is RetryPolicy
