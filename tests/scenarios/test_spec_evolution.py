"""Scenario-spec evolution: adding TieringSpec must not move old keys.

The tiering block rode into :class:`ScenarioSpec` (and ``tiers`` into
:class:`MachineSpec`) after caches and scenario files already existed
in the wild.  These tests pin the compatibility contract:

* pre-tier scenario JSON files load unchanged and keep the exact
  ``spec_hash`` they had before the field existed (hashes below were
  captured on the pre-tier ``main``),
* the trial cache keys planned for pre-tier scenarios are identical to
  the pre-tier ones, so existing :class:`ResultCache` entries still
  hit,
* specs **with** a tiering block round-trip losslessly and hash
  differently.
"""

import json
from pathlib import Path

import pytest

from repro.machine.spec import (
    ampere_altra_max,
    small_test_machine,
    tiered_test_machine,
)
from repro.orchestrate.cache import cache_key, canonical_config
from repro.scenarios import (
    SamplingSpec,
    ScenarioSpec,
    Session,
    TieringSpec,
    load_scenario,
    sampling_zoo_spec,
    tiering_sweep_spec,
)

ROOT = Path(__file__).resolve().parent.parent.parent

#: spec_hash of every checked-in example scenario, captured before the
#: tiering field existed — these must never drift
PRE_TIER_SPEC_HASHES = {
    "colo_smoke.json":
        "783d0769e2ca27b437677b698e5d690cdb7efe33ac6d45015dc72f224004eb36",
    "fig8_small.json":
        "8a3273d0e0bad05c2f9ec19b5cfa5629b2787ff27168ef3800d70cef2a51194c",
    "quickstart_profile.json":
        "131ebfeb9ff0fe2823dc24ff16c81a3f350eafd2ca6ff8ecdb602fa55d6bc275",
}

#: cache key of each preset's first planned trial, captured pre-tier
PRE_TIER_TRIAL_KEYS = {
    "quickstart":
        "d2c0bae1005f0e2337dc04b8396993711c8a742903f2dfa5c83b4e849bfe4625",
    "colo_interference":
        "5b3365ca44d7c041c4416cfa4f92d190059b13551eb6dd22750f5f056de4b741",
    "fig9":
        "d7622db992e6fb9736c156355ef50f8b7b52b2cd333147e5f3e27df0d5f6182f",
}


class TestPreTierSpecFiles:
    def test_example_files_keep_their_spec_hash(self):
        for name, expected in PRE_TIER_SPEC_HASHES.items():
            spec = ScenarioSpec.from_file(ROOT / "examples" / "scenarios" / name)
            assert spec.spec_hash() == expected, name

    def test_pre_tier_files_serialise_without_tiering_key(self):
        for name in PRE_TIER_SPEC_HASHES:
            spec = ScenarioSpec.from_file(ROOT / "examples" / "scenarios" / name)
            assert spec.tiering is None
            assert "tiering" not in spec.to_dict(), name
            assert '"tiering"' not in spec.to_json(), name

    def test_explicit_null_tiering_loads_as_none(self):
        spec = ScenarioSpec.from_file(
            ROOT / "examples" / "scenarios" / "quickstart_profile.json"
        )
        d = spec.to_dict()
        d["tiering"] = None  # tolerated on input, omitted on output
        again = ScenarioSpec.from_dict(d)
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()


class TestPreTierCacheKeys:
    def test_preset_trial_keys_unchanged(self):
        s = Session()
        for name, expected in PRE_TIER_TRIAL_KEYS.items():
            t = s.plan(load_scenario(name))[0]
            assert cache_key(t.experiment, t.config, t.seed) == expected, name

    def test_flat_machine_canonical_config_has_no_tiers_key(self):
        for machine in (ampere_altra_max(), small_test_machine()):
            assert "tiers" not in canonical_config(machine)

    def test_tiered_machine_keys_differ(self):
        flat = canonical_config(small_test_machine())
        tiered = canonical_config(tiered_test_machine())
        assert "tiers" in tiered
        assert [t["name"] for t in tiered["tiers"]] == [
            "local", "remote", "cxl",
        ]
        assert json.dumps(flat, sort_keys=True) != json.dumps(
            tiered, sort_keys=True
        )


class TestTieringRoundTrip:
    def spec(self):
        return tiering_sweep_spec(
            machine="tiered_test_machine", scale=0.05, n_threads=2
        )

    def test_lossless_json_round_trip(self):
        spec = self.spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_tiering_block_survives_serialisation(self):
        d = json.loads(self.spec().to_json())
        assert d["tiering"]["policies"] == [
            "interleave", "first_touch", "hotness",
        ]
        assert d["tiering"]["far_ratios"] == [0.0, 0.25, 0.5]
        assert d["tiering"]["pilot_period"] == 2048

    def test_tiering_changes_the_hash(self):
        a = self.spec()
        b = ScenarioSpec.from_dict(
            {**a.to_dict(), "tiering": TieringSpec(
                far_ratios=(0.0, 0.75)
            ).to_dict()}
        )
        assert a.spec_hash() != b.spec_hash()

    def test_unknown_tiering_keys_rejected(self):
        d = self.spec().to_dict()
        d["tiering"]["promote_rate"] = 2
        with pytest.raises(Exception, match="unknown keys"):
            ScenarioSpec.from_dict(d)


#: spec_hash of every checked-in example scenario, captured before the
#: sampling block existed — the zoo must not move them either
PRE_ZOO_SPEC_HASHES = {
    **PRE_TIER_SPEC_HASHES,
    "tiering_smoke.json":
        "4f44f425d4cbf79c4cbb7dd9e30043741c6ad99eb836f1727cba4643015f67c5",
}


class TestPreZooSpecFiles:
    """Adding SamplingSpec must not move pre-zoo keys (same contract as
    the tiering rollout above, one field later)."""

    def test_example_files_keep_their_spec_hash(self):
        for name, expected in PRE_ZOO_SPEC_HASHES.items():
            spec = ScenarioSpec.from_file(ROOT / "examples" / "scenarios" / name)
            assert spec.spec_hash() == expected, name

    def test_pre_zoo_files_serialise_without_sampling_key(self):
        for name in PRE_ZOO_SPEC_HASHES:
            spec = ScenarioSpec.from_file(ROOT / "examples" / "scenarios" / name)
            assert spec.sampling is None
            assert "sampling" not in spec.to_dict(), name
            # NMO_MODE's value is the string "sampling"; the *key* is absent
            assert '"sampling":' not in spec.to_json(), name

    def test_explicit_null_sampling_loads_as_none(self):
        spec = ScenarioSpec.from_file(
            ROOT / "examples" / "scenarios" / "quickstart_profile.json"
        )
        d = spec.to_dict()
        d["sampling"] = None  # tolerated on input, omitted on output
        again = ScenarioSpec.from_dict(d)
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_pre_zoo_preset_trial_keys_unchanged(self):
        # the cache keys pinned at the tiering rollout still hold
        s = Session()
        for name, expected in PRE_TIER_TRIAL_KEYS.items():
            t = s.plan(load_scenario(name))[0]
            assert cache_key(t.experiment, t.config, t.seed) == expected, name


class TestSamplingRoundTrip:
    def spec(self):
        return sampling_zoo_spec()

    def test_lossless_json_round_trip(self):
        spec = self.spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_sampling_block_survives_serialisation(self):
        d = json.loads(self.spec().to_json())
        assert d["sampling"]["strategies"] == [
            "periodic", "poisson", "addr_hash", "page_hash", "hybrid",
        ]
        assert d["sampling"]["periods"] == [512, 2048]
        assert d["sampling"]["near_fraction"] == 0.5

    def test_sampling_changes_the_hash(self):
        a = self.spec()
        b = ScenarioSpec.from_dict(
            {**a.to_dict(), "sampling": SamplingSpec(
                strategies=("periodic", "poisson"), periods=(512,)
            ).to_dict()}
        )
        assert a.spec_hash() != b.spec_hash()

    def test_unknown_sampling_keys_rejected(self):
        d = self.spec().to_dict()
        d["sampling"]["oversample"] = 16
        with pytest.raises(Exception, match="unknown keys"):
            ScenarioSpec.from_dict(d)
