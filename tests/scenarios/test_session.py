"""Session: trial planning, the canonical cache-key path, RunReport."""

import json

import pytest

from repro.machine.spec import ampere_altra_max
from repro.orchestrate import ResultCache, cache_key, canonical_config
from repro.scenarios import (
    EXPERIMENT_NAMES,
    RunReport,
    ScenarioSpec,
    Session,
    SweepAxis,
    WorkloadSpec,
    colo_interference_spec,
    colo_scenarios,
    fig8_spec,
    fig9_spec,
    fig10_spec,
    quickstart_spec,
)
from repro.errors import ScenarioError


class TestPlanning:
    def test_period_sweep_grid_order_and_configs(self):
        spec = fig8_spec(
            periods=(1000, 2000), trials=2, workloads=("stream", "bfs"),
            scale=0.1,
        )
        plan = Session().plan(spec)
        assert len(plan) == 2 * 2 * 2  # workloads x periods x trials
        mc = canonical_config(ampere_altra_max())
        # workload-major, period-middle, trial-minor; seeds are trial ids
        assert [
            (t.config["workload"], t.config["period"], t.seed) for t in plan
        ] == [
            ("stream", 1000, 0), ("stream", 1000, 1),
            ("stream", 2000, 0), ("stream", 2000, 1),
            ("bfs", 1000, 0), ("bfs", 1000, 1),
            ("bfs", 2000, 0), ("bfs", 2000, 1),
        ]
        assert plan[0].experiment == "period_sweep"
        assert plan[0].config == {
            "workload": "stream", "period": 1000, "scale": 0.1,
            "n_threads": 32, "machine": mc,
        }

    def test_period_sweep_default_scales(self):
        spec = fig8_spec(periods=(1000,), trials=1, workloads=("cfd",))
        plan = Session().plan(spec)
        assert plan[0].config["scale"] == 1 / 256  # SWEEP_SCALES default

    def test_period_sweep_no_default_scale_raises(self):
        spec = fig8_spec(periods=(1000,), trials=1, workloads=("pagerank",))
        with pytest.raises(ScenarioError, match="no default sweep scale"):
            Session().plan(spec)

    def test_aux_and_thread_sweep_configs_match_legacy_shape(self):
        plan9 = Session().plan(fig9_spec(aux_pages=(4, 16)))
        assert [t.config["aux_pages"] for t in plan9] == [4, 16]
        assert set(plan9[0].config) == {
            "aux_pages", "period", "scale", "n_threads", "machine",
        }  # STREAM default carries no workload key (legacy cache keys)
        plan10 = Session().plan(fig10_spec(thread_counts=(2, 8)))
        assert [t.config["threads"] for t in plan10] == [2, 8]
        assert set(plan10[0].config) == {
            "threads", "period", "scale", "machine",
        }

    def test_non_stream_axis_sweep_adds_workload_key(self):
        spec = ScenarioSpec(
            name="bfs_threads", kind="thread_sweep",
            workloads=(WorkloadSpec("bfs", scale=0.5),),
            sweep=SweepAxis("threads", (2, 4)),
        )
        plan = Session().plan(spec)
        assert all(t.config["workload"] == "bfs" for t in plan)

    def test_colocation_grid_is_the_lineup_sweep(self):
        spec = colo_interference_spec(max_corunners=2, scale=0.002)
        plan = Session().plan(spec)
        assert [tuple(t.config["workloads"]) for t in plan] == \
            colo_scenarios(2)
        assert plan[0].experiment == "colo_interference"
        assert plan[0].config["n_threads"] == 8

    def test_profile_configs_carry_full_settings(self):
        spec = quickstart_spec(n_threads=2, scale=0.05, trials=2)
        plan = Session().plan(spec)
        assert len(plan) == 2
        assert [t.seed for t in plan] == [0, 1]
        assert plan[0].config["settings"]["NMO_PERIOD"] == "4096"
        assert plan[0].experiment == "profile"

    def test_experiment_names_cover_all_kinds(self):
        from repro.scenarios import KINDS

        assert set(EXPERIMENT_NAMES) == set(KINDS)


class TestPinnedCacheKeys:
    """The canonical cache-key path, pinned against accidental drift.

    If one of these fails, every user's on-disk cache silently
    invalidates — change them only on purpose.
    """

    def test_period_sweep_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = fig8_spec(
            periods=(2048,), trials=1, workloads=("bfs",), scale=0.2
        )
        Session(cache=cache).run(spec)
        expected = cache_key(
            "period_sweep",
            {
                "workload": "bfs", "period": 2048, "scale": 0.2,
                "n_threads": 32,
                "machine": canonical_config(ampere_altra_max()),
            },
            seed=0,
        )
        assert cache.contains(expected)

    def test_colocation_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = colo_interference_spec(max_corunners=1, scale=0.002)
        Session(cache=cache).run(spec)
        expected = cache_key(
            "colo_interference",
            {
                "workloads": ["stream"], "scale": 0.002, "period": 16384,
                "n_threads": 8,
                "machine": canonical_config(ampere_altra_max()),
            },
            seed=0,
        )
        assert cache.contains(expected)


class TestRun:
    def test_profile_report(self):
        spec = quickstart_spec(n_threads=2, scale=0.02, trials=2)
        report = Session().run(spec)
        assert isinstance(report, RunReport)
        (row,) = report.results
        assert row["workload"] == "stream"
        assert row["trials"] == 2
        assert 0.0 <= row["metrics"]["accuracy"] <= 1.0
        assert row["stds"]["accuracy"] >= 0.0
        rendered = report.render()
        assert "Profile:" in rendered
        assert f"sha256:{spec.spec_hash()[:12]}" in rendered

    def test_provenance_and_execution_fields(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = colo_interference_spec(max_corunners=1, scale=0.002)
        report = Session(cache=cache).run(spec)
        p = report.provenance
        assert p["spec_hash"] == spec.spec_hash()
        assert p["machine"] == "ampere_altra_max"
        assert p["scales"] == {"colocation": 0.002}
        assert p["version"]
        e = report.execution
        assert e["total_trials"] == 1 and e["executed"] == 1
        assert e["cache_hits"] == 0 and e["cached"] is True
        # second run: same provenance, all hits
        report2 = Session(cache=ResultCache(tmp_path)).run(spec)
        assert report2.provenance == p
        assert report2.execution["cache_hits"] == 1

    def test_report_json_round_trips_through_json_module(self):
        spec = fig8_spec(
            periods=(2048,), trials=1, workloads=("bfs",), scale=0.2
        )
        report = Session().run(spec)
        d = json.loads(report.to_json())
        assert d["spec"] == spec.to_dict()
        pts = d["results"]["bfs"]
        assert pts[0]["period"] == 2048
        assert isinstance(pts[0]["samples_trials"], list)

    def test_dump_writes_file(self, tmp_path):
        spec = colo_interference_spec(max_corunners=1, scale=0.002)
        report = Session().run(spec)
        out = report.dump(tmp_path / "r.json")
        assert json.loads(out.read_text())["provenance"]["kind"] == "colocation"

    def test_exhibit_name_with_other_kind_renders_by_kind(self):
        # a custom profile scenario may reuse an exhibit name; rendering
        # must dispatch on kind, not crash in the exhibit's renderer
        spec = ScenarioSpec(
            name="fig7", kind="profile",
            workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        )
        rendered = Session().run(spec).render()
        assert "Profile:" in rendered

    def test_custom_machine_marks_provenance(self):
        from repro.machine.spec import small_test_machine

        spec = quickstart_spec(n_threads=2, scale=0.2)
        report = Session(machine=small_test_machine()).run(spec)
        assert report.provenance["machine"] == "custom:test-arm"

    def test_parallel_run_byte_identical_to_serial(self):
        spec = fig8_spec(
            periods=(2048, 8192), trials=2, workloads=("bfs",), scale=0.2
        )
        serial = Session(workers=1).run(spec).results
        parallel = Session(workers=2).run(spec).results
        assert serial == parallel
