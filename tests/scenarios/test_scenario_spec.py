"""ScenarioSpec: validation, JSON round-trip, hashing, presets."""

import json

import pytest

from repro.errors import ScenarioError, WorkloadError
from repro.nmo.env import NmoMode, NmoSettings
from repro.scenarios import (
    SCENARIO_PRESETS,
    ColocationSpec,
    ScenarioSpec,
    SweepAxis,
    WorkloadSpec,
    colo_interference_spec,
    fig7_spec,
    fig8_spec,
    fig9_spec,
    fig10_spec,
    load_scenario,
    named_scenario,
    quickstart_spec,
    scenario_names,
)

ALL_PRESETS = [
    fig7_spec(), fig8_spec(), fig9_spec(), fig10_spec(),
    colo_interference_spec(), quickstart_spec(),
]


class TestJsonRoundTrip:
    @pytest.mark.parametrize("spec", ALL_PRESETS, ids=lambda s: s.name)
    def test_every_preset_round_trips(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("spec", ALL_PRESETS, ids=lambda s: s.name)
    def test_hash_stable_across_round_trip(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()).spec_hash() == \
            spec.spec_hash()

    def test_workload_kwargs_round_trip(self):
        spec = ScenarioSpec(
            name="custom",
            kind="profile",
            workloads=(
                WorkloadSpec("stream", n_threads=2, scale=0.5,
                             kwargs={"iterations": 3}),
            ),
        )
        rt = ScenarioSpec.from_json(spec.to_json())
        assert rt == spec
        assert rt.workloads[0].kwargs == {"iterations": 3}

    def test_settings_survive_via_table1_env(self):
        spec = ScenarioSpec(
            name="custom",
            kind="profile",
            workloads=(WorkloadSpec("stream"),),
            settings=NmoSettings(
                enable=True, mode=NmoMode.SAMPLING, period=777,
                auxbufsize_mib=2, track_rss=True,
            ),
        )
        rt = ScenarioSpec.from_json(spec.to_json())
        assert rt.settings == spec.settings
        assert json.loads(spec.to_json())["settings"]["NMO_PERIOD"] == "777"

    def test_json_is_plain_data(self):
        d = json.loads(colo_interference_spec().to_json())
        assert d["kind"] == "colocation"
        assert d["workloads"] == []
        assert d["colocation"]["max_corunners"] == 4

    def test_hash_changes_with_any_field(self):
        base = fig9_spec()
        assert fig9_spec(period=2048).spec_hash() != base.spec_hash()
        assert fig9_spec(seed=1).spec_hash() != base.spec_hash()
        assert fig9_spec(aux_pages=(2, 4)).spec_hash() != base.spec_hash()


class TestValidation:
    def test_unknown_workload_raises_registry_error(self):
        with pytest.raises(WorkloadError, match="known:"):
            WorkloadSpec("nope")

    def test_unknown_kind(self):
        with pytest.raises(ScenarioError, match="unknown scenario kind"):
            ScenarioSpec(name="x", kind="nope")

    def test_unknown_machine_preset(self):
        with pytest.raises(ScenarioError, match="machine preset"):
            ScenarioSpec(
                name="x", kind="profile",
                workloads=(WorkloadSpec("stream"),), machine="cray",
            )

    def test_unknown_axis_param(self):
        with pytest.raises(ScenarioError, match="unknown sweep axis"):
            SweepAxis("voltage", (1, 2))

    def test_kind_axis_mismatch(self):
        with pytest.raises(ScenarioError, match="sweep over 'period'"):
            ScenarioSpec(
                name="x", kind="period_sweep",
                workloads=(WorkloadSpec("stream"),),
                sweep=SweepAxis("threads", (1, 2)),
            )

    def test_colocation_requires_block_and_no_workloads(self):
        with pytest.raises(ScenarioError, match="colocation block"):
            ScenarioSpec(name="x", kind="colocation")
        with pytest.raises(ScenarioError, match="leave workloads empty"):
            ScenarioSpec(
                name="x", kind="colocation",
                workloads=(WorkloadSpec("stream"),),
                colocation=ColocationSpec(),
            )

    def test_sweep_rejects_settings_it_would_not_honour(self):
        # sweep trials pin the legacy recipe: only NMO_PERIOD is used,
        # so knobs that would be silently dropped must not validate
        with pytest.raises(ScenarioError, match="only NMO_PERIOD"):
            ScenarioSpec(
                name="x", kind="period_sweep",
                workloads=(WorkloadSpec("stream"),),
                settings=NmoSettings(
                    enable=True, mode=NmoMode.SAMPLING, period=1024,
                    auxbufsize_mib=2,
                ),
                sweep=SweepAxis("period", (1024,)),
            )

    def test_colocation_rejects_settings_it_would_not_honour(self):
        with pytest.raises(ScenarioError, match="only NMO_PERIOD"):
            ScenarioSpec(
                name="x", kind="colocation",
                settings=NmoSettings(
                    enable=True, mode=NmoMode.SAMPLING, period=1024,
                    track_rss=True,
                ),
                colocation=ColocationSpec(),
            )

    def test_sweep_rejects_workload_kwargs(self):
        with pytest.raises(ScenarioError, match="kwargs"):
            ScenarioSpec(
                name="x", kind="period_sweep",
                workloads=(
                    WorkloadSpec("stream", kwargs={"iterations": 3}),
                ),
                sweep=SweepAxis("period", (1024,)),
            )

    def test_profile_keeps_full_settings_freedom(self):
        # profile trials honour the whole settings block, so the knobs
        # the sweep kinds reject are fine here
        ScenarioSpec(
            name="x", kind="profile",
            workloads=(WorkloadSpec("stream", kwargs={"iterations": 2}),),
            settings=NmoSettings(
                enable=True, mode=NmoMode.SAMPLING, period=1024,
                auxbufsize_mib=2, track_rss=True,
            ),
        )

    def test_single_workload_sweeps_need_explicit_scale(self):
        with pytest.raises(ScenarioError, match="explicit workload scale"):
            ScenarioSpec(
                name="x", kind="aux_sweep",
                workloads=(WorkloadSpec("stream"),),
                sweep=SweepAxis("aux_pages", (4, 16)),
            )

    def test_unknown_json_keys_rejected(self):
        d = json.loads(fig9_spec().to_json())
        d["frobnicate"] = 1
        with pytest.raises(ScenarioError, match="unknown keys"):
            ScenarioSpec.from_dict(d)

    def test_invalid_json_text(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")

    def test_malformed_values_become_scenario_errors(self):
        # bare TypeError/ValueError from coercion must not escape
        base = json.loads(fig9_spec().to_json())
        bad_values = dict(base, sweep={"param": "aux_pages", "values": 4096})
        with pytest.raises(ScenarioError, match="malformed scenario value"):
            ScenarioSpec.from_dict(bad_values)
        bad_trials = dict(base, trials="three")
        with pytest.raises(ScenarioError, match="malformed scenario value"):
            ScenarioSpec.from_dict(bad_trials)

    def test_thread_sweep_rejects_pinned_n_threads(self):
        # the axis is the thread count; a pinned n_threads would be
        # silently ignored
        with pytest.raises(ScenarioError, match="thread count"):
            ScenarioSpec(
                name="x", kind="thread_sweep",
                workloads=(WorkloadSpec("stream", n_threads=64, scale=1.0),),
                sweep=SweepAxis("threads", (2, 4)),
            )

    def test_empty_period_grid_rejected_cleanly(self):
        with pytest.raises(ScenarioError, match="at least one value"):
            fig8_spec(periods=())

    def test_period_sweep_template_must_match_first_axis_value(self):
        # NMO_PERIOD never reaches a period-sweep trial (the axis does),
        # so a divergent value would hash without running
        with pytest.raises(ScenarioError, match="first axis value"):
            ScenarioSpec(
                name="x", kind="period_sweep",
                workloads=(WorkloadSpec("stream"),),
                settings=NmoSettings(
                    enable=True, mode=NmoMode.SAMPLING, period=8192
                ),
                sweep=SweepAxis("period", (1024, 2048)),
            )

    def test_bad_trials(self):
        with pytest.raises(ScenarioError, match="trials"):
            fig8_spec(trials=0)


class TestPresets:
    def test_registry_names_sorted(self):
        assert scenario_names() == sorted(SCENARIO_PRESETS)

    def test_named_scenario_resolves(self):
        assert named_scenario("fig8") == fig8_spec()

    def test_named_scenario_unknown(self):
        with pytest.raises(ScenarioError, match="known:"):
            named_scenario("fig99")

    def test_load_scenario_from_file(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text(fig9_spec().to_json())
        assert load_scenario(p) == fig9_spec()

    def test_load_scenario_falls_back_to_name(self):
        assert load_scenario("colo_interference") == colo_interference_spec()

    def test_preset_name_wins_over_local_file_or_dir(self, tmp_path,
                                                     monkeypatch):
        # a stray local file or directory named like a preset must not
        # shadow it
        monkeypatch.chdir(tmp_path)
        (tmp_path / "fig8").mkdir()
        (tmp_path / "fig9").write_text("not json")
        assert load_scenario("fig8") == fig8_spec()
        assert load_scenario("fig9") == fig9_spec()

    def test_load_scenario_missing_json_file(self):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario("missing/file.json")
