"""The sampling_accuracy scenario kind: planning, validation, execution."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.orchestrate import ResultCache
from repro.scenarios import (
    SamplingSpec,
    ScenarioSpec,
    Session,
    WorkloadSpec,
    sampling_zoo_spec,
)
from repro.scenarios.presets import _sampling
from repro.scenarios.report import render_results
from repro.spe.strategies import STRATEGY_NAMES

BIAS_COLUMNS = (
    "rank_error", "miss_ratio_error", "dead_zone_count",
    "dead_zone_max_width", "dead_access_fraction", "rate_deviation",
)


def small_zoo(**kw):
    kw.setdefault("strategies", ("periodic", "page_hash"))
    kw.setdefault("periods", (512,))
    return sampling_zoo_spec(**kw)


class TestSamplingSpecValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(
            ScenarioError, match="unknown sampling strategies"
        ):
            SamplingSpec(strategies=("periodic", "bogus"))

    def test_empty_strategies_rejected(self):
        with pytest.raises(ScenarioError):
            SamplingSpec(strategies=())

    def test_duplicate_strategies_rejected(self):
        with pytest.raises(ScenarioError):
            SamplingSpec(strategies=("periodic", "periodic"))

    def test_bad_periods_rejected(self):
        with pytest.raises(ScenarioError):
            SamplingSpec(periods=(0,))
        with pytest.raises(ScenarioError):
            SamplingSpec(periods=(512, 512))

    def test_bad_near_fraction_rejected(self):
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(ScenarioError):
                SamplingSpec(near_fraction=bad)

    def test_kind_requires_sampling_block(self):
        with pytest.raises(ScenarioError, match="sampling"):
            ScenarioSpec(
                name="x",
                kind="sampling_accuracy",
                workloads=(WorkloadSpec("stream", n_threads=2,
                                        scale=1 / 1024),),
                settings=_sampling(512),
            )

    def test_settings_period_must_lead_the_block(self):
        with pytest.raises(ScenarioError, match="first block period"):
            ScenarioSpec(
                name="x",
                kind="sampling_accuracy",
                workloads=(WorkloadSpec("stream", n_threads=2,
                                        scale=1 / 1024),),
                settings=_sampling(4096),
                sampling=SamplingSpec(periods=(512,)),
            )

    def test_other_kinds_reject_a_sampling_block(self):
        from repro.scenarios import quickstart_spec

        base = quickstart_spec()
        with pytest.raises(ScenarioError, match="no sampling block"):
            ScenarioSpec.from_dict(
                {**base.to_dict(),
                 "sampling": SamplingSpec(periods=(4096,)).to_dict()}
            )


class TestPlanning:
    def test_grid_is_strategy_major(self):
        trials = Session().plan(sampling_zoo_spec())
        assert len(trials) == len(STRATEGY_NAMES) * 2
        configs = [t.config for t in trials]
        assert [c["strategy"] for c in configs[:2]] == ["periodic"] * 2
        assert [c["period"] for c in configs[:2]] == [512, 2048]
        assert configs[-1]["strategy"] == "hybrid"

    def test_trial_config_carries_near_fraction(self):
        t = Session().plan(small_zoo(near_fraction=0.25))[0]
        assert t.config["near_fraction"] == 0.25
        assert t.experiment == "sampling_accuracy"
        assert t.seed == 0


class TestExecution:
    @pytest.fixture(scope="class")
    def report(self):
        return Session().run(small_zoo())

    def test_rows_have_bias_columns(self, report):
        rows = report.results
        assert len(rows) == 2
        for row in rows:
            for col in BIAS_COLUMNS + ("strategy", "period", "samples",
                                       "overhead"):
                assert col in row, col

    def test_deterministic_per_seed(self, report):
        again = Session().run(small_zoo())
        assert again.results == report.results

    def test_page_hash_shows_dead_zones_periodic_does_not(self, report):
        by_strategy = {
            r["strategy"]: r for r in report.results
        }
        assert by_strategy["periodic"]["dead_zone_count"] == 0
        assert by_strategy["page_hash"]["dead_zone_count"] > 0
        assert by_strategy["page_hash"]["dead_access_fraction"] > 0

    def test_render_contains_detail_and_ranking(self, report):
        text = report.render()
        assert "strategy bias vs exhaustive ground truth" in text
        assert "strategies ranked by hotness rank error" in text
        assert "periodic" in text and "page_hash" in text

    def test_render_results_kind_dispatch(self, report):
        # an unnamed spec of the same kind falls back to the kind renderer
        spec = small_zoo()
        anon = ScenarioSpec.from_dict({**spec.to_dict(), "name": "my_zoo"})
        text = render_results(anon, report.results)
        assert "rank err" in text

    def test_rerun_hits_cache_fully(self, tmp_path):
        spec = small_zoo()
        cache = ResultCache(tmp_path)
        r1 = Session(cache=cache).run(spec)
        assert r1.execution["cache_hits"] == 0
        r2 = Session(cache=ResultCache(tmp_path)).run(spec)
        assert r2.execution["cache_hits"] == len(r2.results)
        assert r2.results == r1.results

    def test_ranking_deterministic_full_zoo(self):
        # the acceptance gate: the five-strategy zoo ranks
        # deterministically per seed
        rows = Session().run(sampling_zoo_spec()).results
        means = {}
        for row in rows:
            means.setdefault(row["strategy"], []).append(row["rank_error"])
        ranking = sorted(
            means, key=lambda s: (float(np.mean(means[s])), s)
        )
        rows2 = Session().run(sampling_zoo_spec()).results
        means2 = {}
        for row in rows2:
            means2.setdefault(row["strategy"], []).append(row["rank_error"])
        ranking2 = sorted(
            means2, key=lambda s: (float(np.mean(means2[s])), s)
        )
        assert ranking == ranking2
        assert set(ranking) == set(STRATEGY_NAMES)
