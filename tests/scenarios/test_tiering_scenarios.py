"""Tiering scenarios: spec rules, planning, execution, and rendering."""

import pytest

from repro.errors import ScenarioError
from repro.machine.spec import tiered_test_machine
from repro.orchestrate import ResultCache
from repro.scenarios import (
    ScenarioSpec,
    Session,
    TieringSpec,
    WorkloadSpec,
    load_scenario,
    tiering_sweep_spec,
)
from repro.scenarios.trials import EXPERIMENT_NAMES, TRIAL_FNS


def small_spec(**kw):
    args = dict(
        machine="tiered_test_machine", scale=0.02, n_threads=2,
        policies=("interleave", "hotness"), far_ratios=(0.0, 0.5),
    )
    args.update(kw)
    return tiering_sweep_spec(**args)


class TestTieringSpecRules:
    def test_preset_is_valid_and_registered(self):
        spec = load_scenario("tiering_sweep")
        assert spec.kind == "tiering"
        assert spec.machine == "tiered_altra_max"

    def test_needs_tiering_block(self):
        with pytest.raises(ScenarioError, match="tiering block"):
            ScenarioSpec(
                name="x", kind="tiering", machine="tiered_test_machine",
                workloads=(WorkloadSpec("stream", scale=1.0),),
            )

    def test_needs_tiered_machine(self):
        with pytest.raises(ScenarioError, match="tiered machine"):
            small_spec(machine="small_test_machine")

    def test_needs_one_workload_with_scale(self):
        with pytest.raises(ScenarioError, match="exactly one workload"):
            ScenarioSpec(
                name="x", kind="tiering", machine="tiered_test_machine",
                tiering=TieringSpec(),
            )
        with pytest.raises(ScenarioError, match="explicit workload scale"):
            ScenarioSpec(
                name="x", kind="tiering", machine="tiered_test_machine",
                workloads=(WorkloadSpec("stream"),),
                tiering=TieringSpec(),
            )

    def test_other_kinds_reject_tiering_block(self):
        base = load_scenario("quickstart")
        with pytest.raises(ScenarioError, match="tiering"):
            ScenarioSpec.from_dict(
                {**base.to_dict(), "tiering": TieringSpec().to_dict()}
            )
        fig8 = load_scenario("fig8")
        with pytest.raises(ScenarioError, match="tiering"):
            ScenarioSpec.from_dict(
                {**fig8.to_dict(), "tiering": TieringSpec().to_dict()}
            )

    def test_bad_policies_and_ratios(self):
        with pytest.raises(ScenarioError, match="known:"):
            TieringSpec(policies=("teleport",))
        with pytest.raises(ScenarioError, match="far ratios"):
            TieringSpec(far_ratios=(1.5,))
        with pytest.raises(ScenarioError, match="unique"):
            TieringSpec(policies=("hotness", "hotness"))


class TestTieringPlanning:
    def test_grid_is_policy_major(self):
        spec = small_spec()
        plan = Session().plan(spec)
        assert len(plan) == 4
        assert [t.config["policy"] for t in plan] == [
            "interleave", "interleave", "hotness", "hotness",
        ]
        assert [t.config["far_ratio"] for t in plan] == [0.0, 0.5, 0.0, 0.5]
        assert all(t.experiment == "tiering" for t in plan)

    def test_config_carries_tiered_machine(self):
        plan = Session().plan(small_spec())
        assert "tiers" in plan[0].config["machine"]

    def test_registries_cover_tiering(self):
        assert EXPERIMENT_NAMES["tiering"] == "tiering"
        assert "tiering" in TRIAL_FNS


class TestTieringExecution:
    @pytest.fixture(scope="class")
    def report(self):
        return Session().run(small_spec())

    def test_rows_shape(self, report):
        rows = report.results
        assert len(rows) == 4
        for r in rows:
            assert set(r) >= {
                "policy", "far_ratio", "slowdown", "accuracy", "tiers",
            }
            assert len(r["tiers"]) == 3

    def test_ratio_zero_is_all_local_no_slowdown(self, report):
        for r in report.results:
            if r["far_ratio"] == 0.0:
                assert r["slowdown"] == 1.0
                assert r["tiers"][0]["sample_share"] == 1.0
                assert r["tiers"][1]["samples"] == 0

    def test_far_ratio_spreads_samples_and_slows(self, report):
        for r in report.results:
            if r["far_ratio"] == 0.5:
                assert r["slowdown"] > 1.0
                far = r["tiers"][1]["samples"] + r["tiers"][2]["samples"]
                assert far > 0
                assert (
                    r["tiers"][2]["mean_latency"]
                    > r["tiers"][0]["mean_latency"]
                )

    def test_render_has_summary_and_breakdowns(self, report):
        text = report.render()
        assert "Tiering: placement policy vs far-memory ratio" in text
        assert "Tier breakdown: interleave @ far ratio 0.50" in text
        assert "DRAM-CXL" in text
        assert "slowdown vs far-memory ratio" in text

    def test_provenance_scales_resolved(self, report):
        assert report.provenance["scales"] == {"stream": 0.02}

    def test_cached_rerun_is_full_hit(self, tmp_path):
        spec = small_spec(policies=("interleave",), far_ratios=(0.5,))
        cache = ResultCache(tmp_path)
        first = Session(cache=cache).run(spec)
        again = Session(cache=cache).run(spec)
        assert first.execution["executed"] == 1
        assert again.execution["cache_hits"] == again.execution["total_trials"]
        assert again.execution["executed"] == 0
        assert first.render() == again.render()

    def test_flat_machine_override_fails_fast(self):
        from repro.machine.spec import small_test_machine

        spec = small_spec(policies=("interleave",), far_ratios=(0.5,))
        with pytest.raises(ScenarioError, match="no memory tiers"):
            Session(machine=small_test_machine()).run(spec)

    def test_deterministic_across_sessions(self):
        spec = small_spec(policies=("hotness",), far_ratios=(0.5,))
        a = Session().run(spec)
        b = Session().run(spec)
        assert a.results == b.results


class TestTieringCli:
    def test_run_preset_by_name(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.__main__ import main

        # a quick spec file on the tiny tiered machine
        spec = small_spec(policies=("first_touch",), far_ratios=(0.0, 0.5))
        path = tmp_path / "tiering.json"
        path.write_text(spec.to_json())
        report_path = tmp_path / "report.json"
        rc = main(["run", str(path), "--report-json", str(report_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Tiering: placement policy vs far-memory ratio" in out
        assert "first_touch" in out
        dumped = json.loads(report_path.read_text())
        assert dumped["provenance"]["kind"] == "tiering"
        assert len(dumped["results"]) == 2

    def test_scenarios_list_names_tiering(self, capsys):
        from repro.__main__ import main

        assert main(["scenarios", "list"]) == 0
        assert "tiering_sweep" in capsys.readouterr().out
