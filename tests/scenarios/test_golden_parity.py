"""Golden parity: legacy entry points == their ScenarioSpec equivalents.

Each legacy ``evalharness`` figure function and its declarative spec
must produce

* equal in-memory results,
* identical rendered tables,
* **byte-identical cached payloads under the same keys** — two runs
  against two cache directories must leave the same set of entry
  files with the same bytes.

That last property is what lets a fleet mix legacy callers and
``repro run`` invocations against one shared cache.
"""

import pytest

from repro.evalharness.experiments import (
    colo_interference,
    fig7_samples_vs_period,
    fig8_accuracy_overhead_collisions,
    fig9_aux_buffer,
    fig10_fig11_threads,
)
from repro.evalharness.report import (
    render_colo,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10_fig11,
)
from repro.orchestrate import ResultCache
from repro.scenarios import (
    Session,
    colo_interference_spec,
    fig7_spec,
    fig8_spec,
    fig9_spec,
    fig10_spec,
)


def cache_blobs(cache: ResultCache) -> dict[str, bytes]:
    """Map entry filename (the key) -> raw pickled payload bytes."""
    return {p.name: p.read_bytes() for p in cache.entries()}


def assert_cache_parity(a: ResultCache, b: ResultCache) -> None:
    blobs_a, blobs_b = cache_blobs(a), cache_blobs(b)
    assert blobs_a.keys() == blobs_b.keys()
    assert blobs_a  # something was actually cached
    for name in blobs_a:
        assert blobs_a[name] == blobs_b[name], f"payload differs: {name}"


class TestFig7Parity:
    def test_results_render_and_cache(self, tmp_path):
        kwargs = dict(periods=(2048, 8192), trials=2, workloads=("bfs",),
                      scale=0.2)
        ca, cb = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        legacy = fig7_samples_vs_period(cache=ca, **kwargs)
        spec = Session(cache=cb).run(fig7_spec(**kwargs)).results
        assert legacy == spec
        assert render_fig7(legacy) == render_fig7(spec)
        assert_cache_parity(ca, cb)


class TestFig8Parity:
    def test_results_render_and_cache(self, tmp_path):
        kwargs = dict(periods=(2048, 8192), trials=2, workloads=("bfs",),
                      scale=0.2)
        ca, cb = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        legacy = fig8_accuracy_overhead_collisions(cache=ca, **kwargs)
        spec = Session(cache=cb).run(fig8_spec(**kwargs)).results
        assert legacy == spec
        assert render_fig8(legacy) == render_fig8(spec)
        assert_cache_parity(ca, cb)


class TestFig9Parity:
    def test_results_render_and_cache(self, tmp_path):
        kwargs = dict(aux_pages=(4, 16), period=2048, scale=0.2, n_threads=2)
        ca, cb = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        legacy = fig9_aux_buffer(cache=ca, **kwargs)
        spec = Session(cache=cb).run(fig9_spec(**kwargs)).results
        assert legacy == spec
        assert render_fig9(legacy) == render_fig9(spec)
        assert_cache_parity(ca, cb)


class TestFig10Parity:
    def test_results_render_and_cache(self, tmp_path):
        kwargs = dict(thread_counts=(2, 8), scale=0.25)
        ca, cb = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        legacy = fig10_fig11_threads(cache=ca, **kwargs)
        spec = Session(cache=cb).run(fig10_spec(**kwargs)).results
        assert legacy == spec
        assert render_fig10_fig11(legacy) == render_fig10_fig11(spec)
        assert_cache_parity(ca, cb)


class TestColoParity:
    def test_results_render_and_cache(self, tmp_path):
        kwargs = dict(max_corunners=2, scale=0.002, period=65536, n_threads=4)
        ca, cb = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        legacy = colo_interference(cache=ca, **kwargs)
        spec = Session(cache=cb).run(colo_interference_spec(**kwargs)).results
        assert legacy == spec
        assert render_colo(legacy) == render_colo(spec)
        assert_cache_parity(ca, cb)


class TestSharedCacheAcrossPaths:
    def test_spec_run_hits_entries_stored_by_legacy_path(self, tmp_path):
        # one cache directory, legacy writes, the Session run must be a
        # full cache hit (zero executions)
        cache = ResultCache(tmp_path)
        kwargs = dict(periods=(2048,), trials=2, workloads=("bfs",), scale=0.2)
        fig8_accuracy_overhead_collisions(cache=cache, **kwargs)
        session = Session(cache=ResultCache(tmp_path))
        report = session.run(fig8_spec(**kwargs))
        assert report.execution["cache_hits"] == report.execution["total_trials"]
        assert report.execution["executed"] == 0


@pytest.mark.parametrize(
    "legacy, spec_factory",
    [
        (fig7_samples_vs_period, fig7_spec),
        (fig8_accuracy_overhead_collisions, fig8_spec),
        (fig9_aux_buffer, fig9_spec),
        (fig10_fig11_threads, fig10_spec),
        (colo_interference, colo_interference_spec),
    ],
    ids=["fig7", "fig8", "fig9", "fig10", "colo"],
)
def test_legacy_defaults_match_spec_defaults(legacy, spec_factory):
    """Shim defaults and preset defaults must describe the same grid."""
    import inspect

    legacy_params = inspect.signature(legacy).parameters
    spec_params = inspect.signature(spec_factory).parameters
    for name, p in spec_params.items():
        if name in legacy_params:
            assert legacy_params[name].default == p.default, name
