"""Pipeline timing model tests."""

import numpy as np
import pytest

from repro.cpu.ops import OpKind
from repro.cpu.pipeline import PipelineModel, loaded_dram_scale
from repro.errors import MachineError
from repro.machine.hierarchy import MemLevel


class TestOpLatencies:
    def test_levels_required_for_mem(self, pipeline):
        with pytest.raises(MachineError):
            pipeline.op_latencies(np.array([OpKind.LOAD], np.uint8))

    def test_dram_slower_than_l1(self, pipeline):
        kinds = np.array([OpKind.LOAD, OpKind.LOAD], np.uint8)
        levels = np.array([int(MemLevel.L1), int(MemLevel.DRAM)], np.uint8)
        lat = pipeline.op_latencies(kinds, levels)
        assert lat[1] > lat[0] * 10

    def test_non_mem_cheap(self, pipeline):
        kinds = np.array([OpKind.OTHER, OpKind.FLOP, OpKind.BRANCH], np.uint8)
        lat = pipeline.op_latencies(kinds, np.zeros(3, np.uint8))
        assert (lat <= 4).all()

    def test_jitter_bounds(self, pipeline, rng):
        kinds = np.full(1000, OpKind.LOAD, np.uint8)
        levels = np.full(1000, int(MemLevel.DRAM), np.uint8)
        base = pipeline.op_latencies(kinds, levels)[0]
        lat = pipeline.op_latencies(kinds, levels, rng=rng)
        assert (lat >= base * (1 - pipeline.jitter) - 1e-9).all()
        assert (lat <= base * (1 + pipeline.jitter) + 1e-9).all()

    def test_dram_scale(self, pipeline):
        kinds = np.array([OpKind.LOAD], np.uint8)
        levels = np.array([int(MemLevel.DRAM)], np.uint8)
        l1 = pipeline.op_latencies(kinds, levels, dram_scale=1.0)[0]
        l3 = pipeline.op_latencies(kinds, levels, dram_scale=3.0)[0]
        assert l3 > 2 * l1

    def test_dram_scale_does_not_affect_sram_levels(self, pipeline):
        kinds = np.array([OpKind.LOAD], np.uint8)
        levels = np.array([int(MemLevel.L2)], np.uint8)
        a = pipeline.op_latencies(kinds, levels, dram_scale=1.0)[0]
        b = pipeline.op_latencies(kinds, levels, dram_scale=5.0)[0]
        assert a == b

    def test_bad_dram_scale(self, pipeline):
        with pytest.raises(MachineError):
            pipeline.op_latencies(np.zeros(1, np.uint8), dram_scale=0.5)

    def test_shape_mismatch(self, pipeline):
        with pytest.raises(MachineError):
            pipeline.op_latencies(
                np.array([OpKind.LOAD], np.uint8), np.zeros(2, np.uint8)
            )


class TestAggregateTiming:
    def test_frontend_bound(self, pipeline):
        cyc = pipeline.chunk_cycles(1000, 0, 0.0)
        assert cyc == pytest.approx(1000 / pipeline.dispatch_width)

    def test_memory_stalls_add(self, pipeline):
        base = pipeline.chunk_cycles(1000, 0, 0.0)
        memy = pipeline.chunk_cycles(1000, 500, 100.0, mlp=4.0)
        assert memy == pytest.approx(base + 500 * 100 / 4)

    def test_ipc(self, pipeline):
        assert pipeline.effective_ipc(1000, 0, 0.0) == pytest.approx(
            pipeline.dispatch_width
        )

    def test_invalid_counts(self, pipeline):
        with pytest.raises(MachineError):
            pipeline.chunk_cycles(10, 20, 1.0)
        with pytest.raises(MachineError):
            pipeline.chunk_cycles(10, 5, 1.0, mlp=0)


class TestLoadedDramScale:
    def test_unloaded(self):
        assert loaded_dram_scale(0.0) == 1.0

    def test_monotone(self):
        xs = [loaded_dram_scale(u) for u in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert xs == sorted(xs)

    def test_quadratic_under_roofline(self):
        assert loaded_dram_scale(1.0, factor=2.0, over_factor=0.0) == pytest.approx(3.0)

    def test_overload_linear(self):
        s1 = loaded_dram_scale(1.0, factor=1.0, over_factor=0.5)
        s3 = loaded_dram_scale(3.0, factor=1.0, over_factor=0.5)
        assert s3 - s1 == pytest.approx(1.0)

    def test_capped(self):
        assert loaded_dram_scale(1e9) == loaded_dram_scale(16.0)

    def test_negative_factor_rejected(self):
        with pytest.raises(MachineError):
            loaded_dram_scale(1.0, factor=-1)
