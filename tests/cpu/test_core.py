"""Trace-driven core execution tests."""

import numpy as np
import pytest

from repro.cpu.core import Core
from repro.cpu.ops import OpChunk, OpKind, interleave
from repro.cpu.pipeline import PipelineModel
from repro.errors import MachineError
from repro.machine.hierarchy import MemoryHierarchy


@pytest.fixture
def core(tiny):
    hier = MemoryHierarchy(tiny, n_cores=2)
    return Core(0, hier, PipelineModel(tiny))


class TestExecute:
    def test_advances_clock(self, core):
        chunk = interleave(np.arange(64, dtype=np.uint64) * 64, False, 1)
        res = core.execute(chunk)
        assert core.cycle > 0
        assert res.total_cycles == pytest.approx(core.cycle)

    def test_retire_counts(self, core):
        chunk = interleave(np.arange(10, dtype=np.uint64) * 8, False, 1)
        core.execute(chunk)
        assert core.retired_ops == 20

    def test_levels_populated_for_mem_only(self, core):
        chunk = interleave(np.arange(8, dtype=np.uint64) * 64, False, 1)
        res = core.execute(chunk)
        mem = chunk.is_mem()
        assert (res.levels[mem] > 0).all()
        assert (res.levels[~mem] == 0).all()

    def test_retire_after_issue(self, core):
        chunk = interleave(np.arange(16, dtype=np.uint64) * 64, False, 1)
        res = core.execute(chunk)
        issue = np.arange(len(chunk)) / core.pipeline.dispatch_width
        assert (res.retire_cycles >= issue - 1e-9).all()

    def test_warm_rerun_is_faster(self, tiny):
        hier = MemoryHierarchy(tiny, n_cores=1)
        pipe = PipelineModel(tiny)
        addrs = (np.arange(200, dtype=np.uint64) % 8) * 64  # tiny working set
        chunk = interleave(addrs, False, 0)
        cold = Core(0, hier, pipe)
        r1 = cold.execute(chunk)
        r2 = cold.execute(chunk)
        assert r2.total_cycles < r1.total_cycles

    def test_level_histogram(self, core):
        chunk = interleave(np.arange(32, dtype=np.uint64) * 64, False, 0)
        res = core.execute(chunk)
        hist = res.level_histogram()
        assert sum(hist.values()) == res.n_mem

    def test_empty_chunk(self, core):
        res = core.execute(
            OpChunk(kinds=np.zeros(0, np.uint8), addrs=np.zeros(0, np.uint64))
        )
        assert res.n_ops == 0

    def test_idle(self, core):
        core.idle(100.0)
        assert core.cycle == 100.0
        with pytest.raises(MachineError):
            core.idle(-1)

    def test_bad_core_id(self, tiny):
        hier = MemoryHierarchy(tiny, n_cores=1)
        with pytest.raises(MachineError):
            Core(5, hier, PipelineModel(tiny))
