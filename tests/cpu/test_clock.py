"""Clock / timescale tests."""

import numpy as np
import pytest

from repro.cpu.clock import (
    DEFAULT_CNTFRQ_HZ,
    GenericTimer,
    VirtualClock,
    calc_mult_shift,
    ticks_to_ns,
)
from repro.errors import MachineError


class TestMultShift:
    def test_conversion_accuracy(self):
        mult, shift = calc_mult_shift(DEFAULT_CNTFRQ_HZ)
        one_second_ticks = DEFAULT_CNTFRQ_HZ
        ns = (one_second_ticks * mult) >> shift
        assert ns == pytest.approx(1_000_000_000, rel=1e-6)

    def test_various_frequencies(self):
        for hz in (1e6, 25e6, 100e6, 1e9):
            mult, shift = calc_mult_shift(hz)
            ns = (int(hz) * mult) >> shift
            assert ns == pytest.approx(1e9, rel=1e-5)

    def test_mult_fits_32_bits_for_long_runs(self):
        mult, _ = calc_mult_shift(25e6, maxsec=600)
        assert mult < (1 << 32)

    def test_bad_frequency(self):
        with pytest.raises(MachineError):
            calc_mult_shift(0)


class TestTicksToNs:
    def test_scalar(self):
        assert ticks_to_ns(100, mult=40 << 8, shift=8) == 4000

    def test_zero_offset(self):
        assert ticks_to_ns(0, 123, 4, zero=77) == 77

    def test_vector_matches_scalar(self):
        mult, shift = calc_mult_shift(25e6)
        ticks = np.array([0, 1, 25_000_000, 10**12], dtype=np.uint64)
        vec = ticks_to_ns(ticks, mult, shift)
        for t, v in zip(ticks.tolist(), np.asarray(vec).tolist()):
            assert ticks_to_ns(int(t), mult, shift) == v

    def test_no_uint64_overflow_on_large_counters(self):
        mult, shift = calc_mult_shift(25e6)
        # ~11 years of ticks: naive uint64 multiply would overflow
        big = np.array([2**53], dtype=np.uint64)
        out = np.asarray(ticks_to_ns(big, mult, shift))
        assert out[0] == (2**53 * mult) >> shift


class TestGenericTimer:
    def test_cycles_to_ticks(self):
        t = GenericTimer(core_hz=3e9, cnt_hz=25e6)
        assert int(t.cycles_to_ticks(3e9)) == 25_000_000

    def test_roundtrip(self):
        t = GenericTimer(core_hz=3e9, cnt_hz=25e6)
        cycles = 1.5e9
        back = t.ticks_to_cycles(t.cycles_to_ticks(cycles))
        assert back == pytest.approx(cycles, rel=1e-6)

    def test_seconds(self):
        t = GenericTimer(core_hz=3e9)
        assert float(t.ticks_to_seconds(DEFAULT_CNTFRQ_HZ)) == pytest.approx(1.0)
        assert int(t.seconds_to_ticks(2.0)) == 2 * DEFAULT_CNTFRQ_HZ

    def test_monotone(self):
        t = GenericTimer(core_hz=3e9)
        c = np.linspace(0, 1e9, 1000)
        ticks = t.cycles_to_ticks(c)
        assert (np.diff(ticks.astype(np.int64)) >= 0).all()

    def test_bad_frequency(self):
        with pytest.raises(MachineError):
            GenericTimer(core_hz=0)


class TestVirtualClock:
    def test_advance(self):
        c = VirtualClock(1e9)
        c.advance_cycles(5e8)
        assert c.seconds == pytest.approx(0.5)
        c.advance_seconds(0.5)
        assert c.cycles == pytest.approx(1e9)
        assert c.nanoseconds == pytest.approx(1e9)

    def test_no_backwards(self):
        c = VirtualClock(1e9)
        with pytest.raises(MachineError):
            c.advance_cycles(-1)
