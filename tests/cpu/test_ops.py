"""Op stream tests."""

import numpy as np
import pytest

from repro.cpu.ops import MEM_KINDS, OpChunk, OpKind, interleave
from repro.errors import WorkloadError


class TestOpChunk:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            OpChunk(kinds=np.zeros(3, np.uint8), addrs=np.zeros(2, np.uint64))

    def test_mem_mask(self):
        c = OpChunk(
            kinds=np.array([0, 1, 2, 3, 4], np.uint8),
            addrs=np.arange(5, dtype=np.uint64),
        )
        assert c.is_mem().tolist() == [False, True, True, False, False]
        assert c.mem_addrs().tolist() == [1, 2]

    def test_counts(self):
        c = OpChunk(
            kinds=np.array([1, 1, 2, 4], np.uint8), addrs=np.zeros(4, np.uint64)
        )
        assert c.count(OpKind.LOAD) == 2
        assert c.counts()[OpKind.STORE] == 1
        assert c.counts()[OpKind.FLOP] == 1

    def test_slice_preserves_global_indices(self):
        c = OpChunk(
            kinds=np.zeros(10, np.uint8), addrs=np.zeros(10, np.uint64),
            start_index=100,
        )
        s = c.slice(4, 7)
        assert s.start_index == 104
        assert len(s) == 3

    def test_bad_slice(self):
        c = OpChunk(kinds=np.zeros(5, np.uint8), addrs=np.zeros(5, np.uint64))
        with pytest.raises(WorkloadError):
            c.slice(3, 2)

    def test_concat_contiguous(self):
        a = OpChunk(kinds=np.zeros(3, np.uint8), addrs=np.zeros(3, np.uint64))
        b = OpChunk(
            kinds=np.ones(2, np.uint8), addrs=np.zeros(2, np.uint64), start_index=3
        )
        c = OpChunk.concat([a, b])
        assert len(c) == 5
        assert c.end_index == 5

    def test_concat_gap_rejected(self):
        a = OpChunk(kinds=np.zeros(3, np.uint8), addrs=np.zeros(3, np.uint64))
        b = OpChunk(
            kinds=np.zeros(2, np.uint8), addrs=np.zeros(2, np.uint64), start_index=5
        )
        with pytest.raises(WorkloadError):
            OpChunk.concat([a, b])


class TestInterleave:
    def test_group_structure(self):
        c = interleave(np.arange(4, dtype=np.uint64) * 8, False, ops_between=2)
        assert len(c) == 12
        assert c.count(OpKind.LOAD) == 4

    def test_store_mask(self):
        c = interleave(
            np.arange(4, dtype=np.uint64),
            np.array([True, False, True, False]),
            ops_between=0,
        )
        assert c.count(OpKind.STORE) == 2
        assert c.count(OpKind.LOAD) == 2

    def test_flop_share(self):
        c = interleave(
            np.arange(100, dtype=np.uint64), False, ops_between=3, flop_share=0.5
        )
        flops = c.count(OpKind.FLOP)
        assert flops == pytest.approx(150, abs=2)

    def test_mem_addrs_preserved(self):
        addrs = np.array([10, 20, 30], dtype=np.uint64)
        c = interleave(addrs, False, ops_between=1)
        assert (c.mem_addrs() == addrs).all()

    def test_mem_kinds_constant(self):
        assert OpKind.LOAD in MEM_KINDS and OpKind.STORE in MEM_KINDS

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            interleave(np.zeros(1, np.uint64), False, ops_between=-1)
        with pytest.raises(WorkloadError):
            interleave(np.zeros(1, np.uint64), False, 1, flop_share=2.0)
