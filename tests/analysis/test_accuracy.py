"""Accuracy/overhead metric tests (Eq. 1 and trial aggregation)."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    aggregate_trials,
    estimated_total_accesses,
    linearity_check,
    sampling_accuracy,
    time_overhead,
)
from repro.errors import ReproError


class TestEq1:
    def test_exact(self):
        assert sampling_accuracy(1_000_000, 100, 10_000) == 1.0

    def test_paper_interpretation(self):
        """'if the sampling period is 10,000 then 1 of 10,000 operations
        will be sampled' — samples x period estimates the total."""
        assert estimated_total_accesses(100, 10_000) == 1_000_000

    def test_absolute_value_symmetric(self):
        lo = sampling_accuracy(1000, 9, 100)
        hi = sampling_accuracy(1000, 11, 100)
        assert lo == pytest.approx(hi)

    def test_validation(self):
        with pytest.raises(ReproError):
            sampling_accuracy(0, 1, 1)
        with pytest.raises(ReproError):
            estimated_total_accesses(-1, 100)


class TestOverhead:
    def test_ten_percent(self):
        assert time_overhead(10.0, 11.0) == pytest.approx(0.10)

    def test_zero(self):
        assert time_overhead(5.0, 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            time_overhead(0.0, 1.0)
        with pytest.raises(ReproError):
            time_overhead(1.0, -1.0)


class TestTrials:
    def test_mean_std(self):
        s = aggregate_trials([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert (s.minimum, s.maximum, s.n_trials) == (1.0, 3.0, 3)

    def test_single_trial_zero_std(self):
        assert aggregate_trials([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            aggregate_trials([])


class TestLinearity:
    def test_ideal_scaling_slope_one(self):
        periods = np.array([512, 1024, 2048, 4096, 8192])
        counts = 1e9 / periods
        slope, r2 = linearity_check(periods, counts)
        assert slope == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_collision_losses_bend_the_line(self):
        periods = np.array([512, 1024, 2048, 4096, 8192], dtype=float)
        counts = 1e9 / periods
        counts[0] *= 0.5  # heavy drops at the smallest period
        slope, r2 = linearity_check(periods, counts)
        assert r2 < 0.999

    def test_needs_three_points(self):
        with pytest.raises(ReproError):
            linearity_check(np.array([1, 2]), np.array([1, 2]))

    def test_positive_required(self):
        with pytest.raises(ReproError):
            linearity_check(np.array([1, 2, 3]), np.array([1, 0, 3]))
