"""Unit tests for the sampling-bias metrics (repro.analysis.sampling)."""

import numpy as np
import pytest

from repro.analysis.sampling import (
    SamplingBias,
    align_or_raise,
    dead_zones,
    exhaustive_page_hotness,
    hotness_rank_error,
    miss_ratio_error,
    sample_rate_deviation,
    score_sampling,
)
from repro.errors import AnalysisError
from repro.machine.tiers import page_hotness
from repro.workloads.stream import StreamWorkload


class TestAlignOrRaise:
    def test_casts_to_float64(self):
        t, e = align_or_raise(np.arange(3), np.ones(3, np.int64))
        assert t.dtype == e.dtype == np.float64

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(AnalysisError, match="equal-length 1-D"):
            align_or_raise(np.ones(3), np.ones(4))

    def test_rejects_2d(self):
        with pytest.raises(AnalysisError, match="equal-length 1-D"):
            align_or_raise(np.ones((2, 2)), np.ones((2, 2)))


class TestHotnessRankError:
    def test_identical_ranking_scores_zero(self):
        t = np.array([50.0, 10.0, 5.0, 1.0])
        assert hotness_rank_error(t, t * 3) == 0.0

    def test_reversal_scores_max(self):
        n = 10
        t = np.arange(n, 0, -1, dtype=float)
        # footrule of a full reversal is n^2/2 for even n: error == 1
        assert hotness_rank_error(t, t[::-1].copy()) == 1.0

    def test_cold_pages_are_ignored(self):
        t = np.array([9.0, 3.0, 0.0, 0.0])
        e_good = np.array([2.0, 1.0, 99.0, 0.0])  # cold page misranked
        assert hotness_rank_error(t, e_good) == 0.0

    def test_single_hot_page_scores_zero(self):
        assert hotness_rank_error(np.array([5.0, 0.0]),
                                  np.array([0.0, 7.0])) == 0.0

    def test_partial_error_between_bounds(self):
        t = np.array([4.0, 3.0, 2.0, 1.0])
        e = np.array([3.0, 4.0, 2.0, 1.0])  # swap the top two
        err = hotness_rank_error(t, e)
        assert 0.0 < err < 1.0


class TestMissRatioError:
    def test_oracle_estimate_scores_zero(self):
        t = np.array([100.0, 10.0, 1.0, 0.0])
        assert miss_ratio_error(t, t) == 0.0

    def test_worst_ranking_charges_lost_traffic(self):
        t = np.array([100.0, 100.0, 1.0, 1.0])
        e = np.array([0.0, 0.0, 5.0, 5.0])  # puts cold pages near
        err = miss_ratio_error(t, e, near_fraction=0.5)
        # oracle near tier captures 200/202; estimate captures 2/202
        assert err == pytest.approx(198 / 202)

    def test_never_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            t = rng.uniform(0, 100, 16)
            e = rng.uniform(0, 100, 16)
            assert miss_ratio_error(t, e) >= 0.0

    def test_empty_and_zero_truth(self):
        assert miss_ratio_error(np.zeros(0), np.zeros(0)) == 0.0
        assert miss_ratio_error(np.zeros(4), np.ones(4)) == 0.0

    def test_bad_near_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(AnalysisError, match="near_fraction"):
                miss_ratio_error(np.ones(4), np.ones(4), near_fraction=bad)


class TestDeadZones:
    def test_no_dead_pages(self):
        t = np.array([5.0, 3.0, 1.0])
        assert dead_zones(t, t) == (0, 0, 0.0)

    def test_run_lengths_counted_exactly(self):
        t = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        e = np.array([1.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0])
        count, width, frac = dead_zones(t, e)
        assert count == 2            # pages 1-2 and 4-6
        assert width == 3            # the 4-6 run
        assert frac == pytest.approx((2 + 3 + 5 + 6 + 7) / 28)

    def test_cold_unsampled_pages_are_not_dead(self):
        t = np.array([0.0, 0.0, 4.0])
        e = np.array([0.0, 0.0, 1.0])
        assert dead_zones(t, e) == (0, 0, 0.0)

    def test_leading_and_trailing_runs(self):
        t = np.ones(5)
        e = np.array([0.0, 1.0, 1.0, 1.0, 0.0])
        count, width, frac = dead_zones(t, e)
        assert count == 2 and width == 1
        assert frac == pytest.approx(2 / 5)


class TestSampleRateDeviation:
    def test_exact_rate_is_zero(self):
        assert sample_rate_deviation(10, 10_000, 1000) == 0.0

    def test_undershoot(self):
        assert sample_rate_deviation(5, 10_000, 1000) == pytest.approx(0.5)

    def test_overshoot(self):
        assert sample_rate_deviation(15, 10_000, 1000) == pytest.approx(0.5)

    def test_zero_mem_is_zero_by_convention(self):
        assert sample_rate_deviation(5, 0, 1000) == 0.0

    def test_bad_period(self):
        with pytest.raises(AnalysisError, match="period must be positive"):
            sample_rate_deviation(5, 100, 0)


class TestScoreSampling:
    def test_composes_all_metrics(self):
        t = np.array([10.0, 5.0, 2.0, 0.0])
        e = np.array([8.0, 0.0, 3.0, 0.0])
        bias = score_sampling(t, e, samples=17, mem_counted=17_000,
                              period=1000)
        assert isinstance(bias, SamplingBias)
        assert bias.rank_error == hotness_rank_error(t, e)
        assert bias.miss_ratio_error == miss_ratio_error(t, e)
        assert (bias.dead_zone_count, bias.dead_zone_max_width,
                bias.dead_access_fraction) == dead_zones(t, e)
        assert bias.rate_deviation == sample_rate_deviation(17, 17_000, 1000)

    def test_as_row_is_flat_and_complete(self):
        bias = score_sampling(np.ones(3), np.ones(3), samples=1,
                              mem_counted=1000, period=1000)
        row = bias.as_row()
        assert set(row) == {
            "rank_error", "miss_ratio_error", "dead_zone_count",
            "dead_zone_max_width", "dead_access_fraction", "rate_deviation",
        }
        assert all(np.isscalar(v) for v in row.values())


class TestExhaustivePageHotness:
    def test_counts_align_with_page_hotness(self, tiny):
        w = StreamWorkload(tiny, n_threads=2, n_elems=1 << 12, iterations=1)
        truth = exhaustive_page_hotness(w, seed=0)
        direct = page_hotness(w.process.address_space, np.zeros(0, np.uint64))
        assert truth.shape == direct.shape
        assert truth.dtype == np.int64
        assert truth.sum() > 0

    def test_deterministic_per_seed(self, tiny):
        w = StreamWorkload(tiny, n_threads=2, n_elems=1 << 12, iterations=1)
        a = exhaustive_page_hotness(w, seed=3)
        b = exhaustive_page_hotness(w, seed=3)
        assert (a == b).all()

    def test_chunking_does_not_change_counts(self, tiny):
        w = StreamWorkload(tiny, n_threads=1, n_elems=1 << 12, iterations=1)
        whole = exhaustive_page_hotness(w, seed=0, chunk=1 << 22)
        tiny_chunks = exhaustive_page_hotness(w, seed=0, chunk=777)
        assert (whole == tiny_chunks).all()

    def test_matches_mem_op_budget(self, tiny):
        w = StreamWorkload(tiny, n_threads=2, n_elems=1 << 12, iterations=1)
        truth = exhaustive_page_hotness(w, seed=0)
        budget = sum(
            phase.n_mem_ops * w.phase_threads(phase) for phase in w.phases
        )
        # every op is a load or store in STREAM; all land in mapped pages
        assert truth.sum() <= budget
        assert truth.sum() >= 0.9 * budget

    def test_bad_chunk(self, tiny):
        w = StreamWorkload(tiny, n_threads=1, n_elems=1 << 12, iterations=1)
        with pytest.raises(AnalysisError, match="chunk must be positive"):
            exhaustive_page_hotness(w, chunk=0)
