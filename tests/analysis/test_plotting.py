"""ASCII plotting tests."""

import numpy as np
import pytest

from repro.analysis.plotting import line_plot, scatter_plot, table
from repro.errors import ReproError


class TestLinePlot:
    def test_renders_all_series(self):
        x = np.arange(10.0)
        out = line_plot({"up": (x, x), "down": (x, 10 - x)}, title="T")
        assert "T" in out
        assert "*=up" in out and "+=down" in out
        assert out.count("\n") > 10

    def test_logx(self):
        x = np.array([1e2, 1e3, 1e4])
        out = line_plot({"s": (x, x)}, logx=True)
        assert "(log)" in out

    def test_logx_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            line_plot({"s": (np.array([0.0, 1.0]), np.zeros(2))}, logx=True)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            line_plot({})

    def test_constant_series_ok(self):
        out = line_plot({"c": (np.arange(3.0), np.full(3, 5.0))})
        assert "y: [5, 6]" in out


class TestScatterPlot:
    def test_bands_labelled(self):
        t = np.linspace(0, 1, 100)
        a = np.linspace(0x1000, 0x2000, 100)
        out = scatter_plot(t, a, bands=[("data_a", 0x1000, 0x2000)])
        assert "<- data_a" in out
        assert "100 samples" in out

    def test_mismatched_rejected(self):
        with pytest.raises(ReproError):
            scatter_plot(np.zeros(3), np.zeros(2))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            scatter_plot(np.zeros(0), np.zeros(0))


class TestTable:
    def test_alignment(self):
        out = table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="X")
        lines = out.splitlines()
        assert lines[0] == "X"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_checked(self):
        with pytest.raises(ReproError):
            table(["a"], [[1, 2]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            table([], [])

    def test_float_formatting(self):
        out = table(["v"], [[1.23456e8]])
        assert "1.23e+08" in out
