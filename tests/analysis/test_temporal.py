"""Temporal post-processing tests."""

import numpy as np
import pytest

from repro.analysis.temporal import (
    bin_samples,
    phase_segments,
    rate_of,
    resample,
    saturation_point,
)
from repro.errors import ReproError


class TestResample:
    def test_step_interpolation(self):
        t = np.array([0.0, 2.0, 4.0])
        v = np.array([1.0, 5.0, 9.0])
        g, gv = resample((t, v), dt=1.0)
        assert gv.tolist() == [1.0, 1.0, 5.0, 5.0, 9.0]

    def test_extends_to_t_end(self):
        g, gv = resample((np.array([0.0]), np.array([7.0])), dt=1.0, t_end=3.0)
        assert gv.tolist() == [7.0] * 4

    def test_empty(self):
        g, gv = resample((np.zeros(0), np.zeros(0)), dt=1.0)
        assert g.size == 0

    def test_validation(self):
        with pytest.raises(ReproError):
            resample((np.array([1.0, 0.0]), np.array([1.0, 2.0])), dt=1.0)
        with pytest.raises(ReproError):
            resample((np.zeros(1), np.zeros(1)), dt=0)


class TestBinSamples:
    def test_counts(self):
        t, c = bin_samples(np.array([0.1, 0.2, 1.5]), dt=1.0)
        assert c.tolist() == [2.0, 1.0]

    def test_weights(self):
        t, c = bin_samples(
            np.array([0.1, 0.2]), dt=1.0, weights=np.array([3.0, 4.0])
        )
        assert c[0] == 7.0

    def test_t_end_pads(self):
        t, c = bin_samples(np.array([0.5]), dt=1.0, t_end=4.0)
        assert c.size == 4

    def test_empty(self):
        t, c = bin_samples(np.zeros(0), dt=1.0)
        assert c.size == 0


class TestRateOf:
    def test_derivative(self):
        t = np.array([0.0, 1.0, 3.0])
        v = np.array([0.0, 10.0, 14.0])
        rt, rv = rate_of((t, v))
        assert rv.tolist() == [10.0, 2.0]

    def test_needs_increasing_times(self):
        with pytest.raises(ReproError):
            rate_of((np.array([0.0, 0.0]), np.array([1.0, 2.0])))


class TestSegments:
    def test_above_below(self):
        t = np.arange(6.0)
        v = np.array([0, 0, 10, 10, 0, 0], dtype=float)
        segs = phase_segments((t, v), threshold=5.0)
        assert segs == [(0.0, 2.0, False), (2.0, 4.0, True), (4.0, 5.0, False)]

    def test_min_duration_filters(self):
        t = np.arange(10.0)
        v = np.array([0, 10, 0, 0, 0, 0, 0, 0, 0, 0], dtype=float)
        segs = phase_segments((t, v), threshold=5.0, min_duration=2.0)
        assert all(e - s >= 2.0 for s, e, _ in segs)

    def test_constant_series_single_segment(self):
        t = np.arange(5.0)
        v = np.full(5, 7.0)
        segs = phase_segments((t, v), threshold=5.0)
        assert len(segs) == 1 and segs[0][2] is True


class TestSaturation:
    def test_point(self):
        t = np.arange(5.0)
        v = np.array([0.0, 50.0, 99.5, 100.0, 100.0])
        assert saturation_point((t, v)) == 2.0

    def test_fraction_validation(self):
        with pytest.raises(ReproError):
            saturation_point((np.zeros(1), np.zeros(1)), fraction=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            saturation_point((np.zeros(0), np.zeros(0)))
