"""Per-tier breakdown analysis over profiled runs."""

import numpy as np
import pytest

from repro.analysis import TierUsage, render_tier_usage, tiering_breakdown
from repro.errors import AnalysisError
from repro.machine import (
    MemLevel,
    apply_tiering,
    placement_for,
    small_test_machine,
    tiered_test_machine,
)
from repro.nmo import NmoMode, NmoProfiler, NmoSettings
from repro.workloads import StreamWorkload


@pytest.fixture(scope="module")
def profiled():
    machine = tiered_test_machine()
    w = StreamWorkload(machine, n_threads=2, n_elems=1 << 14, iterations=2)
    pl = placement_for(w.process.address_space, 3, "interleave", 0.5)
    w.attach_tiering(pl)
    apply_tiering(w, pl)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=256)
    result = NmoProfiler(w, settings, seed=1).run()
    return machine, result, pl


class TestTieringBreakdown:
    def test_requires_tiered_machine(self, profiled):
        _machine, result, pl = profiled
        with pytest.raises(AnalysisError):
            tiering_breakdown(result, small_test_machine(), pl)

    def test_one_row_per_tier(self, profiled):
        machine, result, pl = profiled
        rows = tiering_breakdown(result, machine, pl)
        assert [r.tier for r in rows] == [0, 1, 2]
        assert [r.name for r in rows] == ["local", "remote", "cxl"]
        assert [r.level for r in rows] == [
            MemLevel.DRAM, MemLevel.DRAM_REMOTE, MemLevel.DRAM_CXL,
        ]
        assert all(isinstance(r, TierUsage) for r in rows)

    def test_samples_partition_dram_class(self, profiled):
        machine, result, pl = profiled
        rows = tiering_breakdown(result, machine, pl)
        dram_class = int(
            (result.batch.level >= int(MemLevel.DRAM)).sum()
        )
        assert sum(r.samples for r in rows) == dram_class
        assert sum(r.sample_share for r in rows) == pytest.approx(1.0)

    def test_traffic_scales_with_period_and_line(self, profiled):
        machine, result, pl = profiled
        rows = tiering_breakdown(result, machine, pl)
        period = result.settings.period
        for r in rows:
            assert r.est_bytes == r.samples * period * machine.line_size

    def test_page_shares_from_placement(self, profiled):
        machine, result, pl = profiled
        rows = tiering_breakdown(result, machine, pl)
        assert [r.page_share for r in rows] == pytest.approx(
            list(pl.fractions())
        )
        no_pl = tiering_breakdown(result, machine)
        assert all(r.page_share == 0.0 for r in no_pl)

    def test_far_tier_latency_higher(self, profiled):
        machine, result, pl = profiled
        rows = tiering_breakdown(result, machine, pl)
        assert rows[2].mean_latency_cycles > rows[0].mean_latency_cycles

    def test_render_table(self, profiled):
        machine, result, pl = profiled
        text = render_tier_usage(
            tiering_breakdown(result, machine, pl), title="T"
        )
        assert "DRAM-remote" in text and "local" in text
        assert text.startswith("T\n")
