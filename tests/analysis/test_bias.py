"""Sampling-bias analysis tests (the §IX future-work extension)."""

import numpy as np
import pytest

from repro.analysis.bias import analyse_bias, bias_index, coverage, pc_histogram
from repro.errors import ReproError


class TestHistogram:
    def test_counts(self):
        pcs = np.array([10, 10, 20, 30, 30, 30], dtype=np.uint64)
        uniq, counts = pc_histogram(pcs)
        assert uniq.tolist() == [10, 20, 30]
        assert counts.tolist() == [2, 1, 3]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            pc_histogram(np.zeros(0, np.uint64))


class TestBiasIndex:
    def test_uniform_is_zero(self):
        pcs = np.repeat(np.arange(100, dtype=np.uint64), 50)
        assert bias_index(pcs) == pytest.approx(0.0, abs=1e-9)

    def test_single_pc_is_one(self):
        pcs = np.full(1000, 42, dtype=np.uint64)
        assert bias_index(pcs, n_positions=100) == pytest.approx(1.0, rel=0.02)

    def test_partial_concentration_in_between(self):
        rng = np.random.default_rng(0)
        pcs = np.where(
            rng.random(10_000) < 0.5,
            np.uint64(1),
            rng.integers(2, 100, 10_000).astype(np.uint64),
        )
        b = bias_index(pcs, n_positions=100)
        assert 0.05 < b < 0.9

    def test_position_count_validation(self):
        pcs = np.arange(10, dtype=np.uint64)
        with pytest.raises(ReproError):
            bias_index(pcs, n_positions=5)  # fewer than observed

    def test_coverage(self):
        pcs = np.arange(30, dtype=np.uint64)
        assert coverage(pcs, 60) == pytest.approx(0.5)


class TestSamplerBiasIntegration:
    """The end-to-end point of the analysis: SPE's perturbation keeps
    per-PC sampling of a uniform loop body nearly unbiased."""

    def _pcs(self, jitter: bool) -> np.ndarray:
        from repro.spe.sampler import sample_positions

        rng = np.random.default_rng(7)
        loop_len = 64  # a 64-instruction loop body
        pos, _ = sample_positions(4_000_000, 4096, jitter, rng)
        return (pos % loop_len).astype(np.uint64)  # PC within the loop

    def test_perturbed_sampler_low_bias(self):
        report = analyse_bias(self._pcs(jitter=False), n_positions=64)
        assert report.coverage == 1.0
        assert report.bias < 0.05

    def test_jitter_bit_also_low_bias(self):
        report = analyse_bias(self._pcs(jitter=True), n_positions=64)
        assert report.bias < 0.05

    def test_no_perturbation_would_be_fully_biased(self):
        """A strictly periodic counter on a loop whose length divides the
        period hits the same PC forever — the failure mode SPE's
        hardware perturbation (and our model of it) prevents."""
        period, loop_len = 4096, 64
        pos = np.arange(period - 1, 4_000_000, period, dtype=np.int64)
        pcs = (pos % loop_len).astype(np.uint64)
        report = analyse_bias(pcs, n_positions=loop_len)
        assert report.bias > 0.95
        assert report.top_pc_share == 1.0
