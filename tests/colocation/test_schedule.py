"""Fluid interleaving schedule tests."""

import pytest

from repro.colocation.schedule import (
    DemandPhase,
    demand_profile,
    interleave_schedule,
)
from repro.errors import ColocationError
from repro.machine.memory import ContendedChannel
from repro.machine.spec import DramSpec, GiB

SPEC = DramSpec(capacity=GiB, peak_bandwidth=100e9)


@pytest.fixture
def channel():
    return ContendedChannel(SPEC, efficiency=0.8, knee=0.9)  # usable 80e9


def prof(*phases):
    return [DemandPhase(name=f"p{i}", duration_s=d, demand_bps=b)
            for i, (d, b) in enumerate(phases)]


class TestSoloCalibration:
    def test_solo_process_runs_at_exactly_solo_speed(self, channel):
        # saturating and non-saturating phases alike: stretch must be
        # exactly 1.0 (the colocation runner relies on this bitwise)
        profile = prof((0.5, 200e9), (0.25, 10e9), (1.0, 0.0))
        (windows,) = interleave_schedule([profile], channel)
        assert [w.stretch for w in windows] == [1.0, 1.0, 1.0]
        assert windows[0].start_s == 0.0
        assert windows[-1].end_s == pytest.approx(1.75)
        # granted bandwidth reports the solo roofline
        assert windows[0].granted_bps == pytest.approx(80e9)
        assert windows[1].granted_bps == pytest.approx(10e9)

    def test_windows_align_with_phases(self, channel):
        profile = prof((0.1, 1e9), (0.2, 2e9))
        (windows,) = interleave_schedule([profile], channel)
        assert [w.name for w in windows] == ["p0", "p1"]
        assert windows[0].end_s == windows[1].start_s


class TestContention:
    def test_two_saturating_streams_stretch_symmetrically(self, channel):
        p = prof((1.0, 160e9))
        wa, wb = interleave_schedule([p, p], channel)
        assert wa[0].stretch == pytest.approx(wb[0].stretch)
        assert wa[0].stretch > 1.9  # each gets ~half its solo grant
        assert wa[0].granted_bps + wb[0].granted_bps <= 80e9 * (1 + 1e-9)
        assert wa[0].granted_bps < 80e9  # strictly less than solo

    def test_unsaturated_corunners_unaffected(self, channel):
        # total demand below the knee: everyone runs at solo speed
        p1 = prof((1.0, 30e9))
        p2 = prof((1.0, 40e9))
        w1, w2 = interleave_schedule([p1, p2], channel)
        assert w1[0].stretch == 1.0
        assert w2[0].stretch == 1.0
        assert w1[0].granted_bps == pytest.approx(30e9)

    def test_compute_bound_phase_immune(self, channel):
        hog = prof((10.0, 400e9))
        compute = prof((1.0, 0.0))
        _, wc = interleave_schedule([hog, compute], channel)
        assert wc[0].stretch == 1.0
        assert wc[0].end_s == pytest.approx(1.0)

    def test_survivor_speeds_up_after_corunner_exits(self, channel):
        short = prof((0.5, 160e9))
        long = prof((2.0, 160e9))
        ws, wl = interleave_schedule([short, long], channel)
        # the long stream's single phase spans contended + solo segments:
        # its overall stretch sits strictly between 1 (all solo) and the
        # fully-contended stretch the short stream saw
        assert 1.0 < wl[0].stretch < ws[0].stretch
        # the short stream was contended for its whole life
        assert ws[0].stretch > 1.9

    def test_proportional_share_favours_backlogged_hog(self, channel):
        # proportional share grants bandwidth by offered demand: a hog
        # that was already roofline-capped solo loses little *relative*
        # bandwidth, while a light stream's grant is cut by the same
        # proportional factor and it stretches more
        hog = prof((1.0, 300e9))
        light = prof((1.0, 20e9))
        wh, wl = interleave_schedule([hog, light], channel)
        assert wh[0].stretch > 1.0
        assert wl[0].stretch > wh[0].stretch
        # the hog exits first; the light stream's tail then runs solo,
        # so its window-mean grant recovers toward its full demand
        assert wh[0].end_s < wl[0].end_s
        assert wl[0].granted_bps < 20e9


class TestValidation:
    def test_no_processes_rejected(self, channel):
        with pytest.raises(ColocationError):
            interleave_schedule([], channel)

    def test_empty_profile_rejected(self, channel):
        with pytest.raises(ColocationError):
            interleave_schedule([[]], channel)


class TestDemandProfile:
    def test_matches_workload_phase_spans(self):
        from repro.machine.spec import small_test_machine
        from repro.workloads.stream import StreamWorkload

        w = StreamWorkload(small_test_machine(), n_threads=2, n_elems=4096)
        profile = demand_profile(w)
        spans = w.phase_spans()
        assert len(profile) == len(spans)
        for dp, (phase, t0, t1) in zip(profile, spans):
            assert dp.name == phase.name
            assert dp.duration_s == pytest.approx(t1 - t0)
            assert dp.demand_bps == pytest.approx(
                w.phase_dram_bytes(phase) / (t1 - t0)
            )
