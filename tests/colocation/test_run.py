"""Multi-tenant co-location run tests (the ISSUE acceptance criteria)."""

import numpy as np
import pytest

from repro.colocation import CoRunnerSpec, run_colocation
from repro.colocation.run import _SEED_STRIDE
from repro.errors import ColocationError
from repro.machine.spec import ampere_altra_max
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.workloads.stream import StreamWorkload

SETTINGS = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=32768)


@pytest.fixture(scope="module")
def machine():
    return ampere_altra_max()


def stream_spec(scale=0.1):
    return CoRunnerSpec("stream", n_threads=8, scale=scale)


@pytest.fixture(scope="module")
def solo(machine):
    return run_colocation([stream_spec()], machine=machine,
                          settings=SETTINGS, seed=5)


@pytest.fixture(scope="module")
def duo(machine):
    return run_colocation([stream_spec(), stream_spec()], machine=machine,
                          settings=SETTINGS, seed=5)


class TestSoloBitIdentity:
    def test_solo_run_identical_to_plain_profiler(self, machine, solo):
        """Acceptance: single demand stream reproduces today's behaviour."""
        w = StreamWorkload(machine, n_threads=8, scale=0.1)
        ref = NmoProfiler(w, SETTINGS, seed=5 * _SEED_STRIDE).run()
        got = solo.runners[0].profile
        assert got.profiled_cycles == ref.profiled_cycles
        assert got.baseline_cycles == ref.baseline_cycles
        assert got.samples_processed == ref.samples_processed
        assert got.accuracy == ref.accuracy
        assert got.time_overhead == ref.time_overhead
        assert np.array_equal(got.batch.addr, ref.batch.addr)
        assert np.array_equal(got.batch.ts, ref.batch.ts)

    def test_solo_slowdown_is_one(self, solo):
        assert solo.runners[0].slowdown == 1.0
        assert solo.runners[0].colo_seconds == solo.runners[0].solo_seconds


class TestStreamStreamContention:
    def test_each_stream_granted_strictly_less_than_solo(self, solo, duo):
        """Acceptance: 2 co-runner STREAM/STREAM vs solo STREAM."""
        solo_grant = solo.runners[0].granted_bps
        for r in duo.runners:
            assert r.granted_bps < solo_grant

    def test_granted_sum_within_usable(self, duo):
        """Acceptance: the streams' grants sum within usable_bandwidth."""
        assert duo.granted_sum_bps() <= duo.usable_bandwidth * (1 + 1e-9)
        # fully-overlapping identical runners: per-runner means sum too
        assert sum(r.granted_bps for r in duo.runners) <= (
            duo.usable_bandwidth * (1 + 1e-9)
        )

    def test_both_runners_slowed(self, duo):
        for r in duo.runners:
            assert r.slowdown > 1.0
            assert r.colo_seconds > r.solo_seconds

    def test_distinct_seeds_per_runner(self, duo):
        a, b = (r.profile for r in duo.runners)
        # same workload and settings, different sample streams
        assert not np.array_equal(a.batch.ts, b.batch.ts)

    def test_wall_clock_covers_both(self, duo):
        longest = max(r.colo_seconds for r in duo.runners)
        assert duo.wall_seconds >= longest * (1 - 1e-9)

    def test_windows_on_contended_timeline(self, duo):
        r = duo.runners[0]
        assert len(r.windows) == len(r.profile.phase_spans)
        assert r.windows[-1].end_s == pytest.approx(r.colo_seconds)


class TestMixedTenancy:
    def test_light_corunner_hurt_less_than_hog(self, machine):
        res = run_colocation(
            [stream_spec(), CoRunnerSpec("pagerank", n_threads=8, scale=0.004)],
            machine=machine, settings=SETTINGS, seed=1,
        )
        stream_r, pr_r = res.runners
        assert stream_r.workload == "stream"
        assert pr_r.slowdown < stream_r.slowdown
        assert pr_r.profile.workload == "pagerank"
        assert res.granted_sum_bps() <= res.usable_bandwidth * (1 + 1e-9)

    def test_each_runner_has_own_process_and_sessions(self, machine):
        res = run_colocation(
            [stream_spec(0.05), stream_spec(0.05)],
            machine=machine, settings=SETTINGS, seed=2,
        )
        a, b = res.runners
        assert a.profile.batch is not b.profile.batch
        assert a.profile.n_threads == b.profile.n_threads == 8


class TestValidation:
    def test_no_runners_rejected(self, machine):
        with pytest.raises(ColocationError):
            run_colocation([], machine=machine)

    def test_core_oversubscription_rejected(self, machine):
        specs = [CoRunnerSpec("stream", n_threads=machine.n_cores)] * 2
        with pytest.raises(ColocationError):
            run_colocation(specs, machine=machine)

    def test_bad_spec_rejected(self):
        with pytest.raises(ColocationError):
            CoRunnerSpec("stream", n_threads=0)
        with pytest.raises(ColocationError):
            CoRunnerSpec("stream", scale=0.0)
