"""Public API surface tests: imports, __all__, version, docstrings."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.machine",
    "repro.cpu",
    "repro.kernel",
    "repro.spe",
    "repro.runtime",
    "repro.workloads",
    "repro.nmo",
    "repro.analysis",
    "repro.scenarios",
    "repro.evalharness",
    "repro.orchestrate",
    "repro.substrate",
]


class TestApiSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__, f"{name} needs a module docstring"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        for sym in getattr(mod, "__all__", []):
            assert hasattr(mod, sym), f"{name}.{sym} in __all__ but missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_classes_documented(self):
        from repro.nmo import NmoProfiler, NmoSettings, ProfileResult
        from repro.spe import SpeDriver, SpeSampler
        from repro.workloads import Workload

        for cls in (NmoProfiler, NmoSettings, ProfileResult, SpeDriver,
                    SpeSampler, Workload):
            assert cls.__doc__, cls.__name__

    def test_error_hierarchy(self):
        from repro.errors import (
            AnnotationError,
            NmoError,
            PerfError,
            ReproError,
            SpeError,
            WorkloadError,
        )

        for exc in (NmoError, PerfError, SpeError, WorkloadError):
            assert issubclass(exc, ReproError)
        assert issubclass(AnnotationError, NmoError)

    def test_quickstart_snippet_from_docstring(self):
        """The README/package-docstring quickstart must actually run."""
        from repro.machine import ampere_altra_max
        from repro.nmo import NmoMode, NmoProfiler, NmoSettings
        from repro.workloads import StreamWorkload

        machine = ampere_altra_max()
        workload = StreamWorkload(machine, n_threads=4, n_elems=1 << 16,
                                  iterations=1)
        settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=4096)
        result = NmoProfiler(workload, settings).run()
        assert 0.0 <= result.accuracy <= 1.0
