"""The perf-smoke gate (benchmarks/check_regression.py) logic."""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_regression", ROOT / "benchmarks" / "check_regression.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def report(**entries):
    return {"schema": "repro-bench-substrate/1", "entries": entries}


class TestCheck:
    def setup_method(self):
        self.check = load_checker().check

    def test_clean_run_passes(self):
        base = report(a={"metric": "ops_per_s", "value": 100.0})
        cur = report(a={"metric": "ops_per_s", "value": 95.0})
        assert self.check(cur, base, 2.0) == []

    def test_ops_regression_fails(self):
        base = report(a={"metric": "ops_per_s", "value": 100.0})
        cur = report(a={"metric": "ops_per_s", "value": 40.0})
        failures = self.check(cur, base, 2.0)
        assert len(failures) == 1 and "a:" in failures[0]

    def test_seconds_regression_fails(self):
        base = report(a={"metric": "seconds", "value": 1.0})
        cur = report(a={"metric": "seconds", "value": 2.5})
        assert len(self.check(cur, base, 2.0)) == 1

    def test_seconds_improvement_passes(self):
        base = report(a={"metric": "seconds", "value": 1.0})
        cur = report(a={"metric": "seconds", "value": 0.2})
        assert self.check(cur, base, 2.0) == []

    def test_speedup_floor_enforced_without_baseline_entry(self):
        cur = report(
            a={
                "metric": "ops_per_s",
                "value": 1.0,
                "speedup_vs_reference": 2.4,
                "min_speedup": 5.0,
            }
        )
        failures = self.check(cur, report(), 2.0)
        assert len(failures) == 1 and "floor" in failures[0]

    def test_missing_entry_reported(self):
        base = report(gone={"metric": "ops_per_s", "value": 1.0})
        failures = self.check(report(), base, 2.0)
        assert len(failures) == 1 and "missing" in failures[0]

    def test_new_entry_tolerated(self):
        cur = report(new={"metric": "ops_per_s", "value": 1.0})
        assert self.check(cur, report(), 2.0) == []

    def test_checked_in_baseline_passes_against_itself(self):
        import json

        base = json.loads(
            (ROOT / "benchmarks" / "baselines" / "BENCH_substrate.baseline.json")
            .read_text()
        )
        assert self.check(base, base, 2.0) == []
