"""Property tests: ScenarioSpec serialization and serve/Session parity.

Fuzzes valid :class:`ScenarioSpec` values across every kind and
optional block, pinning the serialization contract the serve protocol
depends on:

* ``from_json(to_json(spec)) == spec`` — lossless round trip,
* ``spec_hash`` is stable across round trips (the provenance anchor
  and the job-id ingredient must not drift with re-encoding),
* submitting a spec to a live :class:`ProfilingServer` produces the
  same cached payload bytes as :meth:`Session.run` — the server is a
  transport, never a second semantics.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine.tiers import PLACEMENT_POLICIES
from repro.nmo.env import NmoMode, NmoSettings
from repro.orchestrate import ResultCache, cache_key
from repro.scenarios import Session
from repro.scenarios.spec import (
    MACHINE_PRESETS,
    ColocationSpec,
    ScenarioSpec,
    SweepAxis,
    TieringSpec,
    WorkloadSpec,
    _default_settings,
)
from repro.serve import ProfilingServer, ServerClient

WORKLOAD_NAMES = ("bfs", "cfd", "inmem_analytics", "pagerank", "stream")
TIERED_PRESETS = ("tiered_altra_max", "tiered_test_machine")

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_", min_size=1, max_size=24
)
scales = st.floats(
    min_value=0.001, max_value=8.0, allow_nan=False, allow_infinity=False
)
seeds = st.integers(min_value=-(2**31), max_value=2**31)
axis_values = st.lists(
    st.integers(min_value=1, max_value=1 << 16), min_size=1, max_size=4
)


def template_settings(period):
    return dataclasses.replace(_default_settings(), period=period)


def workloads(explicit_scale=False, kwargs_allowed=False, n_threads=None):
    kwargs = (
        st.dictionaries(
            st.sampled_from(("alpha", "beta", "gamma")),
            st.one_of(st.integers(-100, 100), st.booleans(), names),
            max_size=2,
        )
        if kwargs_allowed
        else st.just({})
    )
    return st.builds(
        WorkloadSpec,
        name=st.sampled_from(WORKLOAD_NAMES),
        n_threads=(
            st.just(n_threads) if n_threads else st.integers(1, 64)
        ),
        scale=scales if explicit_scale else st.one_of(st.none(), scales),
        kwargs=kwargs,
    )


@st.composite
def profile_specs(draw):
    return ScenarioSpec(
        name=draw(names),
        kind="profile",
        workloads=tuple(
            draw(st.lists(workloads(kwargs_allowed=True), min_size=1, max_size=3))
        ),
        settings=draw(
            st.builds(
                NmoSettings,
                enable=st.just(True),
                name=st.sampled_from(("nmo", "probe")),
                mode=st.sampled_from((NmoMode.SAMPLING, NmoMode.FULL)),
                period=st.integers(1, 1 << 20),
                track_rss=st.booleans(),
                bufsize_mib=st.integers(1, 64),
                auxbufsize_mib=st.integers(1, 64),
            )
        ),
        machine=draw(st.sampled_from(sorted(MACHINE_PRESETS))),
        trials=draw(st.integers(1, 4)),
        seed=draw(seeds),
    )


@st.composite
def period_sweep_specs(draw):
    values = draw(axis_values)
    return ScenarioSpec(
        name=draw(names),
        kind="period_sweep",
        workloads=tuple(
            draw(st.lists(workloads(explicit_scale=True), min_size=1, max_size=2))
        ),
        settings=template_settings(values[0]),
        machine=draw(st.sampled_from(sorted(MACHINE_PRESETS))),
        sweep=SweepAxis(param="period", values=tuple(values)),
        trials=draw(st.integers(1, 3)),
        seed=draw(seeds),
    )


@st.composite
def single_axis_specs(draw, kind, param, n_threads=None):
    return ScenarioSpec(
        name=draw(names),
        kind=kind,
        workloads=(
            draw(workloads(explicit_scale=True, n_threads=n_threads)),
        ),
        settings=template_settings(draw(st.integers(1, 1 << 20))),
        machine=draw(st.sampled_from(sorted(MACHINE_PRESETS))),
        sweep=SweepAxis(param=param, values=tuple(draw(axis_values))),
        seed=draw(seeds),
    )


@st.composite
def colocation_specs(draw):
    return ScenarioSpec(
        name=draw(names),
        kind="colocation",
        settings=template_settings(draw(st.integers(1, 1 << 20))),
        machine=draw(st.sampled_from(sorted(MACHINE_PRESETS))),
        colocation=ColocationSpec(
            max_corunners=draw(st.integers(1, 6)),
            n_threads=draw(st.integers(1, 16)),
            scale=draw(scales),
        ),
        seed=draw(seeds),
    )


@st.composite
def tiering_specs(draw):
    policies = draw(
        st.lists(
            st.sampled_from(PLACEMENT_POLICIES), min_size=1,
            max_size=len(PLACEMENT_POLICIES), unique=True,
        )
    )
    ratios = draw(
        st.lists(
            st.floats(
                min_value=0.0, max_value=0.95,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=3, unique=True,
        )
    )
    return ScenarioSpec(
        name=draw(names),
        kind="tiering",
        workloads=(draw(workloads(explicit_scale=True)),),
        settings=template_settings(draw(st.integers(1, 1 << 20))),
        machine=draw(st.sampled_from(TIERED_PRESETS)),
        tiering=TieringSpec(
            policies=tuple(policies),
            far_ratios=tuple(ratios),
            pilot_period=draw(st.integers(1, 1 << 16)),
        ),
        seed=draw(seeds),
    )


any_spec = st.one_of(
    profile_specs(),
    period_sweep_specs(),
    single_axis_specs("aux_sweep", "aux_pages"),
    single_axis_specs("thread_sweep", "threads", n_threads=32),
    colocation_specs(),
    tiering_specs(),
)


class TestRoundTrip:
    @given(any_spec)
    @settings(max_examples=120, deadline=None)
    def test_json_round_trip_is_lossless(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @given(any_spec)
    @settings(max_examples=120, deadline=None)
    def test_dict_round_trip_is_lossless(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @given(any_spec)
    @settings(max_examples=120, deadline=None)
    def test_spec_hash_stable_across_round_trips(self, spec):
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.spec_hash() == spec.spec_hash()
        # and hashing is a pure function of the value
        assert spec.spec_hash() == spec.spec_hash()

    @given(any_spec, seeds)
    @settings(max_examples=60, deadline=None)
    def test_spec_hash_covers_the_seed(self, spec, other_seed):
        if other_seed == spec.seed:
            return
        reseeded = dataclasses.replace(spec, seed=other_seed)
        assert reseeded.spec_hash() != spec.spec_hash()

    @given(any_spec)
    @settings(max_examples=60, deadline=None)
    def test_plan_is_deterministic(self, spec):
        session = Session()
        assert session.plan(spec) == session.plan(spec)


@pytest.fixture(scope="module")
def parity_server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("prop-serve-cache")
    with ProfilingServer(
        port=0, workers=2, cache=ResultCache(cache_dir), queue_limit=8
    ) as srv:
        yield srv, cache_dir


@st.composite
def tiny_profile_specs(draw):
    """Cheap-to-execute profile specs (stream on the small machine)."""
    return ScenarioSpec(
        name=draw(names),
        kind="profile",
        workloads=(
            WorkloadSpec(
                "stream",
                n_threads=draw(st.integers(1, 4)),
                scale=draw(
                    st.sampled_from((0.01, 0.02, 0.05))
                ),
            ),
        ),
        machine="small_test_machine",
        trials=draw(st.integers(1, 2)),
        seed=draw(st.integers(0, 99)),
    )


class TestServerParity:
    @given(tiny_profile_specs())
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_server_and_session_cache_identical_bytes(
        self, parity_server, tmp_path_factory, spec
    ):
        server, server_cache_dir = parity_server
        with ServerClient(*server.address) as client:
            outcome = client.run(spec)
        assert outcome.state == "done"

        session_dir = tmp_path_factory.mktemp("prop-session-cache")
        session = Session(cache=ResultCache(session_dir))
        report = session.run(spec)

        assert outcome.report["results"] == report.to_dict()["results"]
        assert outcome.report["provenance"] == report.to_dict()["provenance"]
        for t in session.plan(spec):
            key = cache_key(t.experiment, t.config, t.seed)
            rel = f"objects/{key[:2]}/{key}.pkl"
            assert (server_cache_dir / rel).read_bytes() == (
                session_dir / rel
            ).read_bytes()
