"""Property-based tests: sampling statistics and collision invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spe.sampler import collision_scan, sample_positions


class TestSamplePositionProperties:
    @given(
        st.integers(0, 2_000_000),
        st.integers(64, 100_000),
        st.booleans(),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_positions_valid(self, n_ops, period, jitter, seed):
        rng = np.random.default_rng(seed)
        pos, carry = sample_positions(n_ops, period, jitter, rng)
        assert carry >= 1
        if pos.size:
            assert pos[0] >= 0
            assert pos[-1] < n_ops
            assert (np.diff(pos) > 0).all()
            # no interval may exceed the period
            assert (np.diff(pos) <= period).all()

    @given(st.integers(100_000, 2_000_000), st.integers(100, 5000),
           st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_count_unbiased(self, n_ops, period, seed):
        rng = np.random.default_rng(seed)
        pos, _ = sample_positions(n_ops, period, False, rng)
        expected = n_ops / period
        assert pos.size == expected or abs(pos.size - expected) <= max(
            3, 0.05 * expected
        )

    @given(st.integers(1000, 200_000), st.integers(100, 5000),
           st.integers(1, 6), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_split_streams_equal_whole(self, n_ops, period, splits, seed):
        """Carrying the counter across phase boundaries conserves the
        total sample count (within perturbation noise)."""
        rng = np.random.default_rng(seed)
        whole, _ = sample_positions(n_ops, period, False,
                                    np.random.default_rng(seed))
        carry = None
        total = 0
        chunk = n_ops // splits
        done = 0
        for i in range(splits):
            size = chunk if i < splits - 1 else n_ops - done
            pos, carry = sample_positions(size, period, False, rng, carry)
            total += pos.size
            done += size
        assert abs(total - whole.size) <= max(3, 0.05 * max(whole.size, 1))


class TestCollisionProperties:
    @given(
        st.lists(st.tuples(st.floats(0, 1e6), st.floats(0.1, 1e4)),
                 min_size=1, max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_kept_samples_never_overlap(self, pairs):
        t = np.sort(np.array([p[0] for p in pairs]))
        lat = np.array([p[1] for p in pairs])
        keep, n_coll = collision_scan(t, lat)
        assert keep[0]  # first sample always kept
        assert n_coll == (~keep).sum()
        kt, kl = t[keep], lat[keep]
        # invariant: each kept sample starts after the previous completes
        assert (kt[1:] >= kt[:-1] + kl[:-1] - 1e-9).all()

    @given(st.integers(1, 500), st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_zero_latency_gap_keeps_everything(self, n, gap):
        t = np.arange(n) * gap
        lat = np.full(n, gap * 0.5)
        keep, n_coll = collision_scan(t, lat)
        assert keep.all() and n_coll == 0
