"""Property-based tests: ring and aux buffer conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.aux_buffer import AuxBuffer
from repro.kernel.records import AuxRecord
from repro.kernel.ring_buffer import RingBuffer


class TestRingConservation:
    @given(st.lists(st.tuples(st.integers(0, 2**40), st.integers(0, 2**20)),
                    max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_everything_written_is_read_in_order(self, specs):
        """write -> read preserves content and order; nothing is lost
        when the consumer keeps up."""
        ring = RingBuffer(n_pages=1, page_size=4096)
        seen = []
        for off, size in specs:
            rec = AuxRecord(off, size, 0)
            assert ring.write_record(rec)
            seen.extend(ring.read_records())
        assert seen == [AuxRecord(o, s, 0) for o, s in specs]

    @given(st.integers(1, 300))
    @settings(max_examples=30, deadline=None)
    def test_written_plus_lost_is_offered(self, n):
        ring = RingBuffer(n_pages=1, page_size=4096)
        for i in range(n):
            ring.write_record(AuxRecord(i, 0, 0))
        assert ring.records_written + ring.records_lost == n


class TestAuxConservation:
    @given(st.lists(st.binary(min_size=1, max_size=512), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_drain_every_chunk(self, chunks):
        """With immediate drains, every byte round-trips intact."""
        aux = AuxBuffer(n_pages=1, page_size=4096, watermark=4096)
        for c in chunks:
            accepted = aux.write(c)
            assert accepted == len(c)  # always room when drained
            got = aux.read(aux.tail, accepted)
            assert got == c
            aux.advance_tail(aux.tail + accepted)

    @given(st.lists(st.integers(1, 3000), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariants(self, sizes):
        """used + free == size; written - dropped == bytes inside."""
        aux = AuxBuffer(n_pages=1, page_size=4096)
        offered = 0
        for n in sizes:
            aux.write(b"\xab" * n)
            offered += n
            assert aux.used + aux.free == aux.size
            assert 0 <= aux.used <= aux.size
        assert aux.bytes_written + aux.bytes_dropped == offered
        assert aux.bytes_written - (aux.tail - 0) == aux.used

    @given(st.integers(1, 4096), st.integers(1, 8192))
    @settings(max_examples=50, deadline=None)
    def test_signal_covers_exactly_new_bytes(self, wm, total):
        aux = AuxBuffer(n_pages=2, page_size=4096, watermark=min(wm, 8192))
        accepted = aux.write(b"z" * total)
        covered = 0
        while aux.pending_signal() > 0:
            off, size = aux.take_signal()
            assert off == covered
            covered += size
            aux.advance_tail(off + size)
        assert covered == accepted
