"""Property-based tests: packet encode/decode."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.spe.packets import RECORD_SIZE, decode_buffer, encode_batch
from repro.spe.records import SampleBatch


def batches(min_n=0, max_n=64):
    n = st.integers(min_n, max_n)

    def build(k):
        return st.builds(
            SampleBatch,
            pc=arrays(np.uint64, k, elements=st.integers(0, 2**64 - 1)),
            addr=arrays(np.uint64, k, elements=st.integers(1, 2**64 - 1)),
            ts=arrays(np.uint64, k, elements=st.integers(1, 2**64 - 1)),
            level=arrays(np.uint8, k, elements=st.integers(0, 4)),
            kind=arrays(np.uint8, k, elements=st.integers(0, 4)),
            total_lat=arrays(np.uint16, k, elements=st.integers(0, 2**16 - 1)),
            issue_lat=arrays(np.uint16, k, elements=st.integers(0, 2**16 - 1)),
        )

    return n.flatmap(build)


class TestRoundTripProperties:
    @given(batches())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, batch):
        """Any batch with nonzero addr/ts survives the byte round trip."""
        got, stats = decode_buffer(encode_batch(batch))
        assert stats.n_skipped == 0
        assert len(got) == len(batch)
        for col in SampleBatch._COLUMNS:
            assert (getattr(got, col) == getattr(batch, col)).all()

    @given(batches(min_n=1))
    @settings(max_examples=40, deadline=None)
    def test_encoded_size_exact(self, batch):
        assert len(encode_batch(batch)) == len(batch) * RECORD_SIZE

    @given(batches(min_n=1), st.data())
    @settings(max_examples=40, deadline=None)
    def test_single_byte_corruption_never_crashes(self, batch, data):
        """Arbitrary single-byte corruption either passes validation or
        is skipped — decode never raises in lenient mode."""
        raw = bytearray(encode_batch(batch))
        pos = data.draw(st.integers(0, len(raw) - 1))
        val = data.draw(st.integers(0, 255))
        raw[pos] = val
        got, stats = decode_buffer(bytes(raw))
        assert stats.n_valid + stats.n_skipped == len(batch)
        assert len(got) == stats.n_valid

    @given(st.binary(max_size=RECORD_SIZE * 8))
    @settings(max_examples=60, deadline=None)
    def test_garbage_never_crashes(self, blob):
        got, stats = decode_buffer(blob)
        assert stats.n_records == len(blob) // RECORD_SIZE
        assert stats.trailing_bytes == len(blob) % RECORD_SIZE
        assert len(got) <= stats.n_records
