"""Property-based tests for the sampling-strategy zoo.

Every registered strategy, under fuzzed stream sizes / periods /
seeds, must hold the sampler contract:

* seeded determinism — same seed, same positions and carry,
* positions strictly increasing and inside ``[0, n_ops)``, carry >= 1,
* carry state survives arbitrary phase chunkings (exact positions for
  the RNG-free hash strategies; conserved counts for the renewal
  strategies, which re-draw per chunk),
* the achieved sample count tracks ``n_ops / period`` within the
  strategy's statistical tolerance,
* ``sampling_accuracy`` scenario specs round-trip losslessly through
  JSON with a stable ``spec_hash``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.ops import OpKind
from repro.machine.hierarchy import MemLevel
from repro.scenarios import ScenarioSpec, sampling_zoo_spec
from repro.spe.sampler import TraceOpSource
from repro.spe.strategies import HASH_OVERSAMPLE, STRATEGIES, STRATEGY_NAMES

names = st.sampled_from(STRATEGY_NAMES)
hash_names = st.sampled_from(["addr_hash", "page_hash"])


def trace(n_ops, seed):
    rng = np.random.default_rng(seed)
    kinds = np.full(n_ops, OpKind.LOAD, np.uint8)
    addrs = rng.integers(1, 1 << 40, n_ops, dtype=np.uint64)
    levels = np.full(n_ops, int(MemLevel.L1), np.uint8)
    return TraceOpSource(kinds, addrs, levels, cpi=1.0)


def chunked(name, src, period, jitter, seed, bounds):
    """Sample ``src`` in chunks, carrying state, as phases would."""
    strat = STRATEGIES[name]
    rng = np.random.default_rng(seed)
    carry, out = None, []
    lo = 0
    for hi in list(bounds) + [src.n_ops]:
        if hi <= lo:
            continue
        sub = TraceOpSource(
            src._kinds[lo:hi], src._addrs[lo:hi], src._levels[lo:hi], cpi=1.0
        )
        pos, carry = strat.sample(sub, period, jitter, rng, carry)
        out.append(pos + lo)
        lo = hi
    return np.concatenate(out) if out else np.zeros(0, np.int64)


class TestStrategyContract:
    @given(names, st.integers(0, 200_000), st.integers(64, 50_000),
           st.booleans(), st.integers(0, 2**31))
    @settings(max_examples=80, deadline=None)
    def test_positions_valid(self, name, n_ops, period, jitter, seed):
        src = trace(n_ops, seed)
        pos, carry = STRATEGIES[name].sample(
            src, period, jitter, np.random.default_rng(seed), None
        )
        assert carry >= 1
        if pos.size:
            assert pos[0] >= 0
            assert pos[-1] < n_ops
            assert (np.diff(pos) > 0).all()

    @given(names, st.integers(0, 60_000), st.integers(64, 10_000),
           st.booleans(), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_seeded_determinism(self, name, n_ops, period, jitter, seed):
        src = trace(n_ops, seed)
        a_pos, a_carry = STRATEGIES[name].sample(
            src, period, jitter, np.random.default_rng(seed), None
        )
        b_pos, b_carry = STRATEGIES[name].sample(
            src, period, jitter, np.random.default_rng(seed), None
        )
        assert (a_pos == b_pos).all()
        assert a_carry == b_carry

    @given(hash_names, st.integers(1000, 120_000), st.integers(64, 8_000),
           st.integers(0, 2**31),
           st.lists(st.integers(0, 120_000), max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_hash_strategies_exactly_chunk_invariant(
        self, name, n_ops, period, seed, cuts
    ):
        src = trace(n_ops, seed)
        whole, _ = STRATEGIES[name].sample(
            src, period, False, np.random.default_rng(seed), None
        )
        bounds = sorted({c for c in cuts if 0 < c < n_ops})
        split = chunked(name, src, period, False, seed, bounds)
        assert (split == whole).all()

    @given(st.sampled_from(["periodic", "poisson", "hybrid"]),
           st.integers(50_000, 300_000), st.integers(100, 5_000),
           st.integers(1, 6), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_renewal_strategies_conserve_counts_across_chunks(
        self, name, n_ops, period, splits, seed
    ):
        src = trace(n_ops, seed)
        whole, _ = STRATEGIES[name].sample(
            src, period, False, np.random.default_rng(seed), None
        )
        step = n_ops // splits
        bounds = [step * i for i in range(1, splits)]
        split = chunked(name, src, period, False, seed, bounds)
        expected = max(n_ops / period, 1.0)
        if name == "periodic":
            # jitter-free periodic is near-deterministic either way
            tol = max(3, 0.05 * expected)
        else:
            # renewal counts are ~Poisson(expected) and the chunked run
            # re-draws its gaps: the difference of two such counts has
            # std ~ sqrt(2 * expected); allow ~6 sigma
            tol = max(10, 8.5 * np.sqrt(expected))
        assert abs(split.size - whole.size) <= tol

    @given(names, st.integers(100_000, 400_000), st.integers(200, 4_000),
           st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_achieved_rate_tracks_period(self, name, n_ops, period, seed):
        src = trace(n_ops, seed)
        pos, _ = STRATEGIES[name].sample(
            src, period, False, np.random.default_rng(seed), None
        )
        expected = n_ops / period
        if name == "periodic":
            tol = max(3, 0.05 * expected)
        else:
            # renewal / thinning counts are ~Poisson(expected):
            # std ~ sqrt(expected); allow ~6 sigma
            tol = max(10, 6 * np.sqrt(expected))
        assert abs(pos.size - expected) <= tol

    @given(hash_names, st.integers(1000, 50_000), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_hash_candidates_sit_on_grid(self, name, n_ops, seed):
        period = 4096
        gap = period // HASH_OVERSAMPLE
        src = trace(n_ops, seed)
        pos, _ = STRATEGIES[name].sample(
            src, period, False, np.random.default_rng(seed), None
        )
        if pos.size:
            assert (np.mod(pos - (gap - 1), gap) == 0).all()


class TestSamplingSpecRoundTrip:
    @given(
        st.lists(st.sampled_from(STRATEGY_NAMES), min_size=1, max_size=5,
                 unique=True),
        st.sampled_from([256, 512, 1024, 4096]),
        st.floats(0.05, 0.95),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_lossless_json_round_trip(self, strategies, period, near, seed):
        spec = sampling_zoo_spec(
            strategies=tuple(strategies),
            periods=(period, period * 2),
            near_fraction=near,
            seed=seed,
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_spec_hash_is_stable_across_processes(self):
        # a fixed spec must hash the same forever (no dict-order or
        # repr dependence); pin it once here
        spec = sampling_zoo_spec()
        assert spec.spec_hash() == sampling_zoo_spec().spec_hash()
        assert spec.to_json() == sampling_zoo_spec().to_json()
