"""Property-based tests: caches, address spaces, timescale."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.clock import calc_mult_shift, ticks_to_ns
from repro.machine.cache import SetAssociativeCache
from repro.machine.spec import CacheSpec, small_test_machine
from repro.machine.address_space import VirtualAddressSpace
from repro.machine.statcache import AccessClass, StatCacheModel
from repro.machine.hierarchy import MemLevel


class TestCacheProperties:
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded_and_stats_consistent(self, addrs):
        c = SetAssociativeCache(CacheSpec(1024, 2), "p")
        for a in addrs:
            c.access(a)
        assert c.occupancy <= c.spec.n_lines
        assert c.hits + c.misses == len(addrs)
        assert c.evictions <= c.misses

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        c = SetAssociativeCache(CacheSpec(2048, 4), "p")
        for a in addrs:
            c.access(a)
            assert c.access(a)  # same line immediately after: LRU hit


class TestAddressSpaceProperties:
    @given(st.lists(st.integers(1, 200_000), min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_mappings_never_overlap(self, sizes):
        vas = VirtualAddressSpace(small_test_machine())
        maps = [vas.mmap(s) for s in sizes]
        spans = sorted((m.start, m.end) for m in maps)
        for (s0, e0), (s1, _) in zip(spans, spans[1:]):
            assert e0 <= s1

    @given(
        st.lists(st.integers(1, 100_000), min_size=1, max_size=10),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_rss_never_exceeds_mapped(self, sizes, data):
        vas = VirtualAddressSpace(small_test_machine())
        maps = [vas.mmap(s) for s in sizes]
        for m in maps:
            k = data.draw(st.integers(0, 20))
            if k:
                offs = data.draw(
                    st.lists(st.integers(0, m.length - 1), min_size=1,
                             max_size=k)
                )
                vas.touch(np.array([m.start + o for o in offs],
                                   dtype=np.uint64))
        assert 0 <= vas.rss_bytes <= vas.mapped_bytes


class TestStatCacheProperties:
    @given(
        st.integers(64, 1 << 32),
        st.integers(0, 256),
        st.floats(0.0, 0.99),
        st.integers(1, 128),
    )
    @settings(max_examples=60, deadline=None)
    def test_distribution_valid(self, footprint, stride, reuse, sharers):
        model = StatCacheModel(small_test_machine())
        cls = AccessClass(footprint=footprint, stride=stride, reuse=reuse)
        p = model.level_probabilities(cls, sharers=sharers)
        assert abs(sum(p.values()) - 1.0) < 1e-9
        assert all(0.0 <= v <= 1.0 for v in p.values())

    @given(st.integers(64, 1 << 30))
    @settings(max_examples=40, deadline=None)
    def test_dram_share_monotone_in_footprint(self, footprint):
        model = StatCacheModel(small_test_machine())
        small = model.level_probabilities(
            AccessClass(footprint=footprint, stride=0)
        )[MemLevel.DRAM]
        large = model.level_probabilities(
            AccessClass(footprint=footprint * 4, stride=0)
        )[MemLevel.DRAM]
        assert large >= small - 1e-12


class TestTimescaleProperties:
    @given(
        st.floats(1e5, 1e9),
        st.integers(0, 2**50),
    )
    @settings(max_examples=60, deadline=None)
    def test_conversion_relative_error_bounded(self, hz, ticks):
        mult, shift = calc_mult_shift(hz)
        ns = ticks_to_ns(ticks, mult, shift)
        # mult is derived from the integer frequency (as in the kernel)
        exact = ticks * 1e9 / int(hz)
        # precision is limited by the mult quantum: half an ulp per tick
        if exact > 0:
            tolerance = ticks * 0.5 / (1 << shift) + 1
            assert abs(ns - exact) <= tolerance

    @given(st.floats(1e5, 1e9), st.lists(st.integers(0, 2**40), min_size=2,
                                          max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_monotonicity(self, hz, ticks):
        mult, shift = calc_mult_shift(hz)
        ticks = sorted(ticks)
        ns = [ticks_to_ns(t, mult, shift) for t in ticks]
        assert ns == sorted(ns)
