"""End-to-end NMO profiler tests."""

import numpy as np
import pytest

from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler, sampling_accuracy
from repro.errors import NmoError
from repro.workloads.stream import StreamWorkload
from repro.workloads.bfs import BfsWorkload


def stream(machine, threads=8, elems=1 << 18):
    return StreamWorkload(machine, n_threads=threads, n_elems=elems, iterations=3)


def run(machine, w=None, period=2048, mode=NmoMode.SAMPLING, **kw):
    w = w or stream(machine)
    settings = NmoSettings(enable=True, mode=mode, period=period, **kw)
    return NmoProfiler(w, settings, seed=0).run()


class TestSamplingAccuracyFn:
    def test_perfect(self):
        assert sampling_accuracy(10_000, 10, 1000) == 1.0

    def test_undershoot(self):
        assert sampling_accuracy(10_000, 5, 1000) == pytest.approx(0.5)

    def test_overshoot_symmetric(self):
        assert sampling_accuracy(10_000, 15, 1000) == pytest.approx(0.5)

    def test_clamped_at_zero(self):
        assert sampling_accuracy(100, 1000, 1000) == 0.0

    def test_validation(self):
        with pytest.raises(NmoError):
            sampling_accuracy(0, 1, 1)
        with pytest.raises(NmoError):
            sampling_accuracy(10, -1, 1)
        with pytest.raises(NmoError):
            sampling_accuracy(10, 1, 0)


class TestBaseline:
    def test_mem_counted_exact(self, ampere):
        w = stream(ampere)
        base = NmoProfiler(w, NmoSettings()).run_baseline()
        assert base.mem_counted == w.total_mem_ops()

    def test_wall_time_matches_phases(self, ampere):
        w = stream(ampere)
        base = NmoProfiler(w, NmoSettings()).run_baseline()
        assert base.wall_cycles == pytest.approx(w.baseline_cycles())

    def test_flops_counted(self, ampere):
        w = stream(ampere)
        base = NmoProfiler(w, NmoSettings()).run_baseline()
        assert base.total_flops == w.total_flops()


class TestSamplingRun:
    def test_samples_estimate_mem_ops(self, ampere):
        r = run(ampere)
        est = r.samples_processed * r.settings.period
        assert est == pytest.approx(r.mem_counted, rel=0.15)

    def test_accuracy_reasonable(self, ampere):
        r = run(ampere)
        assert 0.8 < r.accuracy <= 1.0

    def test_overhead_positive_and_small(self, ampere):
        r = run(ampere)
        assert 0.0 < r.time_overhead < 0.2

    def test_profiled_slower_than_baseline(self, ampere):
        r = run(ampere)
        assert r.profiled_cycles > r.baseline_cycles

    def test_smaller_period_more_samples(self, ampere):
        r1 = run(ampere, period=1024)
        r2 = run(ampere, w=stream(ampere), period=8192)
        assert r1.samples_processed > 4 * r2.samples_processed

    def test_per_thread_stats_populated(self, ampere):
        r = run(ampere)
        assert len(r.per_thread) == 8
        assert all(s.n_selected > 0 for s in r.per_thread)

    def test_sample_arrays_aligned(self, ampere):
        r = run(ampere)
        assert len(r.batch) == r.sample_cores.shape[0] == r.sample_times_s.shape[0]

    def test_sample_times_within_run(self, ampere):
        r = run(ampere)
        dur = r.profiled_cycles / r.settings.period  # loose upper bound
        assert (r.sample_times_s >= 0).all()
        assert r.sample_times_s.max() <= r.profiled_cycles / 3e9 * 1.01

    def test_address_tags_registered(self, ampere):
        r = run(ampere)
        assert r.annotations.tag_names() == ["a", "b", "c"]

    def test_region_spans_cover_phases(self, ampere):
        r = run(ampere)
        tags = {s.tag for s in r.annotations.spans}
        assert {"init", "triad"} <= tags

    def test_phase_spans_recorded(self, ampere):
        r = run(ampere)
        assert len(r.phase_spans) == 4  # init + 3 triads

    def test_deterministic_given_seed(self, ampere):
        r1 = run(ampere)
        r2 = run(ampere)
        assert r1.samples_processed == r2.samples_processed
        assert r1.accuracy == r2.accuracy

    def test_different_seeds_differ(self, ampere):
        w1, w2 = stream(ampere), stream(ampere)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048)
        r1 = NmoProfiler(w1, s, seed=0).run()
        r2 = NmoProfiler(w2, s, seed=1).run()
        assert r1.samples_processed != r2.samples_processed


class TestModes:
    def test_disabled_collects_nothing(self, ampere):
        r = run(ampere, mode=NmoMode.NONE, period=0)
        assert r.samples_processed == 0
        assert r.time_overhead == 0.0

    def test_track_rss_produces_series(self, ampere):
        w = stream(ampere)
        settings = NmoSettings(enable=False, track_rss=True)
        r = NmoProfiler(w, settings).run()
        assert r.rss_series is not None
        t, v = r.rss_series
        assert v[-1] > 0

    def test_bandwidth_mode_produces_series(self, ampere):
        r = run(ampere, mode=NmoMode.BANDWIDTH, period=0)
        assert r.bw_series is not None
        _, v = r.bw_series
        assert v.max() > 0

    def test_full_mode_has_everything(self, ampere):
        w = stream(ampere)
        settings = NmoSettings(
            enable=True, mode=NmoMode.FULL, period=2048, track_rss=True
        )
        r = NmoProfiler(w, settings).run()
        assert r.samples_processed > 0
        assert r.bw_series is not None
        assert r.rss_series is not None


class TestTraceExport:
    def test_to_trace_round_trip(self, ampere, tmp_path):
        from repro.nmo.tracefile import read_trace, write_trace

        r = run(ampere)
        trace = r.to_trace()
        write_trace(trace, tmp_path)
        back = read_trace("nmo", tmp_path)
        assert back.n_samples == r.samples_processed
        assert back.meta["workload"] == "stream"
        assert back.meta["accuracy"] == pytest.approx(r.accuracy)


class TestPebsPortability:
    """The same profiler runs against the x86 PEBS backend (§III)."""

    def test_x86_run(self, x86):
        w = StreamWorkload(x86, n_threads=4, n_elems=1 << 16, iterations=2)
        settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048)
        r = NmoProfiler(w, settings).run()
        assert r.samples_processed > 0
        assert r.collisions == 0  # PEBS backend does not collide
        assert r.accuracy > 0.8
