"""Backend selection tests (SPE on ARM, PEBS on x86 — paper §III)."""

import numpy as np
import pytest

from repro.cpu.clock import GenericTimer
from repro.cpu.pipeline import PipelineModel
from repro.errors import NmoError
from repro.kernel.perf_event import PerfSubsystem
from repro.nmo.backends import ArmSpeBackend, X86PebsBackend, select_backend
from repro.nmo.env import NmoMode, NmoSettings
from repro.spe.driver import SpeCostModel


def settings(period=4096):
    return NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)


class TestSelection:
    def test_arm_gets_spe(self, ampere):
        assert isinstance(select_backend(ampere), ArmSpeBackend)

    def test_x86_gets_pebs(self, x86):
        assert isinstance(select_backend(x86), X86PebsBackend)

    def test_unknown_arch_rejected(self, ampere):
        from dataclasses import replace

        weird = replace(ampere, arch="riscv64", has_spe=False)
        with pytest.raises(NmoError):
            select_backend(weird)

    def test_spe_backend_refuses_x86(self, x86):
        ps = PerfSubsystem(x86)
        with pytest.raises(NmoError):
            ArmSpeBackend().open_session(
                ps, 0, settings(), PipelineModel(x86),
                GenericTimer(x86.frequency_hz), np.random.default_rng(0),
                SpeCostModel(),
            )


class TestSessions:
    def test_spe_session_wiring(self, ampere):
        ps = PerfSubsystem(ampere)
        sess = ArmSpeBackend().open_session(
            ps, 3, settings(), PipelineModel(ampere),
            GenericTimer(ampere.frequency_hz), np.random.default_rng(0),
            SpeCostModel(),
        )
        assert sess.core == 3
        assert sess.event.is_spe
        assert sess.event.enabled
        assert sess.event.ring is not None and sess.event.aux is not None
        assert sess.sampler.track_collisions

    def test_pebs_session_no_collisions(self, x86):
        ps = PerfSubsystem(x86)
        sess = X86PebsBackend().open_session(
            ps, 0, settings(), PipelineModel(x86),
            GenericTimer(x86.frequency_hz), np.random.default_rng(0),
            SpeCostModel(),
        )
        assert not sess.sampler.track_collisions
        assert sess.driver.cost.min_working_pages == 1

    def test_pebs_smaller_loss_window(self, x86):
        ps = PerfSubsystem(x86)
        base = SpeCostModel()
        sess = X86PebsBackend().open_session(
            ps, 0, settings(), PipelineModel(x86),
            GenericTimer(x86.frequency_hz), np.random.default_rng(0), base,
        )
        assert sess.driver.cost.service_loss_records < base.service_loss_records
