"""Cache-activity tracing tests (the §IX future-work extension)."""

import numpy as np
import pytest

from repro.errors import NmoError
from repro.machine.hierarchy import MemLevel
from repro.machine.spec import ampere_altra_max
from repro.nmo.cache_activity import (
    cache_mix_over_time,
    dram_pressure_windows,
    level_breakdown_by_object,
    miss_latency_profile,
)
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.workloads.stream import StreamWorkload


@pytest.fixture(scope="module")
def result():
    w = StreamWorkload(
        ampere_altra_max(), n_threads=32, scale=1 / 64
    )
    s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048)
    return NmoProfiler(w, s, seed=0).run()


class TestCacheMix:
    def test_shares_sum_to_one_where_sampled(self, result):
        mix = cache_mix_over_time(result, n_bins=20)
        total = sum(mix.shares[lv] for lv in mix.shares)
        sampled = mix.counts > 0
        assert np.allclose(total[sampled], 1.0)

    def test_counts_conserved(self, result):
        mix = cache_mix_over_time(result, n_bins=20)
        assert int(mix.counts.sum()) == result.n_samples

    def test_stream_dominated_by_l1(self, result):
        """Streaming doubles: ~7/8 of accesses hit the line in L1."""
        mix = cache_mix_over_time(result, n_bins=10)
        dominant = mix.dominant_level()
        assert dominant.count(MemLevel.L1) >= 8

    def test_dram_share_near_one_eighth(self, result):
        mix = cache_mix_over_time(result, n_bins=5)
        w = mix.counts > 0
        dram = np.average(mix.shares[MemLevel.DRAM][w], weights=mix.counts[w])
        assert dram == pytest.approx(0.125, abs=0.05)

    def test_bad_bins(self, result):
        with pytest.raises(NmoError):
            cache_mix_over_time(result, n_bins=0)


class TestBreakdowns:
    def test_per_object_shares_valid(self, result):
        bd = level_breakdown_by_object(result)
        assert set(bd) == {"a", "b", "c"}
        for shares in bd.values():
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)

    def test_latency_profile_ordering(self, result):
        profiles = {p.level: p for p in miss_latency_profile(result)}
        assert MemLevel.L1 in profiles and MemLevel.DRAM in profiles
        assert profiles[MemLevel.DRAM].mean > profiles[MemLevel.L1].mean * 10
        for p in profiles.values():
            assert p.p50 <= p.p95 <= p.maximum

    def test_dram_pressure_windows(self, result):
        # STREAM's DRAM share (~1/8) never crosses a 50% threshold ...
        assert dram_pressure_windows(result, threshold=0.5) == []
        # ... but a 5% threshold flags essentially the whole run
        windows = dram_pressure_windows(result, threshold=0.05)
        covered = sum(e - s for s, e in windows)
        assert covered > 0.8 * result.sample_times_s.max()

    def test_threshold_validation(self, result):
        with pytest.raises(NmoError):
            dram_pressure_windows(result, threshold=1.5)


@pytest.fixture(scope="module")
def tiered_result():
    from repro.machine import apply_tiering, placement_for, tiered_test_machine

    machine = tiered_test_machine()
    w = StreamWorkload(machine, n_threads=2, n_elems=1 << 14, iterations=2)
    pl = placement_for(w.process.address_space, 3, "interleave", 0.6)
    w.attach_tiering(pl)
    apply_tiering(w, pl)
    s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=256)
    return NmoProfiler(w, s, seed=1).run()


class TestTieredLevels:
    """The DRAM row aggregates every DRAM-class tier level, so tiered
    runs keep shares normalised and pressure windows visible."""

    def test_far_tier_samples_present(self, tiered_result):
        assert (
            tiered_result.batch.level > np.uint8(MemLevel.DRAM)
        ).any()

    def test_mix_shares_still_sum_to_one(self, tiered_result):
        mix = cache_mix_over_time(tiered_result, n_bins=10)
        total = sum(mix.shares[lv] for lv in mix.shares)
        sampled = mix.counts > 0
        assert np.allclose(total[sampled], 1.0)

    def test_dram_share_counts_all_tiers(self, tiered_result):
        mix = cache_mix_over_time(tiered_result, n_bins=1)
        lv = tiered_result.batch.level
        expected = (lv >= np.uint8(MemLevel.DRAM)).mean()
        assert mix.shares[MemLevel.DRAM][0] == pytest.approx(expected)

    def test_object_breakdown_normalised(self, tiered_result):
        for shares in level_breakdown_by_object(tiered_result).values():
            if sum(shares.values()):
                assert sum(shares.values()) == pytest.approx(1.0)

    def test_latency_profile_dram_row_covers_tiers(self, tiered_result):
        rows = {p.level: p for p in miss_latency_profile(tiered_result)}
        lv = tiered_result.batch.level
        assert rows[MemLevel.DRAM].n_samples == int(
            (lv >= np.uint8(MemLevel.DRAM)).sum()
        )
