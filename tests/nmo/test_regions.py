"""Region profiling tests (Figs. 4-6 metrics)."""

import numpy as np
import pytest

from repro.errors import NmoError
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.nmo.regions import RegionProfile, split_score
from repro.workloads.stream import StreamWorkload


@pytest.fixture(scope="module")
def stream_profile():
    from repro.machine.spec import ampere_altra_max

    w = StreamWorkload(
        ampere_altra_max(), n_threads=8, n_elems=1 << 18, iterations=3
    )
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=1024)
    result = NmoProfiler(w, settings, seed=0).run()
    return RegionProfile.build(result)


class TestSplitScore:
    def test_disjoint_chunks_score_high(self):
        addrs = np.concatenate(
            [np.arange(i * 1000, i * 1000 + 900) for i in range(4)]
        ).astype(np.uint64)
        cores = np.repeat(np.arange(4), 900)
        assert split_score(addrs, cores) > 0.9

    def test_fully_overlapping_score_low(self, rng):
        addrs = rng.integers(0, 10_000, size=4000, dtype=np.uint64)
        cores = np.repeat(np.arange(4), 1000)
        assert split_score(addrs, cores) < 0.3

    def test_single_core_is_one(self):
        assert split_score(np.arange(10, dtype=np.uint64), np.zeros(10)) == 1.0

    def test_empty_nan(self):
        out = split_score(np.zeros(0, np.uint64), np.zeros(0))
        assert np.isnan(out)

    def test_uneven_chunks_penalised(self):
        a1 = np.concatenate(
            [np.arange(0, 1000), np.arange(2000, 3000)]
        ).astype(np.uint64)
        c1 = np.repeat([0, 1], 1000)
        even = split_score(a1, c1)
        a2 = np.concatenate(
            [np.arange(0, 1900), np.arange(2000, 2100)]
        ).astype(np.uint64)
        c2 = np.repeat([0, 1], [1900, 100])
        uneven = split_score(a2, c2)
        assert even > uneven


class TestStreamRegions:
    def test_all_three_arrays_sampled(self, stream_profile):
        for name in ("a", "b", "c"):
            assert stream_profile.stats[name].n_samples > 0

    def test_a_is_store_target(self, stream_profile):
        sa = stream_profile.stats["a"]
        assert sa.n_stores > sa.n_loads

    def test_b_c_are_load_sources(self, stream_profile):
        for name in ("b", "c"):
            s = stream_profile.stats[name]
            assert s.n_loads > s.n_stores

    def test_chunked_arrays_split_cleanly(self, stream_profile):
        """The paper's 'regular incremental small line segments'."""
        for name in ("a", "b", "c"):
            assert stream_profile.stats[name].split_score > 0.8

    def test_hottest_ordering(self, stream_profile):
        hot = stream_profile.hottest(3)
        assert len(hot) == 3
        assert hot[0].n_samples >= hot[1].n_samples >= hot[2].n_samples

    def test_no_cold_objects_in_stream(self, stream_profile):
        assert stream_profile.cold_objects() == []

    def test_scatter_full(self, stream_profile):
        t, a = stream_profile.scatter()
        assert t.size == a.size > 0

    def test_scatter_by_tag(self, stream_profile):
        t, a = stream_profile.scatter(tag="b")
        sb = stream_profile.stats["b"]
        assert t.size == sb.n_samples
        assert (a >= sb.start).all() and (a < sb.end).all()

    def test_scatter_time_window(self, stream_profile):
        tall, _ = stream_profile.scatter()
        mid = float(np.median(tall))
        t, _ = stream_profile.scatter(t0=mid)
        assert 0 < t.size < tall.size
        assert (t >= mid).all()

    def test_unknown_tag_rejected(self, stream_profile):
        with pytest.raises(NmoError):
            stream_profile.scatter(tag="nope")

    def test_line_coverage_positive(self, stream_profile):
        assert stream_profile.stats["b"].line_coverage > 0

    def test_access_times_ordered(self, stream_profile):
        s = stream_profile.stats["a"]
        assert s.first_access_s <= s.last_access_s
