"""Annotation API tests (nmo_tag_addr / nmo_start / nmo_stop)."""

import numpy as np
import pytest

from repro.errors import AnnotationError
from repro.nmo.annotations import AddressTag, AnnotationRegistry


class TestAddressTags:
    def test_listing_1_style_usage(self):
        """The paper's Listing 1: tag two objects, bracket a kernel."""
        reg = AnnotationRegistry()
        reg.nmo_tag_addr("data_a", 0x1000, 0x2000)
        reg.nmo_tag_addr("data_b", 0x3000, 0x4000)
        reg.nmo_start("kernel0", 1.0)
        reg.nmo_stop(2.5)
        assert reg.tag_names() == ["data_a", "data_b"]
        spans = reg.spans_for("kernel0")
        assert spans[0].start_s == 1.0 and spans[0].end_s == 2.5

    def test_duplicate_tag_rejected(self):
        reg = AnnotationRegistry()
        reg.nmo_tag_addr("x", 0, 10)
        with pytest.raises(AnnotationError):
            reg.nmo_tag_addr("x", 20, 30)

    def test_empty_range_rejected(self):
        with pytest.raises(AnnotationError):
            AddressTag("x", 10, 10)

    def test_contains_vectorised(self):
        t = AddressTag("x", 100, 200)
        hits = t.contains(np.array([50, 100, 199, 200], dtype=np.uint64))
        assert hits.tolist() == [False, True, True, False]

    def test_tag_of_first_match(self):
        reg = AnnotationRegistry()
        reg.nmo_tag_addr("a", 0, 100)
        reg.nmo_tag_addr("b", 50, 150)  # overlapping; 'a' wins below 100
        out = reg.tag_of(np.array([10, 60, 120, 500], dtype=np.uint64))
        assert out.tolist() == [0, 0, 1, -1]


class TestRegions:
    def test_nested_regions(self):
        reg = AnnotationRegistry()
        reg.nmo_start("outer", 0.0)
        reg.nmo_start("inner", 1.0)
        reg.nmo_stop(2.0)
        reg.nmo_stop(3.0)
        assert reg.spans_for("inner")[0].end_s == 2.0
        assert reg.spans_for("outer")[0].end_s == 3.0
        assert not reg.has_open_regions

    def test_stop_without_start(self):
        with pytest.raises(AnnotationError):
            AnnotationRegistry().nmo_stop(1.0)

    def test_open_region_flag(self):
        reg = AnnotationRegistry()
        reg.nmo_start("x", 0.0)
        assert reg.has_open_regions

    def test_backwards_region_rejected(self):
        reg = AnnotationRegistry()
        reg.nmo_start("x", 5.0)
        with pytest.raises(AnnotationError):
            reg.nmo_stop(1.0)

    def test_repeated_region_spans_accumulate(self):
        reg = AnnotationRegistry()
        for i in range(3):
            reg.nmo_start("triad", float(i))
            reg.nmo_stop(float(i) + 0.5)
        assert len(reg.spans_for("triad")) == 3
