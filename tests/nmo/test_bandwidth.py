"""Bandwidth profiling / roofline tests (Fig. 3 metrics)."""

import numpy as np
import pytest

from repro.errors import NmoError
from repro.machine.spec import GiB
from repro.nmo.bandwidth import (
    arithmetic_intensity,
    dominant_period_s,
    roofline,
    summarise_bandwidth,
)
from repro.workloads.stream import StreamWorkload


class TestSummary:
    def test_peak_location(self, ampere):
        t = np.arange(10.0)
        v = np.zeros(10)
        v[3] = 120 * GiB
        s = summarise_bandwidth((t, v), ampere)
        assert s.peak_gibs == pytest.approx(120.0)
        assert s.time_of_peak_s == 3.0

    def test_utilisation(self, ampere):
        t = np.arange(2.0)
        v = np.array([0.0, 100e9])
        s = summarise_bandwidth((t, v), ampere)
        assert s.peak_utilisation == pytest.approx(0.5)

    def test_empty_rejected(self, ampere):
        with pytest.raises(NmoError):
            summarise_bandwidth((np.zeros(0), np.zeros(0)), ampere)


class TestPeriodicity:
    def test_sine_period_recovered(self):
        t = np.arange(0.0, 120.0, 0.5)
        v = 50 + 40 * np.sin(2 * np.pi * t / 15.0)
        assert dominant_period_s((t, v)) == pytest.approx(15.0, rel=0.1)

    def test_square_wave(self):
        t = np.arange(0.0, 128.0, 1.0)
        v = (t % 16 < 8).astype(float)
        assert dominant_period_s((t, v)) == pytest.approx(16.0, rel=0.1)

    def test_too_short_rejected(self):
        with pytest.raises(NmoError):
            dominant_period_s((np.arange(4.0), np.arange(4.0)))


class TestRoofline:
    def test_stream_is_memory_bound(self, ampere):
        w = StreamWorkload(ampere, n_threads=8, n_elems=1 << 18, iterations=2)
        points = roofline(w)
        triad = [p for p in points if p.phase.startswith("triad")]
        assert triad and all(p.memory_bound for p in triad)

    def test_arithmetic_intensity_low_for_triad(self, ampere):
        w = StreamWorkload(ampere, n_threads=8, n_elems=1 << 18, iterations=2)
        ai = arithmetic_intensity(w, w.phases[1])
        assert 0 < ai < 1.0  # far below any ridge point

    def test_zero_traffic_infinite_intensity(self, ampere):
        from repro.machine.statcache import AccessClass
        from repro.workloads.base import Phase

        w = StreamWorkload(ampere, n_threads=8, n_elems=1 << 18)
        p = Phase(
            "hot", 100, 1.0, lambda m, t: np.zeros(len(np.atleast_1d(m)),
                                                   dtype=np.uint64),
            [AccessClass(footprint=64, stride=8)],
            group=2, flops_per_group=1, dram_bytes_override=0.0,
        )
        assert arithmetic_intensity(w, p) == float("inf")

    def test_bad_peak_flops(self, ampere):
        w = StreamWorkload(ampere, n_threads=8, n_elems=1 << 18)
        with pytest.raises(NmoError):
            roofline(w, peak_flops=0)
