"""NMO environment configuration tests (Table I)."""

import pytest

from repro.errors import NmoError
from repro.machine.spec import KiB
from repro.nmo.env import TABLE_I_DEFAULTS, NmoMode, NmoSettings


class TestTableIDefaults:
    def test_defaults_match_table1(self):
        s = NmoSettings.from_env({})
        assert not s.enable          # NMO_ENABLE: off
        assert s.name == "nmo"       # NMO_NAME: "nmo"
        assert s.mode is NmoMode.NONE  # NMO_MODE: none
        assert s.period == 0         # NMO_PERIOD: 0
        assert not s.track_rss       # NMO_TRACK_RSS: off
        assert s.bufsize_mib == 1    # NMO_BUFSIZE: 1 MiB
        assert s.auxbufsize_mib == 1  # NMO_AUXBUFSIZE: 1 MiB

    def test_defaults_dict_round_trips(self):
        s = NmoSettings.from_env(TABLE_I_DEFAULTS)
        assert s == NmoSettings.from_env({})

    def test_to_env_round_trip(self):
        s = NmoSettings(
            enable=True, name="run1", mode=NmoMode.SAMPLING, period=4096,
            track_rss=True, bufsize_mib=2, auxbufsize_mib=4,
        )
        assert NmoSettings.from_env(s.to_env()) == s


class TestParsing:
    @pytest.mark.parametrize("v", ["1", "on", "yes", "true", "ON", "True"])
    def test_truthy(self, v):
        assert NmoSettings.from_env({"NMO_ENABLE": v}).enable

    @pytest.mark.parametrize("v", ["0", "off", "no", "false", ""])
    def test_falsy(self, v):
        assert not NmoSettings.from_env({"NMO_ENABLE": v}).enable

    def test_bad_bool(self):
        with pytest.raises(NmoError):
            NmoSettings.from_env({"NMO_ENABLE": "maybe"})

    def test_bad_period(self):
        with pytest.raises(NmoError):
            NmoSettings.from_env({"NMO_PERIOD": "abc"})
        with pytest.raises(NmoError):
            NmoSettings.from_env({"NMO_PERIOD": "-5"})

    def test_bad_mode_lists_valid(self):
        with pytest.raises(NmoError) as e:
            NmoSettings.from_env({"NMO_MODE": "bogus"})
        assert "sampling" in str(e.value)

    def test_zero_bufsize_rejected(self):
        with pytest.raises(NmoError):
            NmoSettings.from_env({"NMO_BUFSIZE": "0"})

    def test_sampling_requires_period(self):
        with pytest.raises(NmoError):
            NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=0)

    def test_sampling_mode_parse(self):
        s = NmoSettings.from_env(
            {"NMO_ENABLE": "on", "NMO_MODE": "sampling", "NMO_PERIOD": "4096"}
        )
        assert s.mode is NmoMode.SAMPLING
        assert s.period == 4096


class TestBufferGeometry:
    def test_ring_pages_64k(self):
        s = NmoSettings(bufsize_mib=1)
        assert s.ring_pages(64 * KiB) == 16

    def test_aux_pages_64k(self):
        s = NmoSettings(auxbufsize_mib=2)
        assert s.aux_pages(64 * KiB) == 32

    def test_4k_pages(self):
        s = NmoSettings(bufsize_mib=1)
        assert s.ring_pages(4 * KiB) == 256

    def test_non_pow2_rejected(self):
        s = NmoSettings(bufsize_mib=3)
        with pytest.raises(NmoError):
            s.ring_pages(64 * KiB)
