"""Timescale conversion tests (time_zero/shift/mult, §IV-A)."""

import numpy as np
import pytest

from repro.cpu.clock import DEFAULT_CNTFRQ_HZ, calc_mult_shift
from repro.errors import NmoError
from repro.kernel.ring_buffer import MmapMetadataPage
from repro.nmo.timescale import TimescaleConverter


def meta(zero=0):
    mult, shift = calc_mult_shift(DEFAULT_CNTFRQ_HZ)
    return MmapMetadataPage(time_zero=zero, time_mult=mult, time_shift=shift)


class TestConverter:
    def test_one_second_of_ticks(self):
        c = TimescaleConverter(meta())
        ns = c.to_perf_ns(DEFAULT_CNTFRQ_HZ)
        assert ns == pytest.approx(1e9, rel=1e-6)

    def test_time_zero_offset(self):
        c = TimescaleConverter(meta(zero=500))
        assert c.to_perf_ns(0) == 500

    def test_seconds_vectorised(self):
        c = TimescaleConverter(meta())
        ticks = np.array([0, DEFAULT_CNTFRQ_HZ, 2 * DEFAULT_CNTFRQ_HZ],
                         dtype=np.uint64)
        s = c.to_seconds(ticks)
        assert np.allclose(s, [0.0, 1.0, 2.0], rtol=1e-6)

    def test_scalar_seconds(self):
        c = TimescaleConverter(meta())
        assert c.to_seconds(DEFAULT_CNTFRQ_HZ) == pytest.approx(1.0, rel=1e-6)

    def test_monotone(self):
        c = TimescaleConverter(meta())
        ticks = np.arange(0, 10**7, 9973, dtype=np.uint64)
        ns = np.asarray(c.to_perf_ns(ticks), dtype=np.uint64)
        assert (np.diff(ns.astype(np.int64)) >= 0).all()

    def test_ticks_per_second(self):
        c = TimescaleConverter(meta())
        assert c.ticks_per_second() == pytest.approx(DEFAULT_CNTFRQ_HZ, rel=1e-4)

    def test_requires_cap_bit(self):
        m = meta()
        m.cap_user_time_zero = 0
        with pytest.raises(NmoError):
            TimescaleConverter(m)

    def test_bad_mult(self):
        m = meta()
        m.time_mult = 0
        with pytest.raises(NmoError):
            TimescaleConverter(m)
