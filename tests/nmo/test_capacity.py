"""Capacity profiling tests (Fig. 2 metrics)."""

import numpy as np
import pytest

from repro.errors import NmoError
from repro.machine.spec import GiB
from repro.nmo.capacity import (
    overprovisioned_bytes,
    summarise_capacity,
)


def series(values, dt=1.0):
    v = np.asarray(values, dtype=float)
    return np.arange(v.size) * dt, v


class TestSummary:
    def test_peak_and_mean(self):
        s = summarise_capacity(series([0, 10, 20, 20]))
        assert s.peak_bytes == 20
        assert s.mean_bytes == pytest.approx(12.5)

    def test_saturation_time(self):
        # 99% of the peak (100) is first reached at t=3 (value 99)
        s = summarise_capacity(series([0, 5, 50, 99, 100, 100]))
        assert s.saturation_time_s == 3.0

    def test_utilisation_against_limit(self):
        s = summarise_capacity(series([0, 128 * GiB]), limit_bytes=256 * GiB)
        assert s.peak_utilisation == pytest.approx(0.5)
        assert s.peak_gib == pytest.approx(128.0)

    def test_no_limit_zero_utilisation(self):
        s = summarise_capacity(series([1.0]))
        assert s.peak_utilisation == 0.0

    def test_empty_rejected(self):
        with pytest.raises(NmoError):
            summarise_capacity((np.zeros(0), np.zeros(0)))

    def test_mismatched_rejected(self):
        with pytest.raises(NmoError):
            summarise_capacity((np.zeros(3), np.zeros(2)))


class TestOverprovisioning:
    def test_waste_computed(self):
        waste = overprovisioned_bytes(series([0, 52.3 * GiB]), 256 * GiB)
        assert waste / GiB == pytest.approx(256 - 52.3, rel=1e-6)

    def test_no_negative_waste(self):
        assert overprovisioned_bytes(series([0, 300.0]), 100) == 0.0

    def test_bad_limit(self):
        with pytest.raises(NmoError):
            overprovisioned_bytes(series([1.0]), 0)
