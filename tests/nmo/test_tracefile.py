"""Trace file round-trip and MD5 verification tests."""

import numpy as np
import pytest

from repro.errors import NmoError
from repro.nmo.tracefile import (
    SAMPLE_COLUMNS,
    TraceData,
    read_trace,
    samples_digest,
    write_trace,
)


def samples(n=10, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "addr": rng.integers(1, 1 << 40, n, dtype=np.uint64),
        "t_s": rng.random(n),
        "level": rng.integers(1, 5, n, dtype=np.uint8),
        "kind": rng.integers(1, 3, n, dtype=np.uint8),
        "total_lat": rng.integers(1, 500, n, dtype=np.uint16),
        "core": rng.integers(0, 8, n, dtype=np.int32),
    }


class TestTraceData:
    def test_missing_column_rejected(self):
        s = samples()
        del s["core"]
        with pytest.raises(NmoError):
            TraceData(name="x", samples=s)

    def test_ragged_columns_rejected(self):
        s = samples()
        s["addr"] = s["addr"][:-1]
        with pytest.raises(NmoError):
            TraceData(name="x", samples=s)


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path):
        t = TraceData(
            name="run1",
            samples=samples(100),
            meta={"period": 4096, "workload": "stream"},
            rss=(np.array([0.0, 1.0]), np.array([10.0, 20.0])),
            bandwidth=(np.array([0.0, 1.0]), np.array([5.0, 9.0])),
        )
        paths = write_trace(t, tmp_path)
        assert set(paths) == {"samples", "meta", "rss", "bw"}
        back = read_trace("run1", tmp_path)
        assert back.n_samples == 100
        assert back.meta["period"] == 4096
        for col in SAMPLE_COLUMNS:
            assert (back.samples[col] == t.samples[col]).all()
        assert np.allclose(back.rss[1], [10.0, 20.0])
        assert np.allclose(back.bandwidth[1], [5.0, 9.0])

    def test_md5_recorded(self, tmp_path):
        t = TraceData(name="r", samples=samples())
        write_trace(t, tmp_path)
        back = read_trace("r", tmp_path)
        assert back.meta["md5"] == samples_digest(t.samples)

    def test_md5_detects_tampering(self, tmp_path):
        t = TraceData(name="r", samples=samples())
        paths = write_trace(t, tmp_path)
        # rewrite samples with different data but keep the old meta
        t2 = TraceData(name="r", samples=samples(seed=99))
        import io

        buf = io.BytesIO()
        np.savez_compressed(buf, **t2.samples)
        paths["samples"].write_bytes(buf.getvalue())
        with pytest.raises(NmoError):
            read_trace("r", tmp_path)

    def test_missing_trace(self, tmp_path):
        with pytest.raises(NmoError):
            read_trace("ghost", tmp_path)

    def test_digest_sensitive_to_each_column(self):
        base = samples()
        d0 = samples_digest(base)
        for col in SAMPLE_COLUMNS:
            mod = {k: v.copy() for k, v in base.items()}
            mod[col] = mod[col].copy()
            mod[col][0] += 1
            assert samples_digest(mod) != d0, col

    def test_optional_series_absent(self, tmp_path):
        t = TraceData(name="bare", samples=samples())
        write_trace(t, tmp_path)
        back = read_trace("bare", tmp_path)
        assert back.rss is None
        assert back.bandwidth is None
