"""Workload registry tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.registry import (
    get_workload_class,
    make_workload,
    register_workload,
    workload_names,
)


class TestRegistry:
    def test_all_five_paper_workloads_registered(self):
        assert workload_names() == [
            "bfs", "cfd", "inmem_analytics", "pagerank", "stream",
        ]

    def test_get_class(self):
        from repro.workloads.stream import StreamWorkload

        assert get_workload_class("stream") is StreamWorkload

    def test_unknown_name(self):
        with pytest.raises(WorkloadError) as e:
            get_workload_class("nope")
        assert "stream" in str(e.value)

    def test_make_workload(self, ampere):
        w = make_workload("bfs", ampere, n_threads=2, n_nodes=5000)
        assert w.name == "bfs"
        assert w.n_threads == 2

    def test_register_duplicate_rejected(self):
        from repro.workloads.stream import StreamWorkload

        with pytest.raises(WorkloadError):
            register_workload(StreamWorkload)

    def test_register_non_workload_rejected(self):
        with pytest.raises(WorkloadError):
            register_workload(int)  # type: ignore[arg-type]
