"""Rodinia BFS workload tests."""

import numpy as np
import pytest

from repro.cpu.ops import OpKind
from repro.workloads.bfs import LEVEL_FRACTIONS, BfsWorkload


@pytest.fixture
def bfs(ampere):
    return BfsWorkload(ampere, n_threads=4, n_nodes=10_000, repeats=2)


class TestStructure:
    def test_graph_arrays(self, bfs):
        names = {n for n, _s, _e in bfs.tagged_objects()}
        assert {"nodes", "edges", "cost", "visited"} <= names

    def test_level_phases(self, bfs):
        levels = [p for p in bfs.phases if p.name.startswith("level#")]
        assert len(levels) == len(LEVEL_FRACTIONS)

    def test_frontier_rise_and_fall(self, bfs):
        levels = [p for p in bfs.phases if p.name.startswith("level#")]
        sizes = [p.n_mem_ops for p in levels]
        peak = int(np.argmax(sizes))
        assert 0 < peak < len(sizes) - 1
        assert sizes[0] < sizes[peak] > sizes[-1]

    def test_pure_memory_stream(self, bfs):
        """BFS phases are group=1: every decoded op touches memory."""
        for p in bfs.phases:
            if p.name.startswith("level#"):
                assert p.group == 1

    def test_shared_graph_slc_sharers(self, bfs):
        for p in bfs.phases:
            assert p.slc_sharers == 1


class TestCacheResidency:
    def test_no_bandwidth_pressure(self, ampere):
        w = BfsWorkload(ampere, n_threads=32, scale=1.0)
        level = [p for p in w.phases if p.name.startswith("level#")][3]
        assert w.bandwidth_utilisation(level) < 0.5
        assert level.dram_latency_scale < 1.5

    def test_graph_fits_in_slc(self, ampere):
        w = BfsWorkload(ampere, n_threads=32, scale=1.0)
        level = [p for p in w.phases if p.name.startswith("level#")][3]
        frac = w.stat.dram_fraction(level.classes, sharers=1)
        assert frac < 0.02

    def test_mem_volume_smaller_than_stream(self, ampere):
        from repro.workloads.stream import StreamWorkload

        s = StreamWorkload(ampere, n_threads=32, scale=1.0)
        b = BfsWorkload(ampere, n_threads=32, scale=1.0)
        assert b.total_mem_ops() < s.total_mem_ops() / 4


class TestAddresses:
    def test_addresses_within_graph(self, bfs, rng):
        level = [p for p in bfs.phases if p.name.startswith("level#")][4]
        src = bfs.op_source(level, 0)
        kinds, addrs = src.ops_at(np.arange(min(src.n_ops, 5000)), rng)
        mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        layout = bfs.process.address_space
        assert (layout.classify(addrs[mem]) >= 0).all()

    def test_repeats_multiply_ops(self, ampere):
        b1 = BfsWorkload(ampere, n_threads=4, n_nodes=10_000, repeats=1)
        b4 = BfsWorkload(ampere, n_threads=4, n_nodes=10_000, repeats=4)
        lv1 = [p for p in b1.phases if p.name.startswith("level#")][4]
        lv4 = [p for p in b4.phases if p.name.startswith("level#")][4]
        assert lv4.n_mem_ops == pytest.approx(4 * lv1.n_mem_ops, rel=0.01)
