"""Address-pattern builder tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.access_patterns import (
    local_window,
    random_in,
    round_robin,
    sequential,
    strided,
    weighted_mix,
)


class TestSequential:
    def test_thread_chunks_disjoint(self):
        fn = sequential(0x1000, 1000, 8, n_threads=4)
        idx = np.arange(100)
        ranges = []
        for t in range(4):
            a = fn(idx, t)
            ranges.append((a.min(), a.max()))
        ranges.sort()
        for (lo0, hi0), (lo1, _) in zip(ranges, ranges[1:]):
            assert hi0 < lo1

    def test_monotone_within_chunk(self):
        fn = sequential(0, 1000, 8, n_threads=2)
        a = fn(np.arange(50), 0)
        assert (np.diff(a.astype(np.int64)) == 8).all()

    def test_wraps_for_multiple_passes(self):
        fn = sequential(0, 10, 4, n_threads=1)
        a = fn(np.arange(25), 0)
        assert a[0] == a[10] == a[20]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            sequential(0, 0, 8)


class TestStrided:
    def test_stride_applied(self):
        fn = strided(0, 1024, 8, stride_elems=16, n_threads=1)
        a = fn(np.arange(4), 0)
        assert (np.diff(a.astype(np.int64)) == 16 * 8).all()

    def test_bad_stride(self):
        with pytest.raises(WorkloadError):
            strided(0, 10, 8, stride_elems=0)


class TestRandomIn:
    def test_within_bounds(self):
        fn = random_in(0x1000, 100, 8)
        a = fn(np.arange(10_000), 0)
        assert (a >= 0x1000).all()
        assert (a < 0x1000 + 800).all()

    def test_covers_object(self):
        fn = random_in(0, 64, 1)
        a = fn(np.arange(5000), 0)
        assert np.unique(a).size > 60

    def test_thread_salted(self):
        fn = random_in(0, 1000, 8)
        a0 = fn(np.arange(100), 0)
        a1 = fn(np.arange(100), 1)
        assert (a0 != a1).any()


class TestLocalWindow:
    def test_stays_near_sweep_position(self):
        fn = local_window(0, 100_000, 4, window=50, n_threads=1)
        idx = np.arange(1000, 2000)
        a = fn(idx, 0)
        elems = a // 4
        assert (np.abs(elems.astype(np.int64) - idx) <= 50).all()

    def test_global_fraction_jumps(self):
        fn = local_window(
            0, 1_000_000, 4, window=10, n_threads=1, global_fraction=0.5
        )
        idx = np.arange(1000)
        elems = (fn(idx, 0) // 4).astype(np.int64)
        far = np.abs(elems - idx) > 1000
        assert far.mean() == pytest.approx(0.5, abs=0.1)

    def test_bounds_clipped(self):
        fn = local_window(0, 100, 4, window=1000, n_threads=1)
        a = fn(np.arange(100), 0)
        assert (a < 400).all()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            local_window(0, 10, 4, window=0)
        with pytest.raises(WorkloadError):
            local_window(0, 10, 4, window=1, global_fraction=2.0)


class TestCombinators:
    def test_round_robin_cycles(self):
        pa = sequential(0x0, 100, 8)
        pb = sequential(0x10000, 100, 8)
        fn = round_robin([pa, pb])
        a = fn(np.arange(10), 0)
        assert (a[::2] < 0x10000).all()
        assert (a[1::2] >= 0x10000).all()

    def test_round_robin_sub_index_advances(self):
        pa = sequential(0, 100, 8)
        fn = round_robin([pa, pa])
        a = fn(np.array([0, 2, 4]), 0)
        assert (np.diff(a.astype(np.int64)) == 8).all()

    def test_weighted_mix_ratios(self):
        pa = sequential(0x0, 100, 8)
        pb = sequential(0x100000, 100, 8)
        fn = weighted_mix([(pa, 3.0), (pb, 1.0)])
        a = fn(np.arange(40_000), 0)
        frac_b = (a >= 0x100000).mean()
        assert frac_b == pytest.approx(0.25, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            round_robin([])
        with pytest.raises(WorkloadError):
            weighted_mix([])

    def test_bad_weights(self):
        pa = sequential(0, 10, 8)
        with pytest.raises(WorkloadError):
            weighted_mix([(pa, 0.0)])
