"""STREAM workload tests."""

import numpy as np
import pytest

from repro.cpu.ops import OpKind
from repro.errors import WorkloadError
from repro.workloads.stream import StreamWorkload


@pytest.fixture
def stream(ampere):
    return StreamWorkload(ampere, n_threads=8, n_elems=1 << 16, iterations=3)


class TestStructure:
    def test_three_arrays_allocated(self, stream):
        names = [n for n, _s, _e in stream.tagged_objects()]
        assert names == ["a", "b", "c"]

    def test_phase_count(self, stream):
        assert len(stream.phases) == 1 + 3  # init + iterations

    def test_triad_tag(self, stream):
        assert "triad" in stream.tags()

    def test_mem_ops_per_triad_iteration(self, stream):
        triad = stream.phases[1]
        # 3 accesses per element over this thread's chunk
        assert triad.n_mem_ops == 3 * ((1 << 16) // 8)

    def test_iterations_validated(self, ampere):
        with pytest.raises(WorkloadError):
            StreamWorkload(ampere, iterations=0)


class TestTriadSemantics:
    def test_kind_pattern_b_c_a(self, stream, rng):
        """Per element: load b, load c, store a."""
        triad = stream.phases[1]
        src = stream.op_source(triad, 0)
        a_obj = stream.process.address_space.region("a")
        b_obj = stream.process.address_space.region("b")
        c_obj = stream.process.address_space.region("c")
        idx = np.arange(src.n_ops)
        kinds, addrs = src.ops_at(idx, rng)
        mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        k, ad = kinds[mem], addrs[mem]
        in_a = (ad >= a_obj.start) & (ad < a_obj.end)
        in_b = (ad >= b_obj.start) & (ad < b_obj.end)
        in_c = (ad >= c_obj.start) & (ad < c_obj.end)
        assert (in_a | in_b | in_c).all()
        # all stores to a, all loads from b/c
        assert (k[in_a] == OpKind.STORE).all()
        assert (k[in_b] == OpKind.LOAD).all()
        assert (k[in_c] == OpKind.LOAD).all()

    def test_store_share_one_third(self, stream, rng):
        triad = stream.phases[1]
        src = stream.op_source(triad, 0)
        kinds, _ = src.ops_at(np.arange(src.n_ops), rng)
        stores = (kinds == OpKind.STORE).sum()
        loads = (kinds == OpKind.LOAD).sum()
        assert stores / (stores + loads) == pytest.approx(1 / 3, abs=0.02)

    def test_one_flop_per_element(self, stream):
        assert stream.phases[1].flops_per_group == 1

    def test_thread_addresses_disjoint(self, stream, rng):
        triad = stream.phases[1]
        src0 = stream.op_source(triad, 0)
        src1 = stream.op_source(triad, 1)
        idx = np.arange(0, src0.n_ops, 17)
        _, a0 = src0.ops_at(idx, rng)
        _, a1 = src1.ops_at(idx, rng)
        b_obj = stream.process.address_space.region("b")
        b0 = a0[(a0 >= b_obj.start) & (a0 < b_obj.end)]
        b1 = a1[(a1 >= b_obj.start) & (a1 < b_obj.end)]
        assert b0.size and b1.size
        assert b0.max() < b1.min()  # static chunking


class TestBandwidthPressure:
    def test_triad_saturates_dram(self, ampere):
        w = StreamWorkload(ampere, n_threads=32, scale=1 / 64)
        triad = w.phases[1]
        assert w.bandwidth_utilisation(triad) > 1.0
        assert triad.dram_latency_scale > 2.0

    def test_init_touches_everything(self, stream):
        init = stream.phases[0]
        total = sum(init.touch.values())
        assert total == 3 * (1 << 16) * 8

    def test_scale_changes_elements(self, ampere):
        w = StreamWorkload(ampere, scale=1 / 1024)
        assert w.n_elems == int((1 << 27) / 1024)

    def test_reference_locality_default(self, ampere):
        big = StreamWorkload(ampere, n_threads=32, scale=1 / 512)
        small = StreamWorkload(
            ampere, n_threads=32, scale=1 / 512, reference_locality=False
        )
        # reference locality keeps the DRAM share scale-invariant
        f_big = big.stat.dram_fraction(
            big.phases[1].classes, sharers=32
        )
        f_small = small.stat.dram_fraction(
            small.phases[1].classes, sharers=32
        )
        assert f_big > f_small
