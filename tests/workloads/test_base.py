"""Workload framework tests."""

import numpy as np
import pytest

from repro.cpu.ops import OpKind
from repro.errors import WorkloadError
from repro.machine.statcache import AccessClass
from repro.workloads.base import Phase, PhaseOpSource, Workload, hash_uniform


def flat_addr(mem_idx, thread):
    return (0x10000 + np.asarray(mem_idx, dtype=np.uint64) * 8).astype(np.uint64)


class ToyWorkload(Workload):
    name = "toy"

    def _build(self):
        self.alloc_object("buf", 1 << 20)
        self.add_phase(
            Phase(
                name="main",
                n_mem_ops=10_000,
                cpi=1.0,
                addr_fn=flat_addr,
                classes=[AccessClass(footprint=1 << 20, stride=8)],
                group=4,
                flops_per_group=2,
                store_fraction=0.25,
                touch={"buf": 1 << 20},
            )
        )
        self.add_phase(
            Phase(
                name="serial",
                n_mem_ops=1_000,
                cpi=2.0,
                addr_fn=flat_addr,
                classes=[AccessClass(footprint=1 << 10, stride=8)],
                parallel=False,
            )
        )


@pytest.fixture
def toy(ampere):
    return ToyWorkload(ampere, n_threads=4)


class TestPhaseValidation:
    def test_bad_group(self):
        with pytest.raises(WorkloadError):
            Phase("x", 1, 1.0, flat_addr, [AccessClass(footprint=1)], group=0)

    def test_flops_must_fit(self):
        with pytest.raises(WorkloadError):
            Phase(
                "x", 1, 1.0, flat_addr, [AccessClass(footprint=1)],
                group=2, flops_per_group=2,
            )

    def test_needs_classes(self):
        with pytest.raises(WorkloadError):
            Phase("x", 1, 1.0, flat_addr, [])

    def test_duration(self):
        p = Phase("x", 100, 2.0, flat_addr, [AccessClass(footprint=1)], group=3)
        assert p.n_ops == 300
        assert p.duration_cycles() == 600.0
        assert p.mem_fraction() == pytest.approx(1 / 3)


class TestWorkloadAggregates:
    def test_total_mem_ops_counts_parallel_threads(self, toy):
        assert toy.total_mem_ops() == 10_000 * 4 + 1_000

    def test_total_flops(self, toy):
        assert toy.total_flops() == 10_000 * 2 * 4

    def test_baseline_cycles_sequential_phases(self, toy):
        # phase 0: 10k mem ops x group 4 x cpi 1; phase 1: 1k x group 2 x cpi 2
        assert toy.baseline_cycles() == 10_000 * 4 * 1.0 + 1_000 * 2 * 2.0

    def test_phase_spans_contiguous(self, toy):
        spans = toy.phase_spans()
        assert spans[0][1] == 0.0
        assert spans[0][2] == pytest.approx(spans[1][1])

    def test_phase_threads(self, toy):
        assert toy.phase_threads(toy.phases[0]) == 4
        assert toy.phase_threads(toy.phases[1]) == 1

    def test_tags(self, toy):
        assert toy.tags() == ["main", "serial"]

    def test_op_source_thread_bounds(self, toy):
        with pytest.raises(WorkloadError):
            toy.op_source(toy.phases[1], 1)  # serial phase: thread 0 only

    def test_foreign_phase_rejected(self, toy, ampere):
        other = ToyWorkload(ampere, n_threads=2)
        with pytest.raises(WorkloadError):
            toy.op_source(other.phases[0], 0)

    def test_rss_at_grows_then_saturates(self, toy):
        t = np.linspace(0, toy.baseline_seconds(), 50)
        rss = toy.rss_at(t)
        assert rss[0] < rss[-1]
        assert rss[-1] == pytest.approx(1 << 20)
        assert (np.diff(rss) >= -1e-6).all()

    def test_empty_workload_rejected(self, ampere):
        class Empty(Workload):
            name = "empty"

            def _build(self):
                pass

        with pytest.raises(WorkloadError):
            Empty(ampere)

    def test_bad_scale(self, ampere):
        with pytest.raises(WorkloadError):
            ToyWorkload(ampere, scale=0)


class TestPhaseOpSource:
    def test_mem_fraction_matches_group(self, toy, rng):
        src = toy.op_source(toy.phases[0], 0)
        idx = rng.integers(0, src.n_ops, 50_000)
        kinds, _ = src.ops_at(idx, rng)
        mem = ((kinds == OpKind.LOAD) | (kinds == OpKind.STORE)).mean()
        assert mem == pytest.approx(0.25, abs=0.01)

    def test_store_fraction(self, toy, rng):
        src = toy.op_source(toy.phases[0], 0)
        idx = np.arange(src.n_ops)
        kinds, _ = src.ops_at(idx, rng)
        stores = (kinds == OpKind.STORE).sum()
        loads = (kinds == OpKind.LOAD).sum()
        assert stores / (stores + loads) == pytest.approx(0.25, abs=0.02)

    def test_flops_present(self, toy, rng):
        src = toy.op_source(toy.phases[0], 0)
        kinds, _ = src.ops_at(np.arange(1000), rng)
        assert (kinds == OpKind.FLOP).sum() > 0

    def test_deterministic_across_calls(self, toy, rng):
        src = toy.op_source(toy.phases[0], 0)
        idx = np.arange(0, 4000, 7)
        k1, a1 = src.ops_at(idx, np.random.default_rng(1))
        k2, a2 = src.ops_at(idx, np.random.default_rng(2))
        assert (k1 == k2).all()
        assert (a1 == a2).all()

    def test_addresses_within_object(self, toy, rng):
        src = toy.op_source(toy.phases[0], 0)
        kinds, addrs = src.ops_at(np.arange(20_000), rng)
        mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        assert (addrs[mem] >= 0x10000).all()

    def test_levels_only_for_mem(self, toy, rng):
        src = toy.op_source(toy.phases[0], 0)
        idx = np.arange(2000)
        kinds, addrs = src.ops_at(idx, rng)
        levels = src.levels_at(idx, kinds, addrs, rng)
        mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        assert (levels[mem] >= 1).all()
        assert (levels[~mem] == 0).all()

    def test_materialise_limit(self, toy, rng):
        src = toy.op_source(toy.phases[0], 0)
        with pytest.raises(WorkloadError):
            src.materialise(rng, limit=10)

    def test_materialise_full_stream(self, toy, rng):
        src = toy.op_source(toy.phases[1], 0)
        chunk = src.materialise(rng)
        assert len(chunk) == src.n_ops


class TestHashUniform:
    def test_range(self):
        u = hash_uniform(np.arange(10_000))
        assert (u >= 0).all() and (u < 1).all()

    def test_mean_near_half(self):
        assert hash_uniform(np.arange(100_000)).mean() == pytest.approx(0.5, abs=0.01)

    def test_salt_changes_values(self):
        a = hash_uniform(np.arange(100), salt=1)
        b = hash_uniform(np.arange(100), salt=2)
        assert (a != b).any()
