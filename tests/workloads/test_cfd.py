"""Rodinia CFD workload tests."""

import numpy as np
import pytest

from repro.cpu.ops import OpKind
from repro.workloads.cfd import (
    FLUX_ACC,
    STEP_ACC,
    CfdWorkload,
)


@pytest.fixture
def cfd(ampere):
    return CfdWorkload(ampere, n_threads=4, n_elems=1 << 14, iterations=3)


class TestStructure:
    def test_arrays(self, cfd):
        names = {n for n, _s, _e in cfd.tagged_objects()}
        assert {
            "variables", "old_variables", "ese", "normals", "fluxes",
            "step_factors",
        } <= names

    def test_phases_per_iteration(self, cfd):
        # init + (flux + time_step) per iteration
        assert len(cfd.phases) == 1 + 2 * 3

    def test_computation_loop_tag(self, cfd):
        tags = {p.tag for p in cfd.phases if p.name.startswith("compute_flux")}
        assert tags == {"computation loop"}

    def test_flux_access_count(self, cfd):
        flux = cfd.phases[1]
        assert flux.n_mem_ops == FLUX_ACC * ((1 << 14) // 4)

    def test_step_access_count(self, cfd):
        step = cfd.phases[2]
        assert step.n_mem_ops == STEP_ACC * ((1 << 14) // 4)


class TestAccessCharacter:
    def test_variables_gathers_are_irregular(self, cfd, rng):
        """Neighbour gathers hit non-monotonic addresses — the Fig. 6
        irregularity."""
        flux = cfd.phases[1]
        src = cfd.op_source(flux, 0)
        var = cfd.process.address_space.region("variables")
        idx = np.arange(0, src.n_ops, 3)
        kinds, addrs = src.ops_at(idx, rng)
        mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        in_var = mem & (addrs >= var.start) & (addrs < var.end)
        a = addrs[in_var].astype(np.int64)
        assert a.size > 50
        diffs = np.diff(a)
        assert (diffs < 0).any()  # not a monotone sweep

    def test_normals_split_cleanly_across_threads(self, cfd, rng):
        """Only normals splits properly per thread (paper Fig. 6)."""
        flux = cfd.phases[1]
        norm = cfd.process.address_space.region("normals")
        per_thread = []
        for t in range(4):
            src = cfd.op_source(flux, t)
            idx = np.arange(0, src.n_ops, 5)
            kinds, addrs = src.ops_at(idx, rng)
            mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
            sel = mem & (addrs >= norm.start) & (addrs < norm.end)
            a = addrs[sel]
            per_thread.append((int(a.min()), int(a.max())))
        spans = sorted(per_thread)
        overlaps = sum(
            max(0, min(h0, h1) - max(l0, l1))
            for (l0, h0), (l1, h1) in zip(spans, spans[1:])
        )
        total = spans[-1][1] - spans[0][0]
        assert overlaps / total < 0.05

    def test_flux_has_higher_dram_share_than_stream_like_step(self, cfd):
        flux, step = cfd.phases[1], cfd.phases[2]
        f_flux = cfd.stat.dram_fraction(flux.classes, sharers=4)
        f_step = cfd.stat.dram_fraction(step.classes, sharers=4)
        assert f_flux > f_step

    def test_mem_ops_scale_vs_stream_ratio(self, ampere):
        """CFD's op volume is ~8x STREAM's at equal scale (Fig. 7)."""
        from repro.workloads.stream import StreamWorkload

        s = StreamWorkload(ampere, n_threads=32, scale=1 / 64)
        c = CfdWorkload(ampere, n_threads=32, scale=1 / 64)
        ratio = c.total_mem_ops() / s.total_mem_ops()
        assert 5 < ratio < 12
