"""CloudSuite workload model tests (PageRank + In-memory Analytics)."""

import numpy as np
import pytest

from repro.machine.spec import GiB
from repro.workloads.inmem_analytics import (
    N_ITERATIONS,
    SATURATED_RSS_GIB as IMA_RSS,
    InMemoryAnalyticsWorkload,
)
from repro.workloads.pagerank import (
    SATURATED_RSS_GIB as PR_RSS,
    PageRankWorkload,
)


class TestPageRank:
    def test_duration_near_25s(self, ampere):
        w = PageRankWorkload(ampere, scale=1.0)
        assert w.baseline_seconds() == pytest.approx(25.0, rel=0.1)

    def test_rss_saturates_at_123_8_gib(self, ampere):
        """Paper Fig. 2: PageRank reaches ~123.8 GiB (48.4% of 256)."""
        w = PageRankWorkload(ampere, scale=1.0)
        rss = w.rss_at(np.array([w.baseline_seconds()]))[0]
        assert rss / GiB == pytest.approx(PR_RSS, rel=0.02)
        assert PR_RSS == pytest.approx(123.8, abs=1.0)
        assert rss / (256 * GiB) == pytest.approx(0.484, abs=0.01)

    def test_bandwidth_peak_during_load(self, ampere):
        w = PageRankWorkload(ampere, scale=1.0)
        bws = [(p.name, w.phase_bandwidth(p) / GiB) for p in w.phases]
        peak_phase = max(bws, key=lambda x: x[1])
        assert peak_phase[0] == "load_edges"
        assert peak_phase[1] == pytest.approx(118.0, rel=0.05)

    def test_rank_iterations_decline(self, ampere):
        w = PageRankWorkload(ampere, scale=1.0)
        iters = [
            w.phase_bandwidth(p)
            for p in w.phases
            if p.name.startswith("rank_iter")
        ]
        assert iters == sorted(iters, reverse=True)

    def test_scale_shrinks_duration(self, ampere):
        w = PageRankWorkload(ampere, scale=0.1)
        assert w.baseline_seconds() == pytest.approx(2.5, rel=0.1)

    def test_container_limit(self, ampere):
        w = PageRankWorkload(ampere)
        assert w.process.mem_limit == 256 * GiB


class TestInMemoryAnalytics:
    def test_duration_near_121s(self, ampere):
        w = InMemoryAnalyticsWorkload(ampere, scale=1.0)
        assert w.baseline_seconds() == pytest.approx(122.5, rel=0.05)

    def test_rss_saturates_at_52_3_gib(self, ampere):
        """Paper Fig. 2: IMA reaches ~52.3 GiB (20.4% of 256)."""
        w = InMemoryAnalyticsWorkload(ampere, scale=1.0)
        rss = w.rss_at(np.array([w.baseline_seconds()]))[0]
        assert IMA_RSS == pytest.approx(52.3, abs=0.5)
        assert rss / GiB == pytest.approx(IMA_RSS, rel=0.02)
        assert rss / (256 * GiB) == pytest.approx(0.204, abs=0.01)

    def test_als_alternation(self, ampere):
        w = InMemoryAnalyticsWorkload(ampere, scale=1.0)
        names = [p.name for p in w.phases]
        assert names.count("als_user#0") == 1
        users = [n for n in names if n.startswith("als_user")]
        items = [n for n in names if n.startswith("als_item")]
        assert len(users) == len(items) == N_ITERATIONS

    def test_user_half_is_high_bandwidth(self, ampere):
        w = InMemoryAnalyticsWorkload(ampere, scale=1.0)
        user = next(p for p in w.phases if p.name == "als_user#0")
        item = next(p for p in w.phases if p.name == "als_item#0")
        assert w.phase_bandwidth(user) > 2 * w.phase_bandwidth(item)
        assert w.phase_bandwidth(user) / GiB == pytest.approx(97.0, rel=0.05)

    def test_periodicity_near_15s(self, ampere):
        """The ALS halves alternate with a ~15 s period (paper Fig. 3)."""
        from repro.nmo.bandwidth import dominant_period_s

        w = InMemoryAnalyticsWorkload(ampere, scale=1.0)
        t = np.arange(0.0, w.baseline_seconds(), 0.5)
        bw = np.zeros_like(t)
        for phase, t0, t1 in w.phase_spans():
            mask = (t >= t0) & (t < t1)
            bw[mask] = w.phase_bandwidth(phase)
        period = dominant_period_s((t, bw))
        assert period == pytest.approx(15.0, rel=0.2)

    def test_rss_monotone_nondecreasing(self, ampere):
        w = InMemoryAnalyticsWorkload(ampere, scale=1.0)
        t = np.linspace(0, w.baseline_seconds(), 200)
        rss = w.rss_at(t)
        assert (np.diff(rss) >= -1e-6).all()
