"""Cluster end-to-end: sharding, byte parity, replication, faults.

The tentpole guarantees:

* a sweep sharded across two agents produces a report (and on-disk
  cache payload bytes) **byte-identical** to a single-host
  :meth:`~repro.scenarios.Session.run` of the same spec,
* after one cluster run every agent holds every entry, so a rerun is a
  pure cache replay on any host (zero trials executed anywhere),
* killing an agent mid-job ends in a retried ``done`` or a clean
  ``partial`` — never a hang — and losing *all* agents degrades to
  ``partial`` with the loss recorded,
* per-tenant quotas reject over-budget submits with a structured
  ``quota_exceeded`` error at admission.
"""

import threading
import time

import pytest

from repro.cluster import Coordinator, QuotaPolicy, ShardAgent
from repro.errors import ServeError
from repro.orchestrate import ResultCache, cache_key
from repro.scenarios import Session
from repro.scenarios.session import _json_safe
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import ServerClient


def cluster_spec(name="cluster-e2e", trials=2, seed=31, workloads=None):
    names = workloads or ("stream", "pagerank")
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=tuple(
            WorkloadSpec(w, n_threads=2, scale=0.02) for w in names
        ),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


@pytest.fixture()
def two_agents(tmp_path):
    with ShardAgent(
        port=0, workers=2, cache=ResultCache(tmp_path / "agent-a")
    ) as a, ShardAgent(
        port=0, workers=2, cache=ResultCache(tmp_path / "agent-b")
    ) as b:
        yield a, b


def make_coordinator(agents, tmp_path, **kwargs):
    return Coordinator(
        port=0,
        agents=[a.address for a in agents],
        cache=ResultCache(tmp_path / "coord"),
        **kwargs,
    )


def objects(cache_dir):
    return {
        p.relative_to(cache_dir): p.read_bytes()
        for p in (cache_dir / "objects").rglob("*.pkl")
    }


class TestByteParity:
    def test_sharded_run_matches_single_host_session(
        self, two_agents, tmp_path
    ):
        spec = cluster_spec()
        with make_coordinator(two_agents, tmp_path) as coord:
            with ServerClient(*coord.address) as client:
                outcome = client.run(spec)
        assert outcome.state == "done", outcome.error
        assert len(outcome.rows) == 4
        # both agents actually computed a share (keys spread by design)
        shares = [a.scheduler.trials_executed for a in two_agents]
        assert sum(shares) == 4 and all(s > 0 for s in shares)

        session = Session(cache=ResultCache(tmp_path / "single"))
        report = session.run(spec)

        # rows: every streamed row matches the direct trial result
        by_index = {e["index"]: e["row"] for e in outcome.rows}
        for i, t in enumerate(session.plan(spec)):
            direct = session.cache.get(
                cache_key(t.experiment, t.config, t.seed)
            )
            assert by_index[i] == _json_safe(direct)

        # report: identical results/provenance/spec (execution is
        # runtime-dependent by design and excluded from render)
        want = report.to_dict()
        assert outcome.report["results"] == want["results"]
        assert outcome.report["provenance"] == want["provenance"]
        assert outcome.report["spec"] == want["spec"]

        # cache payloads: byte-identical files under every cache dir
        single = objects(tmp_path / "single")
        for cache_dir in ("coord", "agent-a", "agent-b"):
            replica = objects(tmp_path / cache_dir)
            assert set(single) <= set(replica)
            for rel, payload in single.items():
                assert replica[rel] == payload, (cache_dir, rel)

    def test_results_rows_are_plan_ordered(self, two_agents, tmp_path):
        spec = cluster_spec(name="ordered", seed=32)
        with make_coordinator(two_agents, tmp_path) as coord:
            with ServerClient(*coord.address) as client:
                ack = client.submit(spec)
                job = coord.queue.get(ack["job_id"])
                assert job.wait_terminal(timeout=60) == "done"
                rows = client.results(ack["job_id"])["rows"]
        assert [r["index"] for r in rows] == list(range(4))


class TestReplication:
    def test_rerun_is_a_pure_replay_on_every_host(
        self, two_agents, tmp_path
    ):
        spec = cluster_spec(name="replay", seed=33)
        with make_coordinator(two_agents, tmp_path) as coord:
            with ServerClient(*coord.address) as client:
                first = client.run(spec)
                assert first.state == "done"
                executed = [a.scheduler.trials_executed for a in two_agents]
                replay = client.run(spec)
        assert replay.state == "done"
        assert all(e["cached"] for e in replay.rows)
        # the replay came from the coordinator cache: no agent computed
        # (or even served) a single extra trial
        assert [a.scheduler.trials_executed for a in two_agents] == executed
        assert replay.report["results"] == first.report["results"]

    def test_any_single_agent_can_replay_the_whole_spec(
        self, two_agents, tmp_path
    ):
        spec = cluster_spec(name="solo-replay", seed=34)
        with make_coordinator(two_agents, tmp_path) as coord:
            with ServerClient(*coord.address) as client:
                assert client.run(spec).state == "done"
        # after replication, each agent holds the full entry set and
        # serves the spec as a 100% cache hit on its own
        for agent in two_agents:
            with ServerClient(*agent.address) as direct:
                outcome = direct.run(spec)
            assert outcome.state == "done"
            assert all(e["cached"] for e in outcome.rows)

    def test_peer_push_can_be_disabled(self, two_agents, tmp_path):
        spec = cluster_spec(name="no-repl", seed=35)
        with make_coordinator(
            two_agents, tmp_path, replicate=False
        ) as coord:
            with ServerClient(*coord.address) as client:
                outcome = client.run(spec)
        assert outcome.state == "done"
        # the pull into the coordinator still happened (the report
        # needs it), but no agent received the other's entries
        coord_entries = set(objects(tmp_path / "coord"))
        assert len(coord_entries) == 4
        a_entries = set(objects(tmp_path / "agent-a"))
        b_entries = set(objects(tmp_path / "agent-b"))
        assert a_entries | b_entries == coord_entries
        assert not (a_entries & b_entries)


class TestFaults:
    def test_dead_agent_share_retries_on_survivor(self, tmp_path):
        # agent B is registered, then dies before the job: its share
        # must be re-sharded onto A and the job still complete
        a = ShardAgent(port=0, workers=2, cache=ResultCache(tmp_path / "a"))
        b = ShardAgent(port=0, workers=2, cache=ResultCache(tmp_path / "b"))
        a.start()
        b.start()
        try:
            with make_coordinator([a, b], tmp_path) as coord:
                b.stop()  # dies after registration, before any submit
                with ServerClient(*coord.address) as client:
                    outcome = client.run(cluster_spec(name="lost-b", seed=41))
                assert outcome.state == "done", outcome.error
                assert len(outcome.rows) == 4
                dead = [h for h in coord.agents if not h.alive]
                assert len(dead) == 1
        finally:
            a.stop()

    def test_all_agents_dead_is_clean_partial_not_a_hang(self, tmp_path):
        a = ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path / "a"))
        a.start()
        coord = make_coordinator([a], tmp_path, max_retries=1)
        coord.start()
        try:
            a.stop()
            with ServerClient(*coord.address) as client:
                ack = client.submit(cluster_spec(name="doomed", seed=42))
                job = coord.queue.get(ack["job_id"])
                assert job.wait_terminal(timeout=60) == "partial"
                # partial results stay retrievable (no report, no rows)
                res = client.results(ack["job_id"])
                assert res["state"] == "partial"
                assert res["report"] is None
                snap = client.status(ack["job_id"])
            assert snap["state"] == "partial"
            assert len(snap["lost"]) == 4
            assert "lost" in snap["error"]
        finally:
            coord.stop()

    def test_cancel_mid_job_is_sticky(self, two_agents, tmp_path):
        spec = cluster_spec(name="cancel-race", trials=4, seed=43)
        with make_coordinator(two_agents, tmp_path) as coord:
            with ServerClient(*coord.address) as client:
                ack = client.submit(spec)
                client.cancel(ack["job_id"])
                job = coord.queue.get(ack["job_id"])
                assert job.wait_terminal(timeout=60) == "cancelled"
                time.sleep(0.2)  # any in-flight shard rows settle
                assert job.state == "cancelled"


class TestQuota:
    def test_over_budget_submit_is_rejected_with_structure(
        self, two_agents, tmp_path
    ):
        quota = QuotaPolicy(capacity=5, refill_per_s=0.001)
        with make_coordinator(two_agents, tmp_path, quota=quota) as coord:
            with ServerClient(*coord.address) as client:
                client.run(cluster_spec(name="q1", seed=51))  # costs 4
                with pytest.raises(ServeError) as exc:
                    client.submit(cluster_spec(name="q2", seed=52),
                                  tenant="default")
        err = exc.value
        assert err.code == "quota_exceeded"
        assert err.details["tenant"] == "default"
        assert err.details["retry_after_s"] > 0

    def test_tenants_meter_independently(self, two_agents, tmp_path):
        quota = QuotaPolicy(capacity=4, refill_per_s=0.001)
        with make_coordinator(two_agents, tmp_path, quota=quota) as coord:
            with ServerClient(*coord.address) as client:
                client.submit(cluster_spec(name="qa", seed=53), tenant="a")
                with pytest.raises(ServeError):
                    client.submit(cluster_spec(name="qa2", seed=54),
                                  tenant="a")
                # tenant b has its own full bucket
                ack = client.submit(cluster_spec(name="qb", seed=55),
                                    tenant="b")
                job = coord.queue.get(ack["job_id"])
                assert job.wait_terminal(timeout=60) == "done"

    def test_ping_reports_quota_and_agents(self, two_agents, tmp_path):
        quota = QuotaPolicy(capacity=9, refill_per_s=2)
        with make_coordinator(two_agents, tmp_path, quota=quota) as coord:
            with ServerClient(*coord.address) as client:
                info = client.ping()
        assert info["role"] == "coordinator"
        assert info["quota"]["capacity"] == 9
        assert len(info["agents"]) == 2
        assert all(a["alive"] for a in info["agents"])


class TestMembership:
    def test_skewed_agent_cannot_join(self, tmp_path):
        # a plain socket server that answers pings with a wrong version
        import socketserver

        from repro.serve import protocol

        class SkewHandler(socketserver.StreamRequestHandler):
            def handle(self):
                msg = protocol.read_message(self.rfile)
                if msg:
                    protocol.write_message(
                        self.wfile, protocol.ok_response(protocol=99)
                    )

        with socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), SkewHandler
        ) as skew:
            thread = threading.Thread(
                target=skew.serve_forever, daemon=True
            )
            thread.start()
            coord = Coordinator(
                port=0,
                agents=[skew.server_address[:2]],
                cache=ResultCache(tmp_path / "coord"),
            )
            with pytest.raises(ServeError) as exc:
                coord.start()
            assert exc.value.code == "protocol_mismatch"
            coord.stop()
            skew.shutdown()

    def test_dead_address_fails_registration_fast(self, tmp_path):
        coord = Coordinator(
            port=0,
            agents=[("127.0.0.1", 1)],  # nothing listens there
            cache=ResultCache(tmp_path / "coord"),
        )
        with pytest.raises(ServeError) as exc:
            coord.start()
        assert exc.value.code == "connect_failed"
        coord.stop()

    def test_register_adds_a_live_agent(self, tmp_path):
        with ShardAgent(
            port=0, workers=1, cache=ResultCache(tmp_path / "a")
        ) as agent:
            with Coordinator(
                port=0, cache=ResultCache(tmp_path / "coord")
            ) as coord:
                handle = coord.register(*agent.address)
                assert handle.alive
                assert len(coord.live_agents()) == 1
