"""Token-bucket quotas: refill math, structured rejection, isolation."""

import pytest

from repro.cluster import QuotaPolicy, TokenBucket
from repro.errors import QuotaExceededError


class Clock:
    """Injectable monotonic clock: tests advance time, never sleep."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(10, 1, clock=Clock())
        assert bucket.tokens == 10
        assert bucket.try_spend(7)
        assert bucket.tokens == 3

    def test_rejection_leaves_bucket_untouched(self):
        bucket = TokenBucket(5, 1, clock=Clock())
        assert not bucket.try_spend(6)
        assert bucket.tokens == 5

    def test_refills_at_rate_capped_at_capacity(self):
        clock = Clock()
        bucket = TokenBucket(10, 2, clock=clock)
        bucket.try_spend(10)
        clock.advance(3)
        assert bucket.tokens == pytest.approx(6)
        clock.advance(1000)
        assert bucket.tokens == 10

    def test_retry_after_is_the_exact_wait(self):
        clock = Clock()
        bucket = TokenBucket(10, 2, clock=clock)
        bucket.try_spend(10)
        assert bucket.retry_after(6) == pytest.approx(3.0)
        clock.advance(3)
        assert bucket.retry_after(6) == pytest.approx(0.0)
        assert bucket.try_spend(6)

    def test_over_capacity_cost_reports_wait_to_full(self):
        clock = Clock()
        bucket = TokenBucket(4, 1, clock=clock)
        bucket.try_spend(4)
        assert bucket.retry_after(100) == pytest.approx(4.0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1, 0)


class TestQuotaPolicy:
    def test_admit_spends_and_rejects_with_structure(self):
        clock = Clock()
        policy = QuotaPolicy(capacity=8, refill_per_s=2, clock=clock)
        policy.admit("alice", 6)
        with pytest.raises(QuotaExceededError) as exc:
            policy.admit("alice", 6)
        err = exc.value
        assert err.code == "quota_exceeded"
        assert err.details["tenant"] == "alice"
        assert err.details["cost"] == 6
        assert err.details["retry_after_s"] == pytest.approx(2.0)

    def test_refill_reopens_admission(self):
        clock = Clock()
        policy = QuotaPolicy(capacity=8, refill_per_s=2, clock=clock)
        policy.admit("alice", 8)
        clock.advance(4)
        policy.admit("alice", 8)  # no raise

    def test_tenants_are_isolated(self):
        clock = Clock()
        policy = QuotaPolicy(capacity=4, refill_per_s=1, clock=clock)
        policy.admit("greedy", 4)
        policy.admit("modest", 2)  # unaffected by greedy's empty bucket
        with pytest.raises(QuotaExceededError):
            policy.admit("greedy", 1)

    def test_snapshot_lists_known_tenants(self):
        clock = Clock()
        policy = QuotaPolicy(capacity=4, refill_per_s=1, clock=clock)
        policy.admit("a", 1)
        policy.admit("b", 3)
        snap = policy.snapshot()
        assert snap == {"a": 3.0, "b": 1.0}
