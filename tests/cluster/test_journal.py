"""The durable job journal: WAL framing, torn tails, and recovery.

The journal is the leg of the resilience tentpole that survives
SIGKILL: every record is canonical JSON with a CRC over its encoding,
appends are single atomic writes, and replay stops at the first
corrupt line instead of trusting anything past the tear.  These tests
pin the framing, the fsync batching counters, and :func:`recover`'s
folding rules — the resume path itself is exercised end-to-end in
``test_resume.py``.
"""

import json
import threading
import zlib

from repro.cluster import JobJournal, JobRecovery, read_journal, recover
from repro.cluster.journal import RECORD_TYPES, _canonical


def admit(journal, job_id="job-1", trials=4, tenant="default"):
    journal.append(
        "job_admitted", sync=True, job_id=job_id,
        spec={"name": "j", "trials": trials}, tenant=tenant,
        priority=0, trials=trials,
    )


class TestFraming:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with JobJournal(path) as journal:
            admit(journal)
            journal.append("row_landed", job_id="job-1", index=0, key="k0")
            journal.append(
                "job_state", sync=True, job_id="job-1", state="done",
                error=None, lost={},
            )
        records, dropped = read_journal(path)
        assert dropped == 0
        assert [r["type"] for r in records] == [
            "job_admitted", "row_landed", "job_state"
        ]
        assert records[1]["index"] == 0

    def test_lines_are_canonical_crc_framed(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with JobJournal(path) as journal:
            journal.append("row_landed", job_id="j", index=7, key="k")
        (line,) = path.read_bytes().splitlines()
        obj = json.loads(line)
        assert set(obj) == {"crc", "rec"}
        assert obj["crc"] == zlib.crc32(_canonical(obj["rec"]).encode())
        # canonical: compact separators, sorted keys
        assert line.decode() == _canonical(obj)

    def test_missing_file_is_an_empty_journal(self, tmp_path):
        assert read_journal(tmp_path / "never-written") == ([], 0)

    def test_corrupt_line_stops_replay_and_counts_drops(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with JobJournal(path) as journal:
            admit(journal)
            journal.append("row_landed", job_id="job-1", index=0, key="k0")
            journal.append("row_landed", job_id="job-1", index=1, key="k1")
        lines = path.read_bytes().splitlines()
        # flip a bit in the middle record: CRC must catch it, and the
        # clean record after the tear must NOT be trusted
        bad = lines[1].replace(b'"index":0', b'"index":9')
        path.write_bytes(b"\n".join([lines[0], bad, lines[2]]) + b"\n")
        records, dropped = read_journal(path)
        assert [r["type"] for r in records] == ["job_admitted"]
        assert dropped == 2

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with JobJournal(path) as journal:
            admit(journal)
            journal.append("row_landed", job_id="job-1", index=0, key="k0")
        # a SIGKILL mid-write leaves a partial final line
        with open(path, "ab") as f:
            f.write(b'{"crc": 123, "rec": {"type": "row_la')
        records, dropped = read_journal(path)
        assert len(records) == 2
        assert dropped == 1

    def test_fsync_batching_counters(self, tmp_path):
        with JobJournal(tmp_path / "wal", fsync_every=4) as journal:
            for i in range(3):
                journal.append("row_landed", job_id="j", index=i, key="k")
            assert journal.synced == 0     # below the batch threshold
            journal.append("row_landed", job_id="j", index=3, key="k")
            assert journal.synced == 1     # 4th append hit the batch
            journal.append("job_state", sync=True, job_id="j", state="done")
            assert journal.synced == 2     # terminal states force it
            assert journal.appended == 5

    def test_append_after_close_is_a_silent_noop(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        admit(journal)
        journal.close()
        journal.append("row_landed", job_id="job-1", index=0, key="k")
        journal.sync()  # also safe
        records, _ = read_journal(tmp_path / "wal")
        assert len(records) == 1

    def test_concurrent_appends_never_interleave(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        with JobJournal(path, fsync_every=64) as journal:
            admit(journal)

            def land(base):
                for i in range(50):
                    journal.append(
                        "row_landed", job_id="job-1",
                        index=base + i, key=f"k{base + i}",
                    )

            threads = [
                threading.Thread(target=land, args=(base,))
                for base in (0, 1000, 2000, 3000)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        records, dropped = read_journal(path)
        assert dropped == 0
        assert len(records) == 201  # every line CRC-clean

    def test_unknown_record_type_is_rejected_at_write(self, tmp_path):
        with JobJournal(tmp_path / "wal") as journal:
            try:
                journal.append("job_vanished", job_id="j")
            except AssertionError:
                pass
            else:  # pragma: no cover - guards a silent-schema drift
                raise AssertionError("unknown record type was accepted")
        assert "job_vanished" not in RECORD_TYPES


class TestRecover:
    def test_folds_landings_and_terminal_state(self, tmp_path):
        path = tmp_path / "wal"
        with JobJournal(path) as journal:
            admit(journal, "job-1", trials=3)
            journal.append(
                "shard_assigned", job_id="job-1",
                agent="127.0.0.1:7201", indices=[0, 1, 2],
            )
            journal.append("row_landed", job_id="job-1", index=0, key="k0")
            journal.append("row_landed", job_id="job-1", index=2, key="k2")
            journal.append(
                "job_state", sync=True, job_id="job-1", state="partial",
                error="agents lost", lost={"1": "agent died"},
            )
        jobs = recover(read_journal(path)[0])
        job = jobs["job-1"]
        assert isinstance(job, JobRecovery)
        assert job.landed == {0, 2}
        assert job.assignments == 1
        assert job.terminal and job.state == "partial"
        assert job.error == "agents lost"
        assert job.lost == {1: "agent died"}

    def test_in_flight_job_has_no_terminal_state(self, tmp_path):
        path = tmp_path / "wal"
        with JobJournal(path) as journal:
            admit(journal, "job-1")
            journal.append("row_landed", job_id="job-1", index=0, key="k0")
        job = recover(read_journal(path)[0])["job-1"]
        assert not job.terminal
        assert job.state is None
        assert job.landed == {0}

    def test_duplicate_landings_fold_idempotently(self, tmp_path):
        # re-plans can journal the same index twice (two agents raced)
        path = tmp_path / "wal"
        with JobJournal(path) as journal:
            admit(journal, "job-1")
            for _ in range(3):
                journal.append("row_landed", job_id="job-1", index=1, key="k")
        assert recover(read_journal(path)[0])["job-1"].landed == {1}

    def test_records_for_unadmitted_jobs_are_ignored(self, tmp_path):
        path = tmp_path / "wal"
        with JobJournal(path) as journal:
            journal.append("row_landed", job_id="ghost", index=0, key="k")
            admit(journal, "job-1")
        jobs = recover(read_journal(path)[0])
        assert set(jobs) == {"job-1"}

    def test_admission_order_is_preserved(self, tmp_path):
        path = tmp_path / "wal"
        with JobJournal(path) as journal:
            for jid in ("job-3", "job-1", "job-2"):
                admit(journal, jid)
        assert list(recover(read_journal(path)[0])) == [
            "job-3", "job-1", "job-2"
        ]

    def test_resume_counter_accumulates(self, tmp_path):
        path = tmp_path / "wal"
        with JobJournal(path) as journal:
            admit(journal, "job-1")
            journal.append("job_resumed", job_id="job-1", ok=True, landed=0)
            journal.append("job_resumed", job_id="job-1", ok=True, landed=4)
        assert recover(read_journal(path)[0])["job-1"].resumes == 2

    def test_reopen_appends_to_the_same_wal(self, tmp_path):
        # a --resume boot reopens the journal and keeps writing
        path = tmp_path / "wal"
        with JobJournal(path) as journal:
            admit(journal, "job-1")
        with JobJournal(path) as journal:
            journal.append("row_landed", job_id="job-1", index=0, key="k0")
        records, dropped = read_journal(path)
        assert dropped == 0 and len(records) == 2
