"""Cache replication: byte-exact export/import, pull/push over agents."""

import pytest

from repro.cluster import CacheReplicator, ShardAgent, decode_entry, encode_entry
from repro.errors import ClusterError, ServeError
from repro.orchestrate import ResultCache, cache_key
from repro.serve import ServerClient


def put_entry(cache, name="repl", seed=0, value=None):
    key = cache_key(name, {"n": seed}, seed)
    cache.put(key, value if value is not None else {"metric": float(seed)})
    return key


class TestEntryBytes:
    def test_export_import_is_byte_identical(self, tmp_path):
        src = ResultCache(tmp_path / "src")
        dst = ResultCache(tmp_path / "dst")
        key = put_entry(src, value={"metric": 3.5, "samples": 7})
        pkl, cols = src.export_entry(key)
        dst.import_entry(key, pkl, cols)
        assert dst._path(key).read_bytes() == src._path(key).read_bytes()
        if cols is not None:
            assert (
                dst._cols_path(key).read_bytes()
                == src._cols_path(key).read_bytes()
            )
        assert dst.get(key) == src.get(key)

    def test_export_unknown_key_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            ResultCache(tmp_path).export_entry("0" * 64)

    def test_import_without_sidecar(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.import_entry("ab" * 32, b"not-a-pickle-but-stored", None)
        assert cache.contains("ab" * 32)
        assert not cache._cols_path("ab" * 32).exists()

    def test_wire_roundtrip(self):
        payload = encode_entry(b"\x00\x01binary", b"cols-bytes")
        assert decode_entry(payload) == (b"\x00\x01binary", b"cols-bytes")
        payload = encode_entry(b"solo", None)
        assert decode_entry(payload) == (b"solo", None)

    def test_malformed_payload_is_a_cluster_error(self):
        with pytest.raises(ClusterError):
            decode_entry({"pkl": "!!! not base64 !!!"})
        with pytest.raises(ClusterError):
            decode_entry({})


class TestAgentOps:
    @pytest.fixture()
    def agent(self, tmp_path):
        with ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path)) as a:
            yield a

    def test_export_import_over_the_wire(self, agent, tmp_path):
        key = put_entry(agent.cache, value={"metric": 9.0})
        local = ResultCache(tmp_path / "local")
        replicator = CacheReplicator(local)
        with ServerClient(*agent.address) as client:
            pulled = replicator.pull(client, [key])
        assert pulled == 1
        assert local._path(key).read_bytes() == agent.cache._path(key).read_bytes()

    def test_pull_skips_present_and_missing(self, agent, tmp_path):
        held = put_entry(agent.cache, seed=1)
        local = ResultCache(tmp_path / "local")
        already = put_entry(local, seed=2)
        missing = cache_key("repl", {"n": 99}, 99)  # neither side has it
        replicator = CacheReplicator(local)
        with ServerClient(*agent.address) as client:
            pulled = replicator.pull(client, [held, already, missing])
        assert pulled == 1
        assert local.contains(held) and not local.contains(missing)

    def test_push_is_idempotent(self, agent, tmp_path):
        local = ResultCache(tmp_path / "local")
        key = put_entry(local, seed=5)
        replicator = CacheReplicator(local)
        with ServerClient(*agent.address) as client:
            assert replicator.push(client, [key]) == 1
            assert agent.cache.contains(key)
            # second push: the agent already holds identical bytes
            assert replicator.push(client, [key]) == 0

    def test_export_of_unknown_key_is_structured(self, agent):
        with ServerClient(*agent.address) as client:
            with pytest.raises(ServeError) as exc:
                client.request("cache_export", key="f" * 64)
            assert exc.value.code == "bad_request"

    def test_cache_ops_require_a_key(self, agent):
        with ServerClient(*agent.address) as client:
            with pytest.raises(ServeError):
                client.request("cache_export")
            with pytest.raises(ServeError):
                client.request("cache_import", pkl="aGk=")

    def test_plain_server_rejects_cache_ops(self):
        from repro.serve import ProfilingServer

        with ProfilingServer(port=0, workers=1) as srv:
            with ServerClient(*srv.address) as client:
                with pytest.raises(ServeError):
                    client.request("cache_export", key="a" * 64)
