"""Shard partitioning: determinism, coverage, order preservation."""

import hashlib

import pytest

from repro.cluster import partition_indices, shard_for_key


def keys_for(n):
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestShardForKey:
    def test_deterministic(self):
        keys = keys_for(50)
        assert [shard_for_key(k, 4) for k in keys] == [
            shard_for_key(k, 4) for k in keys
        ]

    def test_in_range(self):
        for k in keys_for(100):
            for n in (1, 2, 3, 7):
                assert 0 <= shard_for_key(k, n) < n

    def test_single_shard_owns_everything(self):
        assert {shard_for_key(k, 1) for k in keys_for(20)} == {0}

    def test_real_digests_spread(self):
        # 256 sha256 keys over 4 shards: every shard gets real work
        owners = [shard_for_key(k, 4) for k in keys_for(256)]
        assert {owners.count(s) for s in range(4)} != {0}
        assert all(owners.count(s) > 20 for s in range(4))

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_for_key(keys_for(1)[0], 0)


class TestPartitionIndices:
    def test_partition_is_exact_cover(self):
        keys = keys_for(40)
        indices = list(range(40))
        shards = partition_indices(keys, indices, 3)
        assert sorted(i for chunk in shards for i in chunk) == indices
        assert len(shards) == 3

    def test_subset_partition_only_covers_subset(self):
        keys = keys_for(40)
        subset = [3, 7, 21, 39]
        shards = partition_indices(keys, subset, 2)
        assert sorted(i for chunk in shards for i in chunk) == subset

    def test_plan_order_preserved_within_shard(self):
        keys = keys_for(64)
        for chunk in partition_indices(keys, list(range(64)), 4):
            assert chunk == sorted(chunk)

    def test_same_key_same_shard_across_jobs(self):
        # a twin trial appearing in two different jobs lands on the same
        # shard, where the agent's in-flight dedup can collapse it
        keys = keys_for(10)
        a = partition_indices(keys, list(range(10)), 3)
        b = partition_indices(keys, [9, 5, 0], 3)
        owner_a = {i: s for s, chunk in enumerate(a) for i in chunk}
        owner_b = {i: s for s, chunk in enumerate(b) for i in chunk}
        for idx in (0, 5, 9):
            assert owner_a[idx] == owner_b[idx]
