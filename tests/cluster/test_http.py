"""HTTP gateway: same payloads and e2e semantics as the socket.

The gateway is a transport adapter over
:meth:`~repro.serve.ServerBase.call` /
:meth:`~repro.serve.ServerBase.stream_events`, so this file runs the
same end-to-end shapes as the socket suite — submit/stream/results
parity, structured errors (now also as HTTP status codes), chunked
streaming — against both a plain :class:`ProfilingServer` backend and
a full two-agent cluster.
"""

import json
from http.client import HTTPConnection

import pytest

from repro.cluster import (
    Coordinator,
    HttpClusterClient,
    HttpGateway,
    ShardAgent,
    STATUS_BY_CODE,
)
from repro.errors import ServeError
from repro.orchestrate import ResultCache
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import ProfilingServer, ServerClient, protocol


def http_spec(name="http-e2e", trials=2, seed=61):
    return ScenarioSpec(
        name=name,
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.02),),
        machine="small_test_machine",
        trials=trials,
        seed=seed,
    )


@pytest.fixture(scope="module")
def backend(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("http-cache"))
    with ProfilingServer(port=0, workers=2, cache=cache) as srv:
        yield srv


@pytest.fixture(scope="module")
def gateway(backend):
    with HttpGateway(backend) as gw:
        yield gw


@pytest.fixture()
def client(gateway):
    return HttpClusterClient(*gateway.address)


class TestHttpE2E:
    def test_run_round_trip(self, client):
        outcome = client.run(http_spec())
        assert outcome.state == "done"
        assert len(outcome.rows) == 2
        assert outcome.report is not None

    def test_http_and_socket_see_the_same_job(self, backend, client):
        # submit over HTTP, fetch over the socket: one job space
        ack = client.submit(http_spec(name="shared", seed=62))
        with ServerClient(*backend.address) as sock:
            job = backend.queue.get(ack["job_id"])
            job.wait_terminal(timeout=60)
            socket_results = sock.results(ack["job_id"])
        http_results = client.results(ack["job_id"])
        assert http_results["rows"] == socket_results["rows"]
        assert http_results["report"] == socket_results["report"]

    def test_stream_delivers_rows_then_end(self, client):
        ack = client.submit(http_spec(name="streamed", seed=63))
        events = list(client.stream(ack["job_id"]))
        assert [e["event"] for e in events] == ["row", "row", "end"]
        assert events[-1]["state"] == "done"

    def test_status_and_cancel(self, client):
        ack = client.submit(http_spec(name="cancelled", trials=6, seed=64))
        assert client.status(ack["job_id"])["total"] == 6
        assert client.cancel(ack["job_id"])["state"] == "cancelled"

    def test_ping(self, client):
        info = client.ping()
        assert info["protocol"] == protocol.PROTOCOL_VERSION
        assert info["workers"] == 2


class TestHttpErrors:
    def test_unknown_job_is_404_with_structured_body(self, gateway):
        conn = HTTPConnection(*gateway.address, timeout=10)
        conn.request("GET", "/v1/jobs/job-999-deadbeef")
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 404
        assert body["error"]["code"] == "unknown_job"

    def test_bad_spec_is_400(self, gateway):
        conn = HTTPConnection(*gateway.address, timeout=10)
        payload = json.dumps(
            {"spec": {"name": "broken", "kind": "no_such_kind"}}
        ).encode()
        conn.request("POST", "/v1/jobs", body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert body["error"]["code"] == "bad_spec"

    def test_unknown_path_is_400(self, gateway):
        conn = HTTPConnection(*gateway.address, timeout=10)
        conn.request("GET", "/v2/everything")
        response = conn.getresponse()
        response.read()
        conn.close()
        assert response.status == 400

    def test_stream_of_unknown_job_is_structured(self, client):
        with pytest.raises(ServeError) as exc:
            list(client.stream("job-999-deadbeef"))
        assert exc.value.code == "unknown_job"

    def test_client_raises_typed_errors(self, client):
        with pytest.raises(ServeError) as exc:
            client.results("job-999-deadbeef")
        assert exc.value.code == "unknown_job"

    def test_connect_failed_is_structured(self):
        dead = HttpClusterClient("127.0.0.1", 1, timeout=2)
        with pytest.raises(ServeError) as exc:
            dead.ping()
        assert exc.value.code == "connect_failed"

    def test_status_map_covers_every_protocol_error_code(self):
        for code in protocol.ERROR_CODES:
            assert STATUS_BY_CODE.get(code, 500) >= 400


class TestHttpOverCluster:
    def test_cluster_run_over_http(self, tmp_path):
        spec = http_spec(name="http-cluster", seed=65)
        with ShardAgent(
            port=0, workers=2, cache=ResultCache(tmp_path / "a")
        ) as a, ShardAgent(
            port=0, workers=2, cache=ResultCache(tmp_path / "b")
        ) as b:
            coord = Coordinator(
                port=0,
                agents=[a.address, b.address],
                cache=ResultCache(tmp_path / "coord"),
            )
            with coord, HttpGateway(coord) as gw:
                client = HttpClusterClient(*gw.address)
                first = client.run(spec, tenant="http-tests")
                assert first.state == "done"
                assert first.report is not None
                replay = client.run(spec, tenant="http-tests")
                assert replay.state == "done"
                assert all(e["cached"] for e in replay.rows)
                assert client.ping()["role"] == "coordinator"
