"""SIGKILL an agent process mid-job: retried ``done`` or clean
``partial`` — never a hang.

The in-process fault tests (``test_coordinator_e2e.py``) stop agents
cleanly; this one spawns real ``python -m repro cluster agent``
processes and SIGKILLs one while its shard is in flight, which is the
fault mode the coordinator's retry loop exists for.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster import Coordinator
from repro.orchestrate import ResultCache
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.serve import ServerClient

SRC = Path(__file__).resolve().parents[2] / "src"


def kill_spec():
    return ScenarioSpec(
        name="agent-kill",
        kind="profile",
        workloads=(
            WorkloadSpec("stream", n_threads=2, scale=0.05),
            WorkloadSpec("pagerank", n_threads=2, scale=0.05),
        ),
        machine="small_test_machine",
        trials=3,
        seed=81,
    )


def start_agent(cache_dir):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "cluster", "agent",
            "--port", "0", "--workers", "2", "--cache-dir", str(cache_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,  # own process group: workers die with it
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        match = re.search(r"shard agent on 127\.0\.0\.1:(\d+)", line or "")
        if match:
            return proc, int(match.group(1))
        if proc.poll() is not None:
            break
    proc.kill()
    raise AssertionError("agent process never became ready")


def test_sigkill_mid_job_never_hangs(tmp_path):
    victim, victim_port = start_agent(tmp_path / "victim")
    survivor, survivor_port = start_agent(tmp_path / "survivor")
    try:
        with Coordinator(
            port=0,
            agents=[("127.0.0.1", victim_port), ("127.0.0.1", survivor_port)],
            cache=ResultCache(tmp_path / "coord"),
            max_retries=2,
        ) as coord:
            with ServerClient(*coord.address) as client:
                ack = client.submit(kill_spec())
                job = coord.queue.get(ack["job_id"])
                # let the shards start landing rows, then kill one host
                with job.cond:
                    job.cond.wait_for(
                        lambda: job.completed >= 1 or job.is_terminal(),
                        timeout=60,
                    )
                os.killpg(victim.pid, signal.SIGKILL)
                victim.wait(timeout=10)
                state = job.wait_terminal(timeout=90)
                assert state in ("done", "partial"), state
                if state == "done":
                    # every trial landed despite the dead host
                    assert job.completed == job.total == 6
                    assert client.results(ack["job_id"])["report"]
                else:
                    # clean degradation: the loss is recorded, results
                    # for the surviving rows stay retrievable
                    assert job.lost
                    assert client.status(ack["job_id"])["state"] == "partial"
            dead = [h for h in coord.agents if not h.alive]
            assert len(dead) >= 1
    finally:
        for proc in (victim, survivor):
            try:
                os.killpg(proc.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            if proc.poll() is None:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    os.killpg(proc.pid, signal.SIGKILL)
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
