"""Dynamic membership: states, probing, revival, epochs, and the ops.

The resilience tentpole's first leg: agents join and leave a *running*
coordinator, a background prober walks them through
``alive → suspect → dead`` on missed pings and revives them on a
successful re-probe, and every transition bumps the membership epoch
the sharding loop re-plans on.  The acceptance bar pinned here: an
agent that dies and is restarted is re-admitted by the prober and
receives work **without a coordinator restart**.
"""

import time

import pytest

from repro.cluster import (
    AGENT_STATES,
    HttpClusterClient,
    HttpGateway,
    Membership,
    RetryPolicy,
    ShardAgent,
)
from repro.errors import ServeError
from repro.orchestrate import ResultCache
from repro.serve import ServerClient

from tests.cluster.test_coordinator_e2e import cluster_spec, make_coordinator

#: fail fast against dead sockets: probes are single-shot anyway
FAST = RetryPolicy(
    max_attempts=1, base_backoff_s=0.01, op_timeout_s=5.0,
    connect_timeout_s=1.0,
)


def wait_until(predicate, timeout=10.0, step=0.02):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


class TestStates:
    def test_state_catalogue(self):
        assert AGENT_STATES == ("alive", "suspect", "dead", "left")

    def test_alive_setter_backcompat(self, tmp_path):
        membership = Membership(agents=[("127.0.0.1", 9)], policy=FAST)
        (handle,) = membership.handles()
        assert handle.alive and handle.state == "alive"
        handle.alive = False
        assert handle.state == "dead" and not handle.alive
        handle.alive = True
        assert handle.state == "alive" and handle.misses == 0

    def test_describe_carries_the_lifecycle_fields(self):
        membership = Membership(agents=[("127.0.0.1", 9)], policy=FAST)
        desc = membership.handles()[0].describe()
        for field in ("host", "port", "state", "alive", "misses",
                      "revivals", "reason"):
            assert field in desc


class TestProbing:
    def test_misses_walk_alive_suspect_dead_and_success_revives(
        self, tmp_path
    ):
        agent = ShardAgent(
            port=0, workers=1, cache=ResultCache(tmp_path / "a")
        )
        agent.start()
        membership = Membership(
            agents=[agent.address], policy=FAST,
            suspect_after=1, dead_after=3,
        )
        (handle,) = membership.handles()
        try:
            assert membership.probe_once() == 0  # healthy: no change
            assert handle.state == "alive"

            host, port = agent.address
            agent.stop()
            epoch0 = membership.epoch
            membership.probe_once()
            assert handle.state == "suspect"
            assert membership.epoch > epoch0  # transition bumped it
            assert membership.live() == []    # suspects are not scheduled
            membership.probe_once()
            assert handle.state == "suspect"  # 2 misses: still suspect
            membership.probe_once()
            assert handle.state == "dead"     # 3rd miss crosses dead_after

            # a restarted agent on the same address is revived in place
            agent2 = ShardAgent(
                host=host, port=port, workers=1,
                cache=ResultCache(tmp_path / "a2"),
            )
            agent2.start()
            try:
                membership.probe_once()
                assert handle.state == "alive"
                assert handle.misses == 0
                assert handle.revivals == 1
                assert membership.live() == [handle]
            finally:
                agent2.stop()
        finally:
            membership.stop()

    def test_left_agents_are_never_probed_back(self, tmp_path):
        agent = ShardAgent(
            port=0, workers=1, cache=ResultCache(tmp_path / "a")
        )
        agent.start()
        try:
            membership = Membership(agents=[agent.address], policy=FAST)
            handle = membership.leave(*agent.address)
            assert handle.state == "left"
            membership.probe_once()  # the agent is up and answering
            assert handle.state == "left"
            assert membership.live() == []
        finally:
            agent.stop()

    def test_background_prober_detects_death_and_revival(self, tmp_path):
        agent = ShardAgent(
            port=0, workers=1, cache=ResultCache(tmp_path / "a")
        )
        agent.start()
        host, port = agent.address
        membership = Membership(
            agents=[(host, port)], policy=FAST,
            probe_interval_s=0.05, suspect_after=1, dead_after=2,
        )
        (handle,) = membership.handles()
        membership.start()
        try:
            agent.stop()
            assert wait_until(lambda: handle.state == "dead")
            agent2 = ShardAgent(
                host=host, port=port, workers=1,
                cache=ResultCache(tmp_path / "a2"),
            )
            agent2.start()
            try:
                assert wait_until(lambda: handle.state == "alive")
                assert handle.revivals == 1
            finally:
                agent2.stop()
        finally:
            membership.stop()

    def test_leave_unknown_agent_is_structured(self):
        membership = Membership(policy=FAST)
        with pytest.raises(ServeError) as exc:
            membership.leave("127.0.0.1", 9999)
        assert exc.value.code == "bad_request"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            Membership(suspect_after=0)
        with pytest.raises(ValueError):
            Membership(suspect_after=3, dead_after=2)


class TestMembershipOps:
    def test_join_leave_status_over_the_socket_protocol(self, tmp_path):
        a = ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path / "a"))
        b = ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path / "b"))
        a.start()
        b.start()
        try:
            with make_coordinator([a], tmp_path, policy=FAST) as coord:
                with ServerClient(*coord.address) as client:
                    status = client.request("agents_status")
                    assert len(status["agents"]) == 1
                    epoch0 = status["epoch"]

                    joined = client.request(
                        "agents_join", host=b.address[0], port=b.address[1]
                    )
                    assert joined["agent"]["state"] == "alive"
                    assert joined["epoch"] > epoch0

                    left = client.request(
                        "agents_leave", host=b.address[0], port=b.address[1]
                    )
                    assert left["agent"]["state"] == "left"

                    status = client.request("agents_status")
                    states = {
                        (s["host"], s["port"]): s["state"]
                        for s in status["agents"]
                    }
                    assert states[(b.address[0], b.address[1])] == "left"
        finally:
            a.stop()
            b.stop()

    def test_join_dead_address_fails_structured(self, tmp_path):
        a = ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path / "a"))
        a.start()
        try:
            with make_coordinator([a], tmp_path, policy=FAST) as coord:
                with ServerClient(*coord.address) as client:
                    with pytest.raises(ServeError) as exc:
                        client.request(
                            "agents_join", host="127.0.0.1", port=1
                        )
                    assert exc.value.code == "connect_failed"
                    # the failed join left no membership residue
                    assert len(client.request("agents_status")["agents"]) == 1
        finally:
            a.stop()

    def test_join_leave_status_over_http(self, tmp_path):
        a = ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path / "a"))
        b = ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path / "b"))
        a.start()
        b.start()
        try:
            with make_coordinator([a], tmp_path, policy=FAST) as coord:
                with HttpGateway(coord, port=0) as gw:
                    http = HttpClusterClient(*gw.address)
                    assert len(http.agents_status()["agents"]) == 1
                    joined = http.agents_join(*b.address)
                    assert joined["agent"]["state"] == "alive"
                    left = http.agents_leave(*b.address)
                    assert left["agent"]["state"] == "left"
                    assert len(http.agents_status()["agents"]) == 2
        finally:
            a.stop()
            b.stop()

    def test_bad_agent_addr_params_are_rejected(self, tmp_path):
        a = ShardAgent(port=0, workers=1, cache=ResultCache(tmp_path / "a"))
        a.start()
        try:
            with make_coordinator([a], tmp_path, policy=FAST) as coord:
                with ServerClient(*coord.address) as client:
                    for params in (
                        {},
                        {"host": "x"},
                        {"host": "", "port": 80},
                        {"host": "x", "port": "80"},
                        {"host": "x", "port": 0},
                    ):
                        with pytest.raises(ServeError) as exc:
                            client.request("agents_join", **params)
                        assert exc.value.code in (
                            "bad_request", "connect_failed"
                        )
        finally:
            a.stop()


class TestMidJobMembership:
    def test_joining_agent_receives_work_mid_job(self, tmp_path):
        """A join lands capacity on a *running* job via epoch re-plan."""
        a = ShardAgent(port=0, workers=2, cache=ResultCache(tmp_path / "a"))
        b = ShardAgent(port=0, workers=2, cache=ResultCache(tmp_path / "b"))
        a.start()
        b.start()
        try:
            spec = cluster_spec(name="mid-join", trials=6, seed=61)
            with make_coordinator([a], tmp_path, policy=FAST) as coord:
                with ServerClient(*coord.address) as client:
                    ack = client.submit(spec)
                    coord.register(*b.address)  # join while job runs
                    job = coord.queue.get(ack["job_id"])
                    assert job.wait_terminal(timeout=120) == "done"
                    rows = client.results(ack["job_id"])["rows"]
            # every index landed exactly once; the re-plan may have
            # dispatched an in-flight index to both agents (the cache
            # dedupes at landing), so execution counts only bound below
            assert [r["index"] for r in rows] == list(range(12))
            total = (
                a.scheduler.trials_executed + b.scheduler.trials_executed
            )
            assert total >= 12
        finally:
            a.stop()
            b.stop()

    def test_prober_revived_agent_receives_work_without_restart(
        self, tmp_path
    ):
        """The acceptance criterion: die → restart → probed back → works."""
        a = ShardAgent(port=0, workers=2, cache=ResultCache(tmp_path / "a"))
        b = ShardAgent(port=0, workers=2, cache=ResultCache(tmp_path / "b"))
        a.start()
        b.start()
        bhost, bport = b.address
        try:
            with make_coordinator(
                [a, b], tmp_path, policy=FAST,
                probe_interval_s=0.05, suspect_after=1, dead_after=1,
            ) as coord:
                handle = coord.membership.get(bhost, bport)
                # kill B; the prober must notice without any dispatch
                b.stop()
                assert wait_until(lambda: handle.state == "dead")

                # restart B on the same port; the prober re-admits it
                b2 = ShardAgent(
                    host=bhost, port=bport, workers=2,
                    cache=ResultCache(tmp_path / "b2"),
                )
                b2.start()
                try:
                    assert wait_until(lambda: handle.state == "alive")
                    assert handle.revivals >= 1

                    # and it receives work: no coordinator restart
                    with ServerClient(*coord.address) as client:
                        outcome = client.run(
                            cluster_spec(name="revived", seed=62)
                        )
                    assert outcome.state == "done", outcome.error
                    assert b2.scheduler.trials_executed > 0
                finally:
                    b2.stop()
        finally:
            a.stop()
