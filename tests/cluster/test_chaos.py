"""Randomized membership chaos: join, leave, kill, revive — mid-job.

Each case drives one cluster job while a seeded schedule of chaos ops
mutates the membership underneath it: agents get stopped mid-shard,
restarted on the same port (the prober re-admits them), fresh agents
join through ``agents_join``, and registered ones deregister.  The
resilience contract under *any* such schedule:

* the job always reaches a terminal state — never a hang;
* a ``done`` job's report is byte-identical to a single-host
  :meth:`Session.run` of the same spec;
* a ``partial`` job stays clean: its landed rows are retrievable and
  the loss is recorded.

The schedules are deterministic per seed, so a failing seed replays.
"""

import random
import time

import pytest

from repro.cluster import Coordinator, RetryPolicy, ShardAgent
from repro.orchestrate import ResultCache
from repro.scenarios import Session
from repro.serve import ServerClient

from tests.cluster.test_coordinator_e2e import cluster_spec

FAST = RetryPolicy(
    max_attempts=2, base_backoff_s=0.02, backoff_cap_s=0.1,
    op_timeout_s=15.0, connect_timeout_s=1.0,
)


class ChaosCluster:
    """A pool of in-process agents the chaos schedule mutates."""

    def __init__(self, tmp_path, n_agents=3):
        self.tmp_path = tmp_path
        self.n_dirs = 0
        self.running = {}   # (host, port) -> ShardAgent
        self.stopped = []   # addresses available for revival
        for _ in range(n_agents):
            self.spawn()

    def _cache(self):
        self.n_dirs += 1
        return ResultCache(self.tmp_path / f"agent-{self.n_dirs}")

    def spawn(self, host="127.0.0.1", port=0):
        agent = ShardAgent(host=host, port=port, workers=2, cache=self._cache())
        agent.start()
        self.running[agent.address] = agent
        return agent

    def kill(self, addr):
        agent = self.running.pop(addr)
        agent.stop()
        self.stopped.append(addr)

    def revive(self, addr):
        self.stopped.remove(addr)
        return self.spawn(host=addr[0], port=addr[1])

    def stop_all(self):
        for agent in list(self.running.values()):
            agent.stop()
        self.running.clear()


def run_chaos_schedule(coord, cluster, protected, rng, steps=6):
    """Apply ``steps`` random membership mutations with tiny pauses."""
    for _ in range(steps):
        time.sleep(rng.uniform(0.02, 0.15))
        op = rng.choice(("kill", "revive", "join", "leave"))
        victims = [a for a in cluster.running if a != protected]
        if op == "kill" and victims:
            cluster.kill(rng.choice(victims))
        elif op == "revive" and cluster.stopped:
            agent = cluster.revive(rng.choice(cluster.stopped))
            # an operator may also re-announce it explicitly; the
            # prober would find it anyway
            if rng.random() < 0.5:
                try:
                    coord.register(*agent.address)
                except Exception:
                    pass  # racing its own startup: the prober catches up
        elif op == "join":
            agent = cluster.spawn()
            coord.register(*agent.address)
        elif op == "leave" and victims:
            addr = rng.choice(victims)
            if coord.membership.get(*addr) is not None:
                coord.membership.leave(*addr)


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_chaos_schedule_never_hangs_and_stays_correct(tmp_path, seed):
    rng = random.Random(seed)
    spec = cluster_spec(name=f"chaos-{seed}", trials=3, seed=200 + seed)
    cluster = ChaosCluster(tmp_path, n_agents=3)
    try:
        protected = next(iter(cluster.running))  # never killed or left
        with Coordinator(
            port=0,
            agents=list(cluster.running),
            cache=ResultCache(tmp_path / "coord"),
            max_retries=3,
            policy=FAST,
            probe_interval_s=0.05,
            suspect_after=1,
            dead_after=2,
        ) as coord:
            with ServerClient(*coord.address) as client:
                ack = client.submit(spec)
                job = coord.queue.get(ack["job_id"])
                run_chaos_schedule(coord, cluster, protected, rng)
                state = job.wait_terminal(timeout=120)
                assert state in ("done", "partial"), state

                if state == "done":
                    outcome = client.results(ack["job_id"])
                    session = Session(cache=ResultCache(tmp_path / "single"))
                    want = session.run(spec).to_dict()
                    assert outcome["report"]["results"] == want["results"]
                    assert (
                        outcome["report"]["provenance"] == want["provenance"]
                    )
                    assert outcome["report"]["spec"] == want["spec"]
                    assert [r["index"] for r in outcome["rows"]] == list(
                        range(job.total)
                    )
                else:
                    # clean partial: the loss is recorded and every
                    # landed row stays retrievable
                    snap = client.status(ack["job_id"])
                    assert snap["state"] == "partial"
                    assert job.lost
                    rows = client.results(ack["job_id"])["rows"]
                    landed = {r["index"] for r in rows}
                    assert landed.isdisjoint(job.lost.keys())
                    assert len(landed) + len(job.lost) == job.total
    finally:
        cluster.stop_all()


def test_chaos_with_journal_resumes_after_the_dust_settles(tmp_path):
    """Chaos + crash: whatever landed before the kill is never redone."""
    rng = random.Random(1234)
    spec = cluster_spec(name="chaos-resume", trials=3, seed=300)
    cluster = ChaosCluster(tmp_path, n_agents=3)
    journal = tmp_path / "wal.ndjson"
    try:
        protected = next(iter(cluster.running))
        with Coordinator(
            port=0,
            agents=list(cluster.running),
            cache=ResultCache(tmp_path / "coord"),
            max_retries=3,
            policy=FAST,
            probe_interval_s=0.05,
            dead_after=2,
            journal=journal,
        ) as coord:
            with ServerClient(*coord.address) as client:
                ack = client.submit(spec)
                job = coord.queue.get(ack["job_id"])
                run_chaos_schedule(coord, cluster, protected, rng, steps=4)
                job.wait_terminal(timeout=120)
        # "crash": the first coordinator is gone; journal + cache stay.
        # drop the terminal record so resume re-adopts the job
        from tests.cluster.test_resume import drop_job_state_lines

        drop_job_state_lines(journal)
        from repro.cluster import read_journal, recover

        landed_before = recover(read_journal(journal)[0])[ack["job_id"]].landed
        with Coordinator(
            port=0,
            agents=list(cluster.running),
            cache=ResultCache(tmp_path / "coord"),
            max_retries=3,
            policy=FAST,
            journal=journal,
            resume=True,
        ) as coord2:
            assert coord2.resumed_jobs == 1
            job2 = coord2.queue.get(ack["job_id"])
            assert job2.wait_terminal(timeout=120) == "done"
            with ServerClient(*coord2.address) as client:
                rows = client.results(ack["job_id"])["rows"]
            assert [r["index"] for r in rows] == list(range(job2.total))
        # zero recomputation of journaled landings: every index the
        # journal had already landed came back as a cache replay, not
        # a fresh dispatch
        cached_indices = {r["index"] for r in rows if r["cached"]}
        assert landed_before <= cached_indices
    finally:
        cluster.stop_all()
