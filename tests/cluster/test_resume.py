"""Crash-recovery resume: the journal replay path, end to end.

The acceptance bar of the resilience tentpole: SIGKILL the
*coordinator* mid-job, restart it with ``--resume`` on the same cache
directory and journal, and the job completes under its original id
with **zero recomputation** of journaled-as-landed indices and a
report byte-identical to a single-host :meth:`Session.run`.  The
subprocess test does exactly that; the in-process tests cover the
replay rules (terminal restores, cache fast path, unplannable specs).
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster import Coordinator, JobJournal, read_journal, recover
from repro.orchestrate import ResultCache
from repro.scenarios import Session
from repro.serve import ServerClient

from tests.cluster.test_agent_kill import start_agent
from tests.cluster.test_coordinator_e2e import (  # noqa: F401 - fixture
    cluster_spec,
    make_coordinator,
    two_agents,
)

SRC = Path(__file__).resolve().parents[2] / "src"


def start_coordinator(agent_ports, cache_dir, journal, resume=False):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    cmd = [
        sys.executable, "-m", "repro", "cluster", "coordinator",
        "--port", "0",
        "--agents", ",".join(f"127.0.0.1:{p}" for p in agent_ports),
        "--cache-dir", str(cache_dir),
        "--journal", str(journal),
    ]
    if resume:
        cmd.append("--resume")
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        match = re.search(r"coordinator on 127\.0\.0\.1:(\d+)", line or "")
        if match:
            return proc, int(match.group(1)), line
        if proc.poll() is not None:
            break
    proc.kill()
    raise AssertionError("coordinator process never became ready")


def kill_group(proc, sig=signal.SIGKILL):
    try:
        os.killpg(proc.pid, sig)
    except ProcessLookupError:
        pass


def drop_job_state_lines(journal_path):
    """Rewrite a journal as if the crash beat the terminal record."""
    kept = []
    for line in Path(journal_path).read_bytes().splitlines():
        if json.loads(line)["rec"]["type"] != "job_state":
            kept.append(line)
    Path(journal_path).write_bytes(b"\n".join(kept) + b"\n")


class TestSigkillResume:
    def test_sigkill_coordinator_mid_job_then_resume_completes(
        self, tmp_path
    ):
        spec = cluster_spec(name="resume-kill", trials=3, seed=71)
        agent_a, port_a = start_agent(tmp_path / "agent-a")
        agent_b, port_b = start_agent(tmp_path / "agent-b")
        coord = coord2 = None
        try:
            journal = tmp_path / "wal.ndjson"
            coord, cport, _ = start_coordinator(
                [port_a, port_b], tmp_path / "coord", journal
            )
            with ServerClient("127.0.0.1", cport) as client:
                ack = client.submit(spec)
                job_id = ack["job_id"]
                assert ack["trials"] == 6
                # wait for at least one journaled landing, then murder
                # the coordinator with the job still in flight
                deadline = time.monotonic() + 90
                while time.monotonic() < deadline:
                    landed = recover(read_journal(journal)[0])
                    if landed and landed[job_id].landed:
                        break
                    time.sleep(0.05)
                else:
                    raise AssertionError("no landing ever journaled")
            kill_group(coord)
            coord.wait(timeout=10)

            pre = recover(read_journal(journal)[0])[job_id]
            assert not pre.terminal  # it really died mid-job
            executed_before = {}
            for port in (port_a, port_b):
                with ServerClient("127.0.0.1", port) as agent:
                    executed_before[port] = agent.ping()["trials_executed"]

            coord2, cport2, banner = start_coordinator(
                [port_a, port_b], tmp_path / "coord", journal, resume=True
            )
            assert "resumed_jobs=1" in banner
            with ServerClient("127.0.0.1", cport2) as client:
                # the job survives under its original id
                deadline = time.monotonic() + 120
                while time.monotonic() < deadline:
                    snap = client.status(job_id)
                    if snap["state"] in ("done", "partial", "failed"):
                        break
                    time.sleep(0.1)
                assert snap["state"] == "done", snap
                outcome = client.results(job_id)

            # zero recomputation: across both coordinator lives every
            # trial executed exactly once somewhere — the resumed boot
            # re-dispatched nothing the journal had already landed
            executed = 0
            for port in (port_a, port_b):
                with ServerClient("127.0.0.1", port) as agent:
                    executed += agent.ping()["trials_executed"]
            assert executed == 6
            for port in (port_a, port_b):
                with ServerClient("127.0.0.1", port) as agent:
                    after = agent.ping()["trials_executed"]
                    # journaled-as-landed indices never re-executed:
                    # each agent only ever grew by the job's remainder
                    assert after - executed_before[port] <= 6 - len(pre.landed)

            # byte parity with a single-host run of the same spec
            session = Session(cache=ResultCache(tmp_path / "single"))
            want = session.run(spec).to_dict()
            assert outcome["report"]["results"] == want["results"]
            assert outcome["report"]["provenance"] == want["provenance"]
            assert outcome["report"]["spec"] == want["spec"]

            # the journal tells the whole story, including the resume
            rec = recover(read_journal(journal)[0])[job_id]
            assert rec.resumes == 1
            assert rec.state == "done"
            assert rec.landed == set(range(6))
        finally:
            for proc in (coord, coord2, agent_a, agent_b):
                if proc is not None:
                    kill_group(proc, signal.SIGTERM)
            for proc in (coord, coord2, agent_a, agent_b):
                if proc is not None:
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        kill_group(proc)


class TestResumeRules:
    def test_done_job_replays_from_cache_without_agent_work(
        self, tmp_path, two_agents
    ):
        spec = cluster_spec(name="resume-done", seed=72)
        journal = tmp_path / "wal.ndjson"
        with make_coordinator(
            two_agents, tmp_path, journal=journal
        ) as coord:
            with ServerClient(*coord.address) as client:
                outcome = client.run(spec)
            assert outcome.state == "done"
            job_id = outcome.job_id
        executed = [a.scheduler.trials_executed for a in two_agents]

        # crash just before the terminal record: the journal holds the
        # admission and every landing, but no job_state
        drop_job_state_lines(journal)

        coord2 = Coordinator(
            port=0,
            agents=[a.address for a in two_agents],
            cache=ResultCache(tmp_path / "coord"),  # same cache dir
            journal=journal,
            resume=True,
        )
        with coord2:
            assert coord2.resumed_jobs == 1
            job = coord2.queue.get(job_id)  # original id, not a new one
            assert job.wait_terminal(timeout=60) == "done"
            with ServerClient(*coord2.address) as client:
                rows = client.results(job_id)["rows"]
            assert [r["index"] for r in rows] == list(range(4))
        # the cache fast path landed everything: no agent executed
        # (or was even asked for) a single extra trial
        assert [a.scheduler.trials_executed for a in two_agents] == executed

    def test_failed_and_cancelled_jobs_are_restored_not_retried(
        self, tmp_path
    ):
        spec = cluster_spec(name="resume-terminal", seed=73)
        journal_path = tmp_path / "wal.ndjson"
        with JobJournal(journal_path) as journal:
            journal.append(
                "job_admitted", sync=True, job_id="job-failed",
                spec=spec.to_dict(), tenant="default", priority=0, trials=4,
            )
            journal.append(
                "job_state", sync=True, job_id="job-failed",
                state="failed", error="agents exploded", lost={},
            )
            journal.append(
                "job_admitted", sync=True, job_id="job-gone",
                spec=spec.to_dict(), tenant="default", priority=0, trials=4,
            )
            journal.append(
                "job_state", sync=True, job_id="job-gone",
                state="cancelled", error=None, lost={},
            )
        with Coordinator(
            port=0, agents=[], cache=ResultCache(tmp_path / "coord"),
            journal=journal_path, resume=True,
        ) as coord:
            assert coord.resumed_jobs == 0  # nothing re-dispatched
            failed = coord.queue.get("job-failed")
            assert failed.state == "failed"
            assert failed.error == "agents exploded"
            assert coord.queue.get("job-gone").state == "cancelled"

    def test_unplannable_journaled_spec_is_skipped(self, tmp_path):
        journal_path = tmp_path / "wal.ndjson"
        with JobJournal(journal_path) as journal:
            journal.append(
                "job_admitted", sync=True, job_id="job-bad",
                spec={"name": "bad", "workloads": [{"workload": "no-such"}]},
                tenant="default", priority=0, trials=1,
            )
        with Coordinator(
            port=0, agents=[], cache=ResultCache(tmp_path / "coord"),
            journal=journal_path, resume=True,
        ) as coord:
            assert coord.resumed_jobs == 0
            from repro.errors import ServeError
            with pytest.raises(ServeError):
                coord.queue.get("job-bad")
        records, _ = read_journal(journal_path)
        skip = [r for r in records if r["type"] == "job_resumed"]
        assert len(skip) == 1 and skip[0]["ok"] is False

    def test_resume_without_journal_is_rejected_by_the_cli(self, capsys):
        from repro.__main__ import main

        code = main([
            "cluster", "coordinator",
            "--agents", "127.0.0.1:1", "--resume",
        ])
        assert code == 2
        assert "--resume needs --journal" in capsys.readouterr().err
