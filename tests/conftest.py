"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cpu.clock import GenericTimer
from repro.cpu.pipeline import PipelineModel
from repro.machine.spec import ampere_altra_max, small_test_machine, x86_pebs_machine


@pytest.fixture
def ampere():
    """The paper's testbed machine (Table II)."""
    return ampere_altra_max()


@pytest.fixture
def tiny():
    """A small machine for fast cache/address-space tests."""
    return small_test_machine()


@pytest.fixture
def x86():
    return x86_pebs_machine()


@pytest.fixture
def pipeline(ampere):
    return PipelineModel(ampere)


@pytest.fixture
def timer(ampere):
    return GenericTimer(ampere.frequency_hz)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
