"""Shared-memory result transport: marshal/unmarshal, fallbacks, leaks."""

import os

import numpy as np
import pytest

from repro.errors import SubstrateError
from repro.substrate import (
    SHM_MIN_BYTES,
    TRANSPORT_ENV,
    ShmResult,
    discard,
    marshal,
    transport,
    unmarshal,
)


def big_value(n=100_000):
    return {"data": np.arange(n, dtype=np.uint64), "label": "trial"}


def shm_segments():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # non-Linux fallback: skip leak accounting
        return set()


class TestMarshal:
    def test_round_trip(self):
        before = shm_segments()
        handle = marshal(big_value())
        assert isinstance(handle, ShmResult)
        assert handle.size >= SHM_MIN_BYTES
        got = unmarshal(handle)
        assert got["label"] == "trial"
        assert np.array_equal(got["data"], big_value()["data"])
        assert shm_segments() == before  # unmarshal unlinked the segment

    def test_small_value_takes_the_pipe(self):
        value = {"n": 1}
        assert marshal(value) is value

    def test_unencodable_takes_the_pipe(self):
        value = object()
        assert marshal(value) is value

    def test_non_handle_passes_through_unmarshal(self):
        value = {"n": 1}
        assert unmarshal(value) is value

    def test_min_bytes_override(self):
        handle = marshal({"x": np.arange(64, dtype=np.uint64)}, min_bytes=1)
        assert isinstance(handle, ShmResult)
        got = unmarshal(handle)
        assert np.array_equal(got["x"], np.arange(64, dtype=np.uint64))


class TestTransportSwitch:
    def test_default_is_shm(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert transport() == "shm"

    def test_pickle_disables_marshalling(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "pickle")
        assert transport() == "pickle"
        value = big_value()
        assert marshal(value) is value

    def test_unknown_value_means_shm(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "bogus")
        assert transport() == "shm"


class TestFailure:
    def test_vanished_segment_raises(self):
        handle = marshal(big_value())
        discard(handle)  # simulate the segment dying before redemption
        with pytest.raises(SubstrateError, match="vanished"):
            unmarshal(handle)

    def test_discard_is_idempotent_and_typed(self):
        discard({"not": "a handle"})  # no-op
        handle = marshal(big_value())
        discard(handle)
        discard(handle)  # second discard of a gone segment: no raise
