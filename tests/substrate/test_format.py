"""Columnar payload container: layout, zero-copy views, corruption."""

import json

import numpy as np
import pytest

from repro.errors import SubstrateError
from repro.substrate import (
    ALIGN,
    FORMAT_VERSION,
    MAGIC,
    decode_payload,
    encode_payload,
    is_payload,
    payload_version,
)


def cols():
    return [
        np.arange(100, dtype=np.uint64),
        np.linspace(0.0, 1.0, 33),
        np.zeros((4, 7), dtype=np.int32),
        np.array([], dtype=np.uint8),
    ]


class TestLayout:
    def test_round_trip(self):
        meta = {"kind": "test", "n": 3}
        buf = encode_payload(meta, cols())
        got_meta, got_cols = decode_payload(buf)
        assert got_meta == meta
        assert len(got_cols) == 4
        for a, b in zip(got_cols, cols()):
            assert a.dtype == b.dtype and a.shape == b.shape
            assert np.array_equal(a, b)

    def test_magic_and_version(self):
        buf = encode_payload({}, [])
        assert buf[: len(MAGIC)] == MAGIC
        assert is_payload(buf)
        assert not is_payload(b"not a payload")
        assert payload_version(buf) == FORMAT_VERSION

    def test_columns_are_aligned(self):
        buf = encode_payload({"x": 1}, cols())
        header_len = int.from_bytes(buf[8:12], "little")
        header = json.loads(buf[12 : 12 + header_len])
        for _dtype, _shape, offset, nbytes in header["cols"]:
            assert offset % ALIGN == 0
            assert offset + nbytes <= len(buf)

    def test_meta_key_order_is_part_of_payload(self):
        a = encode_payload({"a": 1, "b": 2}, [])
        b = encode_payload({"b": 2, "a": 1}, [])
        assert a != b  # insertion order round-trips, never sorted away

    def test_deterministic_bytes(self):
        assert encode_payload({"k": [1, 2]}, cols()) == encode_payload(
            {"k": [1, 2]}, cols()
        )


class TestZeroCopy:
    def test_views_alias_the_buffer(self):
        buf = encode_payload({}, cols())
        _, views = decode_payload(buf, copy=False)
        for v in views:
            assert not v.flags.writeable
            assert v.base is not None

    def test_copy_gives_writeable_arrays(self):
        buf = encode_payload({}, cols())
        _, copies = decode_payload(buf, copy=True)
        for c in copies:
            assert c.flags.writeable
        copies[0][0] = 999  # must not raise


class TestCorruption:
    def test_bad_magic(self):
        buf = bytearray(encode_payload({}, cols()))
        buf[0] ^= 0xFF
        with pytest.raises(SubstrateError):
            decode_payload(bytes(buf))

    def test_truncated_preamble(self):
        with pytest.raises(SubstrateError):
            decode_payload(MAGIC + b"\x01")

    def test_truncated_column(self):
        buf = encode_payload({}, cols())
        with pytest.raises(SubstrateError):
            decode_payload(buf[: len(buf) - ALIGN])

    def test_mangled_header_json(self):
        buf = bytearray(encode_payload({"key": "value"}, cols()))
        buf[16] = 0x00  # stomp inside the JSON header
        with pytest.raises(SubstrateError):
            decode_payload(bytes(buf))

    def test_future_version_rejected(self):
        buf = bytearray(encode_payload({}, []))
        buf[4] = 0xFF
        with pytest.raises(SubstrateError):
            decode_payload(bytes(buf))
