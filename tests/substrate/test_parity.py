"""Codec parity: the columnar round trip is byte-identical to pickle.

The substrate is only allowed to exist because it is invisible: for
every result type the stack caches or ships between processes, decoding
an encoded payload (``copy=True``) must yield an object whose pickle
serialisation is **byte-identical** to the original's.  That is a much
stronger property than ``==`` — it pins dict insertion order, exact
scalar types, dtypes, and even string-object sharing (pickle memoises
repeated strings by identity).
"""

import enum
import pickle

import numpy as np
import pytest

from repro.machine.spec import small_test_machine
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.scenarios import Session, colo_interference_spec, tiering_sweep_spec
from repro.substrate import decode, encodable, encode
from repro.workloads.stream import StreamWorkload


def round_trip(value):
    payload = encode(value)
    assert payload is not None, f"{type(value).__name__} not encodable"
    return decode(payload, copy=True)


def assert_pickle_identical(value):
    got = round_trip(value)
    assert pickle.dumps(got) == pickle.dumps(value)


@pytest.fixture(scope="module")
def profile_result():
    machine = small_test_machine()
    w = StreamWorkload(machine, n_threads=2, n_elems=1 << 14, iterations=2)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048)
    return NmoProfiler(w, settings, seed=0).run()


class TestScalarShapes:
    CASES = [
        None,
        True,
        0,
        -17,
        3.5,
        float("inf"),
        "text",
        "",
        b"raw\x00bytes",
        (1, "two", 3.0),
        [1, [2, [3]]],
        {"a": 1, "b": [True, None]},
        {"z": 1, "a": 2},  # insertion order != sorted order
        {1: "non-string keys", (2, 3): "via the items marker"},
        np.uint64(7),
        np.float64(0.25),
        np.arange(10, dtype=np.int64),
        np.zeros((3, 5), dtype=np.float32),
        np.array([], dtype=np.uint8),
    ]

    @pytest.mark.parametrize("value", CASES, ids=lambda v: repr(v)[:40])
    def test_byte_identical(self, value):
        assert_pickle_identical(value)

    def test_shared_strings_stay_shared(self):
        # pickle memoises repeated string OBJECTS; the decoder's intern
        # table must restore the sharing or the bytes diverge
        s = "shared-phase-name"
        value = {"first": s, "second": s, "rows": [s, s]}
        assert_pickle_identical(value)


class TestUnsupportedFallsBack:
    @pytest.mark.parametrize(
        "value",
        [
            object(),
            np.array([object()], dtype=object),
            type("Unregistered", (), {})(),
        ],
        ids=["object", "object-array", "unregistered-class"],
    )
    def test_encode_returns_none(self, value):
        assert not encodable(value)
        assert encode(value) is None


class TestResultTypes:
    def test_sample_batch(self, profile_result):
        batch = profile_result.batch
        assert len(batch) > 0
        assert_pickle_identical(batch)

    def test_profile_result(self, profile_result):
        assert_pickle_identical(profile_result)

    def test_settings_and_enums(self):
        assert_pickle_identical(NmoSettings(enable=True, period=4096))
        assert isinstance(NmoMode.SAMPLING, enum.Enum)
        assert_pickle_identical(NmoMode.SAMPLING)

    def test_colocation_row(self):
        session = Session()
        spec = colo_interference_spec(
            max_corunners=1, scale=0.002, period=65536, n_threads=2
        )
        trial = session.plan(spec)[0]
        row = session.trial_fn(spec)(trial)
        assert_pickle_identical(row)

    def test_tiering_row(self):
        session = Session()
        spec = tiering_sweep_spec(
            scale=0.02, n_threads=2,
            policies=("interleave",), far_ratios=(0.5,),
            machine="tiered_test_machine",
        )
        trial = session.plan(spec)[0]
        row = session.trial_fn(spec)(trial)
        assert_pickle_identical(row)

    def test_zero_copy_views_are_value_equal(self, profile_result):
        batch = profile_result.batch
        payload = encode(batch)
        view = decode(payload)  # copy=False
        assert np.array_equal(view.addr, batch.addr)
        assert not view.addr.flags.writeable
