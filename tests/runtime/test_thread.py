"""Thread / team tests."""

import pytest

from repro.errors import MachineError
from repro.runtime.thread import SimThread, ThreadTeam


class TestSimThread:
    def test_advance(self):
        t = SimThread(0, 0)
        t.advance(100.0)
        assert t.cycles == 100.0

    def test_no_backwards(self):
        with pytest.raises(MachineError):
            SimThread(0, 0).advance(-1)

    def test_overhead_charged_to_clock(self):
        t = SimThread(0, 0)
        t.advance(100)
        t.charge_overhead(10)
        assert t.cycles == 110
        assert t.overhead_cycles == 10

    def test_retire_counts(self):
        t = SimThread(0, 0)
        t.retire(100, n_mem=40, n_flops=10)
        assert (t.ops_retired, t.mem_ops_retired, t.flops_retired) == (100, 40, 10)

    def test_retire_validation(self):
        with pytest.raises(MachineError):
            SimThread(0, 0).retire(10, n_mem=8, n_flops=5)

    def test_negative_ids(self):
        with pytest.raises(MachineError):
            SimThread(-1, 0)


class TestThreadTeam:
    def test_pinned_to_consecutive_cores(self):
        team = ThreadTeam(4)
        assert [t.core for t in team] == [0, 1, 2, 3]

    def test_barrier_aligns_to_slowest(self):
        team = ThreadTeam(3)
        team[0].advance(10)
        team[2].advance(50)
        team.barrier()
        assert all(t.cycles == 50 for t in team)

    def test_max_cycles(self):
        team = ThreadTeam(2)
        team[1].advance(33)
        assert team.max_cycles == 33

    def test_totals(self):
        team = ThreadTeam(2)
        team[0].retire(10, 5)
        team[1].retire(20, 8, 2)
        assert team.total_ops == 30
        assert team.total_mem_ops == 13
        assert team.total_flops == 2

    def test_total_overhead(self):
        team = ThreadTeam(2)
        team[0].charge_overhead(5)
        team[1].charge_overhead(7)
        assert team.total_overhead_cycles == 12

    def test_empty_team_rejected(self):
        with pytest.raises(MachineError):
            ThreadTeam(0)
