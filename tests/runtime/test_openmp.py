"""OpenMP static-scheduling tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.runtime.openmp import chunk_of, interleaved_chunks, static_chunks


class TestStaticChunks:
    def test_partition_exact(self):
        chunks = static_chunks(100, 7)
        covered = []
        for lo, hi in chunks:
            covered.extend(range(lo, hi))
        assert covered == list(range(100))

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in static_chunks(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_earlier_threads_get_remainder(self):
        sizes = [hi - lo for lo, hi in static_chunks(10, 3)]
        assert sizes == [4, 3, 3]

    def test_more_threads_than_iters(self):
        chunks = static_chunks(2, 5)
        sizes = [hi - lo for lo, hi in chunks]
        assert sum(sizes) == 2
        assert sizes.count(0) == 3

    def test_zero_iters(self):
        assert all(lo == hi for lo, hi in static_chunks(0, 4))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            static_chunks(-1, 2)
        with pytest.raises(WorkloadError):
            static_chunks(10, 0)


class TestChunkOf:
    @pytest.mark.parametrize("n,t", [(100, 7), (13, 4), (5, 5), (1000, 32)])
    def test_matches_static_chunks(self, n, t):
        full = static_chunks(n, t)
        for i in range(t):
            assert chunk_of(n, t, i) == full[i]

    def test_out_of_team(self):
        with pytest.raises(WorkloadError):
            chunk_of(10, 2, 5)


class TestInterleaved:
    def test_round_robin_partition(self):
        parts = interleaved_chunks(12, 3, chunk=2)
        assert parts[0].tolist() == [0, 1, 6, 7]
        assert parts[1].tolist() == [2, 3, 8, 9]

    def test_covers_everything(self):
        parts = interleaved_chunks(100, 7, chunk=3)
        allidx = np.sort(np.concatenate(parts))
        assert allidx.tolist() == list(range(100))

    def test_bad_chunk(self):
        with pytest.raises(WorkloadError):
            interleaved_chunks(10, 2, chunk=0)
