"""Simulated process / container tests."""

import pytest

from repro.errors import MachineError
from repro.machine.spec import GiB
from repro.runtime.process import ContainerSpec, SimProcess


class TestSimProcess:
    def test_construction(self, ampere):
        p = SimProcess(ampere, n_threads=4)
        assert p.team.n_threads == 4
        assert p.rss_bytes == 0

    def test_wall_time(self, ampere):
        p = SimProcess(ampere, n_threads=2)
        p.team[0].advance(3e9)
        assert p.wall_seconds == pytest.approx(1.0)

    def test_too_many_threads(self, tiny):
        with pytest.raises(MachineError):
            SimProcess(tiny, n_threads=tiny.n_cores + 1)

    def test_zero_threads(self, ampere):
        with pytest.raises(MachineError):
            SimProcess(ampere, n_threads=0)

    def test_env(self, ampere):
        p = SimProcess(ampere, env={"NMO_ENABLE": "on"})
        assert p.getenv("NMO_ENABLE") == "on"
        assert p.getenv("MISSING", "x") == "x"

    def test_mem_limit_applied_to_address_space(self, ampere):
        p = SimProcess(ampere, mem_limit=1 * GiB)
        assert p.address_space.mem_limit == 1 * GiB


class TestContainerSpec:
    def test_paper_container(self, ampere):
        """32 cores x 8 GiB per core = 256 GiB (paper §VI-A)."""
        c = ContainerSpec()
        assert c.cores == 32
        assert c.mem_limit == 256 * GiB

    def test_make_process(self, ampere):
        p = ContainerSpec().make_process(ampere)
        assert p.n_threads == 32
        assert p.mem_limit == 256 * GiB

    def test_thread_limit_enforced(self, ampere):
        with pytest.raises(MachineError):
            ContainerSpec(cores=4).make_process(ampere, n_threads=8)

    def test_validation(self):
        with pytest.raises(MachineError):
            ContainerSpec(cores=0)
