"""Docs/packaging stay in sync with the code they describe."""

import importlib
import inspect
import re
from pathlib import Path

import pytest

import repro
from repro.__main__ import COMMANDS, EXPERIMENTS, PARALLEL_EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent

#: every package whose __all__ is a public contract
PUBLIC_PACKAGES = (
    "repro",
    "repro.machine",
    "repro.cpu",
    "repro.kernel",
    "repro.spe",
    "repro.runtime",
    "repro.workloads",
    "repro.nmo",
    "repro.analysis",
    "repro.scenarios",
    "repro.evalharness",
    "repro.orchestrate",
    "repro.colocation",
    "repro.serve",
    "repro.cluster",
    "repro.substrate",
)

DOC_PAGES = sorted((ROOT / "docs").glob("*.md"))


class TestCliDoc:
    def doc(self) -> str:
        return (ROOT / "docs" / "cli.md").read_text()

    def test_every_command_documented(self):
        doc = self.doc()
        for name in COMMANDS:
            assert f"`{name}`" in doc, f"{name} missing from docs/cli.md"

    def test_descriptions_match_list_output(self):
        # `python -m repro list` and docs/cli.md render the same registry
        doc = self.doc()
        for name, (_fn, desc) in COMMANDS.items():
            assert desc in doc, f"description for {name} out of sync"

    def test_orchestration_flags_documented(self):
        doc = self.doc()
        for flag in ("--workers", "--cache", "--no-cache", "--cache-dir",
                     "--trials", "--scale", "--workload-scale",
                     "--corunners", "--report-json"):
            assert flag in doc, flag

    def test_run_command_examples_present(self):
        doc = self.doc()
        assert "python -m repro run" in doc
        assert "scenarios list" in doc

    def test_cache_actions_documented(self):
        doc = self.doc()
        assert "cache stats" in doc
        assert "cache clear" in doc


class TestReadme:
    def readme(self) -> str:
        return (ROOT / "README.md").read_text()

    def test_tier1_command_present(self):
        assert "python -m pytest -x -q" in self.readme()

    def test_exhibit_matrix_covers_cli_experiments(self):
        text = self.readme()
        for name in EXPERIMENTS:
            if name == "fig11":  # documented on the fig10 row
                continue
            assert f"python -m repro {name}" in text, name

    def test_exhibit_matrix_names_entry_points(self):
        text = self.readme()
        for fn_name in (
            "fig7_samples_vs_period",
            "fig8_accuracy_overhead_collisions",
            "fig9_aux_buffer",
            "fig10_fig11_threads",
            "colo_interference",
            "table1_env_defaults",
        ):
            assert fn_name in text, fn_name

    def test_orchestration_quickstart_present(self):
        text = self.readme()
        assert "--workers" in text and "cache stats" in text


class TestArchitectureDoc:
    def test_maps_every_package(self):
        doc = (ROOT / "docs" / "architecture.md").read_text()
        for pkg in ("repro.spe", "repro.kernel", "repro.machine",
                    "repro.machine.tiers",
                    "repro.nmo", "repro.workloads", "repro.evalharness",
                    "repro.orchestrate", "repro.analysis",
                    "repro.colocation", "repro.scenarios"):
            assert pkg in doc, pkg

    def test_parallel_exhibits_invariants_stated(self):
        doc = (ROOT / "docs" / "architecture.md").read_text()
        assert "byte-identical" in doc
        assert "ProcessPoolExecutor" in doc
        assert PARALLEL_EXPERIMENTS


class TestPerformanceDoc:
    def doc(self) -> str:
        return (ROOT / "docs" / "performance.md").read_text()

    def test_hot_paths_mapped(self):
        doc = self.doc()
        for name in ("collision_scan", "plan_feed_epochs", "op_latencies",
                     "sample_positions", "reference_path"):
            assert name in doc, name

    def test_bench_and_gate_commands_present(self):
        doc = self.doc()
        assert "bench_substrate_json.py" in doc
        assert "check_regression.py" in doc
        assert "BENCH_substrate.baseline.json" in doc

    def test_linked_from_readme_and_architecture(self):
        assert "docs/performance.md" in (ROOT / "README.md").read_text()
        assert "performance.md" in (ROOT / "docs" / "architecture.md").read_text()

    def test_named_artifacts_exist(self):
        assert (ROOT / "benchmarks" / "bench_substrate_json.py").exists()
        assert (ROOT / "benchmarks" / "check_regression.py").exists()
        assert (
            ROOT / "benchmarks" / "baselines" / "BENCH_substrate.baseline.json"
        ).exists()

    def test_root_report_when_present_is_well_formed(self):
        # the checked-in snapshot is regenerated in place by the bench
        # and by CI; tier-1 must not fail just because it was refreshed
        import json

        report = ROOT / "BENCH_substrate.json"
        if not report.exists():
            return
        data = json.loads(report.read_text())
        assert data["schema"] == "repro-bench-substrate/1"
        assert "collision_scan_100k_overlapping" in data["entries"]

    def test_baseline_carries_speedup_floors(self):
        import json

        base = json.loads(
            (ROOT / "benchmarks" / "baselines" / "BENCH_substrate.baseline.json")
            .read_text()
        )
        entries = base["entries"]
        scan = entries["collision_scan_100k_overlapping"]
        feed = entries["spe_feed_fig9_small_aux_profile"]
        assert scan["min_speedup"] == 5.0
        assert scan["speedup_vs_reference"] >= 5.0
        assert feed["min_speedup"] == 10.0
        assert feed["speedup_vs_reference"] >= 10.0
        hit = entries["cache_hit_mmap"]
        assert hit["min_speedup"] == 10.0
        assert hit["speedup_vs_reference"] >= 10.0
        assert "feed_stream_decode" in entries
        assert "serve_cache_replay" in entries

    def test_ci_workflow_has_perf_smoke_job(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "perf-smoke" in text
        assert "bench_substrate_json.py" in text
        assert "check_regression.py" in text
        assert "--max-slowdown 2.0" in text


class TestPackaging:
    def test_pyproject_exists_with_src_layout(self):
        text = (ROOT / "pyproject.toml").read_text()
        assert 'name = "repro"' in text
        assert 'where = ["src"]' in text
        assert 'repro = "repro.__main__:main"' in text

    def test_version_matches_package(self):
        text = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in text

    def test_ci_workflow_runs_tier1_and_smoke(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "python -m pytest -x -q" in text
        assert "--cache" in text
        assert "cache stats" in text

    def test_ci_workflow_smokes_colo_exhibit(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "colo_interference" in text
        assert "--workers 2" in text

    def test_ci_workflow_runs_example_scenario(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "repro run examples/scenarios/colo_smoke.json" in text
        assert "--report-json" in text


class TestPublicApiDocumented:
    """Every exported symbol carries a docstring (satellite gate)."""

    @pytest.mark.parametrize("pkg", PUBLIC_PACKAGES)
    def test_every_export_documented(self, pkg):
        mod = importlib.import_module(pkg)
        undocumented = []
        for sym in getattr(mod, "__all__", []):
            obj = getattr(mod, sym)
            if not (
                inspect.ismodule(obj)
                or inspect.isclass(obj)
                or inspect.isfunction(obj)
            ):
                continue  # constants document themselves at the def site
            if not (getattr(obj, "__doc__", None) or "").strip():
                undocumented.append(sym)
        assert not undocumented, f"{pkg}: undocumented exports {undocumented}"

    @pytest.mark.parametrize("pkg", PUBLIC_PACKAGES)
    def test_package_docstring_present(self, pkg):
        assert (importlib.import_module(pkg).__doc__ or "").strip(), pkg


class TestDocsReferencesResolve:
    """Docs pages must not reference modules or CLI flags that do not
    exist — stale references fail the suite."""

    MODULE_REF = re.compile(r"\brepro(?:\.[a-zA-Z_][a-zA-Z0-9_]*)+")

    @staticmethod
    def resolves(path: str) -> bool:
        parts = path.split(".")
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            try:
                for attr in parts[cut:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                return False
            return True
        return False

    @pytest.mark.parametrize(
        "page", DOC_PAGES, ids=lambda p: p.name
    )
    def test_module_references_exist(self, page):
        bad = sorted(
            {
                ref
                for ref in self.MODULE_REF.findall(page.read_text())
                if not self.resolves(ref)
            }
        )
        assert not bad, f"{page.name} references nonexistent: {bad}"

    def known_cli_flags(self) -> set[str]:
        # flags exist in the repro CLI and in the benchmark scripts the
        # docs quote (bench_substrate_json.py --out, check_regression.py
        # --max-slowdown)
        sources = [ROOT / "src" / "repro" / "__main__.py"]
        sources += sorted((ROOT / "benchmarks").glob("*.py"))
        flags: set[str] = set()
        for src in sources:
            flags |= set(re.findall(r'"(--[a-z][a-z-]*)"', src.read_text()))
        # argparse BooleanOptionalAction generates the --no- negations
        flags |= {f"--no-{f[2:]}" for f in set(flags)}
        return flags

    def test_cli_flags_in_docs_exist(self):
        known = self.known_cli_flags()
        for page in DOC_PAGES:
            flags = set(re.findall(r"(?<![\w-])--[a-z][a-z-]*", page.read_text()))
            bad = sorted(flags - known)
            assert not bad, f"{page.name} documents unknown flags: {bad}"

    def test_readme_cli_flags_exist(self):
        known = self.known_cli_flags()
        flags = set(
            re.findall(r"(?<![\w-])--[a-z][a-z-]*", (ROOT / "README.md").read_text())
        )
        assert flags <= known, sorted(flags - known)


class TestDocsIndex:
    """docs/index.md maps every docs page and every repro subsystem."""

    def doc(self) -> str:
        return (ROOT / "docs" / "index.md").read_text()

    def test_every_docs_page_listed(self):
        doc = self.doc()
        for page in DOC_PAGES:
            if page.name == "index.md":
                continue
            assert f"({page.name})" in doc, f"{page.name} missing from index"

    def test_every_subsystem_listed(self):
        doc = self.doc()
        for pkg in PUBLIC_PACKAGES:
            if pkg == "repro":
                continue
            assert f"`{pkg}`" in doc, pkg

    def test_linked_from_readme(self):
        assert "docs/index.md" in (ROOT / "README.md").read_text()


class TestMemoryTiersDoc:
    def doc(self) -> str:
        return (ROOT / "docs" / "memory-tiers.md").read_text()

    def test_model_and_policies_documented(self):
        doc = self.doc()
        for name in (
            "MemoryTierSpec", "TieredMemory", "PagePlacement",
            "interleave", "first_touch", "hotness", "page_hotness",
            "apply_tiering", "tier_budgets",
        ):
            assert name in doc, name

    def test_worked_scenario_present(self):
        doc = self.doc()
        assert "python -m repro run tiering_sweep" in doc
        assert "tiering_sweep_spec" in doc
        assert "tiered_test_machine" in doc

    def test_calibration_invariant_stated(self):
        doc = self.doc()
        assert "byte-identical" in doc
        assert "single-stream fast path" in doc

    def test_linked_from_readme_architecture_and_scenarios(self):
        assert "docs/memory-tiers.md" in (ROOT / "README.md").read_text()
        assert "memory-tiers.md" in (ROOT / "docs" / "architecture.md").read_text()
        assert "memory-tiers.md" in (ROOT / "docs" / "scenarios.md").read_text()


class TestServingDoc:
    def doc(self) -> str:
        return (ROOT / "docs" / "serving.md").read_text()

    def test_every_op_documented(self):
        from repro.serve import OPS

        doc = self.doc()
        for op in OPS:
            assert f"`{op}`" in doc, op

    def test_every_error_code_documented(self):
        from repro.serve import ERROR_CODES

        doc = self.doc()
        for code in ERROR_CODES:
            assert f"`{code}`" in doc, code

    def test_every_job_state_documented(self):
        from repro.serve import JOB_STATES

        doc = self.doc()
        for state in JOB_STATES:
            assert state in doc, state

    def test_serve_command_and_flags_in_cli_doc(self):
        cli = (ROOT / "docs" / "cli.md").read_text()
        assert "`serve`" in cli
        for flag in ("--host", "--port", "--queue-limit"):
            assert flag in cli, flag

    def test_linked_from_index_and_architecture(self):
        assert "(serving.md)" in (ROOT / "docs" / "index.md").read_text()
        assert "serving.md" in (ROOT / "docs" / "architecture.md").read_text()

    def test_example_client_script_exists(self):
        assert (ROOT / "examples" / "serve_client.py").exists()

    def test_ci_workflow_has_serve_smoke_job(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "serve-smoke:" in text
        assert "python -m repro serve" in text
        assert "colo_smoke.json" in text


class TestClusterDoc:
    def doc(self) -> str:
        return (ROOT / "docs" / "serving.md").read_text()

    def test_cluster_section_present(self):
        doc = self.doc()
        assert "repro.cluster" in doc
        for topic in ("ShardAgent", "Coordinator", "HttpGateway",
                      "quota", "replication", "tenant"):
            assert topic in doc, topic

    def test_cluster_ops_documented(self):
        from repro.cluster import ShardAgent

        doc = self.doc()
        for op in ShardAgent.OPS:
            assert f"`{op}`" in doc, op

    def test_http_routes_documented(self):
        doc = self.doc()
        for route in ("/v1/ping", "/v1/jobs", "/v1/shutdown"):
            assert route in doc, route

    def test_cluster_command_and_flags_in_cli_doc(self):
        cli = (ROOT / "docs" / "cli.md").read_text()
        assert "`cluster`" in cli
        for flag in ("--agents", "--http-port",
                     "--quota-capacity", "--quota-refill"):
            assert flag in cli, flag

    def test_example_client_script_exists(self):
        assert (ROOT / "examples" / "cluster_client.py").exists()

    def test_ci_workflow_has_cluster_smoke_job(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "cluster-smoke:" in text
        assert "python -m repro cluster agent" in text
        assert "python -m repro cluster coordinator" in text
        assert "colo_smoke.json" in text
        assert "cache_hits_mmap" in text


class TestResilienceDoc:
    """The Resilience section documents exactly what the code exposes."""

    def doc(self) -> str:
        return (ROOT / "docs" / "serving.md").read_text()

    def test_resilience_section_present(self):
        assert "## Resilience" in self.doc()

    def test_every_agent_state_documented(self):
        from repro.cluster import AGENT_STATES

        doc = self.doc()
        for state in AGENT_STATES:
            assert f"`{state}`" in doc, state

    def test_membership_ops_documented(self):
        from repro.cluster import Coordinator
        from repro.serve import OPS

        doc = self.doc()
        for op in Coordinator.OPS:
            if op not in OPS:  # the membership extensions
                assert f"`{op}`" in doc, op

    def test_agents_http_routes_documented(self):
        doc = self.doc()
        for route in ("/v1/agents", "/v1/agents/join", "/v1/agents/leave"):
            assert route in doc, route

    def test_journal_record_types_documented(self):
        from repro.cluster.journal import RECORD_TYPES

        doc = self.doc()
        for rtype in RECORD_TYPES:
            assert f"`{rtype}`" in doc, rtype

    def test_retry_policy_knobs_documented(self):
        import dataclasses

        from repro.serve import RetryPolicy

        doc = self.doc()
        for f in dataclasses.fields(RetryPolicy):
            assert f"`{f.name}" in doc, f.name

    def test_resilience_flags_in_cli_doc(self):
        cli = (ROOT / "docs" / "cli.md").read_text()
        for flag in ("--journal", "--resume", "--probe-interval",
                     "--coordinator", "--join", "--leave"):
            assert flag in cli, flag
        assert "cluster agents" in cli

    def test_ci_workflow_has_chaos_smoke_job(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "chaos-smoke:" in text
        assert "--journal" in text
        assert "--resume" in text
        assert "SIGKILL" in text


class TestRunnableDocsCi:
    """CI executes every example and scenario file, so snippets can't rot."""

    def workflow(self) -> str:
        return (ROOT / ".github" / "workflows" / "ci.yml").read_text()

    def test_docs_examples_job_present(self):
        text = self.workflow()
        assert "docs-examples:" in text
        assert "examples/*.py" in text
        assert "examples/scenarios/*.json" in text
        assert "python -m repro run" in text

    def test_every_example_is_a_script(self):
        for example in sorted((ROOT / "examples").glob("*.py")):
            text = example.read_text()
            assert '__name__ == "__main__"' in text, example.name

    def test_every_scenario_file_loads(self):
        from repro.scenarios import ScenarioSpec

        for path in sorted((ROOT / "examples" / "scenarios").glob("*.json")):
            ScenarioSpec.from_file(path)  # raises on rot


class TestScenariosDoc:
    def doc(self) -> str:
        return (ROOT / "docs" / "scenarios.md").read_text()

    def test_schema_keys_documented(self):
        doc = self.doc()
        for key in ("name", "kind", "machine", "workloads", "settings",
                    "sweep", "colocation", "trials", "seed"):
            assert f"`{key}`" in doc, key

    def test_every_kind_documented(self):
        from repro.scenarios import KINDS

        doc = self.doc()
        for kind in KINDS:
            assert kind in doc, kind

    def test_migration_table_names_every_shim_and_spec(self):
        doc = self.doc()
        for name in (
            "fig7_samples_vs_period", "fig8_accuracy_overhead_collisions",
            "fig9_aux_buffer", "fig10_fig11_threads", "colo_interference",
            "fig7_spec", "fig8_spec", "fig9_spec", "fig10_spec",
            "colo_interference_spec",
        ):
            assert name in doc, name

    def test_example_scenario_file_exists_and_loads(self):
        from repro.scenarios import ScenarioSpec

        for path in sorted((ROOT / "examples" / "scenarios").glob("*.json")):
            spec = ScenarioSpec.from_file(path)
            assert ScenarioSpec.from_json(spec.to_json()) == spec, path.name

    def test_readme_mentions_declarative_api(self):
        text = (ROOT / "README.md").read_text()
        assert "repro.scenarios" in text or "docs/scenarios.md" in text
        assert "python -m repro run" in text


class TestSamplingDoc:
    """docs/sampling.md tracks the strategy registry, the bias metrics,
    and the zoo tooling — adding a strategy or metric without
    documenting it fails here."""

    def doc(self) -> str:
        return (ROOT / "docs" / "sampling.md").read_text()

    def test_every_strategy_documented(self):
        from repro.spe.strategies import STRATEGIES

        doc = self.doc()
        for name in STRATEGIES:
            assert f"`{name}`" in doc, name

    def test_every_bias_metric_documented(self):
        import dataclasses

        from repro.analysis.sampling import SamplingBias

        doc = self.doc()
        for field in dataclasses.fields(SamplingBias):
            assert f"`{field.name}`" in doc, field.name

    def test_worked_scenario_present(self):
        doc = self.doc()
        assert "python -m repro run sampling_zoo" in doc
        assert "sampling_accuracy" in doc
        assert "sampling_zoo_spec" in doc

    def test_linked_from_index_readme_and_scenarios(self):
        assert "(sampling.md)" in (ROOT / "docs" / "index.md").read_text()
        assert "docs/sampling.md" in (ROOT / "README.md").read_text()
        assert "sampling.md" in (ROOT / "docs" / "scenarios.md").read_text()

    def test_placement_example_exists(self):
        assert (ROOT / "examples" / "sampling_placement.py").exists()

    def test_ci_workflow_has_sampling_smoke_job(self):
        text = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "sampling-smoke:" in text
        assert "python -m repro run sampling_zoo" in text

    def test_baseline_carries_zoo_entries(self):
        import json

        from repro.spe.strategies import STRATEGIES

        base = json.loads(
            (ROOT / "benchmarks" / "baselines" / "BENCH_substrate.baseline.json")
            .read_text()
        )
        entries = base["entries"]
        assert entries["sampling_zoo_small"]["metric"] == "seconds"
        for name in STRATEGIES:
            assert f"sampling_positions_{name}" in entries, name
