"""perf ring buffer producer/consumer tests."""

import pytest

from repro.errors import BufferError_
from repro.kernel.records import AuxRecord, LostRecord
from repro.kernel.ring_buffer import RingBuffer


def ring(pages=1, page=4096):
    return RingBuffer(n_pages=pages, page_size=page)


class TestBasics:
    def test_write_read_one(self):
        r = ring()
        rec = AuxRecord(10, 20, 0)
        assert r.write_record(rec)
        assert r.read_records() == [rec]
        assert not r.readable

    def test_fifo_order(self):
        r = ring()
        recs = [AuxRecord(i, i, 0) for i in range(10)]
        for x in recs:
            r.write_record(x)
        assert r.read_records() == recs

    def test_metadata_geometry(self):
        r = ring(pages=4, page=4096)
        assert r.meta.data_size == 16384
        assert r.meta.data_offset == 4096

    def test_pow2_not_required_here(self):
        # RingBuffer itself accepts any count; the perf mmap path enforces
        # the power-of-two rule
        assert RingBuffer(n_pages=3, page_size=4096).size == 12288

    def test_bad_page_size(self):
        with pytest.raises(BufferError_):
            RingBuffer(n_pages=1, page_size=1000)
        with pytest.raises(BufferError_):
            RingBuffer(n_pages=0, page_size=4096)


class TestWraparound:
    def test_many_writes_wrap(self):
        r = ring(pages=1, page=4096)
        total_written = 0
        for round_ in range(200):
            rec = AuxRecord(round_, round_, 0)
            assert r.write_record(rec)
            got = r.read_records()
            assert got == [rec]
            total_written += 1
        assert r.records_written == total_written
        assert r.meta.data_head == r.meta.data_tail
        assert r.meta.data_head > r.size  # free-running counter

    def test_record_spanning_wrap_point(self):
        r = ring(pages=1, page=4096)
        # fill to near the end, drain, then write across the boundary
        pad = AuxRecord(0, 0, 0)
        n = (r.size - 16) // len(pad.pack())
        for _ in range(n):
            r.write_record(pad)
        r.read_records()
        probe = AuxRecord(0xDEAD, 0xBEEF, 0x8)
        r.write_record(probe)
        assert r.read_records() == [probe]


class TestOverflow:
    def test_full_buffer_drops_and_counts(self):
        r = ring(pages=1, page=4096)
        rec = AuxRecord(0, 0, 0)
        written = 0
        while r.write_record(rec):
            written += 1
        assert r.records_lost >= 1
        assert written == r.records_written

    def test_lost_record_emitted_after_space(self):
        r = ring(pages=1, page=4096)
        rec = AuxRecord(0, 0, 0)
        while r.write_record(rec):
            pass
        r.read_records()  # drain everything
        r.write_record(rec)
        got = r.read_records()
        assert any(isinstance(x, LostRecord) for x in got)
        lost = [x for x in got if isinstance(x, LostRecord)][0]
        assert lost.lost >= 1

    def test_peek_negative_rejected(self):
        with pytest.raises(BufferError_):
            ring().peek_bytes(0, -1)

    def test_read_limit(self):
        r = ring()
        for i in range(5):
            r.write_record(AuxRecord(i, 0, 0))
        got = r.read_records(limit=2)
        assert len(got) == 2
        assert len(r.read_records()) == 3
