"""perf record serialisation tests."""

import pytest

from repro.errors import PerfError
from repro.kernel.records import (
    HEADER_SIZE,
    PERF_AUX_FLAG_COLLISION,
    PERF_AUX_FLAG_TRUNCATED,
    AuxRecord,
    ItraceStartRecord,
    LostRecord,
    RecordHeader,
    ThrottleRecord,
    parse_record,
)


class TestHeader:
    def test_roundtrip(self):
        h = RecordHeader(type=11, misc=0, size=32)
        assert RecordHeader.unpack(h.pack()) == h

    def test_size_validation(self):
        bad = RecordHeader(type=1, misc=0, size=4).pack()
        with pytest.raises(PerfError):
            RecordHeader.unpack(bad)

    def test_header_is_8_bytes(self):
        assert HEADER_SIZE == 8
        assert len(RecordHeader(1, 0, 8).pack()) == 8


class TestAuxRecord:
    def test_roundtrip(self):
        r = AuxRecord(aux_offset=1 << 40, aux_size=4096, flags=PERF_AUX_FLAG_TRUNCATED)
        rec, size = parse_record(r.pack())
        assert rec == r
        assert size == len(r.pack())

    def test_flag_properties(self):
        r = AuxRecord(0, 0, PERF_AUX_FLAG_TRUNCATED | PERF_AUX_FLAG_COLLISION)
        assert r.truncated and r.collision and not r.partial

    def test_flag_values_match_uapi(self):
        assert PERF_AUX_FLAG_TRUNCATED == 0x01
        assert PERF_AUX_FLAG_COLLISION == 0x08


class TestOtherRecords:
    def test_lost_roundtrip(self):
        r = LostRecord(event_id=7, lost=123)
        rec, _ = parse_record(r.pack())
        assert rec == r

    def test_throttle_roundtrip(self):
        r = ThrottleRecord(time=999, event_id=1, stream_id=2, throttled=True)
        rec, _ = parse_record(r.pack())
        assert rec == r

    def test_unthrottle_roundtrip(self):
        r = ThrottleRecord(time=999, event_id=1, stream_id=2, throttled=False)
        rec, _ = parse_record(r.pack())
        assert rec.throttled is False

    def test_itrace_roundtrip(self):
        r = ItraceStartRecord(pid=100, tid=101)
        rec, _ = parse_record(r.pack())
        assert rec == r

    def test_unknown_type_rejected(self):
        hdr = RecordHeader(type=200, misc=0, size=8).pack()
        with pytest.raises(PerfError):
            parse_record(hdr)

    def test_parse_at_offset(self):
        buf = b"\x00" * 16 + AuxRecord(1, 2, 0).pack()
        rec, _ = parse_record(buf, offset=16)
        assert rec == AuxRecord(1, 2, 0)
