"""epoll readiness tests."""

import pytest

from repro.errors import PerfError
from repro.kernel.epoll import EPOLLIN, Epoll
from repro.kernel.perf_event import PerfEventAttr, PerfSubsystem, ARM_SPE_PMU_TYPE
from repro.kernel.records import AuxRecord
from repro.spe.config import SpeConfig


@pytest.fixture
def event(ampere):
    ps = PerfSubsystem(ampere)
    ev = ps.perf_event_open(
        PerfEventAttr(
            type=ARM_SPE_PMU_TYPE,
            config=SpeConfig.loads_and_stores().encode(),
            sample_period=4096,
        ),
        cpu=0,
    )
    ev.mmap_ring(8)
    return ev


class TestEpoll:
    def test_register_and_wait_empty(self, event):
        ep = Epoll()
        ep.register(event)
        assert ep.wait() == []

    def test_ready_after_record(self, event):
        ep = Epoll()
        ep.register(event, EPOLLIN)
        event.ring.write_record(AuxRecord(0, 64, 0))
        assert ep.wait() == [event]

    def test_level_triggered_until_drained(self, event):
        ep = Epoll()
        ep.register(event)
        event.ring.write_record(AuxRecord(0, 64, 0))
        assert ep.wait() == [event]
        assert ep.wait() == [event]  # still readable
        event.ring.read_records()
        assert ep.wait() == []

    def test_double_register_rejected(self, event):
        ep = Epoll()
        ep.register(event)
        with pytest.raises(PerfError):
            ep.register(event)

    def test_unregister(self, event):
        ep = Epoll()
        ep.register(event)
        ep.unregister(event)
        assert event not in ep
        with pytest.raises(PerfError):
            ep.unregister(event)

    def test_non_epollin_rejected(self, event):
        ep = Epoll()
        with pytest.raises(PerfError):
            ep.register(event, events=0x4)

    def test_n_registered(self, event):
        ep = Epoll()
        assert ep.n_registered == 0
        ep.register(event)
        assert ep.n_registered == 1
