"""perf_event_open syscall surface tests."""

import pytest

from repro.errors import PerfError
from repro.kernel.counters import CounterEvent
from repro.kernel.perf_event import (
    ARM_SPE_PMU_TYPE,
    PERF_EVENT_IOC_DISABLE,
    PERF_EVENT_IOC_ENABLE,
    PERF_EVENT_IOC_RESET,
    PERF_TYPE_HARDWARE,
    PerfEventAttr,
    PerfSubsystem,
)
from repro.spe.config import SpeConfig


def spe_attr(period=4096):
    return PerfEventAttr(
        type=ARM_SPE_PMU_TYPE,
        config=SpeConfig.loads_and_stores().encode(),
        sample_period=period,
    )


class TestOpen:
    def test_spe_type_value_matches_paper(self):
        assert ARM_SPE_PMU_TYPE == 0x2C

    def test_open_spe(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        assert ev.is_spe
        assert ev.fd >= 3

    def test_fds_unique(self, ampere):
        ps = PerfSubsystem(ampere)
        fds = {ps.perf_event_open(spe_attr(), cpu=i).fd for i in range(8)}
        assert len(fds) == 8

    def test_spe_requires_cpu(self, ampere):
        ps = PerfSubsystem(ampere)
        with pytest.raises(PerfError) as e:
            ps.perf_event_open(spe_attr(), cpu=-1)
        assert e.value.code == "EINVAL"

    def test_spe_requires_period(self, ampere):
        ps = PerfSubsystem(ampere)
        with pytest.raises(PerfError):
            ps.perf_event_open(spe_attr(period=0), cpu=0)

    def test_no_spe_on_x86(self, x86):
        ps = PerfSubsystem(x86)
        with pytest.raises(PerfError) as e:
            ps.perf_event_open(spe_attr(), cpu=0)
        assert e.value.code == "ENOENT"

    def test_cpu_out_of_range(self, ampere):
        ps = PerfSubsystem(ampere)
        with pytest.raises(PerfError):
            ps.perf_event_open(spe_attr(), cpu=ampere.n_cores)

    def test_unknown_pmu_type(self, ampere):
        ps = PerfSubsystem(ampere)
        with pytest.raises(PerfError) as e:
            ps.perf_event_open(PerfEventAttr(type=0x99), cpu=0)
        assert e.value.code == "ENOENT"

    def test_counting_event_needs_selector(self, ampere):
        ps = PerfSubsystem(ampere)
        with pytest.raises(PerfError):
            ps.perf_event_open(PerfEventAttr(type=PERF_TYPE_HARDWARE))

    def test_close(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        ps.close(ev)
        with pytest.raises(PerfError):
            ps.close(ev)

    def test_spe_events_listing(self, ampere):
        ps = PerfSubsystem(ampere)
        ps.perf_event_open(spe_attr(), cpu=0)
        ps.perf_event_open(
            PerfEventAttr(
                type=PERF_TYPE_HARDWARE, counter_event=CounterEvent.MEM_ACCESS
            )
        )
        assert len(ps.spe_events()) == 1


class TestMmap:
    def test_ring_pages_power_of_two(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        with pytest.raises(PerfError):
            ev.mmap_ring(3)

    def test_ring_then_aux(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        ring = ev.mmap_ring(8)
        aux = ev.mmap_aux(16)
        assert ring.meta.aux_offset == 9 * ampere.page_size
        assert ring.meta.aux_size == aux.size

    def test_aux_without_ring_rejected(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        with pytest.raises(PerfError):
            ev.mmap_aux(16)

    def test_double_mmap_rejected(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        ev.mmap_ring(8)
        with pytest.raises(PerfError) as e:
            ev.mmap_ring(8)
        assert e.value.code == "EBUSY"

    def test_timescale_published(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        ring = ev.mmap_ring(8)
        assert ring.meta.time_mult > 0
        assert ring.meta.time_shift > 0
        assert ring.meta.cap_user_time_zero == 1


class TestIoctlAndCounters:
    def test_enable_disable(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        assert not ev.enabled
        ev.ioctl(PERF_EVENT_IOC_ENABLE)
        assert ev.enabled
        ev.ioctl(PERF_EVENT_IOC_DISABLE)
        assert not ev.enabled

    def test_unknown_ioctl(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        with pytest.raises(PerfError):
            ev.ioctl(0x9999)

    def test_counter_read_and_reset(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(
            PerfEventAttr(
                type=PERF_TYPE_HARDWARE,
                counter_event=CounterEvent.MEM_ACCESS,
                disabled=False,
            )
        )
        ev.count(100)
        assert ev.read() == 100
        ev.ioctl(PERF_EVENT_IOC_RESET)
        assert ev.read() == 0

    def test_read_on_sampling_event_rejected(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(spe_attr(), cpu=0)
        with pytest.raises(PerfError):
            ev.read()

    def test_disabled_counter_ignores_counts(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(
            PerfEventAttr(
                type=PERF_TYPE_HARDWARE, counter_event=CounterEvent.MEM_ACCESS
            )
        )
        ev.count(100)  # disabled by default
        assert ev.read() == 0
