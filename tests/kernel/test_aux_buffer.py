"""Aux buffer tests."""

import pytest

from repro.errors import BufferError_
from repro.kernel.aux_buffer import AuxBuffer


def aux(pages=4, page=4096, wm=None):
    return AuxBuffer(n_pages=pages, page_size=page, watermark=wm)


class TestWrite:
    def test_write_and_read_back(self):
        a = aux()
        data = bytes(range(256))
        assert a.write(data) == 256
        assert a.read(0, 256) == data

    def test_default_watermark_half(self):
        a = aux(pages=4, page=4096)
        assert a.watermark == 8192

    def test_overflow_drops_excess(self):
        a = aux(pages=1, page=4096)
        accepted = a.write(b"x" * 5000)
        assert accepted == 4096
        assert a.bytes_dropped == 904

    def test_free_after_consume(self):
        a = aux(pages=1, page=4096)
        a.write(b"x" * 4096)
        a.advance_tail(4096)
        assert a.free == 4096
        assert a.write(b"y" * 100) == 100

    def test_wrapping_write_read(self):
        a = aux(pages=1, page=4096)
        a.write(b"a" * 3000)
        a.advance_tail(3000)
        payload = b"b" * 2000  # spans the wrap point
        assert a.write(payload) == 2000
        assert a.read(3000, 2000) == payload


class TestWrapBoundaries:
    """Reads/writes that end exactly at ``size`` or span it by exactly
    the watermark: the `first = min(n, size - pos)` split at its edges."""

    def test_read_ending_exactly_at_size(self):
        a = aux(pages=1, page=4096)
        data = bytes(i & 0xFF for i in range(4096))
        assert a.write(data) == 4096
        # tail chunk [4000, 4096): pos + n == size, no wrap bytes
        assert a.read(4000, 96) == data[4000:]
        # the full buffer in one read also ends exactly at size
        assert a.read(0, 4096) == data

    def test_write_resuming_exactly_at_size(self):
        a = aux(pages=1, page=4096)
        a.write(b"x" * 4096)
        a.advance_tail(4096)
        # head % size == 0: the next write starts at pos 0, not past it
        payload = bytes(range(200))
        assert a.write(payload) == 200
        assert a.read(4096, 200) == payload

    def test_read_spanning_wrap_of_exactly_watermark_bytes(self):
        wm = 1024
        a = aux(pages=1, page=4096, wm=wm)
        a.write(b"a" * 3584)
        a.advance_tail(3584)  # pre-wrap bytes freed (signal clamps past them)
        payload = bytes((7 * i) & 0xFF for i in range(wm))
        assert a.write(payload) == wm  # [3584, 4608): wraps after 512
        off, size = a.take_signal()
        assert (off, size) == (3584, wm)
        assert a.read(off, size) == payload

    def test_read_first_byte_after_wrap(self):
        a = aux(pages=1, page=4096)
        a.write(b"x" * 4096)
        a.advance_tail(4096)
        a.write(b"z")
        assert a.read(4096, 1) == b"z"


class TestSignals:
    def test_signal_at_watermark(self):
        a = aux(pages=1, page=4096, wm=1024)
        a.write(b"x" * 1000)
        assert not a.should_signal()
        a.write(b"x" * 100)
        assert a.should_signal()

    def test_take_signal_returns_span(self):
        a = aux(pages=1, page=4096, wm=512)
        a.write(b"x" * 600)
        off, size = a.take_signal()
        assert (off, size) == (0, 600)
        a.write(b"y" * 512)
        off, size = a.take_signal()
        assert (off, size) == (600, 512)

    def test_take_signal_empty_rejected(self):
        with pytest.raises(BufferError_):
            aux().take_signal()

    def test_drain_past_signal_then_take_signal(self):
        # regression: the consumer drains beyond the last signalled
        # offset (NMO's end-of-run flush), then new data arrives; the
        # next signal must cover only live bytes, and the follow-up
        # read() must deliver them instead of raising
        a = aux(pages=1, page=4096, wm=512)
        a.write(b"x" * 600)
        a.advance_tail(600)  # drained ahead of any take_signal
        a.write(b"y" * 512)
        assert a.pending_signal() == 512  # not 1112: [0, 600) is freed
        off, size = a.take_signal()
        assert (off, size) == (600, 512)
        assert a.read(off, size) == b"y" * 512

    def test_drain_partially_past_signal(self):
        a = aux(pages=1, page=4096, wm=256)
        a.write(b"a" * 300)
        off, size = a.take_signal()
        assert (off, size) == (0, 300)
        a.write(b"b" * 200)
        a.advance_tail(400)  # overtakes _last_signal (300) by 100
        a.write(b"c" * 100)
        off, size = a.take_signal()
        assert (off, size) == (400, 200)  # clamped to [tail, head]
        assert a.read(off, size) == b"b" * 100 + b"c" * 100

    def test_should_signal_ignores_freed_bytes(self):
        a = aux(pages=1, page=4096, wm=512)
        a.write(b"x" * 600)
        a.advance_tail(600)
        a.write(b"y" * 511)
        assert not a.should_signal()  # 511 live bytes < watermark
        a.write(b"y")
        assert a.should_signal()

    def test_bad_watermark(self):
        with pytest.raises(BufferError_):
            aux(wm=0)
        with pytest.raises(BufferError_):
            aux(pages=1, page=4096, wm=5000)


class TestConsumerProtocol:
    def test_read_outside_live_data_rejected(self):
        a = aux()
        a.write(b"x" * 100)
        with pytest.raises(BufferError_):
            a.read(0, 200)
        with pytest.raises(BufferError_):
            a.read(50, -1)

    def test_tail_monotone(self):
        a = aux()
        a.write(b"x" * 100)
        a.advance_tail(50)
        with pytest.raises(BufferError_):
            a.advance_tail(20)
        with pytest.raises(BufferError_):
            a.advance_tail(200)

    def test_read_before_tail_rejected(self):
        a = aux()
        a.write(b"x" * 100)
        a.advance_tail(60)
        with pytest.raises(BufferError_):
            a.read(0, 10)

    def test_geometry_validation(self):
        with pytest.raises(BufferError_):
            AuxBuffer(n_pages=0, page_size=4096)
        with pytest.raises(BufferError_):
            AuxBuffer(n_pages=1, page_size=1000)
