"""Aux buffer tests."""

import pytest

from repro.errors import BufferError_
from repro.kernel.aux_buffer import AuxBuffer


def aux(pages=4, page=4096, wm=None):
    return AuxBuffer(n_pages=pages, page_size=page, watermark=wm)


class TestWrite:
    def test_write_and_read_back(self):
        a = aux()
        data = bytes(range(256))
        assert a.write(data) == 256
        assert a.read(0, 256) == data

    def test_default_watermark_half(self):
        a = aux(pages=4, page=4096)
        assert a.watermark == 8192

    def test_overflow_drops_excess(self):
        a = aux(pages=1, page=4096)
        accepted = a.write(b"x" * 5000)
        assert accepted == 4096
        assert a.bytes_dropped == 904

    def test_free_after_consume(self):
        a = aux(pages=1, page=4096)
        a.write(b"x" * 4096)
        a.advance_tail(4096)
        assert a.free == 4096
        assert a.write(b"y" * 100) == 100

    def test_wrapping_write_read(self):
        a = aux(pages=1, page=4096)
        a.write(b"a" * 3000)
        a.advance_tail(3000)
        payload = b"b" * 2000  # spans the wrap point
        assert a.write(payload) == 2000
        assert a.read(3000, 2000) == payload


class TestSignals:
    def test_signal_at_watermark(self):
        a = aux(pages=1, page=4096, wm=1024)
        a.write(b"x" * 1000)
        assert not a.should_signal()
        a.write(b"x" * 100)
        assert a.should_signal()

    def test_take_signal_returns_span(self):
        a = aux(pages=1, page=4096, wm=512)
        a.write(b"x" * 600)
        off, size = a.take_signal()
        assert (off, size) == (0, 600)
        a.write(b"y" * 512)
        off, size = a.take_signal()
        assert (off, size) == (600, 512)

    def test_take_signal_empty_rejected(self):
        with pytest.raises(BufferError_):
            aux().take_signal()

    def test_bad_watermark(self):
        with pytest.raises(BufferError_):
            aux(wm=0)
        with pytest.raises(BufferError_):
            aux(pages=1, page=4096, wm=5000)


class TestConsumerProtocol:
    def test_read_outside_live_data_rejected(self):
        a = aux()
        a.write(b"x" * 100)
        with pytest.raises(BufferError_):
            a.read(0, 200)
        with pytest.raises(BufferError_):
            a.read(50, -1)

    def test_tail_monotone(self):
        a = aux()
        a.write(b"x" * 100)
        a.advance_tail(50)
        with pytest.raises(BufferError_):
            a.advance_tail(20)
        with pytest.raises(BufferError_):
            a.advance_tail(200)

    def test_read_before_tail_rejected(self):
        a = aux()
        a.write(b"x" * 100)
        a.advance_tail(60)
        with pytest.raises(BufferError_):
            a.read(0, 10)

    def test_geometry_validation(self):
        with pytest.raises(BufferError_):
            AuxBuffer(n_pages=0, page_size=4096)
        with pytest.raises(BufferError_):
            AuxBuffer(n_pages=1, page_size=1000)
