"""PMU counter / interval series tests."""

import numpy as np
import pytest

from repro.errors import PerfError
from repro.kernel.counters import (
    CounterEvent,
    CounterGroup,
    IntervalSeries,
    PmuCounter,
)


class TestPmuCounter:
    def test_accumulate(self):
        c = PmuCounter(CounterEvent.MEM_ACCESS)
        c.add(5)
        c.add(7)
        assert c.value == 12

    def test_negative_rejected(self):
        with pytest.raises(PerfError):
            PmuCounter(CounterEvent.CYCLES).add(-1)

    def test_disabled(self):
        c = PmuCounter(CounterEvent.CYCLES, enabled=False)
        c.add(10)
        assert c.value == 0


class TestCounterGroup:
    def test_read_all(self):
        g = CounterGroup([CounterEvent.MEM_ACCESS, CounterEvent.FP_OPS])
        g.add(CounterEvent.MEM_ACCESS, 3)
        assert g.read()[CounterEvent.MEM_ACCESS] == 3
        assert g[CounterEvent.FP_OPS] == 0

    def test_unknown_event(self):
        g = CounterGroup([CounterEvent.MEM_ACCESS])
        with pytest.raises(PerfError):
            g.add(CounterEvent.CYCLES, 1)
        with pytest.raises(PerfError):
            g[CounterEvent.CYCLES]

    def test_duplicates_rejected(self):
        with pytest.raises(PerfError):
            CounterGroup([CounterEvent.CYCLES, CounterEvent.CYCLES])

    def test_empty_rejected(self):
        with pytest.raises(PerfError):
            CounterGroup([])

    def test_reset_and_enable(self):
        g = CounterGroup([CounterEvent.CYCLES])
        g.add(CounterEvent.CYCLES, 5)
        g.reset()
        assert g[CounterEvent.CYCLES] == 0
        g.enable(False)
        g.add(CounterEvent.CYCLES, 5)
        assert g[CounterEvent.CYCLES] == 0


class TestIntervalSeries:
    def test_binning(self):
        s = IntervalSeries(interval_s=1.0)
        s.add(0.5, 10)
        s.add(0.9, 5)
        s.add(2.1, 7)
        t, v = s.series()
        assert v.tolist() == [15.0, 0.0, 7.0]
        assert t.tolist() == [0.0, 1.0, 2.0]

    def test_rate(self):
        s = IntervalSeries(interval_s=0.5)
        s.add(0.1, 100)
        _, r = s.rate_series()
        assert r[0] == pytest.approx(200.0)

    def test_add_many_matches_scalar(self):
        s1, s2 = IntervalSeries(), IntervalSeries()
        ts = np.array([0.1, 0.2, 1.5, 3.9])
        amts = np.array([1.0, 2.0, 3.0, 4.0])
        s1.add_many(ts, amts)
        for t, a in zip(ts, amts):
            s2.add(float(t), float(a))
        assert s1.series()[1].tolist() == s2.series()[1].tolist()

    def test_until_extends_zero_bins(self):
        s = IntervalSeries()
        s.add(0.5, 1)
        t, v = s.series(until_s=5.0)
        assert len(v) == 6
        assert v[5] == 0.0

    def test_negative_rejected(self):
        s = IntervalSeries()
        with pytest.raises(PerfError):
            s.add(-1.0, 1)
        with pytest.raises(PerfError):
            s.add(1.0, -1)

    def test_total(self):
        s = IntervalSeries()
        s.add_many(np.array([0.0, 1.0]), 2.5)
        assert s.total == pytest.approx(5.0)

    def test_empty(self):
        t, v = IntervalSeries().series()
        assert t.size == 0 and v.size == 0
