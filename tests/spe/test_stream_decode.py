"""Streaming decode differential suite.

Pins the three pieces of the zero-copy feed path against their
materialising references:

* :func:`decode_stream` over arbitrary chunkings is byte-identical to
  :func:`decode_buffer` over the joined bytes,
* :meth:`AuxBuffer.read_chunks` reproduces :meth:`AuxBuffer.read`
  without concatenating across the wrap point,
* the vectorised :func:`ticks_to_ns` matches
  :func:`ticks_to_ns_reference` (the retained big-int loop) everywhere
  its uint64 fast path engages, and falls back outside the envelope,
* :class:`AuxRecordBatch` behaves like the list of
  :class:`AuxRecord` dataclasses it replaced.
"""

import numpy as np
import pytest

from repro.cpu.clock import calc_mult_shift, ticks_to_ns, ticks_to_ns_reference
from repro.errors import BufferError_, PerfError
from repro.kernel.aux_buffer import AuxBuffer
from repro.kernel.records import AuxRecord, AuxRecordBatch
from repro.spe.packets import RECORD_SIZE, decode_buffer, decode_stream
from repro.spe.records import SampleBatch


def make_batch(n, rng):
    return SampleBatch(
        pc=rng.integers(0, 1 << 48, n, dtype=np.uint64),
        addr=rng.integers(0, 1 << 48, n, dtype=np.uint64),
        ts=np.sort(rng.integers(0, 1 << 40, n, dtype=np.uint64)),
        level=rng.integers(1, 4, n, dtype=np.uint8),
        kind=rng.integers(0, 2, n, dtype=np.uint8),
        total_lat=rng.integers(1, 500, n, dtype=np.uint16),
        issue_lat=rng.integers(1, 100, n, dtype=np.uint16),
    )


def record_bytes(n, rng):
    from repro.spe.packets import encode_batch

    return encode_batch(make_batch(n, rng))


def chunked(data, sizes):
    out, at = [], 0
    while at < len(data):
        for s in sizes:
            out.append(data[at : at + s])
            at += s
            if at >= len(data):
                break
    return out


class TestDecodeStream:
    @pytest.mark.parametrize(
        "sizes",
        [[1], [7], [63], [64], [65], [RECORD_SIZE * 10], [13, 64, 1, 200]],
        ids=lambda s: "x".join(map(str, s)),
    )
    def test_matches_decode_buffer(self, rng, sizes):
        data = record_bytes(50, rng)
        want_batch, want_stats = decode_buffer(np.frombuffer(data, np.uint8))
        got_batch, got_stats = decode_stream(chunked(data, sizes))
        assert want_stats == got_stats
        for c in SampleBatch._COLUMNS:
            assert np.array_equal(getattr(got_batch, c), getattr(want_batch, c))

    def test_trailing_partial_record(self, rng):
        data = record_bytes(5, rng) + b"\x01\x02\x03"
        batch, stats = decode_stream(chunked(data, [17]))
        assert len(batch) == 5
        assert stats.trailing_bytes == 3

    def test_empty_stream(self):
        batch, stats = decode_stream([])
        assert len(batch) == 0
        assert stats.n_records == 0 and stats.trailing_bytes == 0

    def test_carry_does_not_alias_chunks(self, rng):
        # a chunk buffer mutated after being consumed must not corrupt
        # the carried partial record
        data = bytearray(record_bytes(2, rng))
        first, second = data[:70], data[70:]
        first_arr = np.frombuffer(bytes(first), np.uint8).copy()

        def gen():
            yield first_arr
            first_arr[:] = 0  # producer reuses the buffer
            yield np.frombuffer(bytes(second), np.uint8)

        got, _ = decode_stream(gen())
        want, _ = decode_buffer(np.frombuffer(bytes(data), np.uint8))
        assert np.array_equal(got.pc, want.pc)


class TestReadChunks:
    def test_joined_equals_read(self):
        buf = AuxBuffer(n_pages=4, page_size=64)
        buf.write(bytes(range(200)))
        chunks = list(buf.read_chunks(0, 200, max_bytes=33))
        joined = b"".join(c.tobytes() for c in chunks)
        assert joined == buf.read(0, 200)
        assert all(len(c) <= 33 for c in chunks)

    def test_wrap_never_concatenates(self):
        buf = AuxBuffer(n_pages=2, page_size=64)
        buf.write(bytes(100))
        buf.advance_tail(100)
        buf.write(bytes(range(100)))  # wraps the 128-byte ring
        chunks = list(buf.read_chunks(100, 100))
        assert len(chunks) == 2  # one per contiguous region
        assert all(c.base is not None for c in chunks)  # views, not copies
        assert b"".join(c.tobytes() for c in chunks) == buf.read(100, 100)

    def test_rejects_spans_outside_live_data(self):
        buf = AuxBuffer(n_pages=2, page_size=64)
        buf.write(bytes(64))
        with pytest.raises(BufferError_):
            buf.read_chunks(0, 65)
        with pytest.raises(BufferError_):
            buf.read_chunks(0, -1)
        with pytest.raises(BufferError_):
            buf.read_chunks(0, 64, max_bytes=0)


class TestTicksToNs:
    @pytest.mark.parametrize("hz", [25e6, 1e9, 2.8e9, 3.3e9])
    def test_fast_path_matches_reference(self, rng, hz):
        mult, shift = calc_mult_shift(hz)
        assert 0 <= mult < 1 << 32 and 1 <= shift <= 32
        # bound inputs so even the reference's u64 results cannot overflow
        tmax = min(2**63, ((2**64 - 1) << shift) // mult)
        ticks = rng.integers(0, tmax, 500, dtype=np.uint64)
        ticks[:3] = (0, 1, tmax - 1)
        fast = ticks_to_ns(ticks, mult, shift)
        ref = ticks_to_ns_reference(ticks, mult, shift)
        assert fast.dtype == np.uint64
        assert np.array_equal(fast, ref)

    def test_zero_offset_applies(self, rng):
        mult, shift = calc_mult_shift(1e9)
        ticks = rng.integers(0, 1 << 40, 100, dtype=np.uint64)
        assert np.array_equal(
            ticks_to_ns(ticks, mult, shift, zero=12345),
            ticks_to_ns_reference(ticks, mult, shift, zero=12345),
        )

    def test_scalar_path(self):
        mult, shift = calc_mult_shift(1e9)
        assert ticks_to_ns(1000, mult, shift) == ticks_to_ns_reference(
            1000, mult, shift
        )

    def test_out_of_envelope_falls_back(self):
        # mult >= 2**32: the uint64 split is not exact, so the big-int
        # loop must take over
        ticks = np.arange(10, dtype=np.uint64)
        got = ticks_to_ns(ticks, mult=1 << 33, shift=40)
        ref = ticks_to_ns_reference(ticks, mult=1 << 33, shift=40)
        assert np.array_equal(got, ref)


class TestAuxRecordBatch:
    def batch(self):
        return AuxRecordBatch(
            np.array([0, 64, 128], dtype=np.uint64),
            np.array([64, 64, 64], dtype=np.uint64),
            np.array([0, 1, 0], dtype=np.uint64),
        )

    def test_sequence_protocol(self):
        b = self.batch()
        assert len(b) == 3
        assert b[1] == AuxRecord(aux_offset=64, aux_size=64, flags=1)
        assert b[-1] == AuxRecord(aux_offset=128, aux_size=64, flags=0)
        assert list(b) == [b[0], b[1], b[2]]
        assert b[1:] == [b[1], b[2]]

    def test_equality_with_record_lists(self):
        b = self.batch()
        records = [
            AuxRecord(aux_offset=0, aux_size=64, flags=0),
            AuxRecord(aux_offset=64, aux_size=64, flags=1),
            AuxRecord(aux_offset=128, aux_size=64, flags=0),
        ]
        assert b == records
        assert records == b  # reflected: list.__eq__ defers to batch
        assert b == self.batch()
        assert b != records[:2]

    def test_concatenation(self):
        b = self.batch()
        tail = AuxRecordBatch(
            np.array([192], dtype=np.uint64),
            np.array([64], dtype=np.uint64),
            np.array([2], dtype=np.uint64),
        )
        joined = b + tail
        assert len(joined) == 4
        assert joined[3] == AuxRecord(aux_offset=192, aux_size=64, flags=2)
        # list-of-records + batch works through __radd__
        both = [b[0]] + tail
        assert both[0] == b[0] and both[1] == tail[0]

    def test_from_records_round_trips(self):
        records = list(self.batch())
        again = AuxRecordBatch.from_records(records)
        assert again == records

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(PerfError):
            AuxRecordBatch(
                np.array([0], dtype=np.uint64),
                np.array([64, 64], dtype=np.uint64),
                np.array([0], dtype=np.uint64),
            )
