"""SPE sampler tests: interval counter, collisions, filtering."""

import numpy as np
import pytest

from repro.cpu.clock import GenericTimer
from repro.cpu.ops import OpKind
from repro.cpu.pipeline import PipelineModel
from repro.errors import SpeError
from repro.machine.hierarchy import MemLevel
from repro.spe.config import SpeConfig
from repro.spe.sampler import (
    SpeSampler,
    TraceOpSource,
    collision_scan,
    sample_positions,
)


class TestSamplePositions:
    def test_count_close_to_n_over_period(self, rng):
        pos, _ = sample_positions(1_000_000, 1000, False, rng)
        assert pos.size == pytest.approx(1000, rel=0.02)

    def test_positions_sorted_in_range(self, rng):
        pos, _ = sample_positions(100_000, 512, True, rng)
        assert (np.diff(pos) > 0).all()
        assert pos[0] >= 0 and pos[-1] < 100_000

    def test_jitter_widens_interval_spread(self, rng):
        p1, _ = sample_positions(10_000_000, 4096, False, rng)
        p2, _ = sample_positions(10_000_000, 4096, True, rng)
        assert np.diff(p2).std() > np.diff(p1).std() * 2

    def test_inherent_perturbation_present(self, rng):
        """The counter is never perfectly periodic (paper §II-A)."""
        pos, _ = sample_positions(10_000_000, 4096, False, rng)
        assert np.diff(pos).std() > 0

    def test_carry_continues_stream(self, rng):
        # split a stream in two: totals should match an unsplit run closely
        n = 1_000_000
        pos_a, carry = sample_positions(n // 2, 1000, False, rng)
        pos_b, _ = sample_positions(n - n // 2, 1000, False, rng, carry=carry)
        total = pos_a.size + pos_b.size
        assert total == pytest.approx(1000, abs=3)

    def test_carry_larger_than_stream(self, rng):
        pos, res = sample_positions(10, 1000, False, rng, carry=500)
        assert pos.size == 0
        assert res == 490

    def test_many_short_phases_do_not_lose_samples(self, rng):
        """The phase-boundary bug the reproduction fixed: a counter reset
        per phase would lose ~half a period per phase."""
        carry = None
        total = 0
        for _ in range(200):
            pos, carry = sample_positions(5000, 8000, False, rng, carry=carry)
            total += pos.size
        assert total == pytest.approx(200 * 5000 / 8000, rel=0.05)

    def test_zero_ops(self, rng):
        pos, carry = sample_positions(0, 100, False, rng)
        assert pos.size == 0 and carry > 0

    def test_bad_period(self, rng):
        with pytest.raises(SpeError):
            sample_positions(100, 0, False, rng)

    def test_bad_carry(self, rng):
        with pytest.raises(SpeError):
            sample_positions(100, 10, False, rng, carry=0)


class TestCollisionScan:
    def test_no_overlap_no_collisions(self):
        t = np.array([0.0, 100.0, 200.0])
        lat = np.array([10.0, 10.0, 10.0])
        keep, n = collision_scan(t, lat)
        assert keep.all() and n == 0

    def test_busy_tracker_drops_next(self):
        t = np.array([0.0, 50.0, 200.0])
        lat = np.array([100.0, 10.0, 10.0])
        keep, n = collision_scan(t, lat)
        assert keep.tolist() == [True, False, True]
        assert n == 1

    def test_dropped_sample_does_not_extend_window(self):
        # sample1 busy until 100; sample2 at 90 dropped (its own latency
        # long but irrelevant); sample3 at 110 kept
        t = np.array([0.0, 90.0, 110.0])
        lat = np.array([100.0, 1000.0, 10.0])
        keep, n = collision_scan(t, lat)
        assert keep.tolist() == [True, False, True]

    def test_chain_of_collisions(self):
        t = np.array([0.0, 10.0, 20.0, 30.0, 400.0])
        lat = np.array([100.0, 5.0, 5.0, 5.0, 5.0])
        keep, n = collision_scan(t, lat)
        assert n == 3
        assert keep.tolist() == [True, False, False, False, True]

    def test_empty(self):
        keep, n = collision_scan(np.zeros(0), np.zeros(0))
        assert keep.size == 0 and n == 0


def make_source(n=200_000, cpi=0.5, dram_frac=0.0):
    rng = np.random.default_rng(7)
    kinds = rng.choice(
        [int(OpKind.LOAD), int(OpKind.STORE), int(OpKind.OTHER)],
        size=n, p=[0.4, 0.1, 0.5],
    ).astype(np.uint8)
    addrs = rng.integers(1, 1 << 40, n, dtype=np.uint64)
    levels = np.where(
        rng.random(n) < dram_frac, int(MemLevel.DRAM), int(MemLevel.L1)
    ).astype(np.uint8)
    levels[(kinds != OpKind.LOAD) & (kinds != OpKind.STORE)] = 0
    return TraceOpSource(kinds, addrs, levels, cpi=cpi)


class TestSpeSampler:
    def sampler(self, ampere, period=1000, config=None, track=True):
        return SpeSampler(
            period,
            config or SpeConfig.loads_and_stores(),
            PipelineModel(ampere),
            GenericTimer(ampere.frequency_hz),
            np.random.default_rng(3),
            track_collisions=track,
        )

    def test_only_mem_ops_kept(self, ampere):
        out = self.sampler(ampere).sample_stream(make_source())
        assert set(np.unique(out.batch.kind)) <= {int(OpKind.LOAD), int(OpKind.STORE)}

    def test_filter_counts_add_up(self, ampere):
        out = self.sampler(ampere).sample_stream(make_source())
        assert out.n_selected == out.n_collisions + out.n_filtered + out.n_kept

    def test_loads_only_config(self, ampere):
        out = self.sampler(ampere, config=SpeConfig.loads_only()).sample_stream(
            make_source()
        )
        assert (out.batch.kind == OpKind.LOAD).all()

    def test_min_latency_filter(self, ampere):
        cfg = SpeConfig(loads=True, stores=True, min_latency=50)
        out = self.sampler(ampere, config=cfg).sample_stream(
            make_source(dram_frac=0.5)
        )
        assert (out.batch.total_lat >= 50).all()

    def test_collisions_appear_with_slow_dram_and_small_gap(self, ampere):
        src = make_source(cpi=0.1, dram_frac=0.5)
        out = self.sampler(ampere, period=1000).sample_stream(src)
        assert out.n_collisions > 0

    def test_no_collisions_when_gap_large(self, ampere):
        src = make_source(cpi=10.0, dram_frac=0.5)
        out = self.sampler(ampere, period=1000).sample_stream(src)
        assert out.n_collisions == 0

    def test_track_collisions_false(self, ampere):
        src = make_source(cpi=0.1, dram_frac=0.5)
        out = self.sampler(ampere, track=False).sample_stream(src)
        assert out.n_collisions == 0

    def test_timestamps_positive_monotone(self, ampere):
        out = self.sampler(ampere).sample_stream(make_source())
        assert (out.batch.ts >= 1).all()
        assert (np.diff(out.batch.ts.astype(np.int64)) >= 0).all()

    def test_start_cycle_offsets_timestamps(self, ampere):
        s1 = self.sampler(ampere)
        s2 = self.sampler(ampere)
        o1 = s1.sample_stream(make_source(), start_cycle=0.0)
        o2 = s2.sample_stream(make_source(), start_cycle=3e9)
        assert o2.batch.ts.min() > o1.batch.ts.max()

    def test_addresses_nonzero(self, ampere):
        out = self.sampler(ampere).sample_stream(make_source())
        assert (out.batch.addr != 0).all()

    def test_empty_source(self, ampere):
        src = TraceOpSource(
            np.zeros(0, np.uint8), np.zeros(0, np.uint64), np.zeros(0, np.uint8), 1.0
        )
        out = self.sampler(ampere).sample_stream(src)
        assert out.n_selected == 0 and out.n_kept == 0

    def test_bad_period(self, ampere):
        with pytest.raises(SpeError):
            self.sampler(ampere, period=0)
