"""SPE driver tests: aux routing, losses, costs, throttling."""

import numpy as np
import pytest

from repro.cpu.clock import GenericTimer
from repro.cpu.pipeline import PipelineModel
from repro.errors import SpeError
from repro.kernel.perf_event import ARM_SPE_PMU_TYPE, PerfEventAttr, PerfSubsystem
from repro.kernel.records import PERF_AUX_FLAG_COLLISION, PERF_AUX_FLAG_TRUNCATED
from repro.spe.config import SpeConfig
from repro.spe.driver import SpeCostModel, SpeDriver, ThrottleModel
from repro.spe.sampler import SpeSampler, TraceOpSource
from repro.cpu.ops import OpKind
from repro.machine.hierarchy import MemLevel


def open_event(machine, aux_pages=16, ring_pages=8, period=1000):
    ps = PerfSubsystem(machine)
    ev = ps.perf_event_open(
        PerfEventAttr(
            type=ARM_SPE_PMU_TYPE,
            config=SpeConfig.loads_and_stores().encode(),
            sample_period=period,
            disabled=False,
        ),
        cpu=0,
    )
    ev.mmap_ring(ring_pages)
    ev.mmap_aux(aux_pages)
    return ev


def sampled_output(machine, n=300_000, period=100, cpi=1.0, seed=0):
    rng = np.random.default_rng(seed)
    kinds = np.full(n, OpKind.LOAD, np.uint8)
    addrs = rng.integers(1, 1 << 40, n, dtype=np.uint64)
    levels = np.full(n, int(MemLevel.L1), np.uint8)
    src = TraceOpSource(kinds, addrs, levels, cpi=cpi)
    sampler = SpeSampler(
        period, SpeConfig.loads_and_stores(), PipelineModel(machine),
        GenericTimer(machine.frequency_hz), rng,
    )
    return sampler.sample_stream(src)


class TestFeedFlush:
    def test_all_samples_delivered_small_stream(self, ampere):
        ev = open_event(ampere)
        drv = SpeDriver(ev, SpeCostModel(service_loss_records=0))
        out = sampled_output(ampere, n=50_000)
        res = drv.process(out)
        assert len(res.batch) == out.n_kept
        assert res.n_lost_stall == 0

    def test_bytes_round_trip_through_aux(self, ampere):
        ev = open_event(ampere)
        drv = SpeDriver(ev, SpeCostModel(service_loss_records=0))
        out = sampled_output(ampere, n=50_000)
        res = drv.process(out)
        got = res.batch.sorted_by_time()
        ref = out.batch.sorted_by_time()
        assert (got.addr == ref.addr).all()
        assert (got.ts == ref.ts).all()

    def test_service_loss_per_wakeup(self, ampere):
        ev = open_event(ampere, aux_pages=4)  # wm = 2048 records
        cost = SpeCostModel(service_loss_records=100, service_loss_scale=1.0)
        drv = SpeDriver(ev, cost)
        out = sampled_output(ampere, n=3_000_000, period=100)
        res = drv.process(out)
        assert res.n_wakeups > 2
        assert res.n_lost_stall == pytest.approx(res.n_wakeups * 100, rel=0.2)

    def test_truncated_flag_follows_loss(self, ampere):
        ev = open_event(ampere, aux_pages=4)
        drv = SpeDriver(ev, SpeCostModel(service_loss_records=50))
        out = sampled_output(ampere, n=2_000_000, period=100)
        res = drv.process(out)
        truncated = [r for r in res.aux_records if r.flags & PERF_AUX_FLAG_TRUNCATED]
        assert truncated

    def test_collision_flag_announced(self, ampere):
        ev = open_event(ampere)
        drv = SpeDriver(ev)
        out = sampled_output(ampere, n=100_000)
        out.n_collisions = 5  # simulate collisions reported by hardware
        res = drv.process(out)
        assert any(r.flags & PERF_AUX_FLAG_COLLISION for r in res.aux_records)

    def test_flush_uncharged(self, ampere):
        ev = open_event(ampere)
        drv = SpeDriver(ev)
        out = sampled_output(ampere, n=10_000, period=100)  # < watermark
        fed = drv.feed(out)
        assert fed.n_wakeups == 0
        tail = drv.flush()
        assert tail.overhead_cycles == 0.0
        assert len(tail.batch) == out.n_kept

    def test_pending_carries_across_feeds(self, ampere):
        ev = open_event(ampere)  # wm 8192 records
        drv = SpeDriver(ev, SpeCostModel(service_loss_records=0))
        total = 0
        delivered = 0
        for seed in range(4):
            out = sampled_output(ampere, n=300_000, period=100, seed=seed)
            total += out.n_kept
            delivered += len(drv.feed(out).batch)
        tail = drv.flush()
        delivered += len(tail.batch)
        assert drv.total_written == total  # zero-loss cost model
        assert delivered == total
        # watermark crossings plus the final (uncharged) flush wakeup
        assert drv.total_wakeups == total // 8192 + 1

    def test_overhead_scales_with_records(self, ampere):
        cost = SpeCostModel(irq_cycles=0, user_record_cycles=10,
                            service_loss_records=0)
        ev = open_event(ampere)
        drv = SpeDriver(ev, cost)
        out = sampled_output(ampere, n=100_000, period=100)
        res = drv.process(out)
        assert res.overhead_cycles == pytest.approx(out.n_kept * 10)

    def test_irq_cost_per_wakeup(self, ampere):
        cost = SpeCostModel(irq_cycles=1000, user_record_cycles=0,
                            service_loss_records=0)
        ev = open_event(ampere, aux_pages=4)
        drv = SpeDriver(ev, cost)
        out = sampled_output(ampere, n=1_000_000, period=100)
        fed = drv.feed(out)  # flush wakeup is free by design
        assert fed.overhead_cycles == pytest.approx(fed.n_wakeups * 1000)

    def test_requires_mmaps(self, ampere):
        ps = PerfSubsystem(ampere)
        ev = ps.perf_event_open(
            PerfEventAttr(
                type=ARM_SPE_PMU_TYPE,
                config=SpeConfig.loads_and_stores().encode(),
                sample_period=100,
            ),
            cpu=0,
        )
        with pytest.raises(SpeError):
            SpeDriver(ev)


class TestMinWorkingPages:
    """Paper Fig. 9: SPE needs >= 4 aux pages to produce samples."""

    def test_small_aux_loses_everything(self, ampere):
        ev = open_event(ampere, aux_pages=2)
        drv = SpeDriver(ev)
        out = sampled_output(ampere, n=100_000, period=100)
        res = drv.process(out)
        assert not drv.working
        assert res.n_written == 0
        assert res.n_lost_stall == out.n_kept

    def test_four_pages_works(self, ampere):
        ev = open_event(ampere, aux_pages=4)
        drv = SpeDriver(ev)
        assert drv.working
        out = sampled_output(ampere, n=100_000, period=100)
        res = drv.process(out)
        assert res.n_written > 0

    def test_inert_session_costs_once(self, ampere):
        ev = open_event(ampere, aux_pages=2)
        drv = SpeDriver(ev)
        r1 = drv.feed(sampled_output(ampere, n=10_000, period=100))
        r2 = drv.feed(sampled_output(ampere, n=10_000, period=100, seed=1))
        assert r1.overhead_cycles > 0
        assert r2.overhead_cycles == 0.0

    def test_disabled_event_inert(self, ampere):
        ev = open_event(ampere)
        ev.enabled = False
        drv = SpeDriver(ev)
        res = drv.process(sampled_output(ampere, n=10_000, period=100))
        assert res.n_written == 0


class TestThrottleModel:
    def test_no_throttle_below_onset(self):
        t = ThrottleModel(onset_threads=48)
        assert t.throttled_fraction(1000.0, 32) == 0.0

    def test_peak_fraction_at_peak_threads(self):
        t = ThrottleModel(onset_threads=48, peak_threads=128, peak_fraction=0.04)
        assert t.throttled_fraction(1000.0, 128) == pytest.approx(0.04)

    def test_monotone_in_threads(self):
        t = ThrottleModel()
        fr = [t.throttled_fraction(1000.0, n) for n in (48, 64, 96, 128)]
        assert fr == sorted(fr)

    def test_zero_rate_gates(self):
        t = ThrottleModel()
        assert t.throttled_fraction(0.0, 128) == 0.0

    def test_events_positive_when_throttling(self):
        t = ThrottleModel()
        assert t.throttle_events(1000.0, 128, 10.0) >= 1
        assert t.throttle_events(1000.0, 8, 10.0) == 0

    def test_invalid_inputs(self):
        t = ThrottleModel()
        with pytest.raises(SpeError):
            t.throttled_fraction(-1.0, 8)
        with pytest.raises(SpeError):
            t.throttled_fraction(1.0, 0)
