"""Golden parity: whole profiles and the on-disk result cache agree
between the vectorized and reference record paths.

The perf rewrite is only admissible if it is invisible end-to-end: a
:class:`ProfileResult` produced by the epoch-planned driver and the
vectorized collision scan must be byte-identical to one produced by the
retained scalar references, and — since :class:`ResultCache` keys carry
no notion of which implementation ran — entries stored by one path must
be exact hits for the other (PR 1-3 caches stay valid).
"""

import numpy as np
import pytest

from repro.evalharness.experiments import fig9_aux_buffer
from repro.machine.spec import ampere_altra_max
from repro.nmo.backends import FixedAuxPagesBackend
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.orchestrate.cache import ResultCache
from repro.spe.driver import SpeCostModel
from repro.spe.refpath import reference_path
from repro.workloads.stream import StreamWorkload


def profile(machine, *, aux_pages=None, aux_watermark=None, period=512,
            threads=2, elems=1 << 18, loss=None):
    w = StreamWorkload(machine, n_threads=threads, n_elems=elems, iterations=3)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)
    backend = (
        FixedAuxPagesBackend(aux_pages, aux_watermark=aux_watermark)
        if aux_pages
        else None
    )
    cost = SpeCostModel(service_loss_records=loss) if loss is not None else None
    return NmoProfiler(w, settings, seed=0, backend=backend, cost=cost).run()


def assert_profiles_identical(a, b):
    assert a.workload == b.workload and a.n_threads == b.n_threads
    for f in (
        "mem_counted", "samples_processed", "collisions", "wakeups",
        "truncated", "throttle_events", "throttled_samples", "decode_skipped",
    ):
        assert getattr(a, f) == getattr(b, f), f
    for f in ("accuracy", "baseline_cycles", "profiled_cycles", "time_overhead"):
        assert getattr(a, f) == getattr(b, f), f  # exact, not approx
    for c in a.batch._COLUMNS:
        assert (getattr(a.batch, c) == getattr(b.batch, c)).all(), c
    assert (a.sample_cores == b.sample_cores).all()
    assert (a.sample_times_s == b.sample_times_s).all()
    for sa, sb in zip(a.per_thread, b.per_thread):
        assert sa == sb
    assert a.phase_spans == b.phase_spans


class TestProfileGoldenParity:
    def test_default_session(self, ampere):
        got = profile(ampere)
        with reference_path():
            ref = profile(ampere)
        assert got.n_samples > 0
        assert_profiles_identical(got, ref)

    def test_small_aux_small_watermark(self, ampere):
        # the Fig. 9 interrupt-bound corner: minimum working buffer and
        # an aggressive watermark (thousands of wakeups)
        kw = dict(aux_pages=4, aux_watermark=1024, period=128, loss=0)
        got = profile(ampere, **kw)
        with reference_path():
            ref = profile(ampere, **kw)
        assert got.wakeups > 100
        assert_profiles_identical(got, ref)

    def test_torn_loss_regime(self, ampere):
        kw = dict(aux_pages=4, aux_watermark=8192, period=128, loss=300)
        got = profile(ampere, **kw)
        with reference_path():
            ref = profile(ampere, **kw)
        assert got.truncated > 0
        assert_profiles_identical(got, ref)


class TestCacheParityAcrossPaths:
    def test_reference_entries_hit_vectorized(self, ampere, tmp_path):
        """fig9 trials stored by the reference path are exact cache hits
        for the vectorized path, with byte-equal payloads."""
        kw = dict(
            machine=ampere, aux_pages=(4, 8), period=512,
            scale=0.02, n_threads=2,
        )
        cache = ResultCache(tmp_path)
        with reference_path():
            ref_rows = fig9_aux_buffer(cache=cache, **kw)
        after_ref = cache.persistent_stats()  # runner folds into stats.json
        assert after_ref["stores"] == len(ref_rows)
        assert len(cache.entries()) == len(ref_rows)

        cache2 = ResultCache(tmp_path)
        vec_rows = fig9_aux_buffer(cache=cache2, **kw)
        after_vec = cache2.persistent_stats()
        assert after_vec["hits"] - after_ref["hits"] == len(vec_rows)
        assert after_vec["misses"] == after_ref["misses"]
        assert after_vec["stores"] == after_ref["stores"]
        assert ref_rows == vec_rows

    def test_vectorized_recompute_equals_reference_payload(self, ampere, tmp_path):
        """Uncached recomputation on the two paths yields equal rows —
        the cache never has to care which implementation filled it."""
        kw = dict(
            machine=ampere, aux_pages=(4,), period=512,
            scale=0.02, n_threads=2,
        )
        vec_rows = fig9_aux_buffer(cache=None, **kw)
        with reference_path():
            ref_rows = fig9_aux_buffer(cache=None, **kw)
        assert vec_rows == ref_rows

    def test_cache_key_ignores_implementation_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = {"aux_pages": 4, "period": 512}
        key_vec = cache.key("fig9", cfg, seed=0)
        with reference_path():
            key_ref = cache.key("fig9", cfg, seed=0)
        assert key_vec == key_ref
