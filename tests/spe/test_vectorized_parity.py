"""Differential suite: the vectorized SPE record path is byte-identical
to the retained scalar references.

Covers the three fast paths the perf rewrite introduced:

* :func:`collision_scan` vs :func:`_reference_collision_scan` across the
  dense and sparse strategies (and the density-probe bail-out),
* :meth:`SpeDriver._planned_feed` vs :meth:`SpeDriver._reference_feed`
  including wrap-around, sub-watermark carry, torn-loss carry across
  phases, COLLISION/TRUNCATED flag schedules, ring-buffer overflow, and
  end state of every buffer byte,
* the bulk buffer primitives (:meth:`AuxBuffer.stream_paced`,
  :meth:`RingBuffer.write_records_packed`) vs their incremental
  equivalents.
"""

import numpy as np
import pytest

from repro.cpu.clock import GenericTimer
from repro.cpu.ops import OpKind
from repro.cpu.pipeline import PipelineModel
from repro.kernel.aux_buffer import AuxBuffer
from repro.kernel.perf_event import ARM_SPE_PMU_TYPE, PerfEventAttr, PerfSubsystem
from repro.kernel.records import AuxRecord, pack_aux_records
from repro.kernel.ring_buffer import RingBuffer
from repro.machine.hierarchy import MemLevel
from repro.spe.config import SpeConfig
from repro.spe.driver import SpeCostModel, SpeDriver, plan_feed_epochs, feed_written_mask
from repro.spe.refpath import reference_active, reference_path
from repro.spe.sampler import (
    SpeSampler,
    TraceOpSource,
    _reference_collision_scan,
    collision_scan,
)


class TestReferencePathToggle:
    def test_context_manager_restores(self):
        assert not reference_active()
        with reference_path():
            assert reference_active()
            with reference_path():
                assert reference_active()
            assert reference_active()
        assert not reference_active()


def scan_case(mode: int, n: int, rng) -> tuple[np.ndarray, np.ndarray]:
    """One (select_cycles, latencies) pair exercising a specific regime."""
    if mode == 0:  # dense survivors (precomputed-successor strategy)
        return np.sort(rng.uniform(0, n * 10, n)), rng.uniform(1, 500, n)
    if mode == 1:  # moderate overlap
        return np.sort(rng.uniform(0, n, n)), rng.uniform(100, 5000, n)
    if mode == 2:  # exact busy-boundary ties (>= vs > semantics)
        return np.arange(n, dtype=float) * 100, np.full(n, 100.0)
    if mode == 3:  # duplicate select times, near-zero latencies
        t = np.sort(np.repeat(rng.uniform(0, n, n // 4 + 1), 4)[:n])
        return t, rng.uniform(0, 3, n)
    if mode == 4:  # zero latency everywhere
        return np.sort(rng.uniform(0, n * 2, n)), np.zeros(n)
    if mode == 5:  # adversarial: heavy first half only (bail-out path)
        t = np.sort(rng.uniform(0, n * 100, n))
        lat = np.where(
            np.arange(n) < n // 2, rng.uniform(5000.0, 20000.0, n), 0.1
        )
        return t, lat
    # collision-heavy (sparse lazy-bisect strategy)
    return np.sort(rng.uniform(0, n, n)), rng.uniform(1000, 8000, n)


class TestCollisionScanParity:
    @pytest.mark.parametrize("mode", range(7))
    def test_randomized_parity(self, mode):
        rng = np.random.default_rng(100 + mode)
        for _ in range(12):
            n = int(rng.integers(1, 25_000))
            t, lat = scan_case(mode, n, rng)
            keep_v, coll_v = collision_scan(t, lat)
            keep_r, coll_r = _reference_collision_scan(t, lat)
            assert coll_v == coll_r
            assert (keep_v == keep_r).all()

    def test_block_boundary_sizes(self):
        # straddle the vectorized successor block size
        from repro.spe.sampler import _SCAN_BLOCK

        rng = np.random.default_rng(7)
        for n in (_SCAN_BLOCK - 1, _SCAN_BLOCK, _SCAN_BLOCK + 1, 2 * _SCAN_BLOCK + 3):
            t = np.sort(rng.uniform(0, n, n))
            lat = rng.uniform(50, 2000, n)
            keep_v, coll_v = collision_scan(t, lat)
            keep_r, coll_r = _reference_collision_scan(t, lat)
            assert coll_v == coll_r and (keep_v == keep_r).all()

    def test_single_sample_and_empty(self):
        for t, lat in (
            (np.zeros(0), np.zeros(0)),
            (np.array([5.0]), np.array([100.0])),
        ):
            keep_v, coll_v = collision_scan(t, lat)
            keep_r, coll_r = _reference_collision_scan(t, lat)
            assert coll_v == coll_r and (keep_v == keep_r).all()

    def test_reference_path_routes_to_reference(self):
        rng = np.random.default_rng(0)
        t = np.sort(rng.uniform(0, 100, 1000))
        lat = rng.uniform(10, 500, 1000)
        with reference_path():
            keep, coll = collision_scan(t, lat)
        keep_r, coll_r = _reference_collision_scan(t, lat)
        assert coll == coll_r and (keep == keep_r).all()


# -- feed parity harness -----------------------------------------------------------


def open_event(machine, aux_pages=4, ring_pages=8, watermark=None, period=100):
    ps = PerfSubsystem(machine)
    ev = ps.perf_event_open(
        PerfEventAttr(
            type=ARM_SPE_PMU_TYPE,
            config=SpeConfig.loads_and_stores().encode(),
            sample_period=period,
            disabled=False,
            aux_watermark=watermark or 0,
        ),
        cpu=0,
    )
    ev.mmap_ring(ring_pages)
    ev.mmap_aux(aux_pages)
    return ev


def sampled(machine, n, seed, cpi=1.0, period=100, jitter=True):
    rng = np.random.default_rng(seed)
    kinds = np.full(n, OpKind.LOAD, np.uint8)
    addrs = rng.integers(1, 1 << 40, n, dtype=np.uint64)
    levels = np.full(n, int(MemLevel.L1), np.uint8)
    src = TraceOpSource(kinds, addrs, levels, cpi=cpi)
    cfg = SpeConfig(loads=True, stores=True, jitter=jitter)
    sampler = SpeSampler(
        period, cfg, PipelineModel(machine), GenericTimer(machine.frequency_hz), rng
    )
    return sampler.sample_stream(src)


def assert_results_equal(a, b, ctx=""):
    for f in ("n_input", "n_written", "n_lost_stall", "n_wakeups", "truncated_records"):
        assert getattr(a, f) == getattr(b, f), (ctx, f)
    assert a.overhead_cycles == b.overhead_cycles, (ctx, "overhead_cycles")
    assert a.decode == b.decode, ctx
    assert a.aux_records == b.aux_records, ctx
    for c in a.batch._COLUMNS:
        assert (getattr(a.batch, c) == getattr(b.batch, c)).all(), (ctx, c)


def assert_sessions_equal(ev1, ev2, drv1, drv2, ctx=""):
    a1, a2 = ev1.aux, ev2.aux
    assert (a1.head, a1.tail, a1._last_signal) == (a2.head, a2.tail, a2._last_signal), ctx
    assert (a1.bytes_written, a1.bytes_dropped) == (a2.bytes_written, a2.bytes_dropped), ctx
    assert (a1._buf == a2._buf).all(), ctx
    r1, r2 = ev1.ring, ev2.ring
    assert r1.meta.data_head == r2.meta.data_head, ctx
    assert (r1.records_written, r1.records_lost, r1._pending_lost) == (
        r2.records_written,
        r2.records_lost,
        r2._pending_lost,
    ), ctx
    assert (r1._buf == r2._buf).all(), ctx
    assert ev1.wakeups == ev2.wakeups, ctx
    assert (drv1._pending_rec, drv1._pending_loss, drv1._prev_lost) == (
        drv2._pending_rec,
        drv2._pending_loss,
        drv2._prev_lost,
    ), ctx
    assert drv1._announced_collisions == drv2._announced_collisions, ctx
    for f in ("total_collisions", "total_wakeups", "total_lost", "total_input",
              "total_written"):
        assert getattr(drv1, f) == getattr(drv2, f), (ctx, f)


def run_both(machine, phases, cost, aux_pages=4, ring_pages=8, watermark=None,
             flush_between=(), with_collisions=()):
    """Feed identical phase streams through a vectorized and a reference
    session, asserting deep parity after every step."""
    ev_v = open_event(machine, aux_pages, ring_pages, watermark)
    ev_r = open_event(machine, aux_pages, ring_pages, watermark)
    drv_v = SpeDriver(ev_v, cost)
    drv_r = SpeDriver(ev_r, cost)
    for phase, (n, seed) in enumerate(phases):
        out_v = sampled(machine, n, seed)
        out_r = sampled(machine, n, seed)
        if phase in with_collisions:
            out_v.n_collisions = out_r.n_collisions = 5
        res_v = drv_v.feed(out_v)
        with reference_path():
            res_r = drv_r.feed(out_r)
        ctx = f"phase {phase} (n={n})"
        assert_results_equal(res_v, res_r, ctx)
        assert_sessions_equal(ev_v, ev_r, drv_v, drv_r, ctx)
        if phase in flush_between:
            f_v, f_r = drv_v.flush(), drv_r.flush()
            assert_results_equal(f_v, f_r, f"{ctx} flush")
            assert_sessions_equal(ev_v, ev_r, drv_v, drv_r, f"{ctx} flush")
    f_v, f_r = drv_v.flush(), drv_r.flush()
    assert_results_equal(f_v, f_r, "final flush")
    assert_sessions_equal(ev_v, ev_r, drv_v, drv_r, "final flush")


class TestFeedParity:
    @pytest.mark.parametrize("loss", [0, 7, 100, 450])
    @pytest.mark.parametrize("watermark", [None, 64, 1000, 4096])
    def test_multi_phase_parity(self, ampere, loss, watermark):
        cost = SpeCostModel(service_loss_records=loss)
        run_both(
            ampere,
            phases=[(200_000, 0), (3_000, 1), (90_000, 2), (10, 3)],
            cost=cost,
            watermark=watermark,
        )

    def test_sub_watermark_carry_chains(self, ampere):
        # every phase smaller than the watermark: carry accumulates
        # across feeds and only the final flush drains
        run_both(
            ampere,
            phases=[(1_500, s) for s in range(6)],
            cost=SpeCostModel(service_loss_records=30),
            watermark=200_000,
        )

    def test_torn_loss_spans_phases(self, ampere):
        # a giant torn window swallows whole subsequent phases
        run_both(
            ampere,
            phases=[(120_000, 0), (300, 1), (300, 2), (50_000, 3)],
            cost=SpeCostModel(service_loss_records=2000),
            watermark=2048,
        )

    def test_aux_wraps_many_times(self, ampere):
        # tiny buffer, many services: the ring wraps repeatedly
        run_both(
            ampere,
            phases=[(250_000, 0), (250_000, 1)],
            cost=SpeCostModel(service_loss_records=11),
            aux_pages=4,
            watermark=256,
        )

    def test_ring_overflow_drops_aux_records(self, ampere):
        # a 1-page data ring overflows: AUX records are dropped and a
        # PERF_RECORD_LOST is owed — parity must hold through that too
        run_both(
            ampere,
            phases=[(250_000, 0), (100_000, 1)],
            cost=SpeCostModel(service_loss_records=0),
            ring_pages=1,
            watermark=256,
        )

    def test_collision_flag_announced_once(self, ampere):
        run_both(
            ampere,
            phases=[(60_000, 0), (60_000, 1), (60_000, 2)],
            cost=SpeCostModel(service_loss_records=25),
            with_collisions={1},
        )

    def test_flush_mid_sequence(self, ampere):
        run_both(
            ampere,
            phases=[(90_000, 0), (20_000, 1), (90_000, 2)],
            cost=SpeCostModel(service_loss_records=60),
            flush_between={1},
        )

    def test_randomized_phase_soup(self, ampere):
        rng = np.random.default_rng(42)
        for trial in range(4):
            loss = int(rng.integers(0, 800))
            wm = int(rng.choice([64, 320, 1024, 8192, 100_000]))
            phases = [
                (int(rng.integers(1, 120_000)), 1000 * trial + i)
                for i in range(int(rng.integers(2, 6)))
            ]
            run_both(
                ampere,
                phases=phases,
                cost=SpeCostModel(service_loss_records=loss),
                watermark=wm,
            )

    def test_planner_fallback_on_external_ring_motion(self, ampere):
        # an externally written aux ring violates the planner's carry
        # invariant: feed must detect it and still match the reference
        ev_v = open_event(ampere)
        ev_r = open_event(ampere)
        for ev in (ev_v, ev_r):
            ev.aux.write(b"\x00" * 64)  # stray bytes the driver never wrote
        drv_v, drv_r = SpeDriver(ev_v), SpeDriver(ev_r)
        out_v = sampled(ampere, 50_000, 0)
        out_r = sampled(ampere, 50_000, 0)
        res_v = drv_v.feed(out_v)
        with reference_path():
            res_r = drv_r.feed(out_r)
        assert_results_equal(res_v, res_r, "external-motion fallback")


class TestFeedPlanArithmetic:
    """plan_feed_epochs against a direct simulation of the loop."""

    @staticmethod
    def simulate(n, wm_rec, pending_rec, pending_loss, loss_window):
        i = lost = services = 0
        while i < n:
            if pending_loss:
                skip = min(pending_loss, n - i)
                pending_loss -= skip
                lost += skip
                i += skip
                continue
            take = min(wm_rec - pending_rec, n - i)
            pending_rec += take
            i += take
            if pending_rec >= wm_rec:
                services += 1
                pending_rec = 0
                pending_loss = loss_window
        return lost, services, pending_rec, pending_loss

    def test_matches_simulation(self):
        rng = np.random.default_rng(3)
        for _ in range(500):
            wm_rec = int(rng.integers(1, 500))
            n = int(rng.integers(0, 20_000))
            pending_rec = int(rng.integers(0, wm_rec))
            pending_loss = int(rng.integers(0, 3000))
            loss_window = int(rng.integers(0, 1200))
            plan = plan_feed_epochs(n, wm_rec, pending_rec, pending_loss, loss_window)
            lost, services, p_rec, p_loss = self.simulate(
                n, wm_rec, pending_rec, pending_loss, loss_window
            )
            assert plan.lost == lost
            assert plan.n_services == services
            assert plan.pending_rec_end == p_rec
            assert plan.pending_loss_end == p_loss
            assert plan.written == n - lost
            mask = feed_written_mask(plan)
            assert int(mask.sum()) == plan.written

    def test_written_mask_pattern(self):
        plan = plan_feed_epochs(
            n=20, wm_rec=4, pending_rec=1, pending_loss=2, loss_window=3
        )
        mask = feed_written_mask(plan)
        # [2 torn] [3 written] SERVICE [3 torn] [4 written] SERVICE
        # [3 torn] [4 written] SERVICE [1 torn]
        expected = (
            [False] * 2 + [True] * 3 + [False] * 3 + [True] * 4
            + [False] * 3 + [True] * 4 + [False] * 1
        )
        assert mask.tolist() == expected
        assert plan.n_services == 3
        assert plan.pending_loss_end == 2
        assert plan.pending_rec_end == 0


class TestBulkBufferPrimitives:
    def test_stream_paced_equals_incremental(self, rng):
        for trial in range(40):
            pages = int(rng.integers(1, 5))
            size = pages * 4096
            wm = int(rng.integers(64, size + 1)) // 64 * 64 or 64
            a_inc = AuxBuffer(pages, 4096, watermark=wm)
            a_blk = AuxBuffer(pages, 4096, watermark=wm)
            # pre-existing carry in both
            carry = int(rng.integers(0, wm // 64)) * 64
            seedbytes = rng.integers(0, 256, carry, dtype=np.uint8)
            for a in (a_inc, a_blk):
                assert a.write(seedbytes) == carry
            n_drains = int(rng.integers(0, 12))
            total = n_drains * wm - carry + int(rng.integers(0, wm // 64)) * 64
            total = max(total, 0)
            data = rng.integers(0, 256, total, dtype=np.uint8)
            # incremental: write up to each drain point, drain fully
            signals_inc = []
            written = 0
            for _ in range(n_drains):
                chunk = wm - (a_inc.head - a_inc.tail)
                a_inc.write(data[written : written + chunk])
                written += chunk
                off, sz = a_inc.take_signal()
                signals_inc.append((off, sz))
                a_inc.read(off, sz)
                a_inc.advance_tail(off + sz)
            a_inc.write(data[written:])
            signals_blk = a_blk.stream_paced(data, n_drains, wm)
            assert signals_blk == signals_inc
            assert (a_blk.head, a_blk.tail, a_blk._last_signal) == (
                a_inc.head, a_inc.tail, a_inc._last_signal
            )
            assert (a_blk._buf == a_inc._buf).all()
            assert a_blk.bytes_written == a_inc.bytes_written

    def test_stream_paced_rejects_overdrain(self):
        a = AuxBuffer(1, 4096)
        from repro.errors import BufferError_

        with pytest.raises(BufferError_):
            a.stream_paced(np.zeros(64, np.uint8), n_drains=2, drain_bytes=2048)

    def test_stream_paced_rejects_overflow_schedules(self):
        # schedules where the incremental path would drop bytes must be
        # refused, never silently corrupt head/tail/free
        from repro.errors import BufferError_

        a = AuxBuffer(1, 4096)
        with pytest.raises(BufferError_):  # no drains, stream > size
            a.stream_paced(np.zeros(8192, np.uint8), n_drains=0, drain_bytes=2048)
        b = AuxBuffer(1, 4096)
        with pytest.raises(BufferError_):  # trailing partial overflows
            b.stream_paced(np.zeros(2048 + 4097, np.uint8), n_drains=1,
                           drain_bytes=2048)
        assert a.head == 0 and a.bytes_written == 0
        assert b.head == 0 and b.bytes_written == 0

    def test_reference_path_env_flag_for_worker_processes(self):
        import os

        from repro.spe.refpath import _ENV_FLAG

        assert _ENV_FLAG not in os.environ
        with reference_path():
            # what a freshly spawned pool worker would inherit
            assert os.environ.get(_ENV_FLAG) == "1"
        assert _ENV_FLAG not in os.environ

    def test_write_records_packed_equals_sequential(self, rng):
        for trial in range(30):
            ring_inc = RingBuffer(n_pages=1, page_size=int(rng.choice([256, 512, 4096])))
            ring_blk = RingBuffer(n_pages=1, page_size=ring_inc.page_size)
            n = int(rng.integers(1, 80))
            offsets = np.arange(n, dtype=np.uint64) * 2048
            flags = rng.integers(0, 16, n).astype(np.uint64)
            recs = [
                AuxRecord(aux_offset=int(o), aux_size=2048, flags=int(f))
                for o, f in zip(offsets, flags)
            ]
            for r in recs:
                ring_inc.write_record(r)
            packed = pack_aux_records(offsets, 2048, flags)
            ring_blk.write_records_packed(packed)
            assert ring_blk.meta.data_head == ring_inc.meta.data_head
            assert ring_blk.records_written == ring_inc.records_written
            assert ring_blk.records_lost == ring_inc.records_lost
            assert ring_blk._pending_lost == ring_inc._pending_lost
            assert (ring_blk._buf == ring_inc._buf).all()

    def test_write_records_packed_flushes_pending_lost(self):
        ring_inc = RingBuffer(n_pages=1, page_size=256)
        ring_blk = RingBuffer(n_pages=1, page_size=256)
        rec = AuxRecord(aux_offset=0, aux_size=64, flags=0)
        for ring in (ring_inc, ring_blk):
            while ring.write_record(rec):
                pass  # fill until drops start
            assert ring._pending_lost
            ring.read_records()  # drain: next write owes a LOST record
        follow = [AuxRecord(aux_offset=i, aux_size=64, flags=0) for i in range(3)]
        for r in follow:
            ring_inc.write_record(r)
        ring_blk.write_records_packed(
            pack_aux_records(np.arange(3, dtype=np.uint64), 64, 0)
        )
        assert ring_blk._pending_lost == ring_inc._pending_lost == 0
        assert (ring_blk._buf == ring_inc._buf).all()
        assert ring_blk.meta.data_head == ring_inc.meta.data_head

    def test_pack_aux_records_byte_identical(self, rng):
        offsets = rng.integers(0, 1 << 40, 17).astype(np.uint64)
        flags = rng.integers(0, 16, 17).astype(np.uint64)
        mat = pack_aux_records(offsets, 4096, flags)
        for i in range(17):
            assert mat[i].tobytes() == AuxRecord(
                aux_offset=int(offsets[i]), aux_size=4096, flags=int(flags[i])
            ).pack()

    def test_read_view_matches_read(self, rng):
        a = AuxBuffer(1, 4096)
        a.write(rng.integers(0, 256, 3000, dtype=np.uint8))
        a.advance_tail(2500)
        a.write(rng.integers(0, 256, 2000, dtype=np.uint8))  # wraps
        assert a.read_view(2500, 2500).tobytes() == a.read(2500, 2500)


class TestOpLatencyLut:
    """The uint8-LUT op_latencies equals the per-kind masked assignment."""

    def test_matches_masked_reference(self, ampere, rng):
        pm = PipelineModel(ampere)
        kinds = rng.integers(0, 5, 50_000).astype(np.uint8)
        levels = np.where(
            (kinds == OpKind.LOAD) | (kinds == OpKind.STORE),
            rng.integers(1, 5, 50_000),
            0,
        ).astype(np.uint8)
        got = pm.op_latencies(kinds, levels, rng=None, dram_scale=2.0)
        ref = np.empty(kinds.shape, dtype=np.float64)
        for kind, cost in pm.issue_cycles.items():
            ref[kinds == kind] = cost
        is_mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        lut = np.zeros(int(MemLevel.DRAM_CXL) + 1, dtype=np.float64)
        for lv in MemLevel:
            lut[int(lv)] = pm.level_latency(lv)
        for lv in MemLevel:
            if lv.is_dram_class:
                lut[int(lv)] *= 2.0
        ref[is_mem] += lut[levels[is_mem]]
        assert (got == ref).all()
