"""Sampling-strategy zoo: golden parity, cache-key stability, errors.

The strategy refactor extracted the original periodic sampler into
:mod:`repro.spe.strategies` behind a ``strategy`` field on
:class:`SpeConfig`.  These tests pin the compatibility contract:

* the default config and an explicit ``strategy="periodic"`` produce
  **byte-identical** :class:`SamplerOutput` and full profiler results
  (the pre-zoo behaviour, bit for bit),
* a defaulted ``strategy`` stays out of :func:`canonical_config`, so
  every pre-zoo cache key is unchanged; a non-default strategy changes
  the canonical form,
* the non-positive-period error message is one string across
  ``sample_positions``, ``SpeSampler``, and every strategy, and
  unknown strategy names fail with the registry-style ``known: ...``
  listing everywhere a name is accepted.
"""

import dataclasses

import numpy as np
import pytest

from repro.cpu.clock import GenericTimer
from repro.cpu.ops import OpKind
from repro.cpu.pipeline import PipelineModel
from repro.errors import SpeError
from repro.machine.hierarchy import MemLevel
from repro.machine.tiers import page_hotness
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.orchestrate.cache import canonical_config
from repro.spe.config import SpeConfig
from repro.spe.sampler import SpeSampler, TraceOpSource, sample_positions
from repro.spe.strategies import (
    HASH_OVERSAMPLE,
    STRATEGIES,
    STRATEGY_NAMES,
    check_period,
    get_strategy,
    xorshift_hash,
)
from repro.workloads.stream import StreamWorkload

KNOWN_LISTING = ", ".join(sorted(STRATEGIES))


def trace(n, seed, cpi=1.0):
    rng = np.random.default_rng(seed)
    kinds = np.full(n, OpKind.LOAD, np.uint8)
    addrs = rng.integers(1, 1 << 40, n, dtype=np.uint64)
    levels = np.full(n, int(MemLevel.L1), np.uint8)
    return TraceOpSource(kinds, addrs, levels, cpi=cpi)


def sampled(machine, n, seed, config, period=100):
    rng = np.random.default_rng(seed)
    return SpeSampler(
        period, config, PipelineModel(machine),
        GenericTimer(machine.frequency_hz), rng,
    ).sample_stream(trace(n, seed))


def assert_outputs_identical(a, b):
    for f in ("n_selected", "n_collisions", "n_filtered", "duration_cycles"):
        assert getattr(a, f) == getattr(b, f), f
    assert (a.arrival_cycles == b.arrival_cycles).all()
    for c in a.batch._COLUMNS:
        assert (getattr(a.batch, c) == getattr(b.batch, c)).all(), c


class TestPeriodicGoldenParity:
    """strategy="periodic" is the old sampler, byte for byte."""

    @pytest.mark.parametrize("jitter", [True, False])
    @pytest.mark.parametrize("n", [0, 1, 999, 120_000])
    def test_sampler_output_identical_to_default(self, ampere, n, jitter):
        default = SpeConfig(loads=True, stores=True, jitter=jitter)
        explicit = dataclasses.replace(default, strategy="periodic")
        assert_outputs_identical(
            sampled(ampere, n, seed=n + 1, config=default),
            sampled(ampere, n, seed=n + 1, config=explicit),
        )

    def test_multi_phase_carry_identical(self, ampere):
        outs = []
        for config in (
            SpeConfig.loads_and_stores(),
            dataclasses.replace(SpeConfig.loads_and_stores(),
                                strategy="periodic"),
        ):
            rng = np.random.default_rng(7)
            sampler = SpeSampler(
                512, config, PipelineModel(ampere),
                GenericTimer(ampere.frequency_hz), rng,
            )
            outs.append([sampler.sample_stream(trace(n, 7))
                         for n in (30_000, 100, 4_567)])
        for a, b in zip(*outs):
            assert_outputs_identical(a, b)

    def test_full_profile_identical_to_default(self, tiny):
        results = []
        for strategy in (None, "periodic"):
            w = StreamWorkload(tiny, n_threads=2, n_elems=1 << 14,
                               iterations=2)
            prof = NmoProfiler(
                w,
                NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=512),
                seed=0,
            )
            if strategy is not None:
                prof.backend.config = dataclasses.replace(
                    prof.backend.config, strategy=strategy
                )
            results.append(prof.run())
        a, b = results
        assert a.samples_processed == b.samples_processed
        assert a.accuracy == b.accuracy
        assert a.time_overhead == b.time_overhead
        assert a.collisions == b.collisions
        for c in a.batch._COLUMNS:
            assert (getattr(a.batch, c) == getattr(b.batch, c)).all(), c

    def test_periodic_strategy_delegates_to_sample_positions(self):
        src = trace(50_000, 3)
        pos_s, carry_s = get_strategy("periodic").sample(
            src, 512, True, np.random.default_rng(3), None
        )
        pos_r, carry_r = sample_positions(
            50_000, 512, True, np.random.default_rng(3), None
        )
        assert (pos_s == pos_r).all()
        assert carry_s == carry_r


class TestCacheKeyStability:
    """A defaulted strategy is invisible to the cache layer."""

    def test_default_config_has_no_strategy_key(self):
        assert "strategy" not in canonical_config(SpeConfig.loads_and_stores())
        assert "strategy" not in canonical_config(SpeConfig())

    def test_explicit_strategy_enters_canonical_form(self):
        cfg = dataclasses.replace(
            SpeConfig.loads_and_stores(), strategy="poisson"
        )
        assert canonical_config(cfg)["strategy"] == "poisson"

    def test_default_canonical_form_is_pre_zoo(self):
        # exactly the keys a pre-zoo cache entry was hashed over
        cc = canonical_config(SpeConfig.loads_and_stores())
        assert set(cc) == {
            "loads", "stores", "branches", "jitter", "min_latency",
            "physical_addresses", "timestamps",
        }

    def test_encode_ignores_strategy(self):
        base = SpeConfig.loads_and_stores()
        zoo = dataclasses.replace(base, strategy="page_hash")
        assert base.encode() == zoo.encode()
        assert SpeConfig.decode(zoo.encode()).strategy is None


class TestStrategyOutputs:
    """Cheap deterministic invariants for every registered strategy."""

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_positions_strictly_increasing_in_range(self, name):
        src = trace(80_000, 11)
        pos, carry = STRATEGIES[name].sample(
            src, 256, False, np.random.default_rng(11), None
        )
        assert carry >= 1
        assert pos.dtype == np.int64
        if pos.size:
            assert pos[0] >= 0 and pos[-1] < 80_000
            assert (np.diff(pos) > 0).all()

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_seeded_runs_are_identical(self, name):
        src = trace(40_000, 5)
        a = STRATEGIES[name].sample(src, 512, True,
                                    np.random.default_rng(5), None)
        b = STRATEGIES[name].sample(src, 512, True,
                                    np.random.default_rng(5), None)
        assert (a[0] == b[0]).all()
        assert a[1] == b[1]

    @pytest.mark.parametrize("name", ["addr_hash", "page_hash"])
    def test_hash_strategies_are_chunk_invariant(self, name):
        # RNG-free selection: splitting the stream moves nothing
        src = trace(60_000, 9)
        whole, _ = STRATEGIES[name].sample(
            src, 512, False, np.random.default_rng(9), None
        )
        parts, carry = [], None
        for lo, hi in ((0, 17_000), (17_000, 17_001), (17_001, 60_000)):
            sub = TraceOpSource(
                src._kinds[lo:hi], src._addrs[lo:hi], src._levels[lo:hi],
                cpi=src.cpi,
            )
            pos, carry = STRATEGIES[name].sample(
                sub, 512, False, np.random.default_rng(9), carry
            )
            parts.append(pos + lo)
        assert (np.concatenate(parts) == whole).all()

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_sampler_routes_to_named_strategy(self, ampere, name):
        cfg = dataclasses.replace(SpeConfig.loads_and_stores(), strategy=name)
        out = sampled(ampere, 50_000, seed=1, config=cfg, period=512)
        src = trace(50_000, 1)
        expected, _ = STRATEGIES[name].sample(
            src, 512, cfg.jitter, np.random.default_rng(1), None
        )
        # collisions only drop samples, never move them
        assert out.n_selected == expected.size

    def test_xorshift_hash_is_pure(self):
        vals = np.arange(1000, dtype=np.uint64) * 0x9E3779B9
        a, b = xorshift_hash(vals), xorshift_hash(vals)
        assert a.dtype == np.uint64
        assert (a == b).all()
        # a finaliser should not collapse distinct keys
        assert len(np.unique(a % 8)) == 8

    def test_hash_strategies_oversample_grid(self):
        src = trace(100_000, 2)
        pos, _ = STRATEGIES["page_hash"].sample(
            src, 4096, False, np.random.default_rng(2), None
        )
        gap = 4096 // HASH_OVERSAMPLE
        # every sample sits on the arithmetic candidate grid
        assert (np.mod(pos + 1, gap) == gap - 1).all() or (
            np.mod(pos - (gap - 1), gap) == 0
        ).all()


class TestPageHotnessWeighting:
    def make_space(self, tiny):
        w = StreamWorkload(tiny, n_threads=2, n_elems=1 << 14, iterations=1)
        return w.process.address_space

    def test_no_strategy_keeps_int_counts(self, tiny):
        aspace = self.make_space(tiny)
        addrs = np.array([aspace.mappings()[0].start + 8] * 5, dtype=np.uint64)
        counts = page_hotness(aspace, addrs)
        assert counts.dtype == np.int64
        assert counts.sum() == 5

    def test_periodic_weighting_is_identity(self, tiny):
        aspace = self.make_space(tiny)
        addrs = np.array([aspace.mappings()[0].start + 8] * 5, dtype=np.uint64)
        plain = page_hotness(aspace, addrs)
        weighted = page_hotness(aspace, addrs, strategy="periodic")
        assert weighted.dtype == np.float64
        assert (weighted == plain.astype(np.float64)).all()

    def test_hash_weighting_matches_strategy_weights(self, tiny):
        from repro.machine.tiers import mapped_page_ids

        aspace = self.make_space(tiny)
        base = aspace.mappings()[0].start
        page = 1 << aspace.page_shift
        addrs = np.array([base + i * page for i in range(8)], dtype=np.uint64)
        plain = page_hotness(aspace, addrs).astype(np.float64)
        for name in ("addr_hash", "page_hash", "hybrid"):
            weighted = page_hotness(aspace, addrs, strategy=name)
            pages = mapped_page_ids(aspace)
            expected = plain * STRATEGIES[name].page_sample_weight(
                pages << np.uint64(aspace.page_shift)
            )
            assert weighted.dtype == np.float64
            assert (weighted == expected).all(), name
            # inverse-probability correction only ever shrinks a count
            assert (weighted <= plain).all(), name


class TestUnifiedErrors:
    """Satellite fix: one period message, one unknown-name idiom."""

    PERIOD_MSG = "sampling period must be positive, got 0"

    def test_check_period_message(self):
        with pytest.raises(SpeError, match=self.PERIOD_MSG):
            check_period(0)
        with pytest.raises(SpeError,
                           match="sampling period must be positive, got -3"):
            check_period(-3)

    def test_sample_positions_uses_same_message(self):
        with pytest.raises(SpeError, match=self.PERIOD_MSG):
            sample_positions(100, 0, False, np.random.default_rng(0))

    def test_sampler_uses_same_message(self, ampere):
        with pytest.raises(SpeError, match=self.PERIOD_MSG):
            SpeSampler(
                0, SpeConfig.loads_and_stores(), PipelineModel(ampere),
                GenericTimer(ampere.frequency_hz), np.random.default_rng(0),
            )

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_every_strategy_uses_same_message(self, name):
        with pytest.raises(SpeError, match=self.PERIOD_MSG):
            STRATEGIES[name].sample(
                trace(10, 0), 0, False, np.random.default_rng(0), None
            )

    def test_get_strategy_unknown_name_lists_known(self):
        with pytest.raises(
            SpeError,
            match=f"unknown sampling strategy 'bogus'; known: {KNOWN_LISTING}",
        ):
            get_strategy("bogus")

    def test_spe_config_validates_strategy(self):
        with pytest.raises(SpeError, match="unknown sampling strategy"):
            SpeConfig(strategy="bogus")

    def test_page_hotness_validates_strategy(self, tiny):
        aspace = self.tiny_space(tiny)
        with pytest.raises(SpeError, match="unknown sampling strategy"):
            page_hotness(aspace, np.zeros(0, np.uint64), strategy="bogus")

    @staticmethod
    def tiny_space(tiny):
        w = StreamWorkload(tiny, n_threads=1, n_elems=1 << 12, iterations=1)
        return w.process.address_space

    def test_registry_is_sorted_in_message(self):
        # the listing is sorted, not registration order
        assert KNOWN_LISTING == "addr_hash, hybrid, page_hash, periodic, poisson"
