"""SampleBatch column-store tests."""

import numpy as np
import pytest

from repro.errors import SpeError
from repro.spe.records import SampleBatch


def mk(n=5):
    return SampleBatch(
        pc=np.arange(n, dtype=np.uint64),
        addr=np.arange(n, dtype=np.uint64) + 100,
        ts=np.arange(n, dtype=np.uint64)[::-1].copy() + 1,
        level=np.ones(n, np.uint8),
        kind=np.ones(n, np.uint8),
        total_lat=np.full(n, 7, np.uint16),
        issue_lat=np.full(n, 2, np.uint16),
    )


class TestSampleBatch:
    def test_empty_default(self):
        assert len(SampleBatch()) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(SpeError):
            SampleBatch(pc=np.zeros(2, np.uint64))

    def test_select_mask(self):
        b = mk(6)
        sel = b.select(b.addr % 2 == 0)
        assert len(sel) == 3

    def test_select_indices(self):
        b = mk(5)
        sel = b.select(np.array([4, 0]))
        assert sel.pc.tolist() == [4, 0]

    def test_concat(self):
        c = SampleBatch.concat([mk(2), mk(3)])
        assert len(c) == 5

    def test_concat_empty_list(self):
        assert len(SampleBatch.concat([])) == 0

    def test_sorted_by_time(self):
        b = mk(5).sorted_by_time()
        assert (np.diff(b.ts.astype(np.int64)) >= 0).all()

    def test_to_dict_columns(self):
        d = mk(3).to_dict()
        assert set(d) == set(SampleBatch._COLUMNS)

    def test_from_columns_missing_rejected(self):
        with pytest.raises(SpeError):
            SampleBatch.from_columns(pc=np.zeros(1, np.uint64))

    def test_dtype_coercion(self):
        b = SampleBatch(
            pc=[1, 2], addr=[3, 4], ts=[5, 6], level=[1, 1], kind=[1, 2],
            total_lat=[9, 9], issue_lat=[1, 1],
        )
        assert b.pc.dtype == np.uint64
        assert b.level.dtype == np.uint8

    def test_multidim_rejected(self):
        with pytest.raises(SpeError):
            SampleBatch(
                pc=np.zeros((2, 2), np.uint64),
                addr=np.zeros((2, 2), np.uint64),
                ts=np.zeros((2, 2), np.uint64),
                level=np.zeros((2, 2), np.uint8),
                kind=np.zeros((2, 2), np.uint8),
                total_lat=np.zeros((2, 2), np.uint16),
                issue_lat=np.zeros((2, 2), np.uint16),
            )
