"""SPE config encode/decode tests, anchored to the paper's values."""

import pytest

from repro.errors import SpeError
from repro.spe.config import (
    CONFIG_LOADS_AND_STORES,
    SpeConfig,
)


class TestPaperValues:
    def test_loads_and_stores_is_0x600000001(self):
        """§IV-A: '0x600000001 corresponds to sampling all loads and
        stores'."""
        assert SpeConfig.loads_and_stores().encode() == 0x6_0000_0001
        assert CONFIG_LOADS_AND_STORES == 0x6_0000_0001

    def test_decode_paper_value(self):
        cfg = SpeConfig.decode(0x6_0000_0001)
        assert cfg.loads and cfg.stores
        assert not cfg.branches
        assert cfg.timestamps
        assert not cfg.jitter

    def test_branches_excluded_by_default(self):
        """NMO excludes branch sampling (Neoverse N1 bias errata)."""
        assert not SpeConfig.loads_and_stores().branches


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cfg",
        [
            SpeConfig.loads_only(),
            SpeConfig.stores_only(),
            SpeConfig(loads=True, stores=True, branches=True),
            SpeConfig(loads=True, stores=False, jitter=True, min_latency=100),
            SpeConfig(loads=True, stores=True, physical_addresses=True),
            SpeConfig(loads=True, stores=True, timestamps=False),
        ],
    )
    def test_encode_decode_identity(self, cfg):
        assert SpeConfig.decode(cfg.encode()) == cfg

    def test_min_latency_field_bits(self):
        cfg = SpeConfig(loads=True, min_latency=0xABC)
        assert SpeConfig.decode(cfg.encode()).min_latency == 0xABC

    def test_min_latency_overflow_rejected(self):
        with pytest.raises(SpeError):
            SpeConfig(loads=True, min_latency=1 << 12)

    def test_no_op_types_rejected(self):
        with pytest.raises(SpeError):
            SpeConfig(loads=False, stores=False, branches=False)

    def test_negative_config_rejected(self):
        with pytest.raises(SpeError):
            SpeConfig.decode(-1)

    def test_jitter_bit_is_16(self):
        cfg = SpeConfig(loads=True, jitter=True)
        assert cfg.encode() >> 16 & 1
        quiet = SpeConfig(loads=True, jitter=False)
        assert not quiet.encode() >> 16 & 1
