"""Byte-exact packet layout tests (paper §IV-A)."""

import numpy as np
import pytest

from repro.errors import PacketDecodeError
from repro.spe.packets import (
    HDR_TIMESTAMP,
    HDR_VADDR,
    OFF_TS,
    OFF_TS_HDR,
    OFF_VADDR,
    OFF_VADDR_HDR,
    RECORD_SIZE,
    corrupt_records,
    decode_buffer,
    encode_batch,
)
from repro.spe.records import SampleBatch


def batch(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return SampleBatch(
        pc=rng.integers(1, 1 << 48, n, dtype=np.uint64),
        addr=rng.integers(1, 1 << 48, n, dtype=np.uint64),
        ts=rng.integers(1, 1 << 40, n, dtype=np.uint64),
        level=rng.integers(1, 5, n, dtype=np.uint8),
        kind=rng.integers(1, 3, n, dtype=np.uint8),
        total_lat=rng.integers(1, 1000, n, dtype=np.uint16),
        issue_lat=rng.integers(1, 100, n, dtype=np.uint16),
    )


class TestPaperLayout:
    def test_record_is_64_bytes(self):
        data = encode_batch(batch(3))
        assert len(data) == 3 * 64
        assert RECORD_SIZE == 64

    def test_vaddr_at_offset_31_prefaced_0xb2(self):
        """'the virtual address is stored as a 64-bit value at an offset
        of 31 bytes from the base of the packet' prefaced by 0xb2."""
        b = batch(1)
        raw = encode_batch(b)
        assert OFF_VADDR == 31 and OFF_VADDR_HDR == 30
        assert raw[30] == 0xB2 == HDR_VADDR
        addr = int.from_bytes(raw[31:39], "little")
        assert addr == int(b.addr[0])

    def test_timestamp_at_offset_56_prefaced_0x71(self):
        """'the timestamp is stored as a 64-bit value at the end of the
        packet at a 56-byte offset' prefaced by 0x71."""
        b = batch(1)
        raw = encode_batch(b)
        assert OFF_TS == 56 and OFF_TS_HDR == 55
        assert raw[55] == 0x71 == HDR_TIMESTAMP
        ts = int.from_bytes(raw[56:64], "little")
        assert ts == int(b.ts[0])

    def test_timestamp_ends_record(self):
        assert OFF_TS + 8 == RECORD_SIZE


class TestRoundTrip:
    def test_identity(self):
        b = batch(100)
        got, stats = decode_buffer(encode_batch(b))
        assert stats.n_valid == 100
        assert stats.n_skipped == 0
        for col in SampleBatch._COLUMNS:
            assert (getattr(got, col) == getattr(b, col)).all(), col

    def test_empty(self):
        got, stats = decode_buffer(b"")
        assert len(got) == 0
        assert stats.n_records == 0

    def test_trailing_partial_record_counted(self):
        raw = encode_batch(batch(2)) + b"\x00" * 10
        got, stats = decode_buffer(raw)
        assert stats.trailing_bytes == 10
        assert len(got) == 2


class TestSkipInvalid:
    """NMO skips packets with bad prefaces or zero addr/ts (§IV-A)."""

    def test_corrupted_preface_skipped(self):
        raw = corrupt_records(encode_batch(batch(10)), [3, 7])
        got, stats = decode_buffer(raw)
        assert stats.n_skipped == 2
        assert len(got) == 8

    def test_zero_address_skipped(self):
        b = batch(4)
        b.addr[1] = 0
        got, stats = decode_buffer(encode_batch(b))
        assert stats.n_skipped == 1
        assert len(got) == 3

    def test_zero_timestamp_skipped(self):
        b = batch(4)
        b.ts[2] = 0
        got, stats = decode_buffer(encode_batch(b))
        assert stats.n_skipped == 1

    def test_strict_mode_raises_with_detail(self):
        raw = corrupt_records(encode_batch(batch(5)), [2])
        with pytest.raises(PacketDecodeError) as e:
            decode_buffer(raw, strict=True)
        assert "record 2" in str(e.value)

    def test_corrupt_out_of_range(self):
        with pytest.raises(PacketDecodeError):
            corrupt_records(encode_batch(batch(2)), [5])


def _corrupt_records_scalar(data, indices, rng=None):
    """The pre-vectorisation reference loop, kept for equivalence checks."""
    raw = bytearray(data)
    for i in indices:
        base = i * RECORD_SIZE
        raw[base + OFF_VADDR_HDR] = 0x00
        if rng is not None and rng.random() < 0.5:
            raw[base + OFF_TS_HDR] = 0x00
    return bytes(raw)


class TestCorruptRecordsVectorised:
    """The NumPy fast path must match the scalar loop byte for byte."""

    def test_matches_scalar_reference(self):
        data = encode_batch(batch(64, seed=3))
        idx = [0, 5, 5, 17, 63]  # duplicates allowed
        assert corrupt_records(data, idx) == _corrupt_records_scalar(data, idx)

    def test_rng_draw_sequence_matches_scalar(self):
        # one uniform draw per index, in index order: vectorised
        # rng.random(n) consumes the same stream as n scalar calls
        data = encode_batch(batch(32, seed=4))
        idx = list(range(0, 32, 3))
        vec = corrupt_records(data, idx, rng=np.random.default_rng(11))
        ref = _corrupt_records_scalar(data, idx, rng=np.random.default_rng(11))
        assert vec == ref

    def test_empty_indices_is_identity(self):
        data = encode_batch(batch(4))
        assert corrupt_records(data, []) == data

    def test_numpy_index_array_accepted(self):
        data = encode_batch(batch(8))
        got = corrupt_records(data, np.array([1, 6]))
        _, stats = decode_buffer(got)
        assert stats.n_skipped == 2

    def test_negative_index_rejected_up_front(self):
        # the scalar loop silently wrote near the buffer end for
        # negative indices; now every index is validated before any write
        data = encode_batch(batch(4))
        with pytest.raises(PacketDecodeError):
            corrupt_records(data, [1, -1])
        with pytest.raises(PacketDecodeError) as e:
            corrupt_records(data, [-2])
        assert "-2" in str(e.value)

    def test_mixed_valid_and_invalid_indices_rejected(self):
        # validation runs before any write: a bad index anywhere in the
        # list must raise even when other indices are in range
        data = encode_batch(batch(4))
        with pytest.raises(PacketDecodeError):
            corrupt_records(data, [0, 9])

    def test_large_batch_round_trip(self):
        n = 5000
        data = encode_batch(batch(n, seed=9))
        idx = np.arange(0, n, 7)
        got, stats = decode_buffer(corrupt_records(data, idx))
        assert stats.n_skipped == len(idx)
        assert len(got) == n - len(idx)

    def test_garbage_buffer_fully_skipped(self):
        raw = bytes(range(256))  # 4 records of garbage
        got, stats = decode_buffer(raw)
        assert stats.n_valid == 0
        assert stats.n_skipped == 4
        assert len(got) == 0
