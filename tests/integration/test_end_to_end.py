"""Cross-module integration tests: the full NMO pipeline."""

import numpy as np
import pytest

from repro.machine.spec import ampere_altra_max
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.nmo.regions import RegionProfile
from repro.nmo.tracefile import read_trace, write_trace
from repro.workloads.cfd import CfdWorkload
from repro.workloads.stream import StreamWorkload


class TestFullPipeline:
    """Workload -> SPE sampling -> aux/ring bytes -> decode -> analysis."""

    def test_sample_addresses_land_in_data_objects(self, ampere):
        w = StreamWorkload(ampere, n_threads=4, n_elems=1 << 17, iterations=2)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048)
        r = NmoProfiler(w, s).run()
        regions = w.process.address_space.classify(r.batch.addr)
        assert (regions >= 0).all()  # every sample maps to a tagged object

    def test_sample_timestamps_follow_phase_order(self, ampere):
        w = StreamWorkload(ampere, n_threads=2, n_elems=1 << 17, iterations=2)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048)
        r = NmoProfiler(w, s).run()
        spans = {name: (t0, t1) for name, _tag, t0, t1 in r.phase_spans}
        init_t0, init_t1 = spans["init"]
        triad0_t0, _ = spans["triad#0"]
        assert init_t1 == pytest.approx(triad0_t0)
        # samples in the init span should be stores to a/b/c
        in_init = (r.sample_times_s >= init_t0) & (r.sample_times_s < init_t1)
        assert in_init.any()

    def test_mem_level_distribution_reasonable_for_stream(self, ampere):
        from repro.machine.hierarchy import MemLevel

        w = StreamWorkload(ampere, n_threads=32, scale=1 / 64)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=4096)
        r = NmoProfiler(w, s).run()
        frac_dram = (r.batch.level == int(MemLevel.DRAM)).mean()
        # streaming doubles: ~1 DRAM access per 64B line = 1/8 of accesses
        assert frac_dram == pytest.approx(0.125, abs=0.04)

    def test_trace_file_to_region_analysis(self, ampere, tmp_path):
        w = StreamWorkload(ampere, n_threads=4, n_elems=1 << 17, iterations=2)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048,
                        name="e2e")
        r = NmoProfiler(w, s).run()
        write_trace(r.to_trace(), tmp_path)
        back = read_trace("e2e", tmp_path)
        assert back.n_samples == r.samples_processed
        tags = {t[0] for t in back.meta["tags"]}
        assert tags == {"a", "b", "c"}

    def test_cfd_region_split_scores_match_paper(self, ampere):
        """Fig. 6: normals splits cleanly per thread; the indirectly
        accessed variables does not."""
        w = CfdWorkload(ampere, n_threads=16, n_elems=1 << 15, iterations=4)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=512)
        r = NmoProfiler(w, s).run()
        prof = RegionProfile.build(r)
        normals = prof.stats["normals"].split_score
        variables = prof.stats["variables"].split_score
        assert normals > 0.7
        assert variables < normals - 0.2

    def test_overhead_equals_charged_cycles(self, ampere):
        w = StreamWorkload(ampere, n_threads=4, n_elems=1 << 18, iterations=2)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=1024)
        r = NmoProfiler(w, s).run()
        increase = r.profiled_cycles - r.baseline_cycles
        # per-phase barriers align to the slowest thread, so the wall
        # increase is at least the slowest thread's total overhead and at
        # most the sum over threads (sum of per-phase maxima in between)
        lo = max(st.overhead_cycles for st in r.per_thread)
        hi = sum(st.overhead_cycles for st in r.per_thread)
        assert lo <= increase + 1e-6
        assert increase <= hi + 1e-6

    def test_wakeups_match_watermark_arithmetic(self, ampere):
        w = StreamWorkload(ampere, n_threads=1, n_elems=1 << 21, iterations=2)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=256)
        r = NmoProfiler(w, s).run()
        wm_records = (1 << 20) // 2 // 64  # 1 MiB aux, half watermark, 64B
        expected = r.per_thread[0].n_written // wm_records
        assert abs(r.per_thread[0].n_wakeups - expected) <= 2

    def test_decode_skips_zero(self, ampere):
        """No corruption is injected in a clean run: nothing skipped."""
        w = StreamWorkload(ampere, n_threads=2, n_elems=1 << 17, iterations=2)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=1024)
        r = NmoProfiler(w, s).run()
        assert r.decode_skipped == 0


class TestScaleInvariance:
    """Rates/ratios must be stable across simulation scales."""

    def test_accuracy_scale_free(self, ampere):
        accs = []
        for scale in (1 / 64, 1 / 16):
            w = StreamWorkload(ampere, n_threads=32, scale=scale)
            s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2000)
            accs.append(NmoProfiler(w, s).run().accuracy)
        assert accs[0] == pytest.approx(accs[1], abs=0.05)

    def test_sample_counts_scale_linearly(self, ampere):
        counts = []
        for scale in (1 / 64, 1 / 16):
            w = StreamWorkload(ampere, n_threads=32, scale=scale)
            s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=4000)
            counts.append(NmoProfiler(w, s).run().samples_processed)
        assert counts[1] / counts[0] == pytest.approx(4.0, rel=0.1)
