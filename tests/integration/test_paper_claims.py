"""Integration tests for the paper's headline quantitative claims.

Each test reproduces one sentence of the paper's abstract/evaluation on
the simulated testbed at reduced scale.  Absolute values are allowed to
differ (different substrate); orderings and knees must hold.
"""

import numpy as np
import pytest

from repro.machine.spec import GiB, ampere_altra_max
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.workloads.bfs import BfsWorkload
from repro.workloads.cfd import CfdWorkload
from repro.workloads.stream import StreamWorkload

MACHINE = ampere_altra_max()
SCALES = {"stream": 1 / 32, "cfd": 1 / 256, "bfs": 0.5}
CLASSES = {"stream": StreamWorkload, "cfd": CfdWorkload, "bfs": BfsWorkload}


def run(name, period, seed=0, threads=32, aux_mib=1):
    w = CLASSES[name](MACHINE, n_threads=threads, scale=SCALES[name])
    s = NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=period, auxbufsize_mib=aux_mib
    )
    return NmoProfiler(w, s, seed=seed).run()


@pytest.fixture(scope="module")
def sweep():
    """One shared sweep over the three workloads and key periods."""
    out = {}
    for name in ("stream", "cfd", "bfs"):
        out[name] = {p: run(name, p) for p in (1000, 2000, 4000, 16000)}
    return out


class TestAbstractClaims:
    def test_high_accuracy_at_3000_4000(self, sweep):
        """'At 3000 and 4000 sampling periods, the ARM SPE profiling
        achieves the highest accuracy above 94%' (STREAM/BFS; CFD's knee
        sits slightly later in our substrate)."""
        for name in ("stream", "bfs"):
            assert sweep[name][4000].accuracy > 0.94, name

    def test_low_overhead_at_4000(self, sweep):
        """'at a time overhead of 0.2%-3.3%'."""
        for name in ("stream", "cfd", "bfs"):
            assert 0.001 < sweep[name][4000].time_overhead < 0.04, name

    def test_small_periods_cause_drops(self, sweep):
        """'sampling periods lower than 2000 cause significant sample
        drops and low accuracy'."""
        for name in ("stream", "cfd"):
            assert sweep[name][1000].accuracy < sweep[name][4000].accuracy - 0.05


class TestFig7Claims:
    def test_linear_scaling_with_period(self, sweep):
        for name in ("stream", "bfs"):
            s4, s16 = (
                sweep[name][4000].samples_processed,
                sweep[name][16000].samples_processed,
            )
            assert s4 / s16 == pytest.approx(4.0, rel=0.15), name
        # CFD still collides at 4000 (its knee is later), so its ratio
        # falls short of ideal — the Fig. 7 deviation the paper discusses
        c4, c16 = (
            sweep["cfd"][4000].samples_processed,
            sweep["cfd"][16000].samples_processed,
        )
        assert 3.0 < c4 / c16 < 4.1

    def test_smallest_period_deviates_from_linear(self, sweep):
        """Collision/drop losses bend the curve at small periods for the
        bandwidth-bound workloads."""
        for name in ("stream", "cfd"):
            s1, s4 = (
                sweep[name][1000].samples_processed,
                sweep[name][4000].samples_processed,
            )
            assert s1 / s4 < 3.6, name  # ideal would be 4.0

    def test_trials_vary_at_small_period(self):
        """Five-trial spread exists at small periods (collision cascades
        depend on the perturbation draws).  The *magnitude* of the
        paper's variance blow-up additionally involves OS noise we do not
        model; see EXPERIMENTS.md."""
        runs = [run("cfd", 1000, seed=s) for s in range(4)]
        samples = [r.samples_processed for r in runs]
        collisions = [r.collisions for r in runs]
        assert len(set(samples)) > 1
        assert np.std(collisions) > 0


class TestFig8Claims:
    def test_collision_ordering_cfd_gt_stream_gt_bfs(self, sweep):
        """'the sample collision reaches up to even 510 and 1780 in
        STREAM and CFD respectively while that keeps below 10 in BFS'."""
        c = {n: sweep[n][1000].collisions for n in ("stream", "cfd", "bfs")}
        assert c["cfd"] > c["stream"] > c["bfs"]
        assert c["bfs"] < 10

    def test_collisions_decrease_with_period(self, sweep):
        for name in ("stream", "cfd"):
            cols = [sweep[name][p].collisions for p in (1000, 2000, 4000, 16000)]
            assert cols[0] > cols[-1]
            assert sorted(cols, reverse=True) == cols

    def test_bfs_overhead_highest_below_4000(self, sweep):
        """'BFS has the largest time overhead at sampling periods below
        4000 because it has the highest amount of samples' per second."""
        for p in (1000, 2000):
            assert (
                sweep["bfs"][p].time_overhead
                > sweep["stream"][p].time_overhead
            )
            assert sweep["bfs"][p].time_overhead > sweep["cfd"][p].time_overhead

    def test_bfs_accuracy_prominently_higher_at_small_periods(self, sweep):
        assert sweep["bfs"][1000].accuracy > sweep["stream"][1000].accuracy + 0.03
        assert sweep["bfs"][1000].accuracy > sweep["cfd"][1000].accuracy + 0.2

    def test_overhead_decreases_with_period(self, sweep):
        for name in ("stream", "cfd", "bfs"):
            ovh = [sweep[name][p].time_overhead for p in (1000, 4000, 16000)]
            assert ovh[0] > ovh[1] > ovh[2]


class TestFig9Claims:
    def test_spe_needs_four_pages(self):
        from repro.evalharness.experiments import fig9_aux_buffer

        rows = fig9_aux_buffer(aux_pages=(2, 4), scale=0.2)
        assert rows[0]["samples"] == 0           # 2 pages: loses everything
        assert rows[1]["samples"] > 0            # 4 pages: minimum working

    def test_accuracy_rises_with_buffer(self):
        from repro.evalharness.experiments import fig9_aux_buffer

        rows = fig9_aux_buffer(aux_pages=(4, 16, 64), scale=0.2)
        accs = [r["accuracy"] for r in rows]
        assert accs[0] < accs[1] < accs[2]

    def test_overhead_falls_with_buffer_beyond_minimum(self):
        from repro.evalharness.experiments import fig9_aux_buffer

        rows = fig9_aux_buffer(aux_pages=(4, 32, 512), scale=0.2)
        ovh = [r["overhead"] for r in rows]
        assert ovh[0] > ovh[1] > ovh[2]


class TestFig2Claims:
    def test_capacity_peaks(self):
        from repro.evalharness.experiments import fig2_capacity

        out = fig2_capacity(scale=0.05)
        assert out["inmem_analytics"]["peak_gib"] == pytest.approx(52.3, rel=0.03)
        assert out["pagerank"]["peak_gib"] == pytest.approx(123.8, rel=0.03)
        assert out["inmem_analytics"]["peak_utilisation"] == pytest.approx(
            0.204, abs=0.01
        )
        assert out["pagerank"]["peak_utilisation"] == pytest.approx(0.484, abs=0.01)


class TestFig3Claims:
    def test_bandwidth_shapes(self):
        from repro.evalharness.experiments import fig3_bandwidth

        out = fig3_bandwidth(scale=0.05)
        ima = out["inmem_analytics"]
        pr = out["pagerank"]
        assert ima["peak_gibs"] == pytest.approx(97.0, rel=0.1)
        assert pr["peak_gibs"] == pytest.approx(118.0, rel=0.1)
        # PageRank's spike happens during the early load phase
        assert pr["time_of_peak_s"] < 0.3 * pr["duration_s"]
        # IMA alternates with a ~15 s period (scaled)
        assert ima["period_s"] == pytest.approx(15.0 * 0.05, rel=0.25)
