"""Experiment harness tests (small configurations)."""

import numpy as np
import pytest

from repro.evalharness.experiments import (
    colo_interference,
    colo_scenarios,
    fig4_stream_regions,
    fig5_cfd_single_thread,
    fig6_cfd_32_threads,
    fig7_samples_vs_period,
    fig10_fig11_threads,
    table1_env_defaults,
    table2_machine_spec,
)
from repro.evalharness.report import (
    render_colo,
    render_fig7,
    render_fig9,
    render_fig10_fig11,
    render_sweep_table,
)


class TestTables:
    def test_table1_matches_paper(self):
        t = table1_env_defaults()
        assert t == {
            "NMO_ENABLE": "off",
            "NMO_NAME": "nmo",
            "NMO_MODE": "none",
            "NMO_PERIOD": "0",
            "NMO_TRACK_RSS": "off",
            "NMO_BUFSIZE": "1",
            "NMO_AUXBUFSIZE": "1",
        }

    def test_table2_rows(self):
        t = table2_machine_spec()
        assert t["Frequency"] == "3.0 GHz"
        assert t["Mem. capacity"] == "256 GB"


class TestRegionExperiments:
    def test_fig4_has_tags_and_spans(self):
        out = fig4_stream_regions(n_threads=4, n_elems=1 << 15, period=512)
        assert {b[0] for b in out["bands"]} == {"a", "b", "c"}
        assert out["triad_spans"]
        assert out["times"].size > 100

    def test_fig5_single_thread_continuous(self):
        out = fig5_cfd_single_thread(n_elems=1 << 13, period=512)
        # one thread: every object trivially "splits" across threads
        assert out["result"].n_threads == 1
        assert out["times"].size > 50

    def test_fig6_split_scores(self):
        out = fig6_cfd_32_threads(n_elems=1 << 14, period=256)
        scores = out["split_scores"]
        assert scores["normals"] > scores["variables"]
        assert "hires" in out
        hr = out["hires"]
        assert hr["times"].size < out["times"].size

    def test_fig6_hires_window_bounds(self):
        out = fig6_cfd_32_threads(n_elems=1 << 14, period=256)
        hr = out["hires"]
        assert (hr["times"] >= hr["t0"]).all()
        assert (hr["times"] < hr["t1"]).all()


class TestSweepExperiments:
    def test_unknown_workload_raises_registry_error(self):
        # lookups resolve through repro.workloads.registry everywhere,
        # so the error names the known workloads instead of a KeyError
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError, match="known:"):
            fig7_samples_vs_period(
                periods=(2048,), trials=1, workloads=("nope",), scale=0.1
            )

    def test_sweep_classes_alias_matches_registry(self):
        from repro.evalharness.experiments import SWEEP_CLASSES, SWEEP_SCALES
        from repro.workloads.registry import get_workload_class

        assert SWEEP_CLASSES == {
            name: get_workload_class(name) for name in SWEEP_SCALES
        }

    def test_fig7_small(self):
        res = fig7_samples_vs_period(
            periods=(2048, 8192), trials=2, workloads=("bfs",), scale=0.2
        )
        pts = res["bfs"]
        assert len(pts) == 2
        assert pts[0].samples_mean > pts[1].samples_mean
        assert len(pts[0].samples_trials) == 2

    def test_fig10_small(self):
        rows = fig10_fig11_threads(thread_counts=(2, 8), scale=0.25)
        assert [r["threads"] for r in rows] == [2, 8]
        assert all(r["samples"] > 0 for r in rows)


class TestColoInterference:
    def test_scenarios_sweep_corunner_counts(self):
        scen = colo_scenarios(4)
        assert ("stream",) in scen
        assert ("stream", "stream") in scen
        assert ("stream", "pagerank") in scen
        assert ("stream", "pagerank", "inmem_analytics", "stream") in scen
        assert max(len(s) for s in scen) == 4
        with pytest.raises(ValueError):
            colo_scenarios(0)

    def test_scenarios_distinct_beyond_mix_length(self):
        scen = colo_scenarios(6)
        assert len(scen) == len(set(scen))  # the mix cycles, never repeats
        assert ("stream", "pagerank", "inmem_analytics", "stream",
                "stream") in scen

    def test_exhibit_shapes(self):
        rows = colo_interference(
            max_corunners=2, scale=0.002, period=65536, n_threads=4
        )
        assert [r["scenario"] for r in rows] == [
            "stream", "stream+stream", "stream+pagerank",
        ]
        usable = rows[0]["usable_gibs"]
        for row in rows:
            assert len(row["runners"]) == row["n_corunners"]
            assert row["granted_sum_gibs"] <= usable * (1 + 1e-9)
            for r in row["runners"]:
                assert r["slowdown"] >= 1.0
                assert r["samples"] > 0
        solo = rows[0]["runners"][0]
        duo = rows[1]["runners"]
        # 4 STREAM threads do not saturate alone; two teams do, so each
        # duo runner is granted strictly less than the solo runner
        for r in duo:
            assert r["granted_gibs"] < solo["granted_gibs"]
            assert r["slowdown"] > solo["slowdown"]

    def test_render_colo(self):
        rows = [
            {
                "scenario": "stream", "n_corunners": 1, "wall_seconds": 0.1,
                "granted_sum_gibs": 150.0, "usable_gibs": 158.3,
                "runners": [
                    {"workload": "stream", "slowdown": 1.0,
                     "demand_gibs": 178.8, "granted_gibs": 158.3,
                     "accuracy": 0.96, "overhead": 0.001,
                     "collisions": 0, "samples": 1000},
                ],
            },
            {
                "scenario": "stream+stream", "n_corunners": 2,
                "wall_seconds": 0.2, "granted_sum_gibs": 158.0,
                "usable_gibs": 158.3,
                "runners": [
                    {"workload": "stream", "slowdown": 2.0,
                     "demand_gibs": 178.8, "granted_gibs": 79.2,
                     "accuracy": 0.96, "overhead": 0.001,
                     "collisions": 3, "samples": 990},
                ] * 2,
            },
        ]
        txt = render_colo(rows)
        assert "contended channel" in txt
        assert "stream+stream" in txt
        assert "2.00x" in txt
        assert "slowdown" in txt


class TestRendering:
    def test_render_sweep_table(self):
        res = fig7_samples_vs_period(
            periods=(4096,), trials=1, workloads=("bfs",), scale=0.1
        )
        txt = render_sweep_table(res["bfs"], "t")
        assert "bfs" in txt and "4096" in txt

    def test_render_fig7(self):
        res = fig7_samples_vs_period(
            periods=(2048, 8192), trials=1, workloads=("bfs",), scale=0.1
        )
        txt = render_fig7(res)
        assert "log10(samples)" in txt

    def test_render_fig9(self):
        rows = [
            {"aux_pages": 2, "accuracy": 0.0, "overhead": 0.0001,
             "samples": 0, "wakeups": 0, "working": False},
            {"aux_pages": 16, "accuracy": 0.93, "overhead": 0.002,
             "samples": 100, "wakeups": 3, "working": True},
        ]
        txt = render_fig9(rows)
        assert "aux buffer" in txt and "93.0%" in txt

    def test_render_fig10(self):
        rows = [
            {"threads": 1, "accuracy": 0.9, "overhead": 0.003,
             "collisions": 0, "throttle_events": 0, "samples": 10,
             "throttled_samples": 0, "wakeups": 1},
            {"threads": 128, "accuracy": 0.87, "overhead": 0.009,
             "collisions": 50, "throttle_events": 4, "samples": 9,
             "throttled_samples": 5, "wakeups": 128},
        ]
        txt = render_fig10_fig11(rows)
        assert "thread sweep" in txt
