"""Generic sweep utility tests."""

import pytest

from repro.errors import ReproError
from repro.evalharness.sweep import SweepResult, crossover, sweep
from repro.orchestrate import ResultCache


def picklable_run(v, t):
    """Module-level so workers>1 sweeps can ship it to the pool."""
    return {"x": float(v * 10 + t)}


class TestSweep:
    def test_runs_grid(self):
        out = sweep([1, 2, 3], lambda v, t: {"x": float(v * 10)})
        assert [r.value for r in out] == [1, 2, 3]
        assert out[1].metrics["x"] == 20.0

    def test_trials_aggregate(self):
        out = sweep([5], lambda v, t: {"x": float(v + t)}, trials=3)
        assert out[0].metrics["x"] == pytest.approx(6.0)
        assert out[0].stds["x"] > 0
        assert out[0].trials == 3

    def test_single_trial_zero_std(self):
        out = sweep([1], lambda v, t: {"x": 1.0})
        assert out[0].stds["x"] == 0.0

    def test_inconsistent_keys_rejected(self):
        def run(v, t):
            return {"a": 1.0} if t == 0 else {"b": 1.0}

        with pytest.raises(ReproError):
            sweep([1], run, trials=2)

    def test_zero_trials_rejected(self):
        with pytest.raises(ReproError):
            sweep([1], lambda v, t: {}, trials=0)


class TestOrchestratedSweep:
    def test_parallel_matches_serial(self):
        serial = sweep([1, 2, 3], picklable_run, trials=2, workers=1)
        parallel = sweep([1, 2, 3], picklable_run, trials=2, workers=2)
        assert serial == parallel

    def test_cache_requires_experiment_name(self, tmp_path):
        with pytest.raises(ReproError, match="experiment name"):
            sweep([1], picklable_run, cache=ResultCache(tmp_path))

    def test_cached_rerun_hits(self, tmp_path):
        a = sweep([1, 2], picklable_run, trials=2,
                  cache=ResultCache(tmp_path), experiment="demo")
        b = sweep([1, 2], picklable_run, trials=2,
                  cache=ResultCache(tmp_path), experiment="demo")
        assert a == b
        totals = ResultCache(tmp_path).persistent_stats()
        assert (totals["hits"], totals["misses"], totals["stores"]) == (4, 4, 4)
        assert totals["hits_mmap"] + totals["hits_pickle"] == totals["hits"]

    def test_experiment_names_do_not_collide(self, tmp_path):
        sweep([1], picklable_run, cache=ResultCache(tmp_path),
              experiment="demo-a")
        sweep([1], picklable_run, cache=ResultCache(tmp_path),
              experiment="demo-b")
        totals = ResultCache(tmp_path).persistent_stats()
        assert totals["hits"] == 0
        assert totals["stores"] == 2


class TestCrossover:
    def rows(self):
        return [
            SweepResult(value=v, metrics={"a": float(v), "b": 5.0},
                        stds={}, trials=1)
            for v in (1, 4, 6, 9)
        ]

    def test_first_crossing(self):
        assert crossover(self.rows(), "a", "b") == 6

    def test_no_crossing(self):
        rows = [
            SweepResult(value=1, metrics={"a": 0.0, "b": 5.0}, stds={}, trials=1)
        ]
        assert crossover(rows, "a", "b") is None

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            crossover([], "a", "b")

    def test_missing_metric_rejected(self):
        with pytest.raises(ReproError):
            crossover(self.rows(), "a", "zz")
