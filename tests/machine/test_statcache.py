"""Analytic cache model tests, including cross-validation vs the exact
simulator on tractable patterns."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.hierarchy import MemLevel, MemoryHierarchy
from repro.machine.spec import KiB, MiB
from repro.machine.statcache import AccessClass, StatCacheModel


@pytest.fixture
def model(ampere):
    return StatCacheModel(ampere)


class TestAccessClass:
    def test_validation(self):
        with pytest.raises(MachineError):
            AccessClass(footprint=0)
        with pytest.raises(MachineError):
            AccessClass(footprint=1, stride=-1)
        with pytest.raises(MachineError):
            AccessClass(footprint=1, reuse=1.0)
        with pytest.raises(MachineError):
            AccessClass(footprint=1, weight=0)


class TestSingleClass:
    def test_probabilities_sum_to_one(self, model):
        for cls in (
            AccessClass(footprint=1 * KiB, stride=8),
            AccessClass(footprint=1 << 30, stride=0),
            AccessClass(footprint=64 * MiB, stride=8, reuse=0.3),
        ):
            p = model.level_probabilities(cls)
            assert sum(p.values()) == pytest.approx(1.0)
            assert all(v >= 0 for v in p.values())

    def test_tiny_footprint_all_l1(self, model):
        p = model.level_probabilities(AccessClass(footprint=4 * KiB, stride=8))
        assert p[MemLevel.L1] > 0.99

    def test_streaming_dram_share_is_one_per_line(self, model, ampere):
        # sequential 8B stride over a huge footprint: one miss per line
        cls = AccessClass(footprint=8 << 30, stride=8)
        p = model.level_probabilities(cls)
        assert p[MemLevel.DRAM] == pytest.approx(8 / ampere.line_size, rel=0.05)

    def test_random_huge_footprint_mostly_dram(self, model):
        p = model.level_probabilities(AccessClass(footprint=8 << 30, stride=0))
        assert p[MemLevel.DRAM] > 0.95

    def test_reuse_boosts_l1(self, model):
        base = AccessClass(footprint=1 << 30, stride=0)
        hot = AccessClass(footprint=1 << 30, stride=0, reuse=0.5)
        p0 = model.level_probabilities(base)[MemLevel.L1]
        p1 = model.level_probabilities(hot)[MemLevel.L1]
        assert p1 > p0 + 0.4

    def test_slc_sharers_shift_to_dram(self, model):
        cls = AccessClass(footprint=8 * MiB, stride=0)
        solo = model.level_probabilities(cls, sharers=1)
        shared = model.level_probabilities(cls, sharers=32)
        assert shared[MemLevel.DRAM] > solo[MemLevel.DRAM]

    def test_bad_sharers(self, model):
        with pytest.raises(MachineError):
            model.level_probabilities(AccessClass(footprint=1024), sharers=0)


class TestMixture:
    def test_weights_average(self, model):
        a = AccessClass(footprint=4 * KiB, stride=8, weight=1.0)
        b = AccessClass(footprint=8 << 30, stride=0, weight=1.0)
        p = model.mixture_probabilities([a, b])
        pa = model.level_probabilities(a)
        pb = model.level_probabilities(b)
        for lv in MemLevel:
            assert p[lv] == pytest.approx(0.5 * (pa[lv] + pb[lv]))

    def test_empty_mixture_rejected(self, model):
        with pytest.raises(MachineError):
            model.mixture_probabilities([])

    def test_expected_latency_monotone_in_footprint(self, model):
        lat = [
            model.expected_latency([AccessClass(footprint=f, stride=0)])
            for f in (16 * KiB, 4 * MiB, 1 << 30)
        ]
        assert lat[0] < lat[1] < lat[2]

    def test_draw_levels_matches_distribution(self, model, rng):
        cls = [AccessClass(footprint=64 * MiB, stride=0)]
        levels = model.draw_levels(cls, 40_000, rng)
        p = model.mixture_probabilities(cls)
        frac_dram = (levels == int(MemLevel.DRAM)).mean()
        assert frac_dram == pytest.approx(p[MemLevel.DRAM], abs=0.02)

    def test_draw_levels_zero(self, model, rng):
        assert model.draw_levels([AccessClass(footprint=1024)], 0, rng).size == 0

    def test_draw_levels_negative_rejected(self, model, rng):
        with pytest.raises(MachineError):
            model.draw_levels([AccessClass(footprint=1024)], -1, rng)


class TestCrossValidation:
    """The analytic model should agree with the exact simulator on
    patterns where both are tractable (small test machine)."""

    def test_sequential_stream(self, tiny, rng):
        model = StatCacheModel(tiny)
        hier = MemoryHierarchy(tiny, n_cores=1)
        footprint = tiny.slc.size * 4  # far larger than every level
        stride = 8
        addrs = (np.arange(0, footprint, stride) % footprint).astype(np.uint64)
        levels = hier.access_many(0, addrs)
        exact_dram = (levels == int(MemLevel.DRAM)).mean()
        p = model.level_probabilities(
            AccessClass(footprint=footprint, stride=stride)
        )
        assert exact_dram == pytest.approx(p[MemLevel.DRAM], rel=0.15)

    def test_random_within_l2(self, tiny, rng):
        model = StatCacheModel(tiny)
        hier = MemoryHierarchy(tiny, n_cores=1)
        footprint = tiny.l2.size // 2
        addrs = rng.integers(0, footprint, size=30_000, dtype=np.uint64)
        hier.access_many(0, addrs[:10_000])  # warmup
        levels = hier.access_many(0, addrs[10_000:])
        exact_dram = (levels == int(MemLevel.DRAM)).mean()
        p = model.level_probabilities(AccessClass(footprint=footprint, stride=0))
        # both should see (almost) no DRAM traffic once warm
        assert exact_dram < 0.02
        assert p[MemLevel.DRAM] < 0.02

    def test_dram_fraction_helper(self, model):
        frac = model.dram_fraction([AccessClass(footprint=8 << 30, stride=8)])
        assert 0.0 < frac < 0.2
