"""DRAM bandwidth model tests (solo roofline + contended channel)."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.memory import ContendedChannel, DramModel
from repro.machine.spec import DramSpec, GiB

SPEC = DramSpec(capacity=GiB, peak_bandwidth=100e9)


@pytest.fixture
def dram():
    return DramModel(SPEC, efficiency=0.8)


@pytest.fixture
def channel():
    return ContendedChannel(SPEC, efficiency=0.8, knee=0.9)


class TestDramModel:
    def test_usable_bandwidth(self, dram):
        assert dram.usable_bandwidth == pytest.approx(80e9)

    def test_effective_bandwidth_caps_at_usable(self, dram):
        assert dram.effective_bandwidth(10e9) == 10e9
        assert dram.effective_bandwidth(500e9) == pytest.approx(80e9)

    def test_negative_demand_rejected(self, dram):
        with pytest.raises(MachineError):
            dram.effective_bandwidth(-1)

    def test_service_time(self, dram):
        assert dram.service_time(80e9) == pytest.approx(1.0)
        assert dram.bytes_moved == 80e9

    def test_slowdown_below_roofline(self, dram):
        assert dram.slowdown(10e9) == 1.0

    def test_slowdown_above_roofline_proportional(self, dram):
        assert dram.slowdown(160e9) == pytest.approx(2.0)

    def test_utilisation_vectorised(self, dram):
        import numpy as np

        u = dram.utilisation(np.array([50e9, 100e9]))
        assert u[0] == pytest.approx(0.5)
        assert u[1] == pytest.approx(1.0)

    def test_bad_efficiency(self):
        with pytest.raises(MachineError):
            DramModel(DramSpec(GiB, 1e9), efficiency=0.0)
        with pytest.raises(MachineError):
            DramModel(DramSpec(GiB, 1e9), efficiency=1.5)


class TestContendedChannel:
    def test_single_stream_bit_identical_to_roofline(self, channel, dram):
        # the acceptance-critical calibration: one demand stream must
        # reproduce DramModel.effective_bandwidth EXACTLY (==, not approx)
        for demand in (0.0, 1.0, 13e9, 79.9e9, 80e9, 80.0000001e9, 500e9):
            assert channel.apportion([demand])[0] == dram.effective_bandwidth(
                demand
            )
            assert channel.delivered_bandwidth(
                demand, 1
            ) == dram.effective_bandwidth(demand)

    def test_zero_demand_streams_do_not_contend(self, channel):
        grants = channel.apportion([60e9, 0.0, 0.0])
        assert grants[0] == 60e9  # single active stream: exact passthrough
        assert grants[1] == grants[2] == 0.0

    def test_below_knee_demand_granted_in_full(self, channel):
        # 30 + 40 = 70e9 <= knee point (0.9 * 80e9 = 72e9): linear region
        grants = channel.apportion([30e9, 40e9])
        assert grants[0] == 30e9
        assert grants[1] == 40e9

    def test_saturated_proportional_share(self, channel):
        grants = channel.apportion([200e9, 100e9])
        assert grants.sum() <= channel.usable_bandwidth
        assert grants[0] == pytest.approx(2 * grants[1])
        solo = [channel.delivered_bandwidth(d, 1) for d in (200e9, 100e9)]
        assert grants[0] < solo[0] and grants[1] < solo[1]

    def test_delivered_monotone_and_bounded(self, channel):
        demands = np.linspace(0, 400e9, 200)
        delivered = np.array(
            [channel.delivered_bandwidth(float(d), 2) for d in demands]
        )
        assert (np.diff(delivered) >= -1e-6).all()
        assert (delivered <= channel.usable_bandwidth).all()
        # below the knee the curve is exactly linear
        assert channel.delivered_bandwidth(50e9, 2) == 50e9

    def test_knee_one_degenerates_to_hard_roofline(self):
        ch = ContendedChannel(SPEC, efficiency=0.8, knee=1.0)
        assert ch.delivered_bandwidth(200e9, 2) == ch.usable_bandwidth
        assert ch.delivered_bandwidth(50e9, 2) == 50e9

    def test_validation(self, channel):
        with pytest.raises(MachineError):
            channel.apportion([-1.0])
        with pytest.raises(MachineError):
            channel.apportion([[1.0, 2.0]])
        with pytest.raises(MachineError):
            channel.delivered_bandwidth(-1.0, 2)
        with pytest.raises(MachineError):
            ContendedChannel(SPEC, knee=0.0)
        with pytest.raises(MachineError):
            ContendedChannel(SPEC, knee=1.5)
