"""DRAM bandwidth model tests."""

import pytest

from repro.errors import MachineError
from repro.machine.memory import DramModel
from repro.machine.spec import DramSpec, GiB


@pytest.fixture
def dram():
    return DramModel(DramSpec(capacity=GiB, peak_bandwidth=100e9), efficiency=0.8)


class TestDramModel:
    def test_usable_bandwidth(self, dram):
        assert dram.usable_bandwidth == pytest.approx(80e9)

    def test_effective_bandwidth_caps_at_usable(self, dram):
        assert dram.effective_bandwidth(10e9) == 10e9
        assert dram.effective_bandwidth(500e9) == pytest.approx(80e9)

    def test_negative_demand_rejected(self, dram):
        with pytest.raises(MachineError):
            dram.effective_bandwidth(-1)

    def test_service_time(self, dram):
        assert dram.service_time(80e9) == pytest.approx(1.0)
        assert dram.bytes_moved == 80e9

    def test_slowdown_below_roofline(self, dram):
        assert dram.slowdown(10e9) == 1.0

    def test_slowdown_above_roofline_proportional(self, dram):
        assert dram.slowdown(160e9) == pytest.approx(2.0)

    def test_utilisation_vectorised(self, dram):
        import numpy as np

        u = dram.utilisation(np.array([50e9, 100e9]))
        assert u[0] == pytest.approx(0.5)
        assert u[1] == pytest.approx(1.0)

    def test_bad_efficiency(self):
        with pytest.raises(MachineError):
            DramModel(DramSpec(GiB, 1e9), efficiency=0.0)
        with pytest.raises(MachineError):
            DramModel(DramSpec(GiB, 1e9), efficiency=1.5)
