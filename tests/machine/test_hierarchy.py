"""Memory hierarchy (L1 -> L2 -> SLC -> DRAM) tests."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.hierarchy import MemLevel, MemoryHierarchy


@pytest.fixture
def hier(tiny):
    return MemoryHierarchy(tiny, n_cores=2)


class TestAccessPath:
    def test_cold_access_reaches_dram(self, hier):
        assert hier.access(0, 0x1000) == MemLevel.DRAM

    def test_second_access_hits_l1(self, hier):
        hier.access(0, 0x1000)
        assert hier.access(0, 0x1000) == MemLevel.L1

    def test_other_core_hits_slc(self, hier):
        hier.access(0, 0x1000)
        # core 1's private L1/L2 are cold but the shared SLC has the line
        assert hier.access(1, 0x1000) == MemLevel.SLC

    def test_l2_hit_after_l1_eviction(self, hier, tiny):
        # fill L1 (1 KiB, 64B lines -> 16 lines) well past capacity
        base = 0x100000
        for i in range(64):
            hier.access(0, base + i * 64)
        # the first line left L1 but should still be in L2 (8 KiB)
        lvl = hier.access(0, base)
        assert lvl in (MemLevel.L2, MemLevel.SLC)
        assert lvl != MemLevel.DRAM

    def test_bad_core_rejected(self, hier):
        with pytest.raises(MachineError):
            hier.access(99, 0)

    def test_too_many_cores_rejected(self, tiny):
        with pytest.raises(MachineError):
            MemoryHierarchy(tiny, n_cores=tiny.n_cores + 1)


class TestCounting:
    def test_level_counts_sum_to_accesses(self, hier, rng):
        addrs = rng.integers(0, 1 << 20, size=400, dtype=np.uint64)
        hier.access_many(0, addrs)
        counts = hier.level_counts()
        assert sum(counts.values()) == 400

    def test_dram_bytes(self, hier, tiny):
        hier.access(0, 0)
        assert hier.dram_bytes() == tiny.line_size

    def test_flush_forces_dram(self, hier):
        hier.access(0, 0)
        hier.flush()
        assert hier.access(0, 0) == MemLevel.DRAM

    def test_reset_stats(self, hier):
        hier.access(0, 0)
        hier.reset_stats()
        assert hier.dram_accesses == 0
        assert sum(hier.level_counts().values()) == 0


class TestLatency:
    def test_latency_ordering(self, hier):
        lats = [hier.latency_cycles(lv) for lv in MemLevel]
        assert lats == sorted(lats)
        assert lats[0] < lats[-1]

    def test_latencies_for_vectorised(self, hier):
        levels = np.array([1, 2, 3, 4], dtype=np.uint8)
        lat = hier.latencies_for(levels)
        assert lat[0] == hier.latency_cycles(MemLevel.L1)
        assert lat[3] == hier.latency_cycles(MemLevel.DRAM)

    def test_memlevel_pretty(self):
        assert MemLevel.DRAM.pretty == "DRAM"
        assert MemLevel.L1.pretty == "L1"
