"""Virtual address space / RSS accounting tests."""

import numpy as np
import pytest

from repro.errors import AddressSpaceError, OutOfMemoryError, SegmentationFault
from repro.machine.address_space import VirtualAddressSpace


@pytest.fixture
def vas(tiny):
    return VirtualAddressSpace(tiny)


class TestMmap:
    def test_rounds_to_pages(self, vas, tiny):
        m = vas.mmap(1)
        assert m.length == tiny.page_size

    def test_named_lookup(self, vas):
        m = vas.mmap(100, name="data")
        assert vas.region("data") is m

    def test_duplicate_name_rejected(self, vas):
        vas.mmap(100, name="x")
        with pytest.raises(AddressSpaceError):
            vas.mmap(100, name="x")

    def test_zero_length_rejected(self, vas):
        with pytest.raises(AddressSpaceError):
            vas.mmap(0)

    def test_mappings_do_not_overlap(self, vas):
        ms = [vas.mmap(10_000) for _ in range(10)]
        spans = sorted((m.start, m.end) for m in ms)
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            assert e0 <= s1

    def test_guard_gap_between_mappings(self, vas, tiny):
        a = vas.mmap(tiny.page_size)
        b = vas.mmap(tiny.page_size)
        assert b.start - a.end >= tiny.page_size

    def test_unmap_then_name_reusable(self, vas):
        m = vas.mmap(100, name="tmp")
        vas.munmap(m)
        m2 = vas.mmap(100, name="tmp")
        assert not m2.freed

    def test_double_unmap_rejected(self, vas):
        m = vas.mmap(100)
        vas.munmap(m)
        with pytest.raises(AddressSpaceError):
            vas.munmap(m)

    def test_freed_region_lookup_fails(self, vas):
        m = vas.mmap(100, name="gone")
        vas.munmap(m)
        with pytest.raises(AddressSpaceError):
            vas.region("gone")


class TestResidency:
    def test_rss_starts_zero(self, vas):
        vas.mmap(100_000)
        assert vas.rss_bytes == 0

    def test_touch_makes_pages_resident(self, vas, tiny):
        m = vas.mmap(tiny.page_size * 4)
        new = vas.touch(np.array([m.start, m.start + tiny.page_size]))
        assert new == 2
        assert vas.rss_bytes == 2 * tiny.page_size

    def test_touch_same_page_once(self, vas):
        m = vas.mmap(100_000)
        vas.touch(np.array([m.start, m.start + 1, m.start + 7]))
        assert vas.rss_pages == 1

    def test_touch_unmapped_faults(self, vas):
        with pytest.raises(SegmentationFault):
            vas.touch(np.array([0x10]))

    def test_fault_reports_address(self, vas):
        try:
            vas.touch(np.array([0x1234]))
        except SegmentationFault as e:
            assert e.addr == 0x1234

    def test_populate(self, vas, tiny):
        vas.mmap(tiny.page_size * 8, name="big")
        vas.populate("big")
        assert vas.rss_bytes == tiny.page_size * 8

    def test_munmap_releases_rss(self, vas):
        m = vas.mmap(100_000, name="tmp")
        vas.populate("tmp")
        vas.munmap(m)
        assert vas.rss_bytes == 0

    def test_mem_limit_enforced(self, tiny):
        vas = VirtualAddressSpace(tiny, mem_limit=tiny.page_size * 2)
        vas.mmap(tiny.page_size * 8, name="big")
        with pytest.raises(OutOfMemoryError):
            vas.populate("big")

    def test_empty_touch_noop(self, vas):
        assert vas.touch(np.array([], dtype=np.uint64)) == 0


class TestLookup:
    def test_find(self, vas):
        m = vas.mmap(100, name="a")
        assert vas.find(m.start) is m
        assert vas.find(m.end) is not m

    def test_classify_vectorised(self, vas):
        a = vas.mmap(10_000, name="a")
        b = vas.mmap(10_000, name="b")
        addrs = np.array([a.start, b.start, 0x10, a.start + 5], dtype=np.uint64)
        out = vas.classify(addrs)
        assert out[0] == out[3]
        assert out[1] != out[0]
        assert out[2] == -1

    def test_layout_sorted(self, vas):
        vas.mmap(100, name="a")
        vas.mmap(100, name="b")
        layout = vas.layout()
        assert [r[0] for r in layout] == ["a", "b"]
        assert layout[0][1] < layout[1][1]

    def test_mapped_bytes(self, vas, tiny):
        vas.mmap(tiny.page_size)
        vas.mmap(tiny.page_size * 2)
        assert vas.mapped_bytes == 3 * tiny.page_size
