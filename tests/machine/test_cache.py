"""Set-associative cache simulator tests."""

import numpy as np
import pytest

from repro.machine.cache import SetAssociativeCache
from repro.machine.spec import CacheSpec


def make(size=1024, ways=2, line=64):
    return SetAssociativeCache(CacheSpec(size, ways, line_size=line), "t")


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make()
        assert not c.access(0)
        assert c.access(0)

    def test_same_line_hits(self):
        c = make()
        c.access(0)
        assert c.access(63)
        assert not c.access(64)

    def test_hit_ratio(self):
        c = make()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.hit_ratio == pytest.approx(2 / 3)

    def test_probe_does_not_mutate(self):
        c = make()
        c.access(0)
        h, m = c.hits, c.misses
        assert c.probe(0)
        assert not c.probe(4096)
        assert (c.hits, c.misses) == (h, m)

    def test_occupancy(self):
        c = make(size=1024, ways=2)  # 16 lines
        for i in range(8):
            c.access(i * 64)
        assert c.occupancy == 8

    def test_invalidate_all(self):
        c = make()
        c.access(0)
        c.invalidate_all()
        assert c.occupancy == 0
        assert not c.access(0)

    def test_reset_stats_keeps_contents(self):
        c = make()
        c.access(0)
        c.reset_stats()
        assert c.accesses == 0
        assert c.probe(0)


class TestLru:
    def test_lru_eviction_order(self):
        # direct-set cache: 1 set, 2 ways, 64B lines
        c = make(size=128, ways=2)
        c.access(0)      # A
        c.access(64)     # B
        c.access(0)      # touch A (B is now LRU)
        c.access(128)    # C evicts B
        assert c.probe(0)
        assert not c.probe(64)
        assert c.probe(128)

    def test_eviction_counted(self):
        c = make(size=128, ways=2)
        for i in range(3):
            c.access(i * 64)
        assert c.evictions == 1

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = make(size=2048, ways=4)
        addrs = np.arange(0, 2048, 64, dtype=np.uint64)
        c.access_many(addrs)
        hits = c.access_many(addrs)
        assert hits.all()

    def test_streaming_larger_than_cache_never_rehits(self):
        c = make(size=1024, ways=2)
        addrs = np.arange(0, 1024 * 64, 64, dtype=np.uint64)
        first = c.access_many(addrs)
        assert not first.any()
        second = c.access_many(addrs)  # stream evicted itself
        assert not second.any()


class TestVectorised:
    def test_access_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 16, size=500, dtype=np.uint64)
        c1, c2 = make(), make()
        vec = c1.access_many(addrs)
        scl = np.array([c2.access(int(a)) for a in addrs])
        assert (vec == scl).all()

    def test_resident_lines_sorted_unique(self):
        c = make()
        c.access_many(np.array([0, 64, 0, 128], dtype=np.uint64))
        lines = c.resident_lines()
        assert (np.diff(lines) > 0).all()
        assert lines.size == 3

    def test_stats_dict(self):
        c = make()
        c.access(0)
        s = c.stats()
        assert s["accesses"] == 1.0
        assert s["misses"] == 1.0
