"""Tiered memory model: specs, placement policies, and parity pins."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine import (
    ContendedChannel,
    DramModel,
    MemLevel,
    MemoryTierSpec,
    PagePlacement,
    TieredMemory,
    apply_tiering,
    first_touch_placement,
    hotness_placement,
    interleave_placement,
    mapped_page_ids,
    page_hotness,
    placement_for,
    small_test_machine,
    tier_budgets,
    tier_level,
    tiered_altra_max,
    tiered_test_machine,
)
from repro.workloads import StreamWorkload


@pytest.fixture
def tiered():
    return tiered_test_machine()


@pytest.fixture
def workload(tiered):
    return StreamWorkload(tiered, n_threads=2, n_elems=1 << 14, iterations=1)


class TestMemLevelTiers:
    def test_tier_levels_extend_dram(self):
        assert int(MemLevel.DRAM_REMOTE) == int(MemLevel.DRAM) + 1
        assert int(MemLevel.DRAM_CXL) == int(MemLevel.DRAM) + 2

    def test_dram_class_and_tier(self):
        assert MemLevel.DRAM.is_dram_class and MemLevel.DRAM.tier == 0
        assert MemLevel.DRAM_CXL.is_dram_class and MemLevel.DRAM_CXL.tier == 2
        assert not MemLevel.SLC.is_dram_class and MemLevel.SLC.tier is None

    def test_tier_level_bounds(self):
        assert tier_level(0) is MemLevel.DRAM
        assert tier_level(2) is MemLevel.DRAM_CXL
        with pytest.raises(MachineError):
            tier_level(3)

    def test_pretty_names(self):
        assert MemLevel.DRAM_REMOTE.pretty == "DRAM-remote"
        assert MemLevel.DRAM_CXL.pretty == "DRAM-CXL"


class TestTierSpecs:
    def test_tiered_presets_mirror_dram_near_tier(self):
        for spec in (tiered_altra_max(), tiered_test_machine()):
            near = spec.tiers[0]
            assert near.latency_cycles == spec.dram.latency_cycles
            assert near.peak_bandwidth == spec.dram.peak_bandwidth

    def test_far_tiers_are_slower(self, tiered):
        lats = [t.latency_cycles for t in tiered.tiers]
        bws = [t.peak_bandwidth for t in tiered.tiers]
        assert lats == sorted(lats) and lats[0] < lats[-1]
        assert bws == sorted(bws, reverse=True)

    def test_tier0_mismatch_rejected(self):
        base = small_test_machine()
        import dataclasses

        with pytest.raises(MachineError):
            dataclasses.replace(
                base,
                tiers=(MemoryTierSpec("local", 1 << 28, 9e9, 201),),
            )

    def test_duplicate_tier_names_rejected(self, tiered):
        import dataclasses

        with pytest.raises(MachineError):
            dataclasses.replace(
                tiered, tiers=(tiered.tiers[0], tiered.tiers[0])
            )

    def test_flat_machine_tier_latency_degenerates(self):
        flat = small_test_machine()
        for t in range(3):
            assert flat.tier_latency_cycles(t) == flat.dram.latency_cycles

    def test_bad_tier_spec_rejected(self):
        with pytest.raises(MachineError):
            MemoryTierSpec("x", 0, 1e9, 100)
        with pytest.raises(MachineError):
            MemoryTierSpec("x", 1 << 20, 1e9, 100, efficiency=0.0)


class TestTieredMemory:
    def test_requires_tiers(self):
        with pytest.raises(MachineError):
            TieredMemory(small_test_machine())

    def test_levels_and_latencies(self, tiered):
        tm = TieredMemory(tiered)
        assert len(tm) == 3
        assert tm.level_of(1) is MemLevel.DRAM_REMOTE
        assert tm.latency_cycles(2) == tiered.tiers[2].latency_cycles
        assert (tm.latencies() == [200.0, 320.0, 600.0]).all()

    def test_usable_bandwidths_per_tier(self, tiered):
        tm = TieredMemory(tiered)
        expected = [t.peak_bandwidth * t.efficiency for t in tiered.tiers]
        assert np.allclose(tm.usable_bandwidths(), expected)


class TestSingleStreamFastPath:
    """Satellite regression: one active stream on a tier's channel is
    bit-identical to the solo DramModel roofline, including exactly at
    the saturation knee."""

    def knee_demands(self, usable, knee):
        knee_bw = knee * usable
        return [
            0.0, knee_bw / 2, np.nextafter(knee_bw, 0.0), knee_bw,
            np.nextafter(knee_bw, np.inf), (knee_bw + usable) / 2,
            usable, np.nextafter(usable, np.inf), 2.0 * usable,
        ]

    def test_channel_apportion_matches_roofline_exactly(self, tiered):
        for tier_spec in tiered.tiers:
            channel = ContendedChannel(
                tier_spec.to_dram_spec(),
                efficiency=tier_spec.efficiency,
                knee=tier_spec.knee,
            )
            solo = DramModel(tier_spec.to_dram_spec(), tier_spec.efficiency)
            for d in self.knee_demands(channel.usable_bandwidth, channel.knee):
                grant = channel.apportion([d])
                assert grant[0] == solo.effective_bandwidth(d), d
                assert (
                    channel.delivered_bandwidth(d, 1)
                    == solo.effective_bandwidth(d)
                ), d

    def test_one_active_among_idle_streams_stays_exact(self, tiered):
        tm = TieredMemory(tiered)
        for tier in range(len(tm)):
            spec = tiered.tiers[tier]
            solo = DramModel(spec.to_dram_spec(), spec.efficiency)
            usable = tm[tier].usable_bandwidth
            for d in self.knee_demands(usable, spec.knee):
                grants = tm.apportion(tier, [0.0, d, 0.0])
                assert grants[1] == solo.effective_bandwidth(d), (tier, d)
                assert grants[0] == 0.0 and grants[2] == 0.0

    def test_two_active_streams_leave_the_fast_path(self, tiered):
        tm = TieredMemory(tiered)
        usable = tm[0].usable_bandwidth
        d = usable * 0.95  # past the knee in aggregate
        grants = tm.apportion(0, [d, d])
        assert grants.sum() < 2 * d  # knee curve, not the hard min
        assert grants.sum() <= usable * (1 + 1e-12)


class TestTierBudgets:
    def test_ratio_zero_all_near(self):
        b = tier_budgets(100, 0.0, 3)
        assert list(b) == [100, 0, 0]

    def test_far_split_sums(self):
        b = tier_budgets(101, 0.5, 3)
        assert b.sum() == 101
        assert b[0] == round(0.5 * 101)

    def test_single_tier_takes_all(self):
        assert list(tier_budgets(7, 0.0, 1)) == [7]

    def test_bad_ratio_rejected(self):
        with pytest.raises(MachineError):
            tier_budgets(10, 1.0, 2)


class TestPlacementPolicies:
    def test_mapped_page_ids_cover_mappings(self, workload):
        asp = workload.process.address_space
        pages = mapped_page_ids(asp)
        assert pages.size == sum(m.n_pages for m in asp.mappings())
        assert np.unique(pages).size == pages.size

    def test_interleave_is_deterministic(self, workload, tiered):
        asp = workload.process.address_space
        a = interleave_placement(asp, 3, 0.5)
        b = interleave_placement(asp, 3, 0.5)
        assert (a.tiers == b.tiers).all()

    def test_interleave_respects_ratio_roughly(self, workload):
        pl = interleave_placement(workload.process.address_space, 3, 0.5)
        f = pl.fractions()
        assert f[0] == pytest.approx(0.5, abs=0.15)
        assert f[1] + f[2] == pytest.approx(0.5, abs=0.15)

    def test_first_touch_fills_near_first(self, workload):
        asp = workload.process.address_space
        pl = first_touch_placement(asp, 3, 0.5)
        pages = mapped_page_ids(asp)
        budgets = tier_budgets(pages.size, 0.5, 3)
        # the first allocated pages sit in tier 0
        first_alloc = pages[: int(budgets[0])]
        assert (pl.tier_of_pages(first_alloc) == 0).all()
        assert list(pl.counts()) == list(budgets)

    def test_hotness_puts_hot_pages_near(self, workload):
        asp = workload.process.address_space
        pages = mapped_page_ids(asp)
        hot = np.zeros(pages.size)
        hot[-3:] = 100.0  # last allocated pages are hottest
        pl = hotness_placement(asp, 3, 0.8, hot)
        assert (pl.tier_of_pages(pages[-3:]) == 0).all()
        cold = pl.tier_of_pages(pages[:-3])
        assert (cold > 0).mean() > 0.7

    def test_ratio_zero_places_everything_near(self, workload):
        asp = workload.process.address_space
        for policy in ("interleave", "first_touch"):
            pl = placement_for(asp, 3, policy, 0.0)
            assert (pl.tiers == 0).all(), policy

    def test_unknown_policy_rejected(self, workload):
        with pytest.raises(MachineError, match="known:"):
            placement_for(workload.process.address_space, 3, "rand", 0.1)

    def test_hotness_requires_scores(self, workload):
        with pytest.raises(MachineError, match="pilot"):
            placement_for(workload.process.address_space, 3, "hotness", 0.1)


class TestPagePlacementLookup:
    def test_tier_of_roundtrip(self, workload):
        asp = workload.process.address_space
        pl = first_touch_placement(asp, 3, 0.5)
        m = asp.mappings()[0]
        addrs = np.arange(m.start, m.end, asp.page_size, dtype=np.uint64)
        tiers = pl.tier_of(addrs)
        pages = addrs >> np.uint64(asp.page_shift)
        assert (tiers == pl.tier_of_pages(pages)).all()

    def test_unmapped_addresses_default_to_near(self, workload):
        pl = first_touch_placement(workload.process.address_space, 3, 0.9)
        assert (pl.tier_of(np.array([0x10, 0x20], dtype=np.uint64)) == 0).all()

    def test_invalid_construction(self):
        with pytest.raises(MachineError):
            PagePlacement(
                np.array([3, 2], dtype=np.uint64),
                np.array([0, 0], dtype=np.uint8), 12, 2,
            )
        with pytest.raises(MachineError):
            PagePlacement(
                np.array([1], dtype=np.uint64),
                np.array([5], dtype=np.uint8), 12, 2,
            )


class TestPageHotness:
    def test_counts_align_with_pages(self, workload):
        asp = workload.process.address_space
        pages = mapped_page_ids(asp)
        m = asp.mappings()[1]
        addrs = np.full(37, m.start + 8, dtype=np.uint64)
        hot = page_hotness(asp, addrs)
        assert hot.shape == pages.shape
        target = int(np.flatnonzero(pages == (m.start >> asp.page_shift))[0])
        assert hot[target] == 37
        assert hot.sum() == 37

    def test_unmapped_samples_ignored(self, workload):
        hot = page_hotness(
            workload.process.address_space,
            np.array([0x40], dtype=np.uint64),
        )
        assert hot.sum() == 0


class TestApplyTiering:
    def test_all_near_placement_is_identity(self, tiered):
        a = StreamWorkload(tiered, n_threads=2, n_elems=1 << 14, iterations=1)
        cpis = [p.cpi for p in a.phases]
        pl = placement_for(a.process.address_space, 3, "first_touch", 0.0)
        stretches = apply_tiering(a, pl)
        assert all(s == 1.0 for s in stretches)
        assert [p.cpi for p in a.phases] == cpis

    def test_far_placement_slows_the_run(self, workload):
        flat = workload.baseline_seconds()
        pl = placement_for(
            workload.process.address_space, 3, "first_touch", 0.6
        )
        stretches = apply_tiering(workload, pl)
        assert all(s >= 1.0 for s in stretches)
        assert workload.baseline_seconds() > flat

    def test_weighted_fractions_follow_access_weight(self, workload):
        asp = workload.process.address_space
        pages = mapped_page_ids(asp)
        pl = first_touch_placement(asp, 3, 0.5)
        # all access weight on near-tier pages -> near fraction 1.0
        hot = (pl.tier_of_pages(pages) == 0).astype(float)
        assert pl.weighted_fractions(pages, hot)[0] == 1.0
        # zero weight falls back to page fractions
        assert (
            pl.weighted_fractions(pages, np.zeros(pages.size))
            == pl.fractions()
        ).all()
        with pytest.raises(MachineError):
            pl.weighted_fractions(pages, np.ones(3))

    def test_hotness_weights_beat_uniform_assumption(self, tiered):
        """A placement that fits the hot pages near stretches ~nothing."""

        def fresh():
            return StreamWorkload(
                tiered, n_threads=2, n_elems=1 << 14, iterations=1
            )

        a = fresh()
        asp = a.process.address_space
        pages = mapped_page_ids(asp)
        hot = np.zeros(pages.size)
        hot[: pages.size // 2] = 1.0  # only the first half is ever touched
        pl = hotness_placement(asp, 3, 0.5, hot)
        uniform = apply_tiering(a, pl)
        b = fresh()
        weighted = apply_tiering(
            b, hotness_placement(
                b.process.address_space, 3, 0.5, hot
            ), hotness=hot,
        )
        assert all(w <= u for w, u in zip(weighted, uniform))
        assert all(w == pytest.approx(1.0) for w in weighted)

    def test_bandwidth_relief_is_not_refunded(self, tiered):
        """Stretches never drop below 1: spreading a saturating phase
        across tiers must not 'speed up' a baseline that was never
        charged for saturation."""
        w = StreamWorkload(tiered, n_threads=2, n_elems=1 << 16, iterations=1)
        pages = mapped_page_ids(w.process.address_space)
        hot = np.zeros(pages.size)
        hot[: max(1, pages.size // 10)] = 1.0  # hot set fits near easily
        pl = hotness_placement(w.process.address_space, 3, 0.5, hot)
        stretches = apply_tiering(w, pl, hotness=hot)
        assert all(s >= 1.0 for s in stretches)

    def test_flat_machine_rejected(self):
        w = StreamWorkload(
            small_test_machine(), n_threads=2, n_elems=1 << 14, iterations=1
        )
        pl = PagePlacement(
            np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint8),
            w.process.address_space.page_shift, 3,
        )
        with pytest.raises(MachineError):
            apply_tiering(w, pl)


class TestTieredProfileParity:
    """Single-tier profiles stay byte-identical with tiers declared."""

    def profile(self, machine, placement_ratio=None):
        from repro.nmo import NmoMode, NmoProfiler, NmoSettings

        w = StreamWorkload(machine, n_threads=2, n_elems=1 << 14, iterations=2)
        if placement_ratio is not None:
            pl = placement_for(
                w.process.address_space, 3, "interleave", placement_ratio
            )
            w.attach_tiering(pl)
            apply_tiering(w, pl)
        s = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=256)
        return NmoProfiler(w, s, seed=7).run()

    def test_flat_vs_tiered_machine_unattached(self):
        a = self.profile(small_test_machine())
        b = self.profile(tiered_test_machine())
        for col in ("pc", "addr", "ts", "level", "kind", "total_lat"):
            assert (getattr(a.batch, col) == getattr(b.batch, col)).all(), col
        assert a.profiled_cycles == b.profiled_cycles
        assert a.accuracy == b.accuracy

    def test_ratio_zero_placement_bit_identical(self):
        a = self.profile(tiered_test_machine())
        c = self.profile(tiered_test_machine(), placement_ratio=0.0)
        for col in ("pc", "addr", "ts", "level", "kind", "total_lat"):
            assert (getattr(a.batch, col) == getattr(c.batch, col)).all(), col
        assert a.profiled_cycles == c.profiled_cycles

    def test_far_placement_emits_tier_levels(self):
        r = self.profile(tiered_test_machine(), placement_ratio=0.6)
        levels = set(np.unique(r.batch.level).tolist())
        assert int(MemLevel.DRAM_REMOTE) in levels
        assert int(MemLevel.DRAM_CXL) in levels

    def test_far_samples_cost_their_tier_latency(self):
        r = self.profile(tiered_test_machine(), placement_ratio=0.6)
        lv = r.batch.level
        lat = r.batch.total_lat.astype(float)
        near = lat[lv == int(MemLevel.DRAM)]
        far = lat[lv == int(MemLevel.DRAM_CXL)]
        assert near.size and far.size
        assert far.mean() > near.mean() * 1.5
