"""TLB model tests."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.tlb import Tlb


class TestTlb:
    def test_miss_then_hit(self):
        t = Tlb(entries=4, page_size=4096)
        assert not t.access(0)
        assert t.access(100)

    def test_lru_eviction(self):
        t = Tlb(entries=2, page_size=4096)
        t.access(0)
        t.access(4096)
        t.access(0)          # page 0 recently used
        t.access(2 * 4096)   # evicts page 1
        assert t.access(0)
        assert not t.access(4096)

    def test_occupancy_bounded(self):
        t = Tlb(entries=3, page_size=4096)
        for i in range(10):
            t.access(i * 4096)
        assert t.occupancy == 3

    def test_hit_ratio_sequential_pages(self):
        t = Tlb(entries=48, page_size=65536)
        addrs = np.arange(0, 65536 * 4, 64, dtype=np.uint64)
        t.access_many(addrs)
        assert t.hit_ratio > 0.99

    def test_flush(self):
        t = Tlb(entries=4, page_size=4096)
        t.access(0)
        t.flush()
        assert t.occupancy == 0
        assert not t.access(0)

    def test_validation(self):
        with pytest.raises(MachineError):
            Tlb(entries=0)
        with pytest.raises(MachineError):
            Tlb(page_size=3000)

    def test_hit_ratio_empty(self):
        assert Tlb().hit_ratio == 0.0
