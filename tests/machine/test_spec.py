"""MachineSpec / Table II tests."""

import pytest

from repro.errors import MachineError
from repro.machine.spec import (
    CACHE_LINE,
    CacheSpec,
    DramSpec,
    GiB,
    KiB,
    MachineSpec,
    MiB,
    ampere_altra_max,
    small_test_machine,
    x86_pebs_machine,
)


class TestCacheSpec:
    def test_sets_and_lines(self):
        c = CacheSpec(64 * KiB, 4)
        assert c.n_lines == 1024
        assert c.n_sets == 256

    def test_rejects_non_divisible_geometry(self):
        with pytest.raises(MachineError):
            CacheSpec(1000, 3)

    def test_rejects_non_positive(self):
        with pytest.raises(MachineError):
            CacheSpec(0, 4)
        with pytest.raises(MachineError):
            CacheSpec(64 * KiB, 0)


class TestDramSpec:
    def test_rejects_bad_capacity(self):
        with pytest.raises(MachineError):
            DramSpec(0, 1e9)
        with pytest.raises(MachineError):
            DramSpec(GiB, 0)


class TestTable2:
    """The Ampere preset must match the paper's Table II exactly."""

    def test_cores(self):
        assert ampere_altra_max().n_cores == 128

    def test_frequency(self):
        assert ampere_altra_max().frequency_hz == 3.0e9

    def test_memory_capacity(self):
        assert ampere_altra_max().dram.capacity == 256 * GiB

    def test_peak_bandwidth(self):
        assert ampere_altra_max().dram.peak_bandwidth == 200e9

    def test_l1_sizes(self):
        m = ampere_altra_max()
        assert m.l1d.size == 64 * KiB
        assert m.l1i.size == 64 * KiB

    def test_l2_size(self):
        assert ampere_altra_max().l2.size == 1 * MiB

    def test_slc_size_and_sharing(self):
        m = ampere_altra_max()
        assert m.slc.size == 16 * MiB
        assert m.slc.shared

    def test_page_size_is_64k(self):
        assert ampere_altra_max().page_size == 64 * KiB

    def test_has_spe(self):
        assert ampere_altra_max().has_spe
        assert ampere_altra_max().arch == "aarch64"

    def test_describe_rows(self):
        rows = ampere_altra_max().describe()
        assert rows["Cores"].startswith("128")
        assert rows["Frequency"] == "3.0 GHz"
        assert rows["Mem. capacity"] == "256 GB"
        assert rows["Peak bandwidth"] == "200 GB/s"
        assert rows["System Level Cache"] == "16 MB"


class TestMachineSpec:
    def test_line_size_uniform(self):
        assert ampere_altra_max().line_size == CACHE_LINE

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(MachineError):
            MachineSpec(l2=CacheSpec(1 * MiB, 8, line_size=128))

    def test_page_size_power_of_two(self):
        with pytest.raises(MachineError):
            MachineSpec(page_size=3000)

    def test_cycle_conversions_roundtrip(self):
        m = ampere_altra_max()
        assert m.cycles_to_seconds(m.seconds_to_cycles(1.5)) == pytest.approx(1.5)

    def test_pages_rounds_up(self):
        m = ampere_altra_max()
        assert m.pages(1) == 1
        assert m.pages(m.page_size) == 1
        assert m.pages(m.page_size + 1) == 2

    def test_with_cores(self):
        m = ampere_altra_max().with_cores(8)
        assert m.n_cores == 8
        assert m.l2.size == ampere_altra_max().l2.size

    def test_zero_cores_rejected(self):
        with pytest.raises(MachineError):
            MachineSpec(n_cores=0)

    def test_x86_machine_has_no_spe(self):
        m = x86_pebs_machine()
        assert not m.has_spe
        assert m.arch == "x86_64"

    def test_small_machine_hierarchy_ordering(self):
        m = small_test_machine()
        assert m.l1d.size < m.l2.size < m.slc.size < m.dram.capacity
