"""ParallelRunner: ordering, seeding, cache integration, fallback."""

import os

import pytest

from repro.errors import ReproError
from repro.orchestrate import (
    ParallelRunner,
    ResultCache,
    TrialSpec,
    default_workers,
    derive_seed,
)

WORKERS = 3


def echo_trial(spec: TrialSpec) -> dict:
    """Module-level so it pickles across the process-pool boundary."""
    return {"value": spec.config["value"] * 10, "seed": spec.seed,
            "pid": os.getpid()}


def failing_trial(spec: TrialSpec) -> dict:
    if spec.config["value"] == 2:
        raise ValueError("trial 2 exploded")
    return {"ok": spec.config["value"]}


def specs(n=6, experiment="runner-test"):
    return [
        TrialSpec(experiment=experiment, config={"value": i}, seed=i % 2)
        for i in range(n)
    ]


class TestSerial:
    def test_results_in_spec_order(self):
        out = ParallelRunner(workers=1).map(echo_trial, specs())
        assert [r["value"] for r in out] == [0, 10, 20, 30, 40, 50]

    def test_serial_runs_in_process(self):
        out = ParallelRunner(workers=1).map(echo_trial, specs(2))
        assert all(r["pid"] == os.getpid() for r in out)

    def test_serial_accepts_lambdas(self):
        # no pickling requirement at workers=1
        out = ParallelRunner(workers=1).map(lambda s: s.seed, specs(3))
        assert out == [0, 1, 0]

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="trial 2"):
            ParallelRunner(workers=1).map(failing_trial, specs(4))


class TestParallel:
    def test_results_match_serial(self):
        serial = ParallelRunner(workers=1).map(echo_trial, specs())
        parallel = ParallelRunner(workers=WORKERS).map(echo_trial, specs())
        for s, p in zip(serial, parallel):
            assert {k: s[k] for k in ("value", "seed")} == {
                k: p[k] for k in ("value", "seed")
            }

    def test_seeds_fixed_by_grid_position(self):
        out = ParallelRunner(workers=WORKERS).map(echo_trial, specs())
        assert [r["seed"] for r in out] == [0, 1, 0, 1, 0, 1]

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="trial 2"):
            ParallelRunner(workers=WORKERS).map(failing_trial, specs(4))

    def test_single_pending_short_circuits_serial(self):
        out = ParallelRunner(workers=WORKERS).map(echo_trial, specs(1))
        assert out[0]["pid"] == os.getpid()

    def test_report_counts(self):
        runner = ParallelRunner(workers=WORKERS)
        runner.map(echo_trial, specs())
        rep = runner.last_report
        assert (rep.total, rep.cache_hits, rep.executed) == (6, 0, 6)


class TestWorkerCount:
    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            ParallelRunner(workers=-1)

    def test_zero_means_auto(self):
        assert ParallelRunner(workers=0).workers == default_workers()
        assert default_workers() >= 1


class TestCacheIntegration:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = ParallelRunner(workers=1, cache=cache)
        a = first.map(echo_trial, specs())
        assert first.last_report.executed == 6

        second = ParallelRunner(workers=1, cache=ResultCache(tmp_path))
        b = second.map(echo_trial, specs())
        assert second.last_report.cache_hits == 6
        assert second.last_report.executed == 0
        assert a == b
        totals = ResultCache(tmp_path).persistent_stats()
        assert totals["hits"] == 6
        assert totals["misses"] == 6

    def test_parallel_populates_serial_reads(self, tmp_path):
        a = ParallelRunner(workers=WORKERS, cache=ResultCache(tmp_path)).map(
            echo_trial, specs()
        )
        reader = ParallelRunner(workers=1, cache=ResultCache(tmp_path))
        b = reader.map(echo_trial, specs())
        assert reader.last_report.cache_hits == 6
        for x, y in zip(a, b):
            assert x == y  # pids included: hits are literal stored values

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(workers=1, cache=cache).map(echo_trial, specs())
        other = [
            TrialSpec("runner-test", {"value": i, "extra": True}, seed=i % 2)
            for i in range(6)
        ]
        runner = ParallelRunner(workers=1, cache=ResultCache(tmp_path))
        runner.map(echo_trial, other)
        assert runner.last_report.cache_hits == 0

    def test_experiment_name_partitions_cache(self, tmp_path):
        ParallelRunner(workers=1, cache=ResultCache(tmp_path)).map(
            echo_trial, specs(2, experiment="a")
        )
        runner = ParallelRunner(workers=1, cache=ResultCache(tmp_path))
        runner.map(echo_trial, specs(2, experiment="b"))
        assert runner.last_report.cache_hits == 0


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("fig8", 1024, 0) == derive_seed("fig8", 1024, 0)

    def test_varies_with_any_part(self):
        base = derive_seed("fig8", 1024, 0)
        assert derive_seed("fig8", 1024, 1) != base
        assert derive_seed("fig8", 2048, 0) != base
        assert derive_seed("fig7", 1024, 0) != base

    def test_fits_32_bits(self):
        assert 0 <= derive_seed("x") < 2**32
