"""mmap-backed ResultCache: sidecar serving, torn writes, legacy entries.

The contract under test:

* a warm hit with an intact ``.cols`` sidecar is served as zero-copy
  views off an ``mmap`` — ``pickle.loads`` is never invoked,
* the ``.pkl`` file stays byte-identical to what a substrate-free cache
  writes (cache keys and cached bytes survive the refactor),
* torn/corrupt files at any layer degrade (sidecar -> pickle fallback;
  both -> miss + recompute), never crash and never serve garbage,
* a legacy cache directory (``.pkl`` only, written before the sidecar
  existed) reads through unchanged.
"""

import pickle

import numpy as np
import pytest

from repro.orchestrate.cache import ResultCache
from repro.spe.records import SampleBatch
from repro.substrate import FORMAT_VERSION


def sample_value(n=64):
    cols = {
        name: np.arange(n, dtype=SampleBatch._DTYPES[name])
        for name in SampleBatch._COLUMNS
    }
    return {"batch": SampleBatch.from_columns(**cols), "accuracy": 0.93}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path)


class TestMmapHit:
    def test_hit_never_unpickles(self, cache, monkeypatch):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())

        def boom(*a, **k):  # any unpickle on the hot path is a bug
            raise AssertionError("pickle.loads invoked on an mmap hit")

        monkeypatch.setattr(pickle, "loads", boom)
        got = cache.get(key)
        assert got["accuracy"] == 0.93
        assert np.array_equal(got["batch"].addr, np.arange(64, dtype=np.uint64))
        assert cache.stats.hits_mmap == 1
        assert cache.stats.hits_pickle == 0
        assert cache.stats.deser_ns_mmap > 0

    def test_hit_value_matches_pickle_path(self, cache, tmp_path):
        key = cache.key("exp", {"p": 1}, 0)
        value = sample_value()
        cache.put(key, value)
        via_mmap = cache.get(key)
        cache._cols_path(key).unlink()
        via_pickle = ResultCache(tmp_path).get(key)
        assert pickle.dumps(via_pickle) == pickle.dumps(value)
        assert np.array_equal(via_mmap["batch"].addr, via_pickle["batch"].addr)

    def test_pkl_bytes_identical_to_substrate_free_cache(self, tmp_path):
        value = sample_value()
        a = ResultCache(tmp_path / "a")
        b = ResultCache(tmp_path / "b", use_substrate=False)
        key_a = a.key("exp", {"p": 1}, 0)
        key_b = b.key("exp", {"p": 1}, 0)
        assert key_a == key_b  # keys don't see the substrate
        a.put(key_a, value)
        b.put(key_b, value)
        assert a._path(key_a).read_bytes() == b._path(key_b).read_bytes()
        assert not b._cols_path(key_b).exists()

    def test_unencodable_value_has_no_sidecar(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, object())
        assert not cache._cols_path(key).exists()
        assert cache.get(key) is not None  # pickle path still serves it
        assert cache.stats.hits_pickle == 1


class TestTornWrites:
    @pytest.mark.parametrize("damage", ["truncate", "empty", "garbage"])
    def test_torn_sidecar_falls_back_and_heals(self, cache, damage):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())
        cols = cache._cols_path(key)
        if damage == "truncate":
            cols.write_bytes(cols.read_bytes()[: cols.stat().st_size // 2])
        elif damage == "empty":
            cols.write_bytes(b"")
        else:
            cols.write_bytes(b"RCOLgarbage after a valid magic")
        got = cache.get(key)
        assert got["accuracy"] == 0.93
        assert not cols.exists()  # torn sidecar deleted, not retried
        assert cache.stats.hits_pickle == 1

    def test_torn_everything_is_a_miss(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())
        cache._path(key).write_bytes(b"\x80")  # truncated pickle stream
        cache._cols_path(key).write_bytes(b"\x00")
        assert cache.get(key) is None
        assert not cache._path(key).exists()
        assert not cache._cols_path(key).exists()
        assert cache.stats.misses == 1

    def test_recompute_after_tear_round_trips(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())
        cache._path(key).write_bytes(b"")
        cache._cols_path(key).unlink()
        assert cache.get(key) is None
        cache.put(key, sample_value())  # the recompute lands cleanly
        assert cache.get(key)["accuracy"] == 0.93


class TestLegacyReadThrough:
    def test_pkl_only_directory_serves(self, cache, tmp_path):
        # a cache dir written before the sidecar existed: .pkl only
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())
        cache._cols_path(key).unlink()
        reopened = ResultCache(tmp_path)
        got = reopened.get(key)
        assert got["accuracy"] == 0.93
        assert reopened.stats.hits_pickle == 1
        assert reopened.stats.hits_mmap == 0

    def test_stray_sidecar_without_pkl_is_a_miss(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())
        cache._path(key).unlink()
        assert not cache.contains(key)
        assert cache.get(key) is None


class TestStatsSurface:
    def test_stats_json_carries_format_version(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())
        cache.get(key)
        cache.flush_stats()
        import json

        raw = json.loads(cache._stats_path().read_text())
        assert raw["substrate_version"] == FORMAT_VERSION

    def test_describe_reports_payloads_and_paths(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, sample_value())
        cache.get(key)  # mmap hit
        cache._cols_path(key).unlink()
        cache.get(key)  # pickle hit
        text = cache.describe()
        parsed = dict(
            line.split(": ", 1) for line in text.splitlines()
        )  # the CI smoke job parses exactly this shape
        assert parsed["hits (mmap)"] == "1"
        assert parsed["hits (pickle)"] == "1"
        assert parsed["substrate format"] == f"v{FORMAT_VERSION}"
        assert parsed["columnar entries"] == "0"
        assert parsed["deserialize (mmap)"].endswith(" ms")

    def test_payload_bytes_counts_sidecars(self, cache):
        for seed in range(3):
            cache.put(cache.key("exp", {"p": 1}, seed), sample_value())
        assert len(cache.cols_entries()) == 3
        assert cache.payload_bytes() > 0
