"""Worker pool result transport: shared-memory shipping and parity.

Workers marshal large columnar results into shared-memory segments and
send only a handle over the event pipe; the parent redeems handles at
the single delivery point in ``next_event``.  These tests pin:

* big results arrive intact through the shm path (and the parent really
  received a handle, not the pickled object),
* ``REPRO_RESULT_TRANSPORT=pickle`` forces the legacy pipe path and
  produces pickle-byte-identical results,
* no shared-memory segments leak — every marshalled result is either
  redeemed or discarded.
"""

import os
import pickle

import numpy as np
import pytest

from repro.orchestrate.pool import WorkerPool
from repro.orchestrate.runner import ParallelRunner, TrialSpec
from repro.substrate import TRANSPORT_ENV, ShmResult
from repro.substrate import shm as shm_mod


def big_result(arg):
    seed = arg.seed if isinstance(arg, TrialSpec) else arg
    return {
        "data": np.arange(100_000, dtype=np.uint64) + seed,
        "seed": seed,
    }


def tiny_result(arg):
    return {"seed": arg}


def shm_segments():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:
        return set()


def drain(pool, n):
    events = {}
    for _ in range(n):
        kind, task_id, payload = pool.next_event(timeout=30)
        assert kind == "done", (kind, payload)
        events[task_id] = payload
    return events


class TestPoolTransport:
    def test_big_results_travel_by_handle(self, monkeypatch):
        redeemed = []
        real = shm_mod.unmarshal

        def spy(value):
            if isinstance(value, ShmResult):
                redeemed.append(value)
            return real(value)

        monkeypatch.setattr(shm_mod, "unmarshal", spy)
        before = shm_segments()
        with WorkerPool(workers=2) as pool:
            ids = [pool.submit(big_result, s) for s in range(4)]
            events = drain(pool, 4)
        for seed, task_id in enumerate(ids):
            got = events[task_id]
            assert got["seed"] == seed
            assert np.array_equal(
                got["data"], np.arange(100_000, dtype=np.uint64) + seed
            )
        assert len(redeemed) == 4  # every result crossed as a handle
        assert shm_segments() == before  # ...and was unlinked on redeem

    def test_small_results_take_the_pipe(self, monkeypatch):
        redeemed = []
        real = shm_mod.unmarshal

        def spy(value):
            if isinstance(value, ShmResult):
                redeemed.append(value)
            return real(value)

        monkeypatch.setattr(shm_mod, "unmarshal", spy)
        with WorkerPool(workers=1) as pool:
            pool.submit(tiny_result, 7)
            events = drain(pool, 1)
        assert list(events.values()) == [{"seed": 7}]
        assert redeemed == []

    def test_pickle_transport_parity(self, monkeypatch):
        with WorkerPool(workers=2) as pool:
            ids = [pool.submit(big_result, s) for s in range(3)]
            via_shm = [drain_one for drain_one in (drain(pool, 3),)][0]
        monkeypatch.setenv(TRANSPORT_ENV, "pickle")
        with WorkerPool(workers=2) as pool:
            ids2 = [pool.submit(big_result, s) for s in range(3)]
            via_pipe = drain(pool, 3)
        for s, (a, b) in enumerate(zip(ids, ids2)):
            assert pickle.dumps(via_shm[a]) == pickle.dumps(via_pipe[b])


class TestRunnerTransport:
    def test_executor_path_round_trips(self):
        before = shm_segments()
        runner = ParallelRunner(workers=2)
        specs = [TrialSpec("exp", {"i": i}, i) for i in range(4)]
        rows = runner.map(big_result, specs)
        assert [r["seed"] for r in rows] == [0, 1, 2, 3]
        for r in rows:
            assert np.array_equal(
                r["data"], np.arange(100_000, dtype=np.uint64) + r["seed"]
            )
        assert shm_segments() == before

    def test_executor_parity_with_pickle_transport(self, monkeypatch):
        specs = [TrialSpec("exp", {"i": i}, i) for i in range(3)]
        via_shm = ParallelRunner(workers=2).map(big_result, specs)
        monkeypatch.setenv(TRANSPORT_ENV, "pickle")
        via_pipe = ParallelRunner(workers=2).map(big_result, specs)
        # byte-identity is a per-result contract (each result is cached
        # and shipped on its own); object sharing ACROSS results is not
        for a, b in zip(via_shm, via_pipe):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_serial_path_untouched(self):
        specs = [TrialSpec("exp", {"i": i}, i) for i in range(2)]
        rows = ParallelRunner(workers=1).map(big_result, specs)
        assert [r["seed"] for r in rows] == [0, 1]
