"""ResultCache: round-trip, key invalidation, stats, maintenance."""

import dataclasses
import enum

import pytest

from repro.orchestrate import ResultCache, cache_key, canonical_config, make_cache


@dataclasses.dataclass(frozen=True)
class DemoConfig:
    period: int
    scale: float
    workload: str = "stream"


class DemoMode(enum.Enum):
    A = "a"
    B = "b"


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCanonicalConfig:
    def test_dataclass_flattens_to_fields(self):
        c = canonical_config(DemoConfig(period=1024, scale=0.5))
        assert c == {"period": 1024, "scale": 0.5, "workload": "stream"}

    def test_dict_key_order_irrelevant(self):
        assert canonical_config({"b": 1, "a": 2}) == canonical_config(
            {"a": 2, "b": 1}
        )

    def test_enums_and_tuples(self):
        assert canonical_config(DemoMode.A) == ["DemoMode", "a"]
        assert canonical_config((1, 2)) == [1, 2]

    def test_numpy_scalars_reduce_to_python(self):
        np = pytest.importorskip("numpy")
        assert canonical_config(np.int64(3)) == 3
        assert canonical_config(np.float64(0.5)) == 0.5

    def test_large_arrays_do_not_collide(self):
        # repr truncates big arrays with "..." — two arrays differing
        # only in the elided middle must still key differently
        np = pytest.importorskip("numpy")
        a = np.zeros(10_000)
        b = np.zeros(10_000)
        b[5_000] = 1.0
        assert repr(a) == repr(b)  # the trap this guards against
        assert canonical_config(a) != canonical_config(b)

    def test_array_canonical_form_carries_shape_and_dtype(self):
        np = pytest.importorskip("numpy")
        a = np.arange(6, dtype=np.int32)
        tag, shape, dtype, digest = canonical_config(a)
        assert (tag, shape, dtype) == ("ndarray", [6], "int32")
        assert canonical_config(a.reshape(2, 3)) != canonical_config(a)
        assert canonical_config(a.astype(np.int64)) != canonical_config(a)
        # equal content and dtype: same canonical form, even if one is
        # a non-contiguous view
        c = np.arange(12, dtype=np.int32)[::2]
        assert canonical_config(c) == canonical_config(c.copy())

    def test_object_arrays_canonicalise_elements(self):
        np = pytest.importorskip("numpy")
        a = np.array(["x", "y"], dtype=object)
        b = np.array(["x", "z"], dtype=object)
        assert canonical_config(a) != canonical_config(b)
        assert canonical_config(a) == canonical_config(
            np.array(["x", "y"], dtype=object)
        )


class TestKeys:
    def test_stable_across_calls(self):
        cfg = DemoConfig(period=1024, scale=0.5)
        assert cache_key("e", cfg, 0) == cache_key("e", cfg, 0)

    def test_config_change_invalidates(self):
        a = cache_key("e", DemoConfig(period=1024, scale=0.5), 0)
        b = cache_key("e", DemoConfig(period=2048, scale=0.5), 0)
        assert a != b

    def test_dataclass_and_equivalent_dict_agree(self):
        cfg = DemoConfig(period=1024, scale=0.5)
        as_dict = {"period": 1024, "scale": 0.5, "workload": "stream"}
        assert cache_key("e", cfg, 0) == cache_key("e", as_dict, 0)

    def test_seed_experiment_version_all_key(self):
        cfg = {"x": 1}
        base = cache_key("e", cfg, 0)
        assert cache_key("e", cfg, 1) != base
        assert cache_key("f", cfg, 0) != base
        assert cache_key("e", cfg, 0, version="0.0.0") != base


class TestRoundTrip:
    def test_get_put_get(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        assert cache.get(key) is None
        cache.put(key, {"accuracy": 0.93})
        assert cache.get(key) == {"accuracy": 0.93}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_survives_reopen(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, [1, 2, 3])
        reopened = ResultCache(cache.dir)
        assert reopened.get(key) == [1, 2, 3]

    def test_corrupt_entry_is_a_miss(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, "value")
        cache._path(key).write_bytes(b"not a pickle")
        cache._cols_path(key).unlink(missing_ok=True)
        assert cache.get(key, "fallback") == "fallback"
        assert not cache.contains(key)  # torn entry deleted

    def test_valid_sidecar_outlives_torn_pickle(self, cache):
        # the columnar sidecar is self-validating: when it is intact it
        # serves the (correct) value even if the .pkl twin was torn
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, "value")
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key, "fallback") == "value"


class TestStats:
    def test_flush_accumulates_across_sessions(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.get(key)  # miss
        cache.put(key, 1)
        cache.flush_stats()
        second = ResultCache(cache.dir)
        second.get(key)  # hit
        totals = second.flush_stats()
        assert (totals["hits"], totals["misses"], totals["stores"]) == (1, 1, 1)
        assert totals["hits_mmap"] + totals["hits_pickle"] == 1

    def test_describe_mentions_counts(self, cache):
        key = cache.key("exp", {"p": 1}, 0)
        cache.put(key, 1)
        text = cache.describe()
        assert "entries: 1" in text
        assert "stores: 1" in text
        assert str(cache.dir) in text


class TestMaintenance:
    def test_clear_removes_everything(self, cache):
        for seed in range(3):
            cache.put(cache.key("exp", {"p": 1}, seed), seed)
        cache.flush_stats()
        assert cache.clear() == 3
        assert cache.entries() == []
        assert cache.cols_entries() == []
        assert not any(cache.persistent_stats().values())

    def test_size_bytes(self, cache):
        cache.put(cache.key("exp", {}, 0), list(range(100)))
        assert cache.size_bytes() > 0


def _hammer_same_key(args):
    """Worker: store one key repeatedly, interleaved with reads.

    Module-level so it pickles across the ProcessPoolExecutor boundary.
    Returns the distinct payloads observed while other workers were
    racing their own stores of the same key.
    """
    cache_dir, key, worker_id, rounds = args
    cache = ResultCache(cache_dir)
    seen = set()
    for i in range(rounds):
        cache.put(key, {"worker": worker_id, "round": i, "blob": list(range(64))})
        value = cache.get(key)
        if value is not None:
            seen.add((value["worker"], value["round"]))
    return sorted(seen)


class TestConcurrentWriters:
    """Two+ workers storing the same key must never corrupt the entry.

    `put` stages each pickle in a `mkstemp` file in the entry's own
    directory and publishes it with `os.replace` — same-filesystem and
    therefore atomic on POSIX; a reader sees either the old complete
    entry or the new complete entry, never a torn one.  (ParallelRunner
    only writes from the orchestrating parent, but two *invocations*
    sharing a cache directory race exactly like this.)
    """

    def test_racing_writers_never_tear_the_entry(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        cache = ResultCache(tmp_path)
        key = cache.key("race", {"p": 1}, 0)
        n_workers, rounds = 4, 25
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(
                pool.map(
                    _hammer_same_key,
                    [(str(tmp_path), key, w, rounds) for w in range(n_workers)],
                )
            )
        # every read during the race returned a complete entry from
        # some (worker, round) — get() deletes corrupt entries and
        # returns None, so any tear would surface as a missing read
        assert all(len(seen) > 0 for seen in results)
        for seen in results:
            for worker, rnd in seen:
                assert 0 <= worker < n_workers and 0 <= rnd < rounds

        final = ResultCache(tmp_path).get(key)
        assert final is not None
        assert final["blob"] == list(range(64))

    def test_no_stale_temp_files_after_race(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("race", {"p": 2}, 0)
        for i in range(10):
            cache.put(key, i)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        assert len(cache.entries()) == 1


class TestDefaultDir:
    def test_env_var_honoured_at_construction(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "late"))
        assert ResultCache().dir == tmp_path / "late"

    def test_falls_back_to_home_cache(self, monkeypatch):
        from repro.orchestrate import DEFAULT_CACHE_DIR

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert ResultCache().dir == DEFAULT_CACHE_DIR


class TestMakeCache:
    """The three-state --cache/--no-cache/--cache-dir interaction."""

    def test_unset_without_dir_is_none(self):
        assert make_cache(None) is None

    def test_unset_with_dir_implies_enabled(self, tmp_path):
        c = make_cache(None, tmp_path)
        assert isinstance(c, ResultCache)
        assert c.dir == tmp_path

    def test_enabled_builds_cache(self, tmp_path):
        c = make_cache(True, tmp_path)
        assert isinstance(c, ResultCache)
        assert c.dir == tmp_path

    def test_enabled_without_dir_uses_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        c = make_cache(True)
        assert isinstance(c, ResultCache)
        assert c.dir == tmp_path / "env"

    def test_explicit_no_cache_is_none(self):
        assert make_cache(False) is None

    def test_explicit_no_cache_wins_over_dir(self, tmp_path):
        assert make_cache(False, tmp_path) is None
