"""Parallel/cached experiment drivers reproduce the serial results.

Small configurations keep this fast.  Full-CLI byte equivalence
(cached vs computed output of a whole exhibit) is exercised by the CI
cache-smoke job, not here.
"""

import pytest

from repro.evalharness.experiments import (
    colo_interference,
    fig7_samples_vs_period,
    fig9_aux_buffer,
    fig10_fig11_threads,
)
from repro.orchestrate import ResultCache

FIG7_KW = dict(periods=(2048, 8192), trials=2, workloads=("bfs",), scale=0.2)
COLO_KW = dict(max_corunners=2, scale=0.002, period=65536, n_threads=4)


class TestParallelEquivalence:
    def test_fig7_parallel_matches_serial(self):
        serial = fig7_samples_vs_period(**FIG7_KW, workers=1)
        parallel = fig7_samples_vs_period(**FIG7_KW, workers=3)
        assert serial == parallel

    def test_fig9_parallel_matches_serial(self):
        kw = dict(aux_pages=(2, 16), scale=0.1)
        assert fig9_aux_buffer(**kw) == fig9_aux_buffer(**kw, workers=2)

    def test_fig10_parallel_matches_serial(self):
        kw = dict(thread_counts=(2, 8), scale=0.25)
        assert fig10_fig11_threads(**kw) == fig10_fig11_threads(
            **kw, workers=2
        )

    def test_colo_parallel_matches_serial(self):
        # acceptance: --workers N byte-identical to the serial run
        serial = colo_interference(**COLO_KW, workers=1)
        parallel = colo_interference(**COLO_KW, workers=2)
        assert serial == parallel

    def test_deterministic_seeding_across_repeats(self):
        # same grid, workers>1, twice: scheduling must not leak into seeds
        a = fig7_samples_vs_period(**FIG7_KW, workers=3)
        b = fig7_samples_vs_period(**FIG7_KW, workers=2)
        assert a == b
        pts = a["bfs"]
        assert all(len(p.samples_trials) == 2 for p in pts)


class TestCachedExperiments:
    def test_second_run_hits_and_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = fig7_samples_vs_period(**FIG7_KW, cache=cache)
        totals = ResultCache(tmp_path).persistent_stats()
        assert totals == {
            "hits": 0,
            "misses": 4,
            "stores": 4,
            "hits_mmap": 0,
            "hits_pickle": 0,
            "deser_ns_mmap": 0,
            "deser_ns_pickle": 0,
        }

        second = fig7_samples_vs_period(
            **FIG7_KW, cache=ResultCache(tmp_path)
        )
        assert first == second
        totals = ResultCache(tmp_path).persistent_stats()
        assert totals["hits"] == 4
        assert totals["stores"] == 4

    def test_trials_increase_reuses_prefix(self, tmp_path):
        fig7_samples_vs_period(**FIG7_KW, cache=ResultCache(tmp_path))
        kw = dict(FIG7_KW, trials=3)
        fig7_samples_vs_period(**kw, cache=ResultCache(tmp_path))
        totals = ResultCache(tmp_path).persistent_stats()
        # 2 periods x trials 0,1 reused; only trial seed 2 recomputed
        assert totals["hits"] == 4
        assert totals["stores"] == 4 + 2

    def test_scale_change_invalidates(self, tmp_path):
        fig7_samples_vs_period(**FIG7_KW, cache=ResultCache(tmp_path))
        kw = dict(FIG7_KW, scale=0.25)
        runner_cache = ResultCache(tmp_path)
        fig7_samples_vs_period(**kw, cache=runner_cache)
        totals = ResultCache(tmp_path).persistent_stats()
        assert totals["hits"] == 0

    def test_machine_spec_change_invalidates(self, tmp_path):
        # same machine *name*, different geometry: must not share entries
        from dataclasses import replace

        from repro.machine.spec import small_test_machine

        m1 = small_test_machine()
        m2 = replace(m1, n_cores=m1.n_cores * 2)
        assert m1.name == m2.name
        kw = dict(thread_counts=(2,), scale=0.25)
        fig10_fig11_threads(machine=m1, **kw, cache=ResultCache(tmp_path))
        fig10_fig11_threads(machine=m2, **kw, cache=ResultCache(tmp_path))
        totals = ResultCache(tmp_path).persistent_stats()
        assert totals["hits"] == 0
        assert totals["stores"] == 2

    def test_cached_fig9_roundtrip(self, tmp_path):
        kw = dict(aux_pages=(2, 16), scale=0.1)
        a = fig9_aux_buffer(**kw, cache=ResultCache(tmp_path))
        b = fig9_aux_buffer(**kw, cache=ResultCache(tmp_path))
        assert a == b
        assert ResultCache(tmp_path).persistent_stats()["hits"] == 2

    def test_cached_colo_second_run_full_hit(self, tmp_path):
        # acceptance: cached rerun identical to the uncached serial run
        uncached = colo_interference(**COLO_KW)
        a = colo_interference(**COLO_KW, cache=ResultCache(tmp_path))
        b = colo_interference(**COLO_KW, cache=ResultCache(tmp_path), workers=2)
        assert uncached == a == b
        totals = ResultCache(tmp_path).persistent_stats()
        # 3 scenarios (stream, stream x2, stream+pagerank): all hit twice
        assert (totals["hits"], totals["misses"], totals["stores"]) == (3, 3, 3)
        # every hit came off one of the two deserialization paths
        assert totals["hits_mmap"] + totals["hits_pickle"] == totals["hits"]
