"""WorkerPool: persistent workers, event stream, crash recovery.

The pool exists so a long-running driver (the serve scheduler, or a
``ParallelRunner(pool=...)``) stops paying process spin-up and
teardown per job: across 50 sequential jobs the worker PIDs must not
change and the parent must not leak file descriptors.
"""

import os
import signal
import time

import pytest

from repro.errors import ReproError
from repro.orchestrate import (
    ParallelRunner,
    ResultCache,
    TrialSpec,
    WorkerPool,
)


def echo_task(x):
    return {"value": x * 10, "pid": os.getpid()}


def boom_task(x):
    raise ValueError(f"task {x} exploded")


def unpicklable_error_task(x):
    class Local(Exception):  # local classes cannot pickle
        pass

    raise Local("inner detail")


def stall_task(x):
    (x["pidfile"]).write_text(str(os.getpid()))
    time.sleep(x.get("stall", 60))
    return "never"


def echo_trial(spec: TrialSpec) -> dict:
    return {"value": spec.config["value"] * 10, "seed": spec.seed,
            "pid": os.getpid()}


def trial_specs(n=6):
    return [
        TrialSpec(experiment="pool-test", config={"value": i}, seed=i % 2)
        for i in range(n)
    ]


def open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


class TestTaskFlow:
    def test_done_events_carry_results(self):
        with WorkerPool(workers=2) as pool:
            ids = [pool.submit(echo_task, i) for i in range(4)]
            got = {}
            while len(got) < 4:
                kind, task_id, payload = pool.next_event(timeout=10)
                assert kind == "done"
                got[task_id] = payload
        assert [got[t]["value"] for t in ids] == [0, 10, 20, 30]

    def test_results_computed_in_workers(self):
        with WorkerPool(workers=2) as pool:
            worker_pids = set(pool.pids())
            pool.submit(echo_task, 1)
            _, _, payload = pool.next_event(timeout=10)
        assert payload["pid"] != os.getpid()
        assert payload["pid"] in worker_pids

    def test_error_events_ship_the_exception(self):
        with WorkerPool(workers=1) as pool:
            pool.submit(boom_task, 7)
            kind, _tid, payload = pool.next_event(timeout=10)
        assert kind == "error"
        assert isinstance(payload, ValueError)
        assert "task 7 exploded" in str(payload)

    def test_unpicklable_errors_degrade_to_strings(self):
        with WorkerPool(workers=1) as pool:
            pool.submit(unpicklable_error_task, 0)
            kind, _tid, payload = pool.next_event(timeout=10)
        assert kind == "error"
        assert isinstance(payload, str)
        assert "inner detail" in payload

    def test_timeout_returns_none(self):
        with WorkerPool(workers=1) as pool:
            assert pool.next_event(timeout=0.05) is None

    def test_outstanding_tracks_undelivered(self):
        with WorkerPool(workers=1) as pool:
            pool.submit(echo_task, 0)
            pool.submit(echo_task, 1)
            assert pool.outstanding == 2
            pool.next_event(timeout=10)
            pool.next_event(timeout=10)
            assert pool.outstanding == 0

    def test_submit_after_close_raises(self):
        pool = WorkerPool(workers=1)
        pool.close()
        with pytest.raises(ReproError, match="closed"):
            pool.submit(echo_task, 0)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ReproError):
            WorkerPool(workers=0)


class TestWorkerReuse:
    def test_stable_pids_and_no_fd_growth_across_50_jobs(self, tmp_path):
        """The reuse contract: 50 sequential jobs on one pool touch the
        same worker processes and leak no descriptors in the parent."""
        with WorkerPool(workers=2) as pool:
            runner = ParallelRunner(
                pool=pool, cache=ResultCache(tmp_path)
            )
            # warm-up settles lazily-created fds (queue feeder threads)
            runner.map(echo_trial, trial_specs(4))
            pids_before = sorted(pool.pids())
            fds_before = open_fds()
            seen_pids = set()
            for _job in range(50):
                out = runner.map(echo_trial, trial_specs(4))
                seen_pids.update(r["pid"] for r in out if "pid" in r)
            assert sorted(pool.pids()) == pids_before
            # cached rows replay stored pids; live ones stay in the pool
            assert seen_pids <= set(pids_before) | {os.getpid()}
            assert open_fds() <= fds_before + 2
        assert len(pids_before) == 2

    def test_pool_runner_matches_serial(self, tmp_path):
        serial = ParallelRunner(workers=1).map(echo_trial, trial_specs())
        with WorkerPool(workers=3) as pool:
            pooled = ParallelRunner(pool=pool).map(echo_trial, trial_specs())
        for s, p in zip(serial, pooled):
            assert {k: s[k] for k in ("value", "seed")} == {
                k: p[k] for k in ("value", "seed")
            }

    def test_runner_reports_pool_capacity(self):
        with WorkerPool(workers=3) as pool:
            assert ParallelRunner(pool=pool).workers == 3

    def test_pool_survives_runner_exceptions(self):
        with WorkerPool(workers=2) as pool:
            runner = ParallelRunner(pool=pool)
            specs = [TrialSpec("pool-test", {"value": 2}, seed=0)]
            with pytest.raises(ValueError, match="exploded"):
                runner.map(boom_trial, specs)
            # same pool still serves the next job
            out = runner.map(echo_trial, trial_specs(2))
            assert [r["value"] for r in out] == [0, 10]


def boom_trial(spec: TrialSpec):
    raise ValueError(f"task {spec.config['value']} exploded")


class TestCrashRecovery:
    def test_killed_worker_reports_lost_and_respawns(self, tmp_path):
        pidfile = tmp_path / "pid"
        with WorkerPool(workers=2) as pool:
            task_id = pool.submit(
                stall_task, {"pidfile": pidfile, "stall": 60}
            )
            deadline = time.monotonic() + 30
            while not pidfile.exists():
                assert time.monotonic() < deadline, "task never started"
                time.sleep(0.02)
            victim = int(pidfile.read_text())
            os.kill(victim, signal.SIGKILL)
            kind, lost_id, reason = pool.next_event(timeout=30)
            assert (kind, lost_id) == ("lost", task_id)
            assert str(victim) in reason and "died" in reason
            # capacity restored: a replacement worker serves new tasks
            deadline = time.monotonic() + 10
            while len(pool.pids()) < 2:
                assert time.monotonic() < deadline, "no respawn"
                time.sleep(0.02)
            pool.submit(echo_task, 5)
            kind, _tid, payload = pool.next_event(timeout=30)
            assert kind == "done" and payload["value"] == 50
            assert payload["pid"] != victim

    def test_completed_just_before_crash_is_not_lost(self):
        # a worker that finishes its task and then dies must still
        # deliver the done event, not a bogus lost
        with WorkerPool(workers=1) as pool:
            pool.submit(echo_task, 3)
            time.sleep(0.3)  # let the worker finish and flush the event
            for p in list(pool._procs):
                os.kill(p.pid, signal.SIGKILL)
            kind, _tid, payload = pool.next_event(timeout=30)
        assert kind == "done"
        assert payload["value"] == 30

    def test_runner_on_pool_retries_lost_trial_once(self, tmp_path):
        pidfile = tmp_path / "pid"

        def run():
            return ParallelRunner(pool=pool).map(
                flaky_trial,
                [TrialSpec("pool-test", {"scratch": str(tmp_path)}, seed=0)],
            )

        import threading

        with WorkerPool(workers=1) as pool:
            result = {}
            t = threading.Thread(
                target=lambda: result.update(rows=run())
            )
            t.start()
            deadline = time.monotonic() + 30
            while not pidfile.exists():
                assert time.monotonic() < deadline, "trial never started"
                time.sleep(0.02)
            os.kill(int(pidfile.read_text()), signal.SIGKILL)
            t.join(timeout=60)
            assert not t.is_alive(), "runner hung after worker death"
        assert result["rows"] == [{"metric": 0.0}]


def flaky_trial(spec: TrialSpec):
    """Stall on first execution (after announcing the pid), fast on retry."""
    from pathlib import Path

    scratch = Path(spec.config["scratch"])
    marker = scratch / "ran"
    if not marker.exists():
        marker.write_text(str(os.getpid()))
        (scratch / "pid").write_text(str(os.getpid()))
        time.sleep(60)
    return {"metric": float(spec.seed)}
