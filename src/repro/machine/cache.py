"""Exact set-associative cache simulator.

This is the trace-driven path of the machine model: every access walks a
true LRU set-associative cache.  It is used by unit tests, the
high-resolution tracing mode (paper Fig. 6), and any workload small enough
to materialise its op stream.  The huge closed-form runs behind Fig. 7-11
use the analytic :mod:`repro.machine.statcache` instead; the two models
are cross-validated in ``tests/machine/test_statcache.py``.

The simulator stores per-set tag arrays and LRU ages in NumPy arrays and
processes accesses in a tight Python loop; batch helpers accept address
vectors so callers never loop themselves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineError
from repro.machine.spec import CacheSpec

#: Sentinel tag for an invalid (empty) way.
_INVALID = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


class SetAssociativeCache:
    """A single level of true-LRU set-associative cache.

    Parameters
    ----------
    spec:
        Geometry (size / associativity / line size).
    name:
        Label used in stats dictionaries ("L1d", "L2", "SLC").
    """

    def __init__(self, spec: CacheSpec, name: str = "cache") -> None:
        self.spec = spec
        self.name = name
        self.n_sets = spec.n_sets
        self.ways = spec.associativity
        self.line_shift = int(spec.line_size).bit_length() - 1
        if (1 << self.line_shift) != spec.line_size:
            raise MachineError("line size must be a power of two")
        # tags[set, way]; age[set, way] smaller = more recently used
        self._tags = np.full((self.n_sets, self.ways), _INVALID, dtype=np.uint64)
        self._age = np.zeros((self.n_sets, self.ways), dtype=np.int64)
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core operations -----------------------------------------------------

    def _index_tag(self, addr: int) -> tuple[int, np.uint64]:
        line = addr >> self.line_shift
        return int(line % self.n_sets), np.uint64(line)

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit.

        On miss the line is installed, evicting the LRU way.
        """
        s, tag = self._index_tag(int(addr))
        self._tick += 1
        row = self._tags[s]
        hit_ways = np.nonzero(row == tag)[0]
        if hit_ways.size:
            self._age[s, hit_ways[0]] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        # choose victim: an invalid way if present, else LRU
        invalid = np.nonzero(row == _INVALID)[0]
        if invalid.size:
            victim = invalid[0]
        else:
            victim = int(np.argmin(self._age[s]))
            self.evictions += 1
        self._tags[s, victim] = tag
        self._age[s, victim] = self._tick
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or stats."""
        s, tag = self._index_tag(int(addr))
        return bool((self._tags[s] == tag).any())

    def access_many(self, addrs: np.ndarray) -> np.ndarray:
        """Access a vector of byte addresses; returns per-access hit mask."""
        addrs = np.asarray(addrs, dtype=np.uint64)
        out = np.empty(addrs.shape, dtype=bool)
        # local bindings for loop speed
        access = self.access
        for i, a in enumerate(addrs):
            out[i] = access(int(a))
        return out

    def invalidate_all(self) -> None:
        """Flush the cache (keeps statistics)."""
        self._tags.fill(_INVALID)
        self._age.fill(0)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- introspection ---------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses; 0.0 before any access."""
        n = self.accesses
        return self.hits / n if n else 0.0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently installed."""
        return int((self._tags != _INVALID).sum())

    def resident_lines(self) -> np.ndarray:
        """Sorted array of the line numbers currently cached."""
        valid = self._tags[self._tags != _INVALID]
        return np.sort(valid.astype(np.uint64))

    def stats(self) -> dict[str, float]:
        return {
            "name": self.name,  # type: ignore[dict-item]
            "accesses": float(self.accesses),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_ratio": self.hit_ratio,
            "occupancy": float(self.occupancy),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.name}: {self.spec.size}B {self.ways}-way "
            f"{self.n_sets} sets, {self.occupancy} lines resident>"
        )
