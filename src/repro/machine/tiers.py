"""Tiered main memory: per-tier channels and the page-placement engine.

The paper's premise is *memory-centric* profiling: SPE samples attribute
latency and traffic to the level of the memory hierarchy that serviced
each access, precisely so that data can be **placed** where it hurts
least.  This module adds the placement half of that loop to the
simulated machine:

* :class:`TieredMemory` — the runtime model of a
  ``MachineSpec.tiers`` declaration: each
  :class:`~repro.machine.spec.MemoryTierSpec` (local DRAM, remote-NUMA,
  CXL-class far memory) gets its own latency and a private
  :class:`~repro.machine.memory.ContendedChannel`, so bandwidth
  rooflines and stream contention are per-tier;
* :class:`PagePlacement` — an immutable page→tier map over a
  process's :class:`~repro.machine.address_space.VirtualAddressSpace`,
  with vectorised ``tier_of`` lookup used to tag sampled addresses;
* placement **policies** — :func:`interleave_placement` (static
  spread), :func:`first_touch_placement` (allocation order fills the
  near tier first), and :func:`hotness_placement` (SPE sample counts
  rank pages; the hottest pages win the near tier — the paper's
  "profile, then place" loop, see :func:`page_hotness`);
* :func:`apply_tiering` — re-times a workload's phases for its
  placement: the DRAM share of each phase's expected latency is
  re-weighted by where its pages actually live, and per-tier bandwidth
  rooflines stretch (or relieve) saturated phases.

Placement is expressed against a **far-memory ratio** ``r``: the near
tier is budgeted ``(1 - r)`` of the workload's pages and the far tiers
split the remainder — the capacity-pressure axis swept by the
``tiering_sweep`` scenario (Mahar et al.'s hyperscale regime, see
PAPERS.md).

Single-tier calibration: a flat machine never constructs these objects,
and a tiered machine with ``far_ratio == 0`` places every page in tier
0, whose latency and bandwidth must mirror the ``dram`` spec — both
paths are pinned bit-identical by ``tests/machine/test_tiers.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineError
from repro.machine.hierarchy import MemLevel, tier_level
from repro.machine.memory import ContendedChannel, DramModel
from repro.machine.spec import MachineSpec, MemoryTierSpec

#: salt separating the interleave hash from workload address hashes
_INTERLEAVE_SALT = 0x7165

#: placement policy names accepted by :func:`placement_for` (and the
#: scenario layer's ``TieringSpec.policies``)
PLACEMENT_POLICIES = ("interleave", "first_touch", "hotness")


def _page_uniform(page_ids: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic pseudo-uniform floats in [0, 1) from page indices.

    Same splitmix64-style mixer as the workloads' address hashing
    (reimplemented here so ``repro.machine`` stays import-independent
    of ``repro.workloads``): the same page always lands in the same
    tier, across runs and processes.
    """
    x = (np.asarray(page_ids, dtype=np.uint64) + np.uint64(salt)) * np.uint64(
        0x9E3779B97F4A7C15
    )
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(2**64)


class MemoryTier:
    """Runtime state of one memory tier: its spec plus a private channel."""

    def __init__(self, spec: MemoryTierSpec) -> None:
        self.spec = spec
        self.channel = ContendedChannel(
            spec.to_dram_spec(), efficiency=spec.efficiency, knee=spec.knee
        )

    @property
    def name(self) -> str:
        """Tier label ("local", "remote", "cxl", ...)."""
        return self.spec.name

    @property
    def latency_cycles(self) -> int:
        """Loaded latency of an access serviced by this tier."""
        return self.spec.latency_cycles

    @property
    def usable_bandwidth(self) -> float:
        """Achievable bytes/second of this tier's channel."""
        return self.channel.usable_bandwidth

    def solo_roofline(self) -> DramModel:
        """A fresh solo :class:`DramModel` over this tier's spec."""
        return DramModel(self.spec.to_dram_spec(), self.spec.efficiency)


class TieredMemory:
    """The machine's main-memory tiers as runtime channel models.

    Requires a :class:`~repro.machine.spec.MachineSpec` with a
    ``tiers`` declaration; tier *i* reports SPE memory level
    ``MemLevel.DRAM + i``.
    """

    def __init__(self, machine: MachineSpec) -> None:
        if machine.tiers is None:
            raise MachineError(
                f"machine {machine.name!r} declares no memory tiers; "
                "use a tiered preset (e.g. tiered_altra_max) or set "
                "MachineSpec.tiers"
            )
        self.machine = machine
        self.tiers = [MemoryTier(t) for t in machine.tiers]

    def __len__(self) -> int:
        return len(self.tiers)

    def __getitem__(self, tier: int) -> MemoryTier:
        return self.tiers[tier]

    def level_of(self, tier: int) -> MemLevel:
        """The :class:`MemLevel` a sample serviced by ``tier`` reports."""
        if not 0 <= tier < len(self.tiers):
            raise MachineError(f"tier {tier} out of range [0, {len(self.tiers)})")
        return tier_level(tier)

    def latency_cycles(self, tier: int) -> int:
        """Loaded latency of tier ``tier`` in core cycles."""
        return self.tiers[tier].latency_cycles

    def latencies(self) -> np.ndarray:
        """Per-tier loaded latencies (cycles), near to far."""
        return np.array([t.latency_cycles for t in self.tiers], dtype=np.float64)

    def usable_bandwidths(self) -> np.ndarray:
        """Per-tier achievable bandwidth (bytes/second)."""
        return np.array([t.usable_bandwidth for t in self.tiers], dtype=np.float64)

    def apportion(self, tier: int, demands) -> np.ndarray:
        """Grant demand streams their share of one tier's channel.

        Delegates to the tier's :class:`ContendedChannel`, so a single
        active stream goes through the exact solo-roofline path
        (bit-identical to :class:`DramModel`; pinned by the
        single-stream regression tests).
        """
        if not 0 <= tier < len(self.tiers):
            raise MachineError(f"tier {tier} out of range [0, {len(self.tiers)})")
        return self.tiers[tier].channel.apportion(demands)


# ---------------------------------------------------------------------------
# Page placement
# ---------------------------------------------------------------------------

class PagePlacement:
    """Immutable page→tier map over one process's mapped pages.

    ``page_ids`` are global page indices (``vaddr >> page_shift``),
    sorted ascending; ``tiers`` assigns each page a tier index.  Lookups
    are vectorised (``searchsorted``) so tagging a whole sample batch is
    one call; addresses outside the map resolve to tier 0 (the kernel
    backs unmapped faults from near memory).
    """

    def __init__(
        self,
        page_ids: np.ndarray,
        tiers: np.ndarray,
        page_shift: int,
        n_tiers: int,
    ) -> None:
        self.page_ids = np.asarray(page_ids, dtype=np.uint64)
        self.tiers = np.asarray(tiers, dtype=np.uint8)
        if self.page_ids.ndim != 1 or self.page_ids.shape != self.tiers.shape:
            raise MachineError("page_ids and tiers must be equal-length 1-D")
        if self.page_ids.size > 1 and not (
            self.page_ids[1:] > self.page_ids[:-1]  # uint64-safe, no diff wrap
        ).all():
            raise MachineError("page_ids must be strictly increasing")
        if n_tiers < 1:
            raise MachineError("placement needs at least one tier")
        if self.tiers.size and int(self.tiers.max()) >= n_tiers:
            raise MachineError(
                f"placement references tier {int(self.tiers.max())} but the "
                f"machine has {n_tiers}"
            )
        self.page_shift = int(page_shift)
        self.n_tiers = int(n_tiers)

    @property
    def n_pages(self) -> int:
        """Number of pages covered by the map."""
        return int(self.page_ids.size)

    def tier_of_pages(self, page_ids: np.ndarray) -> np.ndarray:
        """Tier index per page id (uint8; unmapped pages → tier 0)."""
        page_ids = np.asarray(page_ids, dtype=np.uint64)
        if self.page_ids.size == 0:
            return np.zeros(page_ids.shape, dtype=np.uint8)
        idx = np.searchsorted(self.page_ids, page_ids)
        idx = np.minimum(idx, self.page_ids.size - 1)
        out = self.tiers[idx].copy()
        out[self.page_ids[idx] != page_ids] = 0
        return out

    def tier_of(self, addrs: np.ndarray) -> np.ndarray:
        """Tier index per virtual address (uint8)."""
        addrs = np.asarray(addrs, dtype=np.uint64)
        return self.tier_of_pages(addrs >> np.uint64(self.page_shift))

    def counts(self) -> np.ndarray:
        """Pages per tier (int64, length ``n_tiers``)."""
        return np.bincount(self.tiers, minlength=self.n_tiers).astype(np.int64)

    def fractions(self) -> np.ndarray:
        """Share of mapped pages per tier (sums to 1; all-near if empty)."""
        c = self.counts().astype(np.float64)
        total = c.sum()
        if total <= 0:
            out = np.zeros(self.n_tiers, dtype=np.float64)
            out[0] = 1.0
            return out
        return c / total

    def weighted_fractions(
        self, page_ids: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Share of *access weight* per tier (hotness-aware fractions).

        ``weights`` scores each page in ``page_ids`` (e.g. SPE sample
        counts from :func:`page_hotness`); the result is the fraction
        of accesses each tier services — what distinguishes a hotness
        placement (cold pages far, near-tier access share ~1) from the
        same page split under uniform access.  Zero total weight falls
        back to the page fractions.
        """
        weights = np.asarray(weights, dtype=np.float64)
        page_ids = np.asarray(page_ids, dtype=np.uint64)
        if weights.shape != page_ids.shape:
            raise MachineError("weights must align with page_ids")
        total = weights.sum()
        if total <= 0:
            return self.fractions()
        tiers = self.tier_of_pages(page_ids)
        return np.bincount(
            tiers, weights=weights, minlength=self.n_tiers
        ) / total


def mapped_page_ids(aspace) -> np.ndarray:
    """Global page indices of every live mapping, allocation-ordered.

    Allocation order (not address order) is what the first-touch policy
    fills by; guard pages between mappings are not part of any mapping
    and therefore carry no placement.
    """
    shift = aspace.page_shift
    chunks = [
        (np.uint64(m.start) >> np.uint64(shift)) + np.arange(m.n_pages, dtype=np.uint64)
        for m in aspace.mappings()
    ]
    if not chunks:
        return np.zeros(0, dtype=np.uint64)
    return np.concatenate(chunks)


def tier_budgets(n_pages: int, far_ratio: float, n_tiers: int) -> np.ndarray:
    """Page budget per tier for a far-memory ratio ``r`` in [0, 1).

    The near tier holds ``(1 - r)`` of the pages; far tiers split the
    remainder evenly, with the last tier absorbing rounding (and any
    overflow, so every page always has a home).
    """
    if not 0.0 <= far_ratio < 1.0:
        raise MachineError(f"far_ratio must be in [0, 1), got {far_ratio}")
    if n_pages < 0 or n_tiers < 1:
        raise MachineError("need n_pages >= 0 and n_tiers >= 1")
    budgets = np.zeros(n_tiers, dtype=np.int64)
    near = int(round((1.0 - far_ratio) * n_pages))
    budgets[0] = near
    if n_tiers == 1:
        budgets[0] = n_pages
        return budgets
    rest = n_pages - near
    per_far = rest // (n_tiers - 1)
    budgets[1:] = per_far
    budgets[-1] += rest - per_far * (n_tiers - 1)
    return budgets


def interleave_placement(
    aspace, n_tiers: int, far_ratio: float
) -> PagePlacement:
    """Static interleave: pages spread across tiers by a content hash.

    Each page lands in a tier with probability proportional to the
    tier's :func:`tier_budgets` share, decided by a deterministic hash
    of its page index — the address-space-agnostic analogue of round-
    robin NUMA interleaving, immune to allocation order.
    """
    pages = np.sort(mapped_page_ids(aspace))
    budgets = tier_budgets(pages.size, far_ratio, n_tiers).astype(np.float64)
    total = budgets.sum()
    cum = np.cumsum(budgets / total) if total > 0 else np.ones(n_tiers)
    u = _page_uniform(pages, _INTERLEAVE_SALT)
    tiers = np.searchsorted(cum, u, side="right").astype(np.uint8)
    tiers = np.minimum(tiers, n_tiers - 1).astype(np.uint8)
    return PagePlacement(pages, tiers, aspace.page_shift, n_tiers)


def _budget_assignment(n_pages: int, budgets: np.ndarray) -> np.ndarray:
    """Tier index per rank position, near-to-far by budget.

    ``tier_budgets`` sums to exactly ``n_pages`` by construction; this
    helper pins that invariant for both ordered policies.
    """
    assigned = np.repeat(
        np.arange(budgets.size, dtype=np.uint8), budgets
    )
    if assigned.size != n_pages:
        raise MachineError(
            f"tier budgets cover {assigned.size} of {n_pages} pages"
        )
    return assigned


def first_touch_placement(
    aspace, n_tiers: int, far_ratio: float
) -> PagePlacement:
    """First-touch: allocation order fills the near tier until it is full.

    Pages are budgeted in the order their mappings were created (the
    order a single-threaded init loop would fault them in); once a
    tier's budget is exhausted the next pages spill outward.
    """
    pages = mapped_page_ids(aspace)
    budgets = tier_budgets(pages.size, far_ratio, n_tiers)
    tiers = _budget_assignment(pages.size, budgets)
    order = np.argsort(pages, kind="stable")
    return PagePlacement(
        pages[order], tiers[order], aspace.page_shift, n_tiers
    )


def hotness_placement(
    aspace, n_tiers: int, far_ratio: float, hotness: np.ndarray
) -> PagePlacement:
    """Hotness-driven promote/demote: SPE-hot pages win the near tier.

    ``hotness`` scores each mapped page (allocation order, as returned
    by :func:`page_hotness`); pages are ranked hottest-first (ties
    break towards lower addresses, deterministically) and fill the
    tiers near-to-far by budget.  This is the paper's closed loop: a
    pilot profile's sample counts decide the next run's placement.
    """
    pages = mapped_page_ids(aspace)
    hotness = np.asarray(hotness, dtype=np.float64)
    if hotness.shape != pages.shape:
        raise MachineError(
            f"hotness has {hotness.shape} scores for {pages.shape} pages"
        )
    budgets = tier_budgets(pages.size, far_ratio, n_tiers)
    # hottest first; stable sort on (-hotness) keeps address order on ties
    rank = np.argsort(-hotness, kind="stable")
    tiers = np.empty(pages.size, dtype=np.uint8)
    tiers[rank] = _budget_assignment(pages.size, budgets)
    order = np.argsort(pages, kind="stable")
    return PagePlacement(pages[order], tiers[order], aspace.page_shift, n_tiers)


def page_hotness(
    aspace, addrs: np.ndarray, strategy: str | None = None
) -> np.ndarray:
    """SPE sample count per mapped page (allocation-ordered scores).

    ``addrs`` are sampled data virtual addresses (e.g.
    ``ProfileResult.batch.addr``); the result aligns with
    :func:`mapped_page_ids` and feeds :func:`hotness_placement`.
    Samples outside any mapping are ignored.

    ``strategy`` names the sampling strategy that produced ``addrs``
    (:mod:`repro.spe.strategies`): hash-biased strategies oversample
    their accepted pages by a known factor, and naming the strategy
    applies its inverse-probability weight so hotness *magnitudes* stay
    comparable across strategies (the ranking within the sampled set is
    unchanged — a page the strategy never samples still scores 0).
    ``None`` keeps raw integer counts, bit-identical to the pre-zoo
    behaviour; a weighted result is float64.
    """
    pages = mapped_page_ids(aspace)
    if pages.size == 0:
        if strategy is not None:
            from repro.spe.strategies import get_strategy

            get_strategy(strategy)  # validate even on an empty map
        return np.zeros(0, dtype=np.int64)
    addrs = np.asarray(addrs, dtype=np.uint64)
    sample_pages = addrs >> np.uint64(aspace.page_shift)
    sorted_pages = np.sort(pages)
    idx = np.searchsorted(sorted_pages, sample_pages)
    idx = np.minimum(idx, sorted_pages.size - 1)
    valid = sorted_pages[idx] == sample_pages
    counts_sorted = np.bincount(idx[valid], minlength=sorted_pages.size)
    # map back from sorted order to allocation order
    order = np.argsort(pages, kind="stable")
    counts = np.empty(pages.size, dtype=np.int64)
    counts[order] = counts_sorted
    if strategy is not None:
        from repro.spe.strategies import get_strategy

        weight = get_strategy(strategy).page_sample_weight(
            pages << np.uint64(aspace.page_shift)
        )
        return counts.astype(np.float64) * weight
    return counts


def placement_for(
    aspace,
    n_tiers: int,
    policy: str,
    far_ratio: float,
    hotness: np.ndarray | None = None,
) -> PagePlacement:
    """Build a placement by policy name (the scenario layer's front door)."""
    if policy == "interleave":
        return interleave_placement(aspace, n_tiers, far_ratio)
    if policy == "first_touch":
        return first_touch_placement(aspace, n_tiers, far_ratio)
    if policy == "hotness":
        if hotness is None:
            raise MachineError(
                "hotness placement needs per-page sample counts; run a "
                "pilot profile and pass page_hotness(...)"
            )
        return hotness_placement(aspace, n_tiers, far_ratio, hotness)
    raise MachineError(
        f"unknown placement policy {policy!r}; "
        f"known: {', '.join(PLACEMENT_POLICIES)}"
    )


# ---------------------------------------------------------------------------
# Phase re-timing
# ---------------------------------------------------------------------------

def apply_tiering(
    workload,
    placement: PagePlacement,
    hotness: np.ndarray | None = None,
    mlp: float = 4.0,
) -> list[float]:
    """Re-time a workload's phases for its page placement; returns stretches.

    Two effects, per phase:

    * **latency** — the DRAM share of the phase's expected access
      latency is re-weighted by the placement's tier *access* fractions
      (near pages stay cheap, far pages cost their tier's loaded
      latency); the stretch is the ratio of
      :meth:`PipelineModel.chunk_cycles` under the tiered vs the flat
      mean latency;
    * **bandwidth** — each tier's demand share is checked against its
      own roofline, *relative to the all-local baseline*: a placement
      whose worst tier is more saturated than the flat channel would be
      stretches by the ratio, one that merely relieves the local
      channel is not rewarded (the flat baseline never charged a
      saturation duration penalty, so none is refunded — the floor
      keeps the two models consistent).

    ``hotness`` — per-page access scores in :func:`mapped_page_ids`
    order (e.g. a pilot profile's :func:`page_hotness`) — makes the
    tier fractions access-weighted: a hotness placement that fits every
    hot page in the near tier then stretches (almost) nothing, which is
    the whole point of the policy.  Without it, accesses are assumed
    uniform across pages (exact for interleave on uniform workloads).

    A placement with every page in tier 0 produces stretch exactly 1.0
    for every phase and mutates nothing — the flat-machine calibration
    survives (pinned by the tier parity tests).  Mirrors
    :func:`repro.colocation.run.apply_contention`, which re-times for
    channel contention the same way.
    """
    from repro.cpu.pipeline import PipelineModel

    spec = workload.machine
    tiered = TieredMemory(spec)
    if placement.n_tiers != len(tiered):
        raise MachineError(
            f"placement has {placement.n_tiers} tiers, machine {len(tiered)}"
        )
    if hotness is not None:
        fractions = placement.weighted_fractions(
            mapped_page_ids(workload.process.address_space), hotness
        )
    else:
        fractions = placement.fractions()
    weighted_dram = float(fractions @ tiered.latencies())
    local_lat = float(spec.dram.latency_cycles)
    usable = tiered.usable_bandwidths()
    pm = PipelineModel(spec)
    freq = spec.frequency_hz

    stretches: list[float] = []
    for phase in workload.phases:
        sharers = workload.phase_sharers(phase)
        probs = workload.stat.mixture_probabilities(phase.classes, sharers=sharers)
        p_dram = probs[MemLevel.DRAM]
        lat_flat = workload.stat.expected_latency(phase.classes, sharers=sharers)
        lat_tiered = lat_flat + p_dram * (weighted_dram - local_lat)
        c_flat = pm.chunk_cycles(phase.n_ops, phase.n_mem_ops, lat_flat, mlp)
        c_tier = pm.chunk_cycles(phase.n_ops, phase.n_mem_ops, lat_tiered, mlp)
        stretch_lat = c_tier / c_flat if c_flat > 0 else 1.0

        dur = phase.duration_cycles() / freq
        demand = workload.phase_dram_bytes(phase) / dur if dur > 0 else 0.0
        slow_flat = max(1.0, demand / usable[0])
        slow_tiers = np.maximum(1.0, demand * fractions / usable)
        stretch_bw = max(1.0, float(slow_tiers.max() / slow_flat))

        stretch = stretch_lat * stretch_bw
        stretches.append(stretch)
        if stretch != 1.0:
            phase.cpi *= stretch
    return stretches


__all__ = [
    "PLACEMENT_POLICIES",
    "MemoryTier",
    "PagePlacement",
    "TieredMemory",
    "apply_tiering",
    "first_touch_placement",
    "hotness_placement",
    "interleave_placement",
    "mapped_page_ids",
    "page_hotness",
    "placement_for",
    "tier_budgets",
]
