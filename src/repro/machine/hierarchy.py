"""Multi-level memory hierarchy: per-core L1d/L2 plus shared SLC and DRAM.

The hierarchy answers the question SPE answers in hardware for each
sampled operation: *which level serviced this access, and how long did it
take?*  Levels follow the Neoverse / Ampere Altra organisation of the
paper's Table II:

``L1d (per core) -> L2 (per core) -> System Level Cache (shared) -> DRAM``

:class:`MemLevel` values are ordered by distance from the core; SPE sample
records carry this level (the "memory level" field of §II-A) and the
pipeline model converts it to a latency.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import MachineError
from repro.machine.cache import SetAssociativeCache
from repro.machine.spec import MachineSpec


class MemLevel(enum.IntEnum):
    """Data source of a memory access, ordered core-outwards.

    ``DRAM`` and beyond are the DRAM-class levels: on a tiered machine
    (``MachineSpec.tiers``) memory tier *i* is reported as level
    ``DRAM + i`` — local DDR, then remote-NUMA, then CXL-class far
    memory.  On a flat machine only levels up to ``DRAM`` ever appear
    in sample records, which keeps the single-tier encoding unchanged.
    """

    L1 = 1
    L2 = 2
    SLC = 3
    DRAM = 4
    DRAM_REMOTE = 5
    DRAM_CXL = 6

    @property
    def pretty(self) -> str:
        """Short human label ("L1" ... "DRAM-CXL")."""
        return {
            1: "L1", 2: "L2", 3: "SLC",
            4: "DRAM", 5: "DRAM-remote", 6: "DRAM-CXL",
        }[int(self)]

    @property
    def is_dram_class(self) -> bool:
        """Whether this level is serviced by main memory (any tier)."""
        return int(self) >= int(MemLevel.DRAM)

    @property
    def tier(self) -> int | None:
        """Memory tier index for DRAM-class levels, else ``None``."""
        return int(self) - int(MemLevel.DRAM) if self.is_dram_class else None


#: the levels the cache model can produce before tier attribution —
#: iterate these (not ``MemLevel``) wherever sampled-level distributions
#: are built, so the flat-DRAM path stays bit-identical
CORE_LEVELS = (MemLevel.L1, MemLevel.L2, MemLevel.SLC, MemLevel.DRAM)

#: DRAM-class levels, near to far (tier 0, 1, 2)
DRAM_LEVELS = (MemLevel.DRAM, MemLevel.DRAM_REMOTE, MemLevel.DRAM_CXL)


def tier_level(tier: int) -> MemLevel:
    """The :class:`MemLevel` reported for memory tier ``tier``."""
    if not 0 <= tier < len(DRAM_LEVELS):
        raise MachineError(
            f"tier must be in [0, {len(DRAM_LEVELS)}), got {tier}"
        )
    return DRAM_LEVELS[tier]


class MemoryHierarchy:
    """Trace-driven hierarchy shared by the cores of one simulated socket.

    Parameters
    ----------
    spec:
        Machine geometry (cache sizes, latencies).
    n_cores:
        Number of cores to instantiate private L1/L2 for; defaults to
        ``spec.n_cores`` but tests typically use fewer.
    """

    def __init__(self, spec: MachineSpec, n_cores: int | None = None) -> None:
        self.spec = spec
        self.n_cores = n_cores if n_cores is not None else spec.n_cores
        if self.n_cores <= 0 or self.n_cores > spec.n_cores:
            raise MachineError(
                f"n_cores must be in [1, {spec.n_cores}], got {self.n_cores}"
            )
        self.l1 = [
            SetAssociativeCache(spec.l1d, f"L1d#{c}") for c in range(self.n_cores)
        ]
        self.l2 = [
            SetAssociativeCache(spec.l2, f"L2#{c}") for c in range(self.n_cores)
        ]
        self.slc = SetAssociativeCache(spec.slc, "SLC")
        self.dram_accesses = 0
        self._latency = {
            MemLevel.L1: spec.l1d.latency_cycles,
            MemLevel.L2: spec.l2.latency_cycles,
            MemLevel.SLC: spec.slc.latency_cycles,
            # DRAM-class levels resolve through the tier table: on a flat
            # machine every tier degenerates to the one DRAM channel
            MemLevel.DRAM: spec.tier_latency_cycles(0),
            MemLevel.DRAM_REMOTE: spec.tier_latency_cycles(1),
            MemLevel.DRAM_CXL: spec.tier_latency_cycles(2),
        }

    # -- access path -----------------------------------------------------------

    def access(self, core: int, addr: int) -> MemLevel:
        """Walk one address through core-private then shared levels."""
        if not 0 <= core < self.n_cores:
            raise MachineError(f"core {core} out of range [0, {self.n_cores})")
        if self.l1[core].access(addr):
            return MemLevel.L1
        if self.l2[core].access(addr):
            return MemLevel.L2
        if self.slc.access(addr):
            return MemLevel.SLC
        self.dram_accesses += 1
        return MemLevel.DRAM

    def access_many(self, core: int, addrs: np.ndarray) -> np.ndarray:
        """Vector entry point; returns a ``MemLevel``-valued uint8 array."""
        addrs = np.asarray(addrs, dtype=np.uint64)
        out = np.empty(addrs.shape, dtype=np.uint8)
        access = self.access
        for i, a in enumerate(addrs):
            out[i] = int(access(core, int(a)))
        return out

    def latency_cycles(self, level: MemLevel | int) -> int:
        """Load-to-use latency for a hit at ``level``."""
        return self._latency[MemLevel(level)]

    def latencies_for(self, levels: np.ndarray) -> np.ndarray:
        """Map a level array to per-access latencies (vectorised)."""
        levels = np.asarray(levels, dtype=np.uint8)
        lut = np.zeros(int(MemLevel.DRAM_CXL) + 1, dtype=np.int64)
        for lv, lat in self._latency.items():
            lut[int(lv)] = lat
        return lut[levels]

    # -- bookkeeping -----------------------------------------------------------

    def flush(self) -> None:
        """Invalidate every level (e.g. between workload phases in tests)."""
        for c in self.l1:
            c.invalidate_all()
        for c in self.l2:
            c.invalidate_all()
        self.slc.invalidate_all()

    def reset_stats(self) -> None:
        for c in self.l1:
            c.reset_stats()
        for c in self.l2:
            c.reset_stats()
        self.slc.reset_stats()
        self.dram_accesses = 0

    def level_counts(self) -> dict[str, int]:
        """Aggregate access counts by servicing level."""
        l1_hits = sum(c.hits for c in self.l1)
        l2_hits = sum(c.hits for c in self.l2)
        return {
            "L1": l1_hits,
            "L2": l2_hits,
            "SLC": self.slc.hits,
            "DRAM": self.dram_accesses,
        }

    def dram_bytes(self) -> int:
        """Bytes transferred from DRAM (one line per DRAM access)."""
        return self.dram_accesses * self.spec.line_size
