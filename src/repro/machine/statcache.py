"""Analytic cache model for closed-form access streams.

The paper's sensitivity study (Fig. 7-11) implies on the order of 10^10 to
10^11 memory operations per run — far beyond what a trace-driven simulator
can walk.  SPE, however, only *samples* that stream: at period P one in P
operations is observed.  The reproduction therefore evaluates workloads in
closed form and uses this statistical cache model to assign a memory level
(and hence latency) to each *sampled* access without simulating the
unsampled ones.

Model
-----
Each workload phase describes its accesses as a mixture of
:class:`AccessClass` components.  A class is characterised by

* ``footprint`` — bytes of distinct data the class cycles through,
* ``stride`` — bytes between successive accesses (0 = random within the
  footprint),
* ``reuse`` — fraction of accesses that re-touch recently used lines
  (temporal locality on top of the spatial term).

For a class, the probability that an access hits level ``k`` uses the
classic fully-associative capacity approximation: a level of capacity
``C`` holds the most recent ``C`` bytes of the footprint ``F``, so a
random access hits with probability ``min(1, C/F)``.  Sequential access
adds the spatial term: with stride ``s`` and line size ``L``, a fraction
``1 - s/L`` of accesses fall in the line fetched by the previous miss and
hit L1 regardless of footprint.  Probabilities are assigned level by
level on the *residual* miss stream, which keeps the vector normalised by
construction.

The exact and analytic models are cross-validated in
``tests/machine/test_statcache.py`` on patterns where both are tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError
from repro.machine.hierarchy import CORE_LEVELS, MemLevel
from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class AccessClass:
    """A homogeneous component of a phase's memory access mixture.

    Parameters
    ----------
    footprint:
        Distinct bytes this class touches per traversal.
    stride:
        Byte distance between consecutive accesses; ``0`` means random
        accesses uniformly distributed over the footprint.
    reuse:
        Extra temporal-reuse fraction in [0, 1): that share of accesses
        hit L1 unconditionally (register-blocked reuse, hot scalars).
    weight:
        Relative share of the phase's accesses from this class.
    """

    footprint: int
    stride: int = 8
    reuse: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.footprint <= 0:
            raise MachineError("footprint must be positive")
        if self.stride < 0:
            raise MachineError("stride must be >= 0")
        if not 0.0 <= self.reuse < 1.0:
            raise MachineError("reuse must be in [0, 1)")
        if self.weight <= 0:
            raise MachineError("weight must be positive")


class StatCacheModel:
    """Closed-form per-level hit probabilities for access mixtures."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.line = spec.line_size
        # capacity visible to one thread at each level
        self._caps = {
            MemLevel.L1: spec.l1d.size,
            MemLevel.L2: spec.l2.size,
            MemLevel.SLC: spec.slc.size,
        }

    # -- single class ----------------------------------------------------------

    def level_probabilities(
        self, cls: AccessClass, sharers: int = 1
    ) -> dict[MemLevel, float]:
        """P(access serviced by level) for one access class.

        ``sharers`` divides the shared SLC capacity between concurrently
        active threads, modelling multi-threaded contention for the system
        level cache (the effect that separates Fig. 5 from Fig. 6).
        """
        if sharers <= 0:
            raise MachineError("sharers must be >= 1")
        probs: dict[MemLevel, float] = {}
        residual = 1.0

        # Spatial locality: with stride s < line L, a fraction 1 - s/L of
        # accesses land in the line brought in by the previous miss and hit
        # L1 regardless of footprint.  Temporal ``reuse`` hits L1 outright.
        spatial = 0.0
        if cls.stride > 0:
            spatial = max(0.0, 1.0 - cls.stride / self.line)
        p_l1_base = cls.reuse + (1.0 - cls.reuse) * spatial

        for level in (MemLevel.L1, MemLevel.L2, MemLevel.SLC):
            cap = self._caps[level]
            if level is MemLevel.SLC:
                cap = cap / sharers
            if cls.stride > 0:
                # cyclic sequential sweep under LRU: classic all-or-nothing
                # thrashing — the level either holds the whole footprint or
                # contributes no capacity hits at all
                p_cap = 1.0 if cls.footprint <= cap else 0.0
            else:
                # random access: stationary hit probability cap/footprint
                p_cap = min(1.0, cap / cls.footprint)
            if level is MemLevel.L1:
                # spatial/temporal hits plus capacity hits on the rest
                p = p_l1_base + (1.0 - p_l1_base) * p_cap
            else:
                p = p_cap
            p = min(max(p, 0.0), 1.0)
            probs[level] = residual * p
            residual *= 1.0 - p
        probs[MemLevel.DRAM] = residual
        # the statistical model stops at "reached main memory"; which
        # *tier* serviced the access is a property of the page, applied
        # downstream by the placement map (repro.machine.tiers)
        probs[MemLevel.DRAM_REMOTE] = 0.0
        probs[MemLevel.DRAM_CXL] = 0.0
        return probs

    def mixture_probabilities(
        self, classes: list[AccessClass], sharers: int = 1
    ) -> dict[MemLevel, float]:
        """Weight-averaged level probabilities for a mixture of classes."""
        if not classes:
            raise MachineError("mixture needs at least one access class")
        total_w = sum(c.weight for c in classes)
        agg = {lv: 0.0 for lv in MemLevel}
        for c in classes:
            p = self.level_probabilities(c, sharers=sharers)
            for lv, v in p.items():
                agg[lv] += v * (c.weight / total_w)
        return agg

    # -- sampling ---------------------------------------------------------------

    def draw_levels(
        self,
        classes: list[AccessClass],
        n: int,
        rng: np.random.Generator,
        sharers: int = 1,
    ) -> np.ndarray:
        """Draw ``n`` memory levels from the mixture distribution.

        Returns a uint8 array of :class:`MemLevel` values — the statistical
        analogue of :meth:`MemoryHierarchy.access_many` for sampled ops.
        """
        if n < 0:
            raise MachineError("n must be >= 0")
        probs = self.mixture_probabilities(classes, sharers=sharers)
        # draw over the core levels only: tier attribution is a pure
        # post-hoc remap of DRAM draws, so the RNG stream (and hence
        # every flat-machine profile) stays bit-identical
        levels = np.array([int(lv) for lv in CORE_LEVELS], dtype=np.uint8)
        pvec = np.array([probs[MemLevel(lv)] for lv in levels], dtype=np.float64)
        pvec = pvec / pvec.sum()
        return rng.choice(levels, size=n, p=pvec)

    def expected_latency(
        self, classes: list[AccessClass], sharers: int = 1
    ) -> float:
        """Mean access latency in cycles under the mixture distribution."""
        probs = self.mixture_probabilities(classes, sharers=sharers)
        lat = {
            MemLevel.L1: self.spec.l1d.latency_cycles,
            MemLevel.L2: self.spec.l2.latency_cycles,
            MemLevel.SLC: self.spec.slc.latency_cycles,
            MemLevel.DRAM: self.spec.dram.latency_cycles,
        }
        return sum(probs[lv] * lat[lv] for lv in CORE_LEVELS)

    def dram_fraction(self, classes: list[AccessClass], sharers: int = 1) -> float:
        """Share of accesses that reach DRAM (drives bandwidth estimates)."""
        return self.mixture_probabilities(classes, sharers=sharers)[MemLevel.DRAM]
