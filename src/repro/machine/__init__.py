"""Simulated ARM machine: specs, address space, caches, memory hierarchy.

This package replaces the paper's physical testbed (an Ampere Altra Max,
Table II).  See ``DESIGN.md`` section 1 for the substitution rationale.
"""

from repro.machine.address_space import Mapping, VirtualAddressSpace
from repro.machine.cache import SetAssociativeCache
from repro.machine.hierarchy import MemLevel, MemoryHierarchy
from repro.machine.memory import ContendedChannel, DramModel
from repro.machine.spec import (
    CACHE_LINE,
    CacheSpec,
    DramSpec,
    GiB,
    KiB,
    MachineSpec,
    MiB,
    ampere_altra_max,
    small_test_machine,
    x86_pebs_machine,
)
from repro.machine.statcache import AccessClass, StatCacheModel
from repro.machine.tlb import Tlb

__all__ = [
    "CACHE_LINE",
    "AccessClass",
    "CacheSpec",
    "ContendedChannel",
    "DramModel",
    "DramSpec",
    "GiB",
    "KiB",
    "MachineSpec",
    "Mapping",
    "MemLevel",
    "MemoryHierarchy",
    "MiB",
    "SetAssociativeCache",
    "StatCacheModel",
    "Tlb",
    "VirtualAddressSpace",
    "ampere_altra_max",
    "small_test_machine",
    "x86_pebs_machine",
]
