"""Simulated ARM machine: specs, address space, caches, memory hierarchy.

This package replaces the paper's physical testbed (an Ampere Altra Max,
Table II).  See ``DESIGN.md`` section 1 for the substitution rationale.
"""

from repro.machine.address_space import Mapping, VirtualAddressSpace
from repro.machine.cache import SetAssociativeCache
from repro.machine.hierarchy import (
    CORE_LEVELS,
    DRAM_LEVELS,
    MemLevel,
    MemoryHierarchy,
    tier_level,
)
from repro.machine.memory import ContendedChannel, DramModel
from repro.machine.spec import (
    CACHE_LINE,
    MAX_MEMORY_TIERS,
    CacheSpec,
    DramSpec,
    GiB,
    KiB,
    MachineSpec,
    MemoryTierSpec,
    MiB,
    ampere_altra_max,
    small_test_machine,
    tiered_altra_max,
    tiered_test_machine,
    x86_pebs_machine,
)
from repro.machine.statcache import AccessClass, StatCacheModel
from repro.machine.tiers import (
    PLACEMENT_POLICIES,
    MemoryTier,
    PagePlacement,
    TieredMemory,
    apply_tiering,
    first_touch_placement,
    hotness_placement,
    interleave_placement,
    mapped_page_ids,
    page_hotness,
    placement_for,
    tier_budgets,
)
from repro.machine.tlb import Tlb

__all__ = [
    "CACHE_LINE",
    "CORE_LEVELS",
    "DRAM_LEVELS",
    "MAX_MEMORY_TIERS",
    "PLACEMENT_POLICIES",
    "AccessClass",
    "CacheSpec",
    "ContendedChannel",
    "DramModel",
    "DramSpec",
    "GiB",
    "KiB",
    "MachineSpec",
    "Mapping",
    "MemLevel",
    "MemoryHierarchy",
    "MemoryTier",
    "MemoryTierSpec",
    "MiB",
    "PagePlacement",
    "SetAssociativeCache",
    "StatCacheModel",
    "TieredMemory",
    "Tlb",
    "VirtualAddressSpace",
    "ampere_altra_max",
    "apply_tiering",
    "first_touch_placement",
    "hotness_placement",
    "interleave_placement",
    "mapped_page_ids",
    "page_hotness",
    "placement_for",
    "small_test_machine",
    "tier_budgets",
    "tier_level",
    "tiered_altra_max",
    "tiered_test_machine",
    "x86_pebs_machine",
]
