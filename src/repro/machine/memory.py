"""DRAM bandwidth model.

The bandwidth view in the paper (Fig. 3) divides bus-event counts by the
interval length; the substrate therefore needs a notion of how many bytes
the memory system can actually move per second, and how demand above the
peak stretches execution.  :class:`DramModel` provides both:

* :meth:`service_time` — time to move N bytes given concurrent demand,
* :meth:`effective_bandwidth` — achieved bandwidth under a saturating
  roofline with a tunable efficiency factor (STREAM-like kernels reach
  ~85% of peak on Altra-class parts).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineError
from repro.machine.spec import DramSpec


class DramModel:
    """Shared main-memory channel with a saturating-bandwidth roofline."""

    def __init__(self, spec: DramSpec, efficiency: float = 0.85) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise MachineError("efficiency must be in (0, 1]")
        self.spec = spec
        self.efficiency = efficiency
        self.bytes_moved = 0

    @property
    def usable_bandwidth(self) -> float:
        """Achievable bytes/second (peak x efficiency)."""
        return self.spec.peak_bandwidth * self.efficiency

    def effective_bandwidth(self, demand_bytes_per_s: float) -> float:
        """Achieved bandwidth for a given demand (min(demand, usable))."""
        if demand_bytes_per_s < 0:
            raise MachineError("demand must be >= 0")
        return min(demand_bytes_per_s, self.usable_bandwidth)

    def service_time(self, nbytes: int | float) -> float:
        """Seconds to transfer ``nbytes`` at usable bandwidth."""
        if nbytes < 0:
            raise MachineError("nbytes must be >= 0")
        self.bytes_moved += int(nbytes)
        return float(nbytes) / self.usable_bandwidth

    def slowdown(self, demand_bytes_per_s: float) -> float:
        """Execution-time stretch factor when demand exceeds the roofline.

        1.0 while under the usable bandwidth; proportional beyond it.
        """
        if demand_bytes_per_s <= self.usable_bandwidth:
            return 1.0
        return demand_bytes_per_s / self.usable_bandwidth

    def utilisation(self, achieved_bytes_per_s: float | np.ndarray) -> np.ndarray:
        """Fraction of peak bandwidth used (vectorised)."""
        return np.asarray(achieved_bytes_per_s, dtype=np.float64) / self.spec.peak_bandwidth
