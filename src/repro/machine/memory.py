"""DRAM bandwidth models: the solo roofline and the contended channel.

The bandwidth view in the paper (Fig. 3) divides bus-event counts by the
interval length; the substrate therefore needs a notion of how many bytes
the memory system can actually move per second, and how demand above the
peak stretches execution.  :class:`DramModel` provides both:

* :meth:`service_time` — time to move N bytes given concurrent demand,
* :meth:`effective_bandwidth` — achieved bandwidth under a saturating
  roofline with a tunable efficiency factor (STREAM-like kernels reach
  ~85% of peak on Altra-class parts).

Every exhibit in the paper runs one workload alone on the machine, so
:class:`DramModel` only ever sees a single demand stream.  Co-located
processes (``repro.colocation``) instead compete for the one shared
channel; :class:`ContendedChannel` apportions the usable bandwidth
across N concurrent demand streams:

* **proportional share** — each stream is granted bandwidth in
  proportion to its offered demand,
* **saturation knee** — interleaved streams destroy row-buffer locality,
  so the *aggregate* delivered bandwidth follows a smooth knee curve
  that approaches (never exceeds) the usable bandwidth as total demand
  grows, instead of the hard ``min`` of the solo roofline,
* **solo calibration** — with a single active stream the grant is
  computed through the exact :meth:`DramModel.effective_bandwidth`
  path, so the single-tenant case is bit-identical to the roofline the
  rest of the stack was calibrated against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MachineError
from repro.machine.spec import DramSpec


class DramModel:
    """Shared main-memory channel with a saturating-bandwidth roofline."""

    def __init__(self, spec: DramSpec, efficiency: float = 0.85) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise MachineError("efficiency must be in (0, 1]")
        self.spec = spec
        self.efficiency = efficiency
        self.bytes_moved = 0

    @property
    def usable_bandwidth(self) -> float:
        """Achievable bytes/second (peak x efficiency)."""
        return self.spec.peak_bandwidth * self.efficiency

    def effective_bandwidth(self, demand_bytes_per_s: float) -> float:
        """Achieved bandwidth for a given demand (min(demand, usable))."""
        if demand_bytes_per_s < 0:
            raise MachineError("demand must be >= 0")
        return min(demand_bytes_per_s, self.usable_bandwidth)

    def service_time(self, nbytes: int | float) -> float:
        """Seconds to transfer ``nbytes`` at usable bandwidth."""
        if nbytes < 0:
            raise MachineError("nbytes must be >= 0")
        self.bytes_moved += int(nbytes)
        return float(nbytes) / self.usable_bandwidth

    def slowdown(self, demand_bytes_per_s: float) -> float:
        """Execution-time stretch factor when demand exceeds the roofline.

        1.0 while under the usable bandwidth; proportional beyond it.
        """
        if demand_bytes_per_s <= self.usable_bandwidth:
            return 1.0
        return demand_bytes_per_s / self.usable_bandwidth

    def utilisation(self, achieved_bytes_per_s: float | np.ndarray) -> np.ndarray:
        """Fraction of peak bandwidth used (vectorised)."""
        return np.asarray(achieved_bytes_per_s, dtype=np.float64) / self.spec.peak_bandwidth


class ContendedChannel:
    """Shared DRAM channel apportioning bandwidth across demand streams.

    ``knee`` is the fraction of the usable bandwidth up to which the
    channel tracks multi-stream demand linearly; beyond it, delivered
    bandwidth saturates smoothly toward (never beyond) the usable
    bandwidth.  ``knee=1.0`` degenerates to the hard roofline.
    """

    def __init__(
        self, spec: DramSpec, efficiency: float = 0.85, knee: float = 0.9
    ) -> None:
        if not 0.0 < knee <= 1.0:
            raise MachineError("knee must be in (0, 1]")
        self.dram = DramModel(spec, efficiency)
        self.knee = knee

    @property
    def spec(self) -> DramSpec:
        return self.dram.spec

    @property
    def usable_bandwidth(self) -> float:
        """Achievable bytes/second of the whole channel (peak x efficiency)."""
        return self.dram.usable_bandwidth

    def delivered_bandwidth(self, total_demand: float, n_streams: int) -> float:
        """Aggregate bytes/second the channel moves for ``n_streams``.

        A single stream goes through :meth:`DramModel.effective_bandwidth`
        unchanged (bit-identical solo calibration).  Multiple interleaved
        streams follow the knee curve: linear up to ``knee * usable``,
        then an exponential approach to the usable bandwidth.
        """
        if total_demand < 0:
            raise MachineError("demand must be >= 0")
        if n_streams < 0:
            raise MachineError("n_streams must be >= 0")
        if n_streams <= 1:
            return self.dram.effective_bandwidth(total_demand)
        usable = self.usable_bandwidth
        knee_bw = self.knee * usable
        if total_demand <= knee_bw:
            return total_demand
        span = usable - knee_bw
        if span <= 0.0:  # knee == 1.0: hard roofline
            return min(total_demand, usable)
        return knee_bw + span * (1.0 - math.exp(-(total_demand - knee_bw) / span))

    def apportion(self, demands) -> np.ndarray:
        """Grant each demand stream its proportional bandwidth share.

        Streams with zero demand neither receive nor cause contention; a
        single active stream reproduces the solo roofline exactly.
        """
        d = np.asarray(demands, dtype=np.float64)
        if d.ndim != 1:
            raise MachineError("demands must be a 1-D sequence of rates")
        if (d < 0).any():
            raise MachineError("demand must be >= 0")
        n_active = int((d > 0).sum())
        if n_active <= 1:
            # exact min(demand, usable) — no proportional rounding error
            return np.minimum(d, self.usable_bandwidth)
        total = float(d.sum())
        delivered = self.delivered_bandwidth(total, n_active)
        return d * (delivered / total)
