"""Virtual address space of a simulated process.

The workloads allocate named data objects (``a``, ``b``, ``c`` arrays in
STREAM; ``normals`` etc. in CFD) from a per-process
:class:`VirtualAddressSpace`.  The address space provides:

* ``mmap``-style allocation at page granularity (64 KB pages on the
  paper's testbed), returning stable virtual base addresses,
* named-region lookup so NMO's ``nmo_tag_addr`` annotations and the
  region-profiling analysis can map sampled virtual addresses back to
  data objects,
* resident-set-size (RSS) accounting: a page becomes resident the first
  time it is touched, mirroring demand paging.  The capacity profiler
  (paper Fig. 2) polls :attr:`rss_bytes` over time,
* an optional memory cap that models the Docker/cgroup limit used for
  the CloudSuite runs (32 cores x 8 GiB = 256 GiB).

Touch accounting is vectorised: callers hand in NumPy arrays of sampled
addresses and residency is updated from the unique page indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AddressSpaceError, OutOfMemoryError, SegmentationFault
from repro.machine.spec import MachineSpec

#: Base of the simulated heap; mirrors a typical aarch64 mmap base so the
#: addresses in region plots look like real virtual addresses.
DEFAULT_MMAP_BASE = 0x0000_FFFF_8000_0000


@dataclass
class Mapping:
    """One virtual memory area (VMA).

    ``resident`` is a per-page bitmap; a page is set on first touch.
    ``name`` is the data-object label used by region profiling ("a",
    "normals", "heap", ...).
    """

    name: str
    start: int
    length: int
    page_size: int
    resident: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    freed: bool = False

    def __post_init__(self) -> None:
        if self.resident is None:
            n_pages = -(-self.length // self.page_size)
            self.resident = np.zeros(n_pages, dtype=bool)

    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.start + self.length

    @property
    def n_pages(self) -> int:
        return self.resident.shape[0]

    @property
    def resident_pages(self) -> int:
        return int(self.resident.sum())

    @property
    def resident_bytes(self) -> int:
        return self.resident_pages * self.page_size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def touch_all(self) -> None:
        """Mark the whole mapping resident (eager population)."""
        self.resident[:] = True


class VirtualAddressSpace:
    """Page-granular virtual address space with RSS accounting.

    Parameters
    ----------
    spec:
        Machine description (supplies the page size and DRAM capacity).
    mem_limit:
        Optional cap in bytes on *resident* memory; exceeding it raises
        :class:`OutOfMemoryError`, modelling the container limit used for
        the CloudSuite experiments.
    base:
        Virtual address where the first mapping is placed.
    """

    def __init__(
        self,
        spec: MachineSpec,
        mem_limit: int | None = None,
        base: int = DEFAULT_MMAP_BASE,
    ) -> None:
        self.spec = spec
        self.page_size = spec.page_size
        self.page_shift = int(spec.page_size).bit_length() - 1
        self.mem_limit = mem_limit
        self._next_base = base
        self._mappings: list[Mapping] = []
        self._by_name: dict[str, Mapping] = {}
        #: guard pages inserted between mappings so adjacent objects are
        #: visually separable in address-scatter plots (paper Fig. 4).
        self.guard_pages = 1

    # -- allocation ---------------------------------------------------------

    def mmap(self, nbytes: int, name: str | None = None) -> Mapping:
        """Allocate ``nbytes`` rounded up to whole pages.

        Returns the new :class:`Mapping`.  Named mappings can be looked up
        with :meth:`region`; anonymous ones get a synthetic name.
        """
        if nbytes <= 0:
            raise AddressSpaceError(f"mmap length must be positive, got {nbytes}")
        n_pages = -(-nbytes // self.page_size)
        length = n_pages * self.page_size
        start = self._next_base
        self._next_base = start + length + self.guard_pages * self.page_size
        if name is None:
            name = f"anon#{len(self._mappings)}"
        if name in self._by_name and not self._by_name[name].freed:
            raise AddressSpaceError(f"mapping name already in use: {name!r}")
        m = Mapping(name=name, start=start, length=length, page_size=self.page_size)
        self._mappings.append(m)
        self._by_name[name] = m
        return m

    def munmap(self, mapping: Mapping) -> None:
        """Release a mapping; its pages leave the resident set."""
        if mapping.freed:
            raise AddressSpaceError(f"double munmap of {mapping.name!r}")
        mapping.freed = True
        mapping.resident[:] = False

    # -- lookup ---------------------------------------------------------------

    def region(self, name: str) -> Mapping:
        """Look up a live mapping by data-object name."""
        try:
            m = self._by_name[name]
        except KeyError:
            raise AddressSpaceError(f"no mapping named {name!r}") from None
        if m.freed:
            raise AddressSpaceError(f"mapping {name!r} has been freed")
        return m

    def mappings(self, include_freed: bool = False) -> list[Mapping]:
        """All mappings in allocation order."""
        if include_freed:
            return list(self._mappings)
        return [m for m in self._mappings if not m.freed]

    def find(self, addr: int) -> Mapping | None:
        """Mapping containing ``addr``, or ``None``."""
        for m in self._mappings:
            if not m.freed and m.contains(addr):
                return m
        return None

    def classify(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised region lookup.

        Returns an int array: index into :meth:`mappings` for each address,
        or -1 where the address is unmapped.  Used by the region-profiling
        post-processing to tag sampled addresses.
        """
        addrs = np.asarray(addrs, dtype=np.uint64)
        out = np.full(addrs.shape, -1, dtype=np.int64)
        for i, m in enumerate(self.mappings()):
            mask = (addrs >= m.start) & (addrs < m.end)
            out[mask] = i
        return out

    # -- residency / RSS -------------------------------------------------------

    def touch(self, addrs: np.ndarray) -> int:
        """Mark the pages containing ``addrs`` resident.

        Returns the number of *newly* resident pages.  Raises
        :class:`SegmentationFault` if any address is unmapped and
        :class:`OutOfMemoryError` if the new RSS would exceed the cap.
        """
        addrs = np.atleast_1d(np.asarray(addrs, dtype=np.uint64))
        if addrs.size == 0:
            return 0
        new_pages = 0
        unmatched = np.ones(addrs.shape, dtype=bool)
        for m in self.mappings():
            mask = (addrs >= m.start) & (addrs < m.end)
            if not mask.any():
                continue
            unmatched &= ~mask
            page_idx = (addrs[mask] - m.start) >> np.uint64(self.page_shift)
            page_idx = np.unique(page_idx).astype(np.int64)
            fresh = ~m.resident[page_idx]
            new_pages += int(fresh.sum())
            m.resident[page_idx] = True
        if unmatched.any():
            bad = int(addrs[unmatched][0])
            raise SegmentationFault(bad)
        self._check_limit()
        return new_pages

    def populate(self, name: str) -> None:
        """Eagerly fault in every page of a named mapping."""
        self.region(name).touch_all()
        self._check_limit()

    def _check_limit(self) -> None:
        if self.mem_limit is not None and self.rss_bytes > self.mem_limit:
            raise OutOfMemoryError(
                f"RSS {self.rss_bytes} exceeds limit {self.mem_limit}"
            )

    @property
    def mapped_bytes(self) -> int:
        """Total bytes in live mappings (virtual size)."""
        return sum(m.length for m in self.mappings())

    @property
    def rss_bytes(self) -> int:
        """Resident set size in bytes (touched pages only)."""
        return sum(m.resident_bytes for m in self.mappings())

    @property
    def rss_pages(self) -> int:
        return sum(m.resident_pages for m in self.mappings())

    def layout(self) -> list[tuple[str, int, int]]:
        """``(name, start, end)`` rows for live mappings, address-sorted.

        This is the data behind the tag bands in the paper's Fig. 4-6
        scatter plots.
        """
        rows = [(m.name, m.start, m.end) for m in self.mappings()]
        rows.sort(key=lambda r: r[1])
        return rows
