"""Hardware specification of the simulated machine (paper Table II).

The reproduction targets the paper's testbed, an Ampere Altra Max:

========================  =======================================
CPU                       ARM Ampere Altra Max 64-bit
Cores                     128 Armv8.2+ cores
Frequency                 3.0 GHz
Memory capacity           256 GB DDR4
Peak bandwidth            200 GB/s
L1i / L1d                 64 KB per core
L2                        1 MB per core
System Level Cache (SLC)  16 MB shared
Page size                 64 KB (the kernel configuration used in §IV)
========================  =======================================

:class:`MachineSpec` is a frozen value object; :func:`ampere_altra_max`
returns the Table II preset.  All sizes are bytes, frequency in Hz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import MachineError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Cache line size on Neoverse cores (bytes).
CACHE_LINE = 64


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level.

    Parameters
    ----------
    size:
        Total capacity in bytes.
    associativity:
        Number of ways per set.
    line_size:
        Line size in bytes (64 on Neoverse).
    latency_cycles:
        Load-to-use latency for a hit in this level, in core cycles.
    shared:
        Whether the cache is shared between all cores (SLC) or private.
    """

    size: int
    associativity: int
    line_size: int = CACHE_LINE
    latency_cycles: int = 4
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise MachineError("cache size/associativity/line_size must be positive")
        if self.size % (self.associativity * self.line_size) != 0:
            raise MachineError(
                f"cache size {self.size} not divisible into "
                f"{self.associativity}-way sets of {self.line_size}B lines"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets (size / (ways * line))."""
        return self.size // (self.associativity * self.line_size)

    @property
    def n_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size // self.line_size


@dataclass(frozen=True)
class DramSpec:
    """Main-memory capacity / bandwidth / latency model parameters."""

    capacity: int
    peak_bandwidth: float  # bytes/second
    latency_cycles: int = 330  # loaded DRAM latency seen by the core

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.peak_bandwidth <= 0:
            raise MachineError("DRAM capacity and bandwidth must be positive")


#: Most memory tiers a machine may declare: tier *i* is reported as SPE
#: memory level ``MemLevel.DRAM + i`` and the record encoding reserves
#: exactly three DRAM-class data-source codes (local / remote / CXL).
MAX_MEMORY_TIERS = 3


@dataclass(frozen=True)
class MemoryTierSpec:
    """One level of a tiered main-memory system.

    A tier is a DRAM-class destination with its own distance from the
    core: local DDR, a remote NUMA node, or CXL-attached far memory.
    Each tier gets a private :class:`~repro.machine.memory.ContendedChannel`
    at runtime (see :mod:`repro.machine.tiers`), so bandwidth saturation
    and stream contention are per-tier.

    Parameters
    ----------
    name:
        Tier label used in reports ("local", "remote", "cxl", ...).
    capacity:
        Tier capacity in bytes.
    peak_bandwidth:
        Peak bytes/second of the tier's channel.
    latency_cycles:
        Loaded latency seen by the core for an access serviced here.
    efficiency:
        Achievable fraction of peak bandwidth (the roofline knob of
        :class:`~repro.machine.memory.DramModel`).
    knee:
        Saturation-knee fraction of the tier's contended channel.
    """

    name: str
    capacity: int
    peak_bandwidth: float
    latency_cycles: int
    efficiency: float = 0.85
    knee: float = 0.9

    def __post_init__(self) -> None:
        if not self.name:
            raise MachineError("memory tier needs a name")
        if self.capacity <= 0 or self.peak_bandwidth <= 0:
            raise MachineError("tier capacity and bandwidth must be positive")
        if self.latency_cycles <= 0:
            raise MachineError("tier latency must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise MachineError("tier efficiency must be in (0, 1]")
        if not 0.0 < self.knee <= 1.0:
            raise MachineError("tier knee must be in (0, 1]")

    def to_dram_spec(self) -> DramSpec:
        """The tier as a plain :class:`DramSpec` (channel construction)."""
        return DramSpec(
            capacity=self.capacity,
            peak_bandwidth=self.peak_bandwidth,
            latency_cycles=self.latency_cycles,
        )


@dataclass(frozen=True)
class MachineSpec:
    """Full machine description used by every substrate layer.

    The defaults replicate the paper's Table II.  ``page_size`` is the
    64 KB translation granule used by the testbed kernel; the perf ring
    buffer and SPE aux buffer are allocated in units of this page size,
    which is why the paper's Fig. 9 x-axis ("# pages") means 64 KB steps.
    """

    name: str = "generic-arm"
    n_cores: int = 128
    frequency_hz: float = 3.0e9
    page_size: int = 64 * KiB
    l1d: CacheSpec = field(
        default_factory=lambda: CacheSpec(64 * KiB, 4, latency_cycles=4)
    )
    l1i: CacheSpec = field(
        default_factory=lambda: CacheSpec(64 * KiB, 4, latency_cycles=4)
    )
    l2: CacheSpec = field(
        default_factory=lambda: CacheSpec(1 * MiB, 8, latency_cycles=13)
    )
    slc: CacheSpec = field(
        default_factory=lambda: CacheSpec(16 * MiB, 16, latency_cycles=55, shared=True)
    )
    dram: DramSpec = field(
        default_factory=lambda: DramSpec(256 * GiB, 200e9, latency_cycles=330)
    )
    #: Does this machine implement the Statistical Profiling Extension?
    has_spe: bool = True
    #: Architecture string reported to NMO's backend selection.
    arch: str = "aarch64"
    #: Optional tiered main memory: tier 0 is the near/local tier and
    #: must mirror ``dram`` (so single-tier code paths stay calibrated);
    #: ``None`` means the classic flat single-channel DRAM.
    tiers: tuple[MemoryTierSpec, ...] | None = None

    #: fields omitted from cache keys while at their ``None`` default —
    #: see :func:`repro.orchestrate.cache.canonical_config`.  Adding a
    #: defaulted field here keeps every pre-existing cache entry valid.
    __cache_optional__ = frozenset({"tiers"})

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise MachineError("machine needs at least one core")
        if self.frequency_hz <= 0:
            raise MachineError("frequency must be positive")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise MachineError("page size must be a positive power of two")
        line = self.l1d.line_size
        for c in (self.l1i, self.l2, self.slc):
            if c.line_size != line:
                raise MachineError("all cache levels must share one line size")
        if self.tiers is not None:
            object.__setattr__(self, "tiers", tuple(self.tiers))
            if not 1 <= len(self.tiers) <= MAX_MEMORY_TIERS:
                raise MachineError(
                    f"machine supports 1..{MAX_MEMORY_TIERS} memory tiers, "
                    f"got {len(self.tiers)}"
                )
            if any(not isinstance(t, MemoryTierSpec) for t in self.tiers):
                raise MachineError("tiers must be MemoryTierSpec instances")
            names = [t.name for t in self.tiers]
            if len(set(names)) != len(names):
                raise MachineError(f"tier names must be unique, got {names}")
            near = self.tiers[0]
            if (
                near.latency_cycles != self.dram.latency_cycles
                or near.peak_bandwidth != self.dram.peak_bandwidth
            ):
                raise MachineError(
                    "tier 0 is the near tier and must mirror the dram spec "
                    "(latency and peak bandwidth), so single-tier paths stay "
                    "bit-identical"
                )

    # -- derived quantities -------------------------------------------------

    @property
    def line_size(self) -> int:
        """Cache line size shared by all levels (bytes)."""
        return self.l1d.line_size

    @property
    def cycle_time_s(self) -> float:
        """Duration of one core cycle in seconds."""
        return 1.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the core frequency."""
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to (fractional) core cycles."""
        return seconds * self.frequency_hz

    def pages(self, nbytes: int) -> int:
        """Number of pages needed to back ``nbytes`` (round up)."""
        return -(-nbytes // self.page_size)

    def with_cores(self, n_cores: int) -> "MachineSpec":
        """Return a copy of this spec with a different core count."""
        return replace(self, n_cores=n_cores)

    @property
    def n_tiers(self) -> int:
        """Number of main-memory tiers (1 for the flat DRAM model)."""
        return len(self.tiers) if self.tiers is not None else 1

    def tier_latency_cycles(self, tier: int) -> int:
        """Loaded latency of memory tier ``tier`` (0 = near/local).

        On a flat machine every DRAM-class level degenerates to the one
        channel, so any tier index maps to the ``dram`` latency.
        """
        if tier < 0 or tier >= MAX_MEMORY_TIERS:
            raise MachineError(
                f"tier must be in [0, {MAX_MEMORY_TIERS}), got {tier}"
            )
        if self.tiers is None or tier >= len(self.tiers):
            return self.dram.latency_cycles
        return self.tiers[tier].latency_cycles

    def describe(self) -> dict[str, str]:
        """Human-readable spec rows mirroring Table II of the paper."""
        return {
            "CPU": self.name,
            "Cores": f"{self.n_cores} ({self.arch})",
            "Frequency": f"{self.frequency_hz / 1e9:.1f} GHz",
            "Mem. capacity": f"{self.dram.capacity / GiB:.0f} GB",
            "Peak bandwidth": f"{self.dram.peak_bandwidth / 1e9:.0f} GB/s",
            "L1i": f"{self.l1i.size // KiB} KB per core",
            "L1d": f"{self.l1d.size // KiB} KB per core",
            "L2": f"{self.l2.size // MiB} MB per core",
            "System Level Cache": f"{self.slc.size // MiB} MB",
            "Page size": f"{self.page_size // KiB} KB",
        }


def ampere_altra_max() -> MachineSpec:
    """The paper's testbed: Ampere Altra Max (Table II)."""
    return MachineSpec(name="ARM Ampere Altra Max 64-Bit")


def small_test_machine(n_cores: int = 4) -> MachineSpec:
    """A deliberately tiny machine for fast unit tests.

    Caches are shrunk so tests can exercise capacity evictions with a few
    hundred accesses; geometry ratios mirror the Altra (L1 < L2 < SLC).
    """
    return MachineSpec(
        name="test-arm",
        n_cores=n_cores,
        frequency_hz=1.0e9,
        page_size=4 * KiB,
        l1d=CacheSpec(1 * KiB, 2, latency_cycles=4),
        l1i=CacheSpec(1 * KiB, 2, latency_cycles=4),
        l2=CacheSpec(8 * KiB, 4, latency_cycles=13),
        slc=CacheSpec(64 * KiB, 8, latency_cycles=55, shared=True),
        dram=DramSpec(256 * MiB, 10e9, latency_cycles=200),
    )


def tiered_altra_max() -> MachineSpec:
    """The Altra Max testbed with a three-tier main-memory system.

    Tier 0 mirrors the Table II DDR4 channel exactly; tier 1 is a
    remote-NUMA hop (roughly 1.5x latency, half the bandwidth); tier 2
    is CXL-class far memory (~3x latency, a quarter of the bandwidth) —
    the hyperscale tiering regime of Mahar et al. (see PAPERS.md).
    """
    base = ampere_altra_max()
    return replace(
        base,
        name="ARM Ampere Altra Max 64-Bit (tiered memory)",
        tiers=(
            MemoryTierSpec("local", 256 * GiB, 200e9, 330),
            MemoryTierSpec("remote", 256 * GiB, 100e9, 500),
            MemoryTierSpec("cxl", 512 * GiB, 50e9, 990),
        ),
    )


def tiered_test_machine(n_cores: int = 4) -> MachineSpec:
    """The tiny test machine with local / remote / CXL memory tiers.

    Geometry mirrors :func:`small_test_machine` (tier 0 is its DRAM
    channel bit-for-bit) so tier-disabled runs on this spec compare
    directly against the flat machine.
    """
    base = small_test_machine(n_cores=n_cores)
    return replace(
        base,
        name="test-arm-tiered",
        tiers=(
            MemoryTierSpec("local", 256 * MiB, 10e9, 200),
            MemoryTierSpec("remote", 256 * MiB, 5e9, 320),
            MemoryTierSpec("cxl", 512 * MiB, 2.5e9, 600),
        ),
    )


def x86_pebs_machine(n_cores: int = 32) -> MachineSpec:
    """An x86-flavoured machine (no SPE) for NMO's PEBS backend tests."""
    return MachineSpec(
        name="x86-test",
        n_cores=n_cores,
        frequency_hz=2.5e9,
        page_size=4 * KiB,
        has_spe=False,
        arch="x86_64",
    )
