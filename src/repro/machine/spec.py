"""Hardware specification of the simulated machine (paper Table II).

The reproduction targets the paper's testbed, an Ampere Altra Max:

========================  =======================================
CPU                       ARM Ampere Altra Max 64-bit
Cores                     128 Armv8.2+ cores
Frequency                 3.0 GHz
Memory capacity           256 GB DDR4
Peak bandwidth            200 GB/s
L1i / L1d                 64 KB per core
L2                        1 MB per core
System Level Cache (SLC)  16 MB shared
Page size                 64 KB (the kernel configuration used in §IV)
========================  =======================================

:class:`MachineSpec` is a frozen value object; :func:`ampere_altra_max`
returns the Table II preset.  All sizes are bytes, frequency in Hz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import MachineError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Cache line size on Neoverse cores (bytes).
CACHE_LINE = 64


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level.

    Parameters
    ----------
    size:
        Total capacity in bytes.
    associativity:
        Number of ways per set.
    line_size:
        Line size in bytes (64 on Neoverse).
    latency_cycles:
        Load-to-use latency for a hit in this level, in core cycles.
    shared:
        Whether the cache is shared between all cores (SLC) or private.
    """

    size: int
    associativity: int
    line_size: int = CACHE_LINE
    latency_cycles: int = 4
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise MachineError("cache size/associativity/line_size must be positive")
        if self.size % (self.associativity * self.line_size) != 0:
            raise MachineError(
                f"cache size {self.size} not divisible into "
                f"{self.associativity}-way sets of {self.line_size}B lines"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets (size / (ways * line))."""
        return self.size // (self.associativity * self.line_size)

    @property
    def n_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size // self.line_size


@dataclass(frozen=True)
class DramSpec:
    """Main-memory capacity / bandwidth / latency model parameters."""

    capacity: int
    peak_bandwidth: float  # bytes/second
    latency_cycles: int = 330  # loaded DRAM latency seen by the core

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.peak_bandwidth <= 0:
            raise MachineError("DRAM capacity and bandwidth must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """Full machine description used by every substrate layer.

    The defaults replicate the paper's Table II.  ``page_size`` is the
    64 KB translation granule used by the testbed kernel; the perf ring
    buffer and SPE aux buffer are allocated in units of this page size,
    which is why the paper's Fig. 9 x-axis ("# pages") means 64 KB steps.
    """

    name: str = "generic-arm"
    n_cores: int = 128
    frequency_hz: float = 3.0e9
    page_size: int = 64 * KiB
    l1d: CacheSpec = field(
        default_factory=lambda: CacheSpec(64 * KiB, 4, latency_cycles=4)
    )
    l1i: CacheSpec = field(
        default_factory=lambda: CacheSpec(64 * KiB, 4, latency_cycles=4)
    )
    l2: CacheSpec = field(
        default_factory=lambda: CacheSpec(1 * MiB, 8, latency_cycles=13)
    )
    slc: CacheSpec = field(
        default_factory=lambda: CacheSpec(16 * MiB, 16, latency_cycles=55, shared=True)
    )
    dram: DramSpec = field(
        default_factory=lambda: DramSpec(256 * GiB, 200e9, latency_cycles=330)
    )
    #: Does this machine implement the Statistical Profiling Extension?
    has_spe: bool = True
    #: Architecture string reported to NMO's backend selection.
    arch: str = "aarch64"

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise MachineError("machine needs at least one core")
        if self.frequency_hz <= 0:
            raise MachineError("frequency must be positive")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise MachineError("page size must be a positive power of two")
        line = self.l1d.line_size
        for c in (self.l1i, self.l2, self.slc):
            if c.line_size != line:
                raise MachineError("all cache levels must share one line size")

    # -- derived quantities -------------------------------------------------

    @property
    def line_size(self) -> int:
        """Cache line size shared by all levels (bytes)."""
        return self.l1d.line_size

    @property
    def cycle_time_s(self) -> float:
        """Duration of one core cycle in seconds."""
        return 1.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the core frequency."""
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to (fractional) core cycles."""
        return seconds * self.frequency_hz

    def pages(self, nbytes: int) -> int:
        """Number of pages needed to back ``nbytes`` (round up)."""
        return -(-nbytes // self.page_size)

    def with_cores(self, n_cores: int) -> "MachineSpec":
        """Return a copy of this spec with a different core count."""
        return replace(self, n_cores=n_cores)

    def describe(self) -> dict[str, str]:
        """Human-readable spec rows mirroring Table II of the paper."""
        return {
            "CPU": self.name,
            "Cores": f"{self.n_cores} ({self.arch})",
            "Frequency": f"{self.frequency_hz / 1e9:.1f} GHz",
            "Mem. capacity": f"{self.dram.capacity / GiB:.0f} GB",
            "Peak bandwidth": f"{self.dram.peak_bandwidth / 1e9:.0f} GB/s",
            "L1i": f"{self.l1i.size // KiB} KB per core",
            "L1d": f"{self.l1d.size // KiB} KB per core",
            "L2": f"{self.l2.size // MiB} MB per core",
            "System Level Cache": f"{self.slc.size // MiB} MB",
            "Page size": f"{self.page_size // KiB} KB",
        }


def ampere_altra_max() -> MachineSpec:
    """The paper's testbed: Ampere Altra Max (Table II)."""
    return MachineSpec(name="ARM Ampere Altra Max 64-Bit")


def small_test_machine(n_cores: int = 4) -> MachineSpec:
    """A deliberately tiny machine for fast unit tests.

    Caches are shrunk so tests can exercise capacity evictions with a few
    hundred accesses; geometry ratios mirror the Altra (L1 < L2 < SLC).
    """
    return MachineSpec(
        name="test-arm",
        n_cores=n_cores,
        frequency_hz=1.0e9,
        page_size=4 * KiB,
        l1d=CacheSpec(1 * KiB, 2, latency_cycles=4),
        l1i=CacheSpec(1 * KiB, 2, latency_cycles=4),
        l2=CacheSpec(8 * KiB, 4, latency_cycles=13),
        slc=CacheSpec(64 * KiB, 8, latency_cycles=55, shared=True),
        dram=DramSpec(256 * MiB, 10e9, latency_cycles=200),
    )


def x86_pebs_machine(n_cores: int = 32) -> MachineSpec:
    """An x86-flavoured machine (no SPE) for NMO's PEBS backend tests."""
    return MachineSpec(
        name="x86-test",
        n_cores=n_cores,
        frequency_hz=2.5e9,
        page_size=4 * KiB,
        has_spe=False,
        arch="x86_64",
    )
