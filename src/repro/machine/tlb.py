"""A small fully-associative TLB model.

SPE sample records include translation information; NMO does not surface
TLB metrics in the paper's evaluation, but the substrate models one so
that (a) the per-op pipeline latency includes realistic walk penalties for
sparse access patterns and (b) the extension hooks ("tracing cache
activities", §IX future work) have somewhere to attach.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineError


class Tlb:
    """Fully-associative LRU TLB over fixed-size pages.

    Parameters
    ----------
    entries:
        Number of page translations held (Neoverse V1 L1 dTLB ~48).
    page_size:
        Translation granule in bytes.
    walk_cycles:
        Penalty charged on a miss (page-table walk).
    """

    def __init__(self, entries: int = 48, page_size: int = 65536,
                 walk_cycles: int = 25) -> None:
        if entries <= 0:
            raise MachineError("TLB needs at least one entry")
        if page_size <= 0 or page_size & (page_size - 1):
            raise MachineError("page size must be a positive power of two")
        self.entries = entries
        self.page_shift = int(page_size).bit_length() - 1
        self.walk_cycles = walk_cycles
        self._pages: dict[int, int] = {}  # page -> last-use tick
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Translate one address; returns True on TLB hit."""
        page = int(addr) >> self.page_shift
        self._tick += 1
        if page in self._pages:
            self._pages[page] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            lru = min(self._pages, key=self._pages.__getitem__)
            del self._pages[lru]
        self._pages[page] = self._tick
        return False

    def access_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vector entry point; per-access hit mask."""
        addrs = np.asarray(addrs, dtype=np.uint64)
        out = np.empty(addrs.shape, dtype=bool)
        for i, a in enumerate(addrs):
            out[i] = self.access(int(a))
        return out

    @property
    def occupancy(self) -> int:
        return len(self._pages)

    @property
    def hit_ratio(self) -> float:
        n = self.hits + self.misses
        return self.hits / n if n else 0.0

    def flush(self) -> None:
        self._pages.clear()
