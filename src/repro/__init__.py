"""repro — reproduction of "Multi-level Memory-Centric Profiling on ARM
Processors with ARM SPE" (SC 2024).

The package implements the paper's NMO profiler **and** every substrate
it needs, as a simulation stack (see DESIGN.md):

``repro.machine``
    The Ampere Altra Max machine model: caches, memory, address spaces.
``repro.cpu``
    Op streams, clocks, pipeline timing, trace-driven cores.
``repro.kernel``
    The perf substrate: ``perf_event_open``, ring/aux buffers, counters.
``repro.spe``
    The ARM Statistical Profiling Extension: interval-counter sampling,
    collisions, byte-exact packets, the driver cost model.
``repro.runtime``
    Simulated processes, threads and OpenMP-style scheduling.
``repro.workloads``
    STREAM, Rodinia CFD/BFS, CloudSuite PageRank/In-memory Analytics.
``repro.nmo``
    The profiler itself: env configuration, annotations, capacity /
    bandwidth / region / cache-activity views, trace files.
``repro.analysis``
    Post-processing: accuracy (Eq. 1), temporal tools, bias, plotting.
``repro.scenarios``
    Declarative scenarios: ``ScenarioSpec`` (JSON round-trip) plus the
    ``Session`` front door for profile, sweep, and co-location runs.
``repro.evalharness``
    One entry point per paper table/figure (shims over ``scenarios``).
``repro.orchestrate``
    Parallel trial execution and the on-disk result cache behind the
    ``--workers``/``--cache`` CLI flags.
``repro.colocation``
    Multi-tenant co-location: interleaved processes competing for a
    contention-aware shared DRAM channel.
``repro.substrate``
    Zero-copy result substrate: the columnar payload format, the
    pickle-parity codec, and the shared-memory result transport.

Quickstart::

    from repro.machine import ampere_altra_max
    from repro.workloads import StreamWorkload
    from repro.nmo import NmoProfiler, NmoSettings, NmoMode

    machine = ampere_altra_max()
    workload = StreamWorkload(machine, n_threads=32, scale=1/32)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=4096)
    result = NmoProfiler(workload, settings).run()
    print(f"accuracy {result.accuracy:.1%}, overhead {result.time_overhead:.2%}")
"""

__version__ = "1.0.0"

from repro import analysis, colocation, cpu, evalharness, kernel, machine
from repro import nmo, orchestrate, runtime, scenarios, spe, substrate
from repro import workloads
from repro.errors import ReproError

__all__ = [
    "ReproError",
    "__version__",
    "analysis",
    "colocation",
    "cpu",
    "evalharness",
    "kernel",
    "machine",
    "nmo",
    "orchestrate",
    "runtime",
    "scenarios",
    "spe",
    "substrate",
    "workloads",
]
