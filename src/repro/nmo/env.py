"""NMO environment-variable configuration (paper Table I).

NMO profiles transparently by being preloaded into the target process;
its behaviour is therefore configured entirely through environment
variables:

================  ==========================================  =========
``NMO_ENABLE``    Enable profile collection                    off
``NMO_NAME``      Base name of output files                    ``nmo``
``NMO_MODE``      Profile collection mode                      none
``NMO_PERIOD``    Sampling period                              0
``NMO_TRACK_RSS`` Capture working set size                     off
``NMO_BUFSIZE``   Ring buffer size [MiB]                       1
``NMO_AUXBUFSIZE`` Aux buffer size [MiB]                       1
================  ==========================================  =========

:class:`NmoSettings` parses a process environment into typed settings and
back; defaults exactly reproduce Table I.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import NmoError
from repro.machine.spec import MiB
from repro.substrate.codec import register as _substrate


@_substrate
class NmoMode(enum.Enum):
    """Profile collection modes."""

    NONE = "none"
    #: precise memory-access sampling via SPE/PEBS (region profiling)
    SAMPLING = "sampling"
    #: bus-event bandwidth profiling
    BANDWIDTH = "bandwidth"
    #: everything at once
    FULL = "full"


TRUTHY = {"1", "on", "yes", "true"}
FALSY = {"0", "off", "no", "false", ""}


def _parse_bool(value: str, var: str) -> bool:
    v = value.strip().lower()
    if v in TRUTHY:
        return True
    if v in FALSY:
        return False
    raise NmoError(f"{var}: cannot parse boolean from {value!r}")


def _parse_positive_int(value: str, var: str, allow_zero: bool = False) -> int:
    try:
        n = int(value.strip())
    except ValueError:
        raise NmoError(f"{var}: cannot parse integer from {value!r}") from None
    if n < 0 or (n == 0 and not allow_zero):
        raise NmoError(f"{var}: must be {'>= 0' if allow_zero else '> 0'}, got {n}")
    return n


@_substrate
@dataclass(frozen=True)
class NmoSettings:
    """Typed view of the Table I environment variables."""

    enable: bool = False
    name: str = "nmo"
    mode: NmoMode = NmoMode.NONE
    period: int = 0
    track_rss: bool = False
    bufsize_mib: int = 1
    auxbufsize_mib: int = 1

    def __post_init__(self) -> None:
        if self.period < 0:
            raise NmoError("sampling period must be >= 0")
        if self.bufsize_mib <= 0 or self.auxbufsize_mib <= 0:
            raise NmoError("buffer sizes must be positive MiB counts")
        if self.enable and self.mode in (NmoMode.SAMPLING, NmoMode.FULL):
            if self.period <= 0:
                raise NmoError(
                    "NMO_PERIOD must be set for sampling modes (Table I default "
                    "0 means 'unset')"
                )

    # -- env round-trip ---------------------------------------------------------

    @staticmethod
    def from_env(env: dict[str, str]) -> "NmoSettings":
        """Parse a process environment, applying Table I defaults."""
        mode_s = env.get("NMO_MODE", "none").strip().lower()
        try:
            mode = NmoMode(mode_s)
        except ValueError:
            valid = ", ".join(m.value for m in NmoMode)
            raise NmoError(f"NMO_MODE: unknown mode {mode_s!r} (valid: {valid})")
        return NmoSettings(
            enable=_parse_bool(env.get("NMO_ENABLE", "off"), "NMO_ENABLE"),
            name=env.get("NMO_NAME", "nmo"),
            mode=mode,
            period=_parse_positive_int(
                env.get("NMO_PERIOD", "0"), "NMO_PERIOD", allow_zero=True
            ),
            track_rss=_parse_bool(env.get("NMO_TRACK_RSS", "off"), "NMO_TRACK_RSS"),
            bufsize_mib=_parse_positive_int(env.get("NMO_BUFSIZE", "1"), "NMO_BUFSIZE"),
            auxbufsize_mib=_parse_positive_int(
                env.get("NMO_AUXBUFSIZE", "1"), "NMO_AUXBUFSIZE"
            ),
        )

    def to_env(self) -> dict[str, str]:
        """Serialise back to environment variables."""
        return {
            "NMO_ENABLE": "on" if self.enable else "off",
            "NMO_NAME": self.name,
            "NMO_MODE": self.mode.value,
            "NMO_PERIOD": str(self.period),
            "NMO_TRACK_RSS": "on" if self.track_rss else "off",
            "NMO_BUFSIZE": str(self.bufsize_mib),
            "NMO_AUXBUFSIZE": str(self.auxbufsize_mib),
        }

    # -- derived buffer geometry -----------------------------------------------------

    def ring_pages(self, page_size: int) -> int:
        """Ring-buffer *data* pages implied by ``NMO_BUFSIZE``.

        NMO mmaps (N+1) pages: the kernel requires N to be a power of
        two; Table I sizes are MiB so this always holds for 64 KiB pages.
        """
        pages = max(1, (self.bufsize_mib * MiB) // page_size)
        if pages & (pages - 1):
            raise NmoError(
                f"NMO_BUFSIZE={self.bufsize_mib} MiB is not a power-of-two "
                f"page count at page size {page_size}"
            )
        return pages

    def aux_pages(self, page_size: int) -> int:
        """Aux-buffer pages implied by ``NMO_AUXBUFSIZE``."""
        pages = max(1, (self.auxbufsize_mib * MiB) // page_size)
        if pages & (pages - 1):
            raise NmoError(
                f"NMO_AUXBUFSIZE={self.auxbufsize_mib} MiB is not a "
                f"power-of-two page count at page size {page_size}"
            )
        return pages


#: The Table I defaults, for tests and documentation.
TABLE_I_DEFAULTS = {
    "NMO_ENABLE": "off",
    "NMO_NAME": "nmo",
    "NMO_MODE": "none",
    "NMO_PERIOD": "0",
    "NMO_TRACK_RSS": "off",
    "NMO_BUFSIZE": "1",
    "NMO_AUXBUFSIZE": "1",
}
