"""Timescale conversion between SPE timestamps and perf time (§IV-A).

"The timestamp timer from ARM SPE uses a different timescale than perf,
so to maintain API compatibility between different architectures ...
NMO also performs a timescale conversion using the ``time_zero``,
``time_shift`` and ``time_mult`` fields from the ring buffer metadata
page."

The conversion is the kernel's documented algorithm::

    perf_ns = time_zero + (counter * time_mult) >> time_shift

:class:`TimescaleConverter` wraps the metadata page fields and converts
tick arrays to perf nanoseconds and seconds.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.clock import ticks_to_ns
from repro.errors import NmoError
from repro.kernel.ring_buffer import MmapMetadataPage


class TimescaleConverter:
    """SPE generic-timer ticks -> perf nanoseconds, via mmap metadata."""

    def __init__(self, meta: MmapMetadataPage) -> None:
        if not meta.cap_user_time_zero:
            raise NmoError(
                "ring metadata does not advertise user-readable time_zero"
            )
        if meta.time_mult <= 0 or meta.time_shift < 0:
            raise NmoError(
                f"bad timescale parameters mult={meta.time_mult} "
                f"shift={meta.time_shift}"
            )
        self.time_zero = meta.time_zero
        self.time_mult = meta.time_mult
        self.time_shift = meta.time_shift

    def to_perf_ns(self, ticks: np.ndarray | int) -> np.ndarray | int:
        """Apply ``zero + (ticks * mult) >> shift`` (exact integer math)."""
        return ticks_to_ns(ticks, self.time_mult, self.time_shift, self.time_zero)

    def to_seconds(self, ticks: np.ndarray | int) -> np.ndarray | float:
        ns = self.to_perf_ns(ticks)
        if np.isscalar(ns):
            return float(ns) * 1e-9
        return np.asarray(ns, dtype=np.float64) * 1e-9

    def ticks_per_second(self) -> float:
        """Inverse resolution implied by (mult, shift)."""
        ns_per_tick = self.time_mult / (1 << self.time_shift)
        return 1e9 / ns_per_tick
