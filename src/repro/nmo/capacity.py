"""Temporal capacity (RSS) profiling — paper §VI-A, Fig. 2.

NMO tracks the working-set size of the target process over time
(``NMO_TRACK_RSS``), guiding right-sizing: the paper's examples saturate
at 52.3 GiB (In-memory Analytics) and 123.8 GiB (PageRank) inside a
256 GiB container — 20.4 % and 48.4 % peak utilisation, i.e. most of the
reservation is never used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NmoError
from repro.machine.spec import GiB


@dataclass(frozen=True)
class CapacitySummary:
    """Headline capacity metrics of one run."""

    peak_bytes: float
    mean_bytes: float
    saturation_time_s: float     #: first time RSS reaches 99% of peak
    limit_bytes: int | None
    peak_utilisation: float      #: peak / limit (0 when no limit)

    @property
    def peak_gib(self) -> float:
        return self.peak_bytes / GiB

    @property
    def mean_gib(self) -> float:
        return self.mean_bytes / GiB


def summarise_capacity(
    series: tuple[np.ndarray, np.ndarray], limit_bytes: int | None = None
) -> CapacitySummary:
    """Summarise an RSS time series (times in s, values in bytes)."""
    t, v = np.asarray(series[0]), np.asarray(series[1])
    if t.shape != v.shape or t.ndim != 1:
        raise NmoError("capacity series must be two equal 1-D arrays")
    if t.size == 0:
        raise NmoError("capacity series is empty")
    peak = float(v.max())
    sat = float(t[np.argmax(v >= 0.99 * peak)]) if peak > 0 else 0.0
    util = peak / limit_bytes if limit_bytes else 0.0
    return CapacitySummary(
        peak_bytes=peak,
        mean_bytes=float(v.mean()),
        saturation_time_s=sat,
        limit_bytes=limit_bytes,
        peak_utilisation=util,
    )


def overprovisioned_bytes(
    series: tuple[np.ndarray, np.ndarray], limit_bytes: int
) -> float:
    """Reservation never used: ``limit - peak`` (the waste the paper's
    capacity view is designed to expose)."""
    if limit_bytes <= 0:
        raise NmoError("limit must be positive")
    s = summarise_capacity(series, limit_bytes)
    return max(0.0, limit_bytes - s.peak_bytes)
