"""NMO's architecture-agnostic annotation interface (paper §III-B).

Applications opt into finer-grained profiling with two kinds of
annotations, exposed in C as::

    nmo_tag_addr("data_a", addr0_start, addr0_end);
    nmo_start("kernel0");
    ...
    nmo_stop();

``nmo_tag_addr`` names an address range (a data object) so the region
profile can attribute samples; ``nmo_start``/``nmo_stop`` bracket an
execution region so the temporal views can shade it (the "triad" band of
Fig. 4, the "computation loop" of Figs. 5-6).  This module is the Python
equivalent the simulated applications call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnnotationError
from repro.substrate.codec import register as _substrate


@_substrate
@dataclass(frozen=True)
class AddressTag:
    """A named address range from ``nmo_tag_addr``."""

    name: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise AnnotationError(
                f"tag {self.name!r}: end 0x{self.end:x} <= start 0x{self.start:x}"
            )

    def contains(self, addrs: np.ndarray) -> np.ndarray:
        a = np.asarray(addrs, dtype=np.uint64)
        return (a >= self.start) & (a < self.end)


@_substrate
@dataclass(frozen=True)
class RegionSpan:
    """A closed ``nmo_start``/``nmo_stop`` execution region."""

    tag: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise AnnotationError(f"region {self.tag!r} ends before it starts")


@_substrate
@dataclass
class AnnotationRegistry:
    """Collects the annotations of one profiled run."""

    address_tags: list[AddressTag] = field(default_factory=list)
    spans: list[RegionSpan] = field(default_factory=list)
    _open: list[tuple[str, float]] = field(default_factory=list)

    # -- the C-style API -----------------------------------------------------------

    def nmo_tag_addr(self, name: str, start: int, end: int) -> None:
        """Register a named address range (may be called any time)."""
        if any(t.name == name for t in self.address_tags):
            raise AnnotationError(f"address tag {name!r} already registered")
        self.address_tags.append(AddressTag(name, start, end))

    def nmo_start(self, tag: str, now_s: float) -> None:
        """Open an execution region at virtual time ``now_s``."""
        self._open.append((tag, now_s))

    def nmo_stop(self, now_s: float) -> None:
        """Close the innermost open region."""
        if not self._open:
            raise AnnotationError("nmo_stop() without a matching nmo_start()")
        tag, t0 = self._open.pop()
        self.spans.append(RegionSpan(tag, t0, now_s))

    # -- queries --------------------------------------------------------------------

    @property
    def has_open_regions(self) -> bool:
        return bool(self._open)

    def spans_for(self, tag: str) -> list[RegionSpan]:
        return [s for s in self.spans if s.tag == tag]

    def tag_of(self, addrs: np.ndarray) -> np.ndarray:
        """Index of the first matching address tag per sample (-1 = none)."""
        a = np.asarray(addrs, dtype=np.uint64)
        out = np.full(a.shape, -1, dtype=np.int64)
        for i, t in enumerate(self.address_tags):
            hit = (out == -1) & t.contains(a)
            out[hit] = i
        return out

    def tag_names(self) -> list[str]:
        return [t.name for t in self.address_tags]
