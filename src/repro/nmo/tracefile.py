"""NMO output files.

A profiled run produces a set of files sharing the ``NMO_NAME`` base
name (Table I):

* ``<name>.samples.npz`` — the decoded sample columns (address,
  timestamp in perf seconds, memory level, op kind, latency, core),
* ``<name>.rss.csv`` — the temporal capacity series,
* ``<name>.bw.csv`` — the temporal bandwidth series,
* ``<name>.meta.json`` — run configuration, aggregate statistics, and an
  **MD5 digest** of the sample payload (NMO uses OpenSSL MD5 for its
  trace hashes; we use :mod:`hashlib`, which is the same digest).

:func:`write_trace` / :func:`read_trace` round-trip everything; the
analysis layer consumes these files rather than in-memory objects, like
NMO's post-processing scripts do.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import NmoError

SAMPLE_COLUMNS = ("addr", "t_s", "level", "kind", "total_lat", "core")


@dataclass
class TraceData:
    """Everything a profiled run writes to disk."""

    name: str
    samples: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)
    rss: tuple[np.ndarray, np.ndarray] | None = None
    bandwidth: tuple[np.ndarray, np.ndarray] | None = None

    def __post_init__(self) -> None:
        missing = set(SAMPLE_COLUMNS) - set(self.samples)
        if missing:
            raise NmoError(f"sample columns missing: {sorted(missing)}")
        n = {len(v) for v in self.samples.values()}
        if len(n) > 1:
            raise NmoError(f"sample columns have differing lengths: {n}")

    @property
    def n_samples(self) -> int:
        return len(self.samples["addr"])


def samples_digest(samples: dict[str, np.ndarray]) -> str:
    """MD5 of the sample payload (deterministic column order)."""
    h = hashlib.md5()
    for col in SAMPLE_COLUMNS:
        h.update(col.encode())
        h.update(np.ascontiguousarray(samples[col]).tobytes())
    return h.hexdigest()


def write_trace(trace: TraceData, directory: str | Path) -> dict[str, Path]:
    """Write all trace files; returns the paths written."""
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}

    sp = d / f"{trace.name}.samples.npz"
    buf = io.BytesIO()
    np.savez_compressed(buf, **trace.samples)
    sp.write_bytes(buf.getvalue())
    paths["samples"] = sp

    meta = dict(trace.meta)
    meta["md5"] = samples_digest(trace.samples)
    meta["n_samples"] = trace.n_samples
    mp = d / f"{trace.name}.meta.json"
    mp.write_text(json.dumps(meta, indent=2, sort_keys=True, default=str))
    paths["meta"] = mp

    for kind, series in (("rss", trace.rss), ("bw", trace.bandwidth)):
        if series is None:
            continue
        t, v = series
        if len(t) != len(v):
            raise NmoError(f"{kind} series has mismatched lengths")
        p = d / f"{trace.name}.{kind}.csv"
        with p.open("w") as f:
            f.write("time_s,value\n")
            for ti, vi in zip(np.asarray(t), np.asarray(v)):
                f.write(f"{float(ti):.6f},{float(vi):.6f}\n")
        paths[kind] = p
    return paths


def read_trace(name: str, directory: str | Path) -> TraceData:
    """Load a trace written by :func:`write_trace`, verifying the MD5."""
    d = Path(directory)
    sp = d / f"{name}.samples.npz"
    mp = d / f"{name}.meta.json"
    if not sp.exists() or not mp.exists():
        raise NmoError(f"trace {name!r} not found in {d}")
    with np.load(sp) as z:
        samples = {k: z[k] for k in z.files}
    meta = json.loads(mp.read_text())
    digest = samples_digest(samples)
    if meta.get("md5") != digest:
        raise NmoError(
            f"trace {name!r} failed MD5 verification "
            f"({meta.get('md5')} != {digest})"
        )

    def _read_csv(path: Path):
        if not path.exists():
            return None
        rows = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
        if rows.size == 0:
            return np.zeros(0), np.zeros(0)
        return rows[:, 0], rows[:, 1]

    return TraceData(
        name=name,
        samples=samples,
        meta=meta,
        rss=_read_csv(d / f"{name}.rss.csv"),
        bandwidth=_read_csv(d / f"{name}.bw.csv"),
    )
