"""Architecture backends for NMO's precise sampling (paper §III).

NMO is architecture-agnostic at the API level; internally it selects a
precise-sampling backend per architecture: **ARM SPE** when compiled for
aarch64 and **Intel PEBS** on x86.  The ARM backend is the subject of the
paper; the PEBS backend exists to demonstrate (and test) the portability
claim.

Differences modelled:

* SPE writes to a separate aux buffer with watermark interrupts and
  suffers sample collisions when the tracked op outlives the sampling
  interval; PEBS writes records through the ring-buffer path and does
  not collide (its shadow effects are out of scope here),
* SPE's PMU type is the dynamic ``0x2c``; PEBS uses a raw hardware
  event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.clock import GenericTimer
from repro.cpu.pipeline import PipelineModel
from repro.errors import NmoError
from repro.kernel.perf_event import (
    ARM_SPE_PMU_TYPE,
    PERF_EVENT_IOC_ENABLE,
    PERF_TYPE_RAW,
    PerfEvent,
    PerfEventAttr,
    PerfSubsystem,
)
from repro.machine.spec import MachineSpec
from repro.nmo.env import NmoSettings
from repro.spe.config import SpeConfig
from repro.spe.driver import SpeCostModel, SpeDriver
from repro.spe.sampler import SpeSampler


@dataclass
class CoreSession:
    """One per-core sampling session: perf event + sampler + driver."""

    core: int
    event: PerfEvent
    sampler: SpeSampler
    driver: SpeDriver


class ArmSpeBackend:
    """Precise sampling through the Statistical Profiling Extension."""

    name = "arm_spe"

    def __init__(self, config: SpeConfig | None = None) -> None:
        self.config = config or SpeConfig.loads_and_stores()

    def supports(self, machine: MachineSpec) -> bool:
        return machine.arch == "aarch64" and machine.has_spe

    def open_session(
        self,
        perf: PerfSubsystem,
        core: int,
        settings: NmoSettings,
        pipeline: PipelineModel,
        timer: GenericTimer,
        rng: np.random.Generator,
        cost: SpeCostModel,
    ) -> CoreSession:
        machine = perf.machine
        if not self.supports(machine):
            raise NmoError(f"machine {machine.name!r} has no SPE")
        attr = PerfEventAttr(
            type=ARM_SPE_PMU_TYPE,
            config=self.config.encode(),
            sample_period=settings.period,
        )
        ev = perf.perf_event_open(attr, cpu=core)
        ev.mmap_ring(settings.ring_pages(machine.page_size))
        ev.mmap_aux(settings.aux_pages(machine.page_size))
        ev.ioctl(PERF_EVENT_IOC_ENABLE)
        sampler = SpeSampler(settings.period, self.config, pipeline, timer, rng)
        driver = SpeDriver(ev, cost)
        return CoreSession(core=core, event=ev, sampler=sampler, driver=driver)


class FixedAuxPagesBackend(ArmSpeBackend):
    """SPE backend with an explicit aux-buffer page count.

    Table I sizes the aux buffer in whole MiB; the Fig. 9 sweep also
    probes sub-MiB sizes (2-8 pages of 64 KiB), which this backend
    injects by rebuilding the session's aux buffer.  ``aux_watermark``
    optionally overrides the ``PERF_RECORD_AUX`` threshold (perf's
    ``aux_watermark`` attr; default half the buffer) — small watermarks
    reproduce the interrupt-bound corner of the Fig. 9 sweep, where the
    wakeup path itself dominates.  Module-level (not a closure) so fig9
    trials can cross a process-pool boundary.
    """

    name = "arm_spe_fixed_aux"

    def __init__(
        self,
        aux_pages: int,
        config: SpeConfig | None = None,
        aux_watermark: int | None = None,
    ) -> None:
        super().__init__(config)
        if aux_pages <= 0:
            raise NmoError(f"aux_pages must be > 0, got {aux_pages}")
        self.aux_pages = aux_pages
        self.aux_watermark = aux_watermark

    def open_session(self, perf, core, settings, pipeline, timer, rng, cost):
        from repro.kernel.aux_buffer import AuxBuffer

        session = super().open_session(
            perf, core, settings, pipeline, timer, rng, cost
        )
        ev = session.event
        ev.aux = AuxBuffer(
            n_pages=self.aux_pages,
            page_size=perf.machine.page_size,
            watermark=self.aux_watermark,
        )
        ev.ring.meta.aux_size = ev.aux.size
        return session


class X86PebsBackend:
    """Precise sampling through PEBS-style ring-buffer records.

    Modelled as SPE without the aux-specific behaviours: no sample
    collisions (``track_collisions=False`` on the sampler) and a smaller
    torn-window loss, since PEBS drains through the generic ring without
    an SPE stop/restart.  Used by NMO's portability tests.
    """

    name = "x86_pebs"

    #: raw event for MEM_TRANS_RETIRED.LOAD_LATENCY-style PEBS sampling
    PEBS_RAW_EVENT = 0x01CD

    def __init__(self, config: SpeConfig | None = None) -> None:
        cfg = config or SpeConfig.loads_and_stores()
        self.config = cfg

    def supports(self, machine: MachineSpec) -> bool:
        return machine.arch == "x86_64"

    def open_session(
        self,
        perf: PerfSubsystem,
        core: int,
        settings: NmoSettings,
        pipeline: PipelineModel,
        timer: GenericTimer,
        rng: np.random.Generator,
        cost: SpeCostModel,
    ) -> CoreSession:
        from repro.kernel.counters import CounterEvent

        machine = perf.machine
        if not self.supports(machine):
            raise NmoError(f"machine {machine.name!r} is not x86")
        attr = PerfEventAttr(
            type=PERF_TYPE_RAW,
            config=self.PEBS_RAW_EVENT,
            sample_period=settings.period,
            counter_event=CounterEvent.MEM_ACCESS,
        )
        ev = perf.perf_event_open(attr, cpu=core)
        ev.mmap_ring(settings.ring_pages(machine.page_size))
        # PEBS has no aux area; give the driver a ring-sized staging area
        ev.mmap_aux(settings.ring_pages(machine.page_size))
        ev.ioctl(PERF_EVENT_IOC_ENABLE)
        sampler = SpeSampler(
            settings.period, self.config, pipeline, timer, rng,
            track_collisions=False,
        )
        pebs_cost = SpeCostModel(
            irq_cycles=cost.irq_cycles,
            user_record_cycles=cost.user_record_cycles,
            service_loss_records=max(1, cost.service_loss_records // 8),
            service_loss_scale=cost.service_loss_scale,
            min_working_pages=1,
            idle_overhead_cycles=cost.idle_overhead_cycles,
            max_irq_rate_hz=cost.max_irq_rate_hz,
        )
        driver = SpeDriver(ev, pebs_cost)
        return CoreSession(core=core, event=ev, sampler=sampler, driver=driver)


def select_backend(machine: MachineSpec) -> ArmSpeBackend | X86PebsBackend:
    """NMO's compile-time backend choice, resolved from the machine."""
    for backend in (ArmSpeBackend(), X86PebsBackend()):
        if backend.supports(machine):
            return backend
    raise NmoError(
        f"no precise-sampling backend for arch {machine.arch!r} "
        f"(SPE available: {machine.has_spe})"
    )
