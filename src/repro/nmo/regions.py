"""Memory-region profiling — paper §VI-C, Figs. 4-6.

The virtual addresses of sampled accesses, combined with the
``nmo_tag_addr`` object ranges and ``nmo_start/stop`` execution spans,
answer region-level questions: which objects are hottest inside a
kernel, whether threads split an array cleanly (STREAM, Fig. 4; CFD's
``normals``, Fig. 6) or access it irregularly (CFD's indirect gathers),
and where accesses concentrate over time.

The central artefact is the address-over-time scatter; this module
computes it plus the derived per-object statistics, including a
**split score** quantifying "split properly with a similar length to
access in each thread" (Fig. 6's observation about ``normals``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NmoError
from repro.cpu.ops import OpKind
from repro.nmo.profiler import ProfileResult


@dataclass(frozen=True)
class RegionStats:
    """Aggregate sampling statistics for one tagged data object."""

    name: str
    start: int
    end: int
    n_samples: int
    n_loads: int
    n_stores: int
    first_access_s: float
    last_access_s: float
    #: distinct 64-byte lines observed / total lines (coverage estimate)
    line_coverage: float
    #: 1.0 = threads own disjoint, similar-sized slices; -> 0 irregular
    split_score: float


@dataclass
class RegionProfile:
    """Post-processed region view of one profiled run."""

    result: ProfileResult
    stats: dict[str, RegionStats] = field(default_factory=dict)

    @staticmethod
    def build(result: ProfileResult, line_size: int = 64) -> "RegionProfile":
        prof = RegionProfile(result=result)
        addrs = result.batch.addr
        kinds = result.batch.kind
        times = result.sample_times_s
        cores = result.sample_cores
        for tag in result.annotations.address_tags:
            mask = tag.contains(addrs)
            n = int(mask.sum())
            if n == 0:
                prof.stats[tag.name] = RegionStats(
                    name=tag.name, start=tag.start, end=tag.end,
                    n_samples=0, n_loads=0, n_stores=0,
                    first_access_s=float("nan"), last_access_s=float("nan"),
                    line_coverage=0.0, split_score=float("nan"),
                )
                continue
            a = addrs[mask]
            k = kinds[mask]
            t = times[mask]
            c = cores[mask]
            lines = np.unique((a - np.uint64(tag.start)) // np.uint64(line_size))
            total_lines = max(1, (tag.end - tag.start) // line_size)
            prof.stats[tag.name] = RegionStats(
                name=tag.name,
                start=tag.start,
                end=tag.end,
                n_samples=n,
                n_loads=int((k == OpKind.LOAD).sum()),
                n_stores=int((k == OpKind.STORE).sum()),
                first_access_s=float(t.min()),
                last_access_s=float(t.max()),
                line_coverage=min(1.0, lines.size / total_lines),
                split_score=split_score(a, c),
            )
        return prof

    def hottest(self, top: int = 5) -> list[RegionStats]:
        """Objects by sample count — "which memory objects are the most
        accessed inside a certain function?" (paper §III-A)."""
        return sorted(
            self.stats.values(), key=lambda s: s.n_samples, reverse=True
        )[:top]

    def cold_objects(self) -> list[str]:
        """Objects never observed — "which objects are seldom read
        throughout the whole execution?"."""
        return [n for n, s in self.stats.items() if s.n_samples == 0]

    def scatter(
        self, tag: str | None = None, t0: float | None = None,
        t1: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, addresses) for the scatter plot, optionally windowed.

        ``t0``/``t1`` give the high-resolution zoom of Fig. 6 (right).
        """
        addrs = self.result.batch.addr
        times = self.result.sample_times_s
        mask = np.ones(addrs.shape, dtype=bool)
        if tag is not None:
            tags = [t for t in self.result.annotations.address_tags if t.name == tag]
            if not tags:
                raise NmoError(f"unknown address tag {tag!r}")
            mask &= tags[0].contains(addrs)
        if t0 is not None:
            mask &= times >= t0
        if t1 is not None:
            mask &= times < t1
        return times[mask], addrs[mask]


def split_score(addrs: np.ndarray, cores: np.ndarray) -> float:
    """How cleanly per-thread address ranges partition an object.

    For each core present, take the [min, max] address interval of its
    samples; the score is ``1 - overlapped_span / total_span`` weighted
    by interval sizes, further scaled by the evenness of interval
    lengths.  A perfectly chunked array (STREAM a/b/c, CFD normals)
    scores near 1; an indirectly-gathered array scores near 0 because
    every thread's interval covers the whole object.
    """
    addrs = np.asarray(addrs, dtype=np.uint64)
    cores = np.asarray(cores)
    if addrs.size == 0:
        return float("nan")
    uniq = np.unique(cores)
    if uniq.size <= 1:
        return 1.0
    intervals = []
    for c in uniq:
        a = addrs[cores == c]
        if a.size:
            intervals.append((float(a.min()), float(a.max()) + 1))
    if len(intervals) <= 1:
        return 1.0
    intervals.sort()
    spans = np.array([hi - lo for lo, hi in intervals])
    total = max(i[1] for i in intervals) - min(i[0] for i in intervals)
    if total <= 0:
        return 1.0
    # pairwise overlap of consecutive sorted intervals
    overlap = 0.0
    prev_hi = intervals[0][1]
    for lo, hi in intervals[1:]:
        overlap += max(0.0, min(prev_hi, hi) - lo)
        prev_hi = max(prev_hi, hi)
    disjointness = max(0.0, 1.0 - overlap / spans.sum())
    evenness = float(spans.min() / spans.max()) if spans.max() > 0 else 1.0
    return disjointness * (0.5 + 0.5 * evenness)
