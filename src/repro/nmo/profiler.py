"""The NMO profiling runtime.

This is the paper's core contribution: an application-transparent,
multi-level memory-centric profiler.  Given a workload (the simulated
application) and the Table I environment settings, :class:`NmoProfiler`

1. opens one precise-sampling session per core (SPE on ARM, PEBS-style
   on x86) with the configured period and buffer sizes,
2. registers the workload's data objects via ``nmo_tag_addr`` and its
   tagged phases via ``nmo_start``/``nmo_stop``,
3. runs the workload phase by phase: per thread, the SPE sampler draws
   samples from the closed-form op stream, the driver routes the 64-byte
   records through aux/ring buffers (charging interrupt and processing
   cycles to the interrupted thread), and the consumer decodes them,
4. tracks capacity (RSS) and bandwidth (bus-event) time series,
5. converts SPE timestamps to perf time via the metadata page
   (``time_zero/shift/mult``) and assembles a :class:`ProfileResult`
   carrying everything the paper's figures need,
6. computes the paper's Eq. 1 sampling accuracy and the time overhead
   against an uninstrumented baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.clock import GenericTimer
from repro.cpu.ops import OpKind
from repro.cpu.pipeline import PipelineModel
from repro.errors import NmoError
from repro.kernel.counters import CounterEvent, CounterGroup, IntervalSeries
from repro.machine.spec import GiB
from repro.nmo.annotations import AnnotationRegistry
from repro.nmo.backends import CoreSession, select_backend
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.timescale import TimescaleConverter
from repro.nmo.tracefile import TraceData
from repro.spe.driver import SpeCostModel, ThrottleModel
from repro.spe.records import SampleBatch
from repro.substrate.codec import register as _substrate
from repro.workloads.base import Workload


@_substrate
@dataclass
class ThreadStats:
    """Per-thread sampling accounting."""

    core: int
    n_selected: int = 0
    n_collisions: int = 0
    n_kept: int = 0
    n_written: int = 0
    n_lost: int = 0
    n_wakeups: int = 0
    overhead_cycles: float = 0.0


@_substrate
@dataclass
class BaselineResult:
    """The uninstrumented reference run (``perf stat`` methodology)."""

    wall_cycles: float
    wall_seconds: float
    mem_counted: int
    total_ops: int
    total_flops: int


@_substrate
@dataclass
class ProfileResult:
    """Everything one profiled run produced."""

    workload: str
    settings: NmoSettings
    n_threads: int
    mem_counted: int
    samples_processed: int
    accuracy: float
    baseline_cycles: float
    profiled_cycles: float
    time_overhead: float
    collisions: int
    wakeups: int
    truncated: int
    throttle_events: int
    throttled_samples: int
    decode_skipped: int
    batch: SampleBatch
    sample_cores: np.ndarray
    sample_times_s: np.ndarray
    per_thread: list[ThreadStats]
    annotations: AnnotationRegistry
    rss_series: tuple[np.ndarray, np.ndarray] | None = None
    bw_series: tuple[np.ndarray, np.ndarray] | None = None
    phase_spans: list[tuple[str, str, float, float]] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return len(self.batch)

    def to_trace(self) -> TraceData:
        """Package as NMO's on-disk trace format."""
        samples = {
            "addr": self.batch.addr,
            "t_s": self.sample_times_s,
            "level": self.batch.level,
            "kind": self.batch.kind,
            "total_lat": self.batch.total_lat,
            "core": self.sample_cores,
        }
        meta = {
            "workload": self.workload,
            "period": self.settings.period,
            "n_threads": self.n_threads,
            "accuracy": self.accuracy,
            "time_overhead": self.time_overhead,
            "collisions": self.collisions,
            "mem_counted": self.mem_counted,
            "env": self.settings.to_env(),
            "tags": [
                (t.name, int(t.start), int(t.end))
                for t in self.annotations.address_tags
            ],
            "spans": [
                (s.tag, s.start_s, s.end_s) for s in self.annotations.spans
            ],
        }
        return TraceData(
            name=self.settings.name,
            samples=samples,
            meta=meta,
            rss=self.rss_series,
            bandwidth=self.bw_series,
        )


def sampling_accuracy(mem_counted: int, samples: int, period: int) -> float:
    """Paper Eq. 1: ``1 - |mem - samples*period| / mem`` (clamped to 0)."""
    if mem_counted <= 0:
        raise NmoError("mem_counted must be positive")
    if samples < 0 or period <= 0:
        raise NmoError("need samples >= 0 and period > 0")
    acc = 1.0 - abs(mem_counted - samples * period) / mem_counted
    return max(acc, 0.0)


class NmoProfiler:
    """Profile one workload run under the given NMO settings."""

    def __init__(
        self,
        workload: Workload,
        settings: NmoSettings,
        cost: SpeCostModel | None = None,
        throttle: ThrottleModel | None = None,
        seed: int = 0,
        backend=None,
        bw_interval_s: float | None = None,
    ) -> None:
        self.workload = workload
        self.settings = settings
        self.seed = seed
        self.throttle = throttle or ThrottleModel()
        base_cost = cost or SpeCostModel()
        t = workload.n_threads
        # consumer-side scaling: a single monitor serving few buffers
        # cannot pipeline service passes (bigger torn window); serving
        # many buffers adds per-wakeup bookkeeping (Fig. 10's overhead
        # growth with threads)
        self.cost = SpeCostModel(
            irq_cycles=base_cost.irq_cycles,
            user_record_cycles=base_cost.user_record_cycles * (1.0 + t / 256.0),
            service_loss_records=base_cost.service_loss_records,
            service_loss_scale=base_cost.service_loss_scale * (1.0 + 1.0 / t),
            min_working_pages=base_cost.min_working_pages,
            idle_overhead_cycles=base_cost.idle_overhead_cycles,
            max_irq_rate_hz=base_cost.max_irq_rate_hz,
        )
        self.backend = backend or select_backend(workload.machine)
        self.bw_interval_s = bw_interval_s

    # -- baseline ------------------------------------------------------------------

    def run_baseline(self) -> BaselineResult:
        """The reference run: plain execution + counting PMU events."""
        w = self.workload
        counters = CounterGroup(
            [CounterEvent.MEM_ACCESS, CounterEvent.INSTRUCTIONS, CounterEvent.FP_OPS]
        )
        for phase in w.phases:
            t = w.phase_threads(phase)
            counters.add(CounterEvent.MEM_ACCESS, phase.n_mem_ops * t)
            counters.add(CounterEvent.INSTRUCTIONS, phase.n_ops * t)
            counters.add(
                CounterEvent.FP_OPS, phase.n_mem_ops * phase.flops_per_group * t
            )
        cycles = w.baseline_cycles()
        return BaselineResult(
            wall_cycles=cycles,
            wall_seconds=cycles / w.machine.frequency_hz,
            mem_counted=counters[CounterEvent.MEM_ACCESS],
            total_ops=counters[CounterEvent.INSTRUCTIONS],
            total_flops=counters[CounterEvent.FP_OPS],
        )

    # -- profiled run -----------------------------------------------------------------

    def _sampling_enabled(self) -> bool:
        s = self.settings
        return (
            s.enable
            and s.mode in (NmoMode.SAMPLING, NmoMode.FULL)
            and s.period > 0
        )

    def run(self) -> ProfileResult:
        w = self.workload
        machine = w.machine
        settings = self.settings
        team = w.process.team
        pipeline = PipelineModel(machine)
        timer = GenericTimer(machine.frequency_hz)
        sampling = self._sampling_enabled()

        sessions: dict[int, CoreSession] = {}
        if sampling:
            for core in range(w.n_threads):
                rng = np.random.default_rng([self.seed, core, settings.period])
                sessions[core] = self.backend.open_session(
                    w.process.perf, core, settings, pipeline, timer, rng, self.cost
                )

        ann = AnnotationRegistry()
        for name, start, end in w.tagged_objects():
            ann.nmo_tag_addr(name, start, end)

        stats = [ThreadStats(core=i) for i in range(w.n_threads)]
        batches: list[SampleBatch] = []
        batch_core_ids: list[int] = []
        decode_skipped = 0
        truncated = 0
        phase_spans: list[tuple[str, str, float, float]] = []
        freq = machine.frequency_hz

        open_tag: str | None = None
        for phase in w.phases:
            active = w.phase_threads(phase)
            t0 = team.max_cycles / freq
            tag = phase.tag or phase.name
            if tag != open_tag:
                if open_tag is not None:
                    ann.nmo_stop(t0)
                ann.nmo_start(tag, t0)
                open_tag = tag
            for tidx in range(active):
                thread = team[tidx]
                src = w.op_source(phase, tidx)
                if sampling:
                    sess = sessions[tidx]
                    out = sess.sampler.sample_stream(src, start_cycle=thread.cycles)
                    res = sess.driver.feed(out)
                    st = stats[tidx]
                    st.n_selected += out.n_selected
                    st.n_collisions += out.n_collisions
                    st.n_kept += out.n_kept
                    st.n_written += res.n_written
                    st.n_lost += res.n_lost_stall
                    st.n_wakeups += res.n_wakeups
                    st.overhead_cycles += res.overhead_cycles
                    truncated += res.truncated_records
                    if res.decode is not None:
                        decode_skipped += res.decode.n_skipped
                    if len(res.batch):
                        batches.append(res.batch)
                        batch_core_ids.append(tidx)
                    thread.charge_overhead(res.overhead_cycles)
                thread.advance(phase.duration_cycles())
                n_flops = phase.n_mem_ops * phase.flops_per_group
                thread.retire(phase.n_ops, phase.n_mem_ops, n_flops)
            team.barrier()
            t1 = team.max_cycles / freq
            phase_spans.append((phase.name, tag, t0, t1))
        if open_tag is not None:
            ann.nmo_stop(team.max_cycles / freq)

        # end-of-run drain (not charged; see paper §VII)
        if sampling:
            for tidx, sess in sessions.items():
                res = sess.driver.flush()
                if len(res.batch):
                    batches.append(res.batch)
                    batch_core_ids.append(tidx)

        batch = SampleBatch.concat(batches) if batches else SampleBatch()
        cores = (
            np.repeat(
                np.asarray(batch_core_ids, dtype=np.int32),
                np.asarray([len(b) for b in batches], dtype=np.int64),
            )
            if batches
            else np.zeros(0, dtype=np.int32)
        )

        baseline = self.run_baseline()
        profiled_cycles = team.max_cycles
        duration_s = profiled_cycles / freq

        # perf-style throttling across the whole machine
        throttle_events = 0
        throttled = 0
        total_wakeups = sum(s.n_wakeups for s in stats)
        if sampling and duration_s > 0 and total_wakeups:
            irq_rate = total_wakeups / duration_s
            frac = self.throttle.throttled_fraction(irq_rate, w.n_threads)
            if frac > 0 and len(batch):
                rng = np.random.default_rng([self.seed, 997])
                keep = rng.random(len(batch)) >= frac
                throttled = int((~keep).sum())
                batch = batch.select(keep)
                cores = cores[keep]
            throttle_events = self.throttle.throttle_events(
                irq_rate, w.n_threads, duration_s
            )

        samples_processed = len(batch)
        accuracy = (
            sampling_accuracy(
                baseline.mem_counted, samples_processed, settings.period
            )
            if sampling
            else 0.0
        )
        overhead = (
            (profiled_cycles - baseline.wall_cycles) / baseline.wall_cycles
            if baseline.wall_cycles > 0
            else 0.0
        )

        # timestamps -> perf time -> seconds
        if sampling and sessions:
            meta = sessions[0].event.ring.meta  # type: ignore[union-attr]
            conv = TimescaleConverter(meta)
            times_s = np.asarray(conv.to_seconds(batch.ts), dtype=np.float64)
        else:
            times_s = np.zeros(len(batch), dtype=np.float64)

        rss_series = None
        if settings.track_rss:
            rss_series = self._rss_series(duration_s)
        bw_series = None
        if settings.enable and settings.mode in (NmoMode.BANDWIDTH, NmoMode.FULL):
            bw_series = self._bandwidth_series(duration_s)

        return ProfileResult(
            workload=w.name,
            settings=settings,
            n_threads=w.n_threads,
            mem_counted=baseline.mem_counted,
            samples_processed=samples_processed,
            accuracy=accuracy,
            baseline_cycles=baseline.wall_cycles,
            profiled_cycles=profiled_cycles,
            time_overhead=overhead,
            collisions=sum(s.n_collisions for s in stats),
            wakeups=total_wakeups,
            truncated=truncated,
            throttle_events=throttle_events,
            throttled_samples=throttled,
            decode_skipped=decode_skipped,
            batch=batch,
            sample_cores=cores,
            sample_times_s=times_s,
            per_thread=stats,
            annotations=ann,
            rss_series=rss_series,
            bw_series=bw_series,
            phase_spans=phase_spans,
        )

    # -- temporal views ----------------------------------------------------------------

    def _interval(self, duration_s: float) -> float:
        """Sampling interval for temporal series: 1 s at full scale, finer
        for scaled-down runs (>= 100 points across the run)."""
        if self.bw_interval_s is not None:
            return self.bw_interval_s
        if duration_s <= 0:
            return 1.0
        return min(1.0, max(duration_s / 120.0, 1e-9))

    def _rss_series(self, duration_s: float) -> tuple[np.ndarray, np.ndarray]:
        dt = self._interval(duration_s)
        t = np.arange(0.0, max(duration_s, dt), dt)
        return t, self.workload.rss_at(t)

    def _bandwidth_series(self, duration_s: float) -> tuple[np.ndarray, np.ndarray]:
        """Bus-event counting per interval, divided by interval length.

        Each phase's traffic is distributed over the bins it overlaps in
        proportion to the overlap duration, so a bin fully inside a phase
        reads exactly that phase's bandwidth.
        """
        dt = self._interval(duration_s)
        series = IntervalSeries(interval_s=dt)
        for phase, t0, t1 in self.workload.phase_spans():
            nbytes = self.workload.phase_dram_bytes(phase)
            dur = max(t1 - t0, 1e-12)
            rate = min(nbytes / dur, self.workload.machine.dram.peak_bandwidth)
            b0 = int(t0 // dt)
            b1 = int(max(t1 - 1e-12, t0) // dt)
            starts = np.arange(b0, b1 + 1) * dt
            overlap = np.clip(
                np.minimum(t1, starts + dt) - np.maximum(t0, starts), 0.0, dt
            )
            # bin by midpoints: float error on exact bin edges must not
            # push a contribution into the neighbouring bin
            series.add_many(starts + dt / 2, rate * overlap)
        t, v = series.rate_series(until_s=duration_s)
        return t, v

    @staticmethod
    def bandwidth_gibs(series: tuple[np.ndarray, np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: convert a bytes/s series to GiB/s."""
        t, v = series
        return t, v / GiB
