"""NMO: the paper's multi-level memory-centric profiler."""

from repro.nmo.annotations import AddressTag, AnnotationRegistry, RegionSpan
from repro.nmo.backends import (
    ArmSpeBackend,
    CoreSession,
    FixedAuxPagesBackend,
    X86PebsBackend,
    select_backend,
)
from repro.nmo.cache_activity import (
    CacheMixSeries,
    LatencyProfile,
    cache_mix_over_time,
    dram_pressure_windows,
    level_breakdown_by_object,
    miss_latency_profile,
)
from repro.nmo.bandwidth import (
    BandwidthSummary,
    RooflinePoint,
    arithmetic_intensity,
    dominant_period_s,
    roofline,
    summarise_bandwidth,
)
from repro.nmo.capacity import (
    CapacitySummary,
    overprovisioned_bytes,
    summarise_capacity,
)
from repro.nmo.env import TABLE_I_DEFAULTS, NmoMode, NmoSettings
from repro.nmo.profiler import (
    BaselineResult,
    NmoProfiler,
    ProfileResult,
    ThreadStats,
    sampling_accuracy,
)
from repro.nmo.regions import RegionProfile, RegionStats, split_score
from repro.nmo.timescale import TimescaleConverter
from repro.nmo.tracefile import TraceData, read_trace, samples_digest, write_trace

__all__ = [
    "AddressTag",
    "AnnotationRegistry",
    "ArmSpeBackend",
    "FixedAuxPagesBackend",
    "CacheMixSeries",
    "LatencyProfile",
    "cache_mix_over_time",
    "dram_pressure_windows",
    "level_breakdown_by_object",
    "miss_latency_profile",
    "BandwidthSummary",
    "BaselineResult",
    "CapacitySummary",
    "CoreSession",
    "NmoMode",
    "NmoProfiler",
    "NmoSettings",
    "ProfileResult",
    "RegionProfile",
    "RegionSpan",
    "RegionStats",
    "RooflinePoint",
    "TABLE_I_DEFAULTS",
    "ThreadStats",
    "TimescaleConverter",
    "TraceData",
    "X86PebsBackend",
    "arithmetic_intensity",
    "dominant_period_s",
    "overprovisioned_bytes",
    "read_trace",
    "roofline",
    "sampling_accuracy",
    "samples_digest",
    "select_backend",
    "split_score",
    "summarise_bandwidth",
    "summarise_capacity",
    "write_trace",
]
