"""Cache-activity tracing — the paper's §IX future work.

"Furthermore, we will ... provide more advanced metrics, such as tracing
cache activities."  SPE sample records already carry the memory level
that serviced each sampled access; this module turns them into the
advanced views the authors sketch:

* a **temporal cache mix**: per-interval share of samples serviced by
  L1 / L2 / SLC / DRAM,
* **per-object level breakdowns**: which data structures miss where,
* a **miss-latency profile**: observed latency distribution per level
  (the raw material for cycles-per-miss attribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NmoError
from repro.machine.hierarchy import MemLevel
from repro.nmo.profiler import ProfileResult

LEVELS = (MemLevel.L1, MemLevel.L2, MemLevel.SLC, MemLevel.DRAM)


def _level_mask(levels_col: np.ndarray, lv: MemLevel) -> np.ndarray:
    """Sample mask for one view level.

    The ``DRAM`` row aggregates every DRAM-class level: on tiered
    machines samples report the tier that serviced them
    (``DRAM_REMOTE``/``DRAM_CXL``, see :mod:`repro.machine.tiers`), and
    these views answer "did main memory service it" — per-tier
    granularity lives in :mod:`repro.analysis.tiering`.  Flat runs
    never emit tier levels, so their masks are unchanged.
    """
    if lv is MemLevel.DRAM:
        return levels_col >= np.uint8(MemLevel.DRAM)
    return levels_col == np.uint8(lv)


@dataclass(frozen=True)
class CacheMixSeries:
    """Per-interval servicing-level shares (each row sums to ~1)."""

    times: np.ndarray                 #: interval start times (s)
    shares: dict[MemLevel, np.ndarray]
    counts: np.ndarray                #: samples per interval

    def dominant_level(self) -> list[MemLevel]:
        """Per interval, the level servicing the most samples."""
        stacked = np.vstack([self.shares[lv] for lv in LEVELS])
        idx = np.argmax(stacked, axis=0)
        return [LEVELS[i] for i in idx]


def cache_mix_over_time(
    result: ProfileResult, n_bins: int = 40
) -> CacheMixSeries:
    """Bin the sampled accesses and compute per-level shares per bin."""
    if n_bins <= 0:
        raise NmoError("n_bins must be positive")
    t = result.sample_times_s
    if t.size == 0:
        raise NmoError("no samples to analyse")
    t_end = float(t.max()) + 1e-12
    edges = np.linspace(0.0, t_end, n_bins + 1)
    bins = np.clip(np.searchsorted(edges, t, side="right") - 1, 0, n_bins - 1)
    counts = np.bincount(bins, minlength=n_bins).astype(np.float64)
    shares: dict[MemLevel, np.ndarray] = {}
    for lv in LEVELS:
        lv_counts = np.bincount(
            bins[_level_mask(result.batch.level, lv)], minlength=n_bins
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            shares[lv] = np.where(counts > 0, lv_counts / counts, 0.0)
    return CacheMixSeries(times=edges[:-1], shares=shares, counts=counts)


def level_breakdown_by_object(
    result: ProfileResult,
) -> dict[str, dict[str, float]]:
    """Per tagged data object, the share of samples per memory level.

    The region-level extension of the paper's workflow: "which memory
    objects are the most accessed" becomes "which objects miss where".
    """
    out: dict[str, dict[str, float]] = {}
    for tag in result.annotations.address_tags:
        mask = tag.contains(result.batch.addr)
        n = int(mask.sum())
        if n == 0:
            out[tag.name] = {lv.pretty: 0.0 for lv in LEVELS}
            continue
        lv_col = result.batch.level[mask]
        out[tag.name] = {
            lv.pretty: float(_level_mask(lv_col, lv).sum() / n)
            for lv in LEVELS
        }
    return out


@dataclass(frozen=True)
class LatencyProfile:
    """Observed sampled-latency statistics for one memory level."""

    level: MemLevel
    n_samples: int
    mean: float
    p50: float
    p95: float
    maximum: float


def miss_latency_profile(result: ProfileResult) -> list[LatencyProfile]:
    """Latency distribution per servicing level (cycles, from SPE's
    total-latency counter packets)."""
    out = []
    for lv in LEVELS:
        lat = result.batch.total_lat[_level_mask(result.batch.level, lv)]
        if lat.size == 0:
            continue
        latf = lat.astype(np.float64)
        out.append(
            LatencyProfile(
                level=lv,
                n_samples=int(lat.size),
                mean=float(latf.mean()),
                p50=float(np.percentile(latf, 50)),
                p95=float(np.percentile(latf, 95)),
                maximum=float(latf.max()),
            )
        )
    return out


def dram_pressure_windows(
    result: ProfileResult, n_bins: int = 40, threshold: float = 0.2
) -> list[tuple[float, float]]:
    """Time windows where the DRAM share of samples exceeds ``threshold``
    — candidate phases for data placement or HBM tiering."""
    if not 0.0 < threshold < 1.0:
        raise NmoError("threshold must be in (0, 1)")
    mix = cache_mix_over_time(result, n_bins=n_bins)
    dram = mix.shares[MemLevel.DRAM]
    dt = mix.times[1] - mix.times[0] if mix.times.size > 1 else 0.0
    windows: list[tuple[float, float]] = []
    start = None
    for t, share in zip(mix.times, dram):
        if share >= threshold and start is None:
            start = float(t)
        elif share < threshold and start is not None:
            windows.append((start, float(t)))
            start = None
    if start is not None:
        windows.append((start, float(mix.times[-1]) + dt))
    return windows
