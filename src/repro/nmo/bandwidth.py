"""Temporal bandwidth profiling and arithmetic intensity — §VI-B, Fig. 3.

NMO estimates memory bandwidth by counting bus load/store events each
interval and dividing by the interval length.  Augmenting the bus events
with floating-point events yields arithmetic intensity — the x-axis of
the Roofline model — so phases can be classified compute- versus
memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NmoError
from repro.machine.spec import GiB, MachineSpec
from repro.workloads.base import Phase, Workload


@dataclass(frozen=True)
class BandwidthSummary:
    """Headline bandwidth metrics of one run."""

    peak_bytes_per_s: float
    mean_bytes_per_s: float
    time_of_peak_s: float
    peak_utilisation: float   #: of the machine's peak bandwidth

    @property
    def peak_gibs(self) -> float:
        return self.peak_bytes_per_s / GiB

    @property
    def mean_gibs(self) -> float:
        return self.mean_bytes_per_s / GiB


def summarise_bandwidth(
    series: tuple[np.ndarray, np.ndarray], machine: MachineSpec
) -> BandwidthSummary:
    """Fold a bandwidth time series into its summary statistics.

    Returns a :class:`BandwidthSummary` with the mean/peak rates and
    the fraction of the machine's peak bandwidth they represent (the
    headline numbers quoted alongside the paper's Fig. 3 view).
    """
    t, v = np.asarray(series[0]), np.asarray(series[1])
    if t.shape != v.shape or t.ndim != 1 or t.size == 0:
        raise NmoError("bandwidth series must be two equal non-empty 1-D arrays")
    i = int(np.argmax(v))
    return BandwidthSummary(
        peak_bytes_per_s=float(v[i]),
        mean_bytes_per_s=float(v.mean()),
        time_of_peak_s=float(t[i]),
        peak_utilisation=float(v[i] / machine.dram.peak_bandwidth),
    )


def dominant_period_s(series: tuple[np.ndarray, np.ndarray]) -> float:
    """Dominant periodicity of a bandwidth series (FFT peak).

    The paper reads a ~15 s period off In-memory Analytics' bandwidth
    plot; this computes it instead of eyeballing.
    """
    t, v = np.asarray(series[0], dtype=float), np.asarray(series[1], dtype=float)
    if t.size < 8:
        raise NmoError("series too short for period estimation")
    dt = float(np.median(np.diff(t)))
    x = v - v.mean()
    spec = np.abs(np.fft.rfft(x))
    freqs = np.fft.rfftfreq(x.size, d=dt)
    # ignore the DC bin
    k = 1 + int(np.argmax(spec[1:]))
    if freqs[k] <= 0:
        raise NmoError("no dominant period found")
    return float(1.0 / freqs[k])


@dataclass(frozen=True)
class RooflinePoint:
    """One phase in Roofline coordinates."""

    phase: str
    arithmetic_intensity: float   #: flops / DRAM byte
    flops_per_s: float
    bandwidth_bytes_per_s: float
    memory_bound: bool


def arithmetic_intensity(workload: Workload, phase: Phase) -> float:
    """FLOPs per DRAM byte for one phase (inf for zero-traffic phases)."""
    flops = phase.n_mem_ops * phase.flops_per_group * workload.phase_threads(phase)
    nbytes = workload.phase_dram_bytes(phase)
    if nbytes <= 0:
        return float("inf")
    return flops / nbytes


def roofline(workload: Workload, peak_flops: float | None = None) -> list[RooflinePoint]:
    """Classify every phase against the machine's roofline.

    ``peak_flops`` defaults to 4 FLOPs/cycle/core (128-bit SIMD FMA),
    matching a Neoverse-class core.
    """
    m = workload.machine
    if peak_flops is None:
        peak_flops = 4.0 * m.frequency_hz * workload.n_threads
    if peak_flops <= 0:
        raise NmoError("peak_flops must be positive")
    ridge = peak_flops / m.dram.peak_bandwidth
    out = []
    for phase in workload.phases:
        ai = arithmetic_intensity(workload, phase)
        dur = phase.duration_cycles() / m.frequency_hz
        flops = phase.n_mem_ops * phase.flops_per_group * workload.phase_threads(phase)
        bw = workload.phase_bandwidth(phase)
        out.append(
            RooflinePoint(
                phase=phase.name,
                arithmetic_intensity=ai,
                flops_per_s=flops / dur if dur > 0 else 0.0,
                bandwidth_bytes_per_s=bw,
                memory_bound=ai < ridge,
            )
        )
    return out
