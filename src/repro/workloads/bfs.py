"""Rodinia BFS: level-synchronous breadth-first search.

BFS is the paper's low-collision counterexample (Fig. 8c: collisions
stay below 10 while STREAM/CFD reach hundreds-thousands): the graph is
compact enough to live in the system-level cache, the kernel is
dependency-bound rather than bandwidth-bound, so SPE's tracked samples
complete quickly and never overlap the next sampling interval.  It is
simultaneously the *highest overhead* workload at small periods
(Fig. 8b) because its retire rate — and therefore its sample arrival
rate per second — is the highest of the three.

The model runs ``repeats`` multi-source traversals of a CSR graph whose
per-level frontiers follow the usual small-world rise and fall.  The
graph is shared read-mostly data: the SLC holds one copy for all
threads (``slc_sharers=1``).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.machine.statcache import AccessClass
from repro.workloads.access_patterns import random_in, sequential, weighted_mix
from repro.workloads.base import Phase, Workload

#: Nodes at ``scale=1``; with the byte budget below the graph is ~11 MB,
#: comfortably inside the 16 MB SLC (the cache-resident regime that keeps
#: BFS collision-free).
DEFAULT_NODES = 300_000
DEFAULT_DEGREE = 6
#: frontier share of the node set per BFS level (rise and fall)
LEVEL_FRACTIONS = (0.002, 0.01, 0.05, 0.15, 0.30, 0.25, 0.12, 0.06, 0.03, 0.01)
#: memory ops per frontier node: read offsets + per-edge (edge, cost,
#: visited) + frontier bookkeeping
OPS_PER_NODE = 2 + DEFAULT_DEGREE * 3


class BfsWorkload(Workload):
    """Multi-source level-synchronous BFS over a CSR graph."""

    name = "bfs"

    def __init__(
        self,
        machine,
        n_threads: int = 32,
        scale: float = 1.0,
        repeats: int = 50,
        n_nodes: int | None = None,
        degree: int = DEFAULT_DEGREE,
        **kwargs,
    ) -> None:
        if repeats <= 0:
            raise WorkloadError("repeats must be >= 1")
        if degree <= 0:
            raise WorkloadError("degree must be >= 1")
        self.repeats = repeats
        self.degree = degree
        self.reference_locality = kwargs.pop("reference_locality", True)
        self._n_nodes_arg = n_nodes
        super().__init__(machine, n_threads=n_threads, scale=scale, **kwargs)

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    def _build(self) -> None:
        n = (
            self._n_nodes_arg
            if self._n_nodes_arg is not None
            else max(2048, int(self.scale * DEFAULT_NODES))
        )
        self._n_nodes = n
        deg = self.degree
        t = self.n_threads

        nodes = self.alloc_object("nodes", n * 8)          # CSR offsets
        edges = self.alloc_object("edges", n * deg * 4)    # edge targets
        cost = self.alloc_object("cost", n * 4)
        visited = self.alloc_object("visited", n)

        loc_n = DEFAULT_NODES if self.reference_locality else n
        graph_bytes = loc_n * 8 + loc_n * deg * 4 + loc_n * 4 + loc_n
        classes = [
            # random node-indexed state (cost / visited / frontier checks)
            AccessClass(footprint=max(loc_n * 5, 64), stride=0, weight=0.5),
            # edge-list scans: sequential within a node's adjacency run
            AccessClass(footprint=max(loc_n * deg * 4, 64), stride=4, weight=0.5),
        ]
        addr = weighted_mix(
            [
                (sequential(nodes, n, 8, n_threads=t), 2.0),
                (sequential(edges, n * deg, 4, n_threads=t), float(deg)),
                (random_in(cost, n, 4, salt=3), float(deg)),
                (random_in(visited, n, 1, salt=9), float(deg)),
            ],
            salt=13,
        )

        actual_graph_bytes = n * 8 + n * deg * 4 + n * 4 + n
        self.add_phase(
            Phase(
                name="load_graph",
                n_mem_ops=(actual_graph_bytes // 4 + t - 1) // t,
                cpi=0.5,
                addr_fn=weighted_mix(
                    [
                        (sequential(nodes, n, 8, n_threads=t), 2.0),
                        (sequential(edges, n * deg, 4, n_threads=t), float(deg)),
                    ],
                    salt=21,
                ),
                store_fraction=1.0,
                classes=[AccessClass(footprint=graph_bytes // t, stride=4)],
                group=2,
                tag="init",
                touch={
                    "nodes": n * 8,
                    "edges": n * deg * 4,
                    "cost": n * 4,
                    "visited": n,
                },
                slc_sharers=1,
                pc_base=0x421000,
            )
        )

        for lvl, frac in enumerate(LEVEL_FRACTIONS):
            frontier = max(1, int(frac * n))
            n_mem = (frontier * (2 + deg * 3) * self.repeats + t - 1) // t
            self.add_phase(
                Phase(
                    name=f"level#{lvl}",
                    n_mem_ops=n_mem,
                    cpi=0.3,
                    addr_fn=addr,
                    store_fraction=0.15,
                    classes=classes,
                    # BFS is almost pure memory traversal: every decoded op
                    # is a load/store, which is why its per-second sample
                    # rate (and profiling overhead, Fig. 8b) is the highest
                    group=1,
                    tag="bfs",
                    slc_sharers=1,
                    pc_base=0x422000,
                )
            )
        self.finalise_dram_pressure()
