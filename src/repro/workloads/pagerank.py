"""CloudSuite Graph Analytics: PageRank on Spark/Hadoop (simulated).

The paper runs CloudSuite's Graph Analytics benchmark (PageRank, Java +
Hadoop) in a Docker container limited to 32 cores and 256 GiB, and uses
it to demonstrate NMO's temporal capacity view (Fig. 2: RSS climbs to
~123.8 GiB, 48.4 % of the container limit) and temporal bandwidth view
(Fig. 3: a ~120 GiB/s spike near 5 s while the edge list loads, then a
fluctuating decline through the rank iterations).

Substitution note (DESIGN.md §1): we cannot run the JVM/Hadoop stack, so
the workload is modelled as its phase timeline — JVM startup, dataset
load, and rank iterations — with each phase's duration, DRAM traffic,
and newly-resident bytes taken from the published curves.  The phases
are real :class:`~repro.workloads.base.Phase` objects: they carry address
functions and locality mixtures, so the SPE path can sample them too.
"""

from __future__ import annotations

from repro.machine.spec import GiB
from repro.machine.statcache import AccessClass
from repro.workloads.access_patterns import random_in, sequential, weighted_mix
from repro.workloads.base import Phase, Workload

#: (name, duration_s, bandwidth GiB/s, newly-touched GiB) at scale=1
PHASE_PLAN = (
    ("jvm_startup", 1.5, 6.0, 6.0),
    ("load_edges", 3.5, 118.0, 82.0),
    ("rank_iter#0", 2.3, 74.0, 18.0),
    ("rank_iter#1", 2.3, 58.0, 9.0),
    ("rank_iter#2", 2.3, 49.0, 4.0),
    ("rank_iter#3", 2.3, 42.0, 2.0),
    ("rank_iter#4", 2.3, 35.0, 1.2),
    ("rank_iter#5", 2.3, 30.0, 0.8),
    ("rank_iter#6", 2.3, 26.0, 0.5),
    ("rank_iter#7", 2.3, 23.0, 0.3),
)

#: Total resident set at saturation (paper: 123.8 GiB).
SATURATED_RSS_GIB = sum(p[3] for p in PHASE_PLAN)


class PageRankWorkload(Workload):
    """Phase-timeline model of CloudSuite Graph Analytics (PageRank)."""

    name = "pagerank"

    def __init__(
        self,
        machine,
        n_threads: int = 32,
        scale: float = 1.0,
        mem_limit: int | None = 256 * GiB,
        **kwargs,
    ) -> None:
        super().__init__(
            machine, n_threads=n_threads, scale=scale, mem_limit=mem_limit, **kwargs
        )

    def _build(self) -> None:
        heap_bytes = int(SATURATED_RSS_GIB * GiB) + 2 * GiB
        heap = self.alloc_object("jvm_heap", heap_bytes)
        edges_view = heap + 8 * GiB  # edge partitions live inside the heap

        freq = self.machine.frequency_hz
        cpi, group = 0.8, 2
        rank_classes = [
            AccessClass(footprint=int(8 * GiB), stride=0, weight=0.6),
            AccessClass(footprint=int(1 * GiB), stride=8, weight=0.4),
        ]
        addr = weighted_mix(
            [
                (random_in(heap, heap_bytes // 8, 8, salt=41), 0.6),
                (
                    sequential(edges_view, int(60 * GiB) // 8, 8,
                               n_threads=self.n_threads),
                    0.4,
                ),
            ],
            salt=43,
        )
        for name, dur_s, bw_gibs, touch_gib in PHASE_PLAN:
            dur = dur_s * self.scale
            n_ops_thread = max(1, int(dur * freq / cpi))
            self.add_phase(
                Phase(
                    name=name,
                    n_mem_ops=max(1, n_ops_thread // group),
                    cpi=cpi,
                    group=group,
                    addr_fn=addr,
                    store_fraction=0.35,
                    classes=rank_classes,
                    touch={"jvm_heap": int(touch_gib * GiB)},
                    dram_bytes_override=bw_gibs * GiB * dur,
                    tag="pagerank",
                    pc_base=0x431000,
                )
            )
        # note: no finalise_dram_pressure — bandwidth comes from overrides
