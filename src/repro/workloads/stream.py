"""STREAM: the synthetic sustainable-bandwidth benchmark (Triad kernel).

The paper profiles STREAM's Triad (``a[i] = b[i] + SCALAR * c[i]``) with
OpenMP threads, tagging the kernel region "triad" and the three arrays
``a``, ``b``, ``c`` (Fig. 4).  Memory behaviour per element: two loads
(``b[i]``, ``c[i]``) and one store (``a[i]``), perfectly sequential per
thread chunk, with one FMA of compute — a fully bandwidth-bound kernel
that saturates the memory controllers and therefore runs with a heavily
*loaded* DRAM latency (the source of its SPE sample collisions at small
sampling periods, Fig. 8c).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.machine.statcache import AccessClass
from repro.runtime.openmp import chunk_of
from repro.workloads.access_patterns import round_robin, sequential
from repro.workloads.base import Phase, Workload

#: Default array length at ``scale=1``: 2^27 doubles = 1 GiB per array
#: (the paper's "1G array size" configuration).
DEFAULT_ELEMS = 1 << 27


class StreamWorkload(Workload):
    """STREAM Triad with OpenMP static scheduling."""

    name = "stream"

    def __init__(
        self,
        machine,
        n_threads: int = 32,
        scale: float = 1.0,
        iterations: int = 5,
        n_elems: int | None = None,
        reference_locality: bool = True,
        **kwargs,
    ) -> None:
        """``reference_locality=True`` (default) evaluates the locality
        mixture at the paper-scale array size even when ``scale`` shrinks
        the op count, so cache behaviour — and everything downstream:
        levels, latencies, collisions — is scale-invariant.  Set False
        for small exact-simulation cross-checks."""
        if iterations <= 0:
            raise WorkloadError("iterations must be >= 1")
        self.iterations = iterations
        self.reference_locality = reference_locality
        self._n_elems_arg = n_elems
        super().__init__(machine, n_threads=n_threads, scale=scale, **kwargs)

    @property
    def n_elems(self) -> int:
        return self._n_elems

    def _build(self) -> None:
        n = (
            self._n_elems_arg
            if self._n_elems_arg is not None
            else max(1024, int(self.scale * DEFAULT_ELEMS))
        )
        self._n_elems = n
        nbytes = n * 8
        a = self.alloc_object("a", nbytes)
        b = self.alloc_object("b", nbytes)
        c = self.alloc_object("c", nbytes)

        t = self.n_threads
        loc_n = DEFAULT_ELEMS if self.reference_locality else n
        lo, hi = chunk_of(loc_n, t, 0)
        slice_bytes = 3 * (hi - lo) * 8
        seq_class = [AccessClass(footprint=max(slice_bytes, 64), stride=8)]

        # --- init: sequential stores populate all three arrays ------------
        init_addr = round_robin(
            [
                sequential(a, n, 8, n_threads=t),
                sequential(b, n, 8, n_threads=t),
                sequential(c, n, 8, n_threads=t),
            ]
        )
        self.add_phase(
            Phase(
                name="init",
                n_mem_ops=3 * ((n + t - 1) // t),
                cpi=0.5,
                addr_fn=init_addr,
                kind_fn=lambda mi, th: np.ones(np.asarray(mi).shape, dtype=bool),
                classes=seq_class,
                group=2,
                tag="init",
                touch={"a": nbytes, "b": nbytes, "c": nbytes},
                alloc={"a": nbytes, "b": nbytes, "c": nbytes},
                pc_base=0x401000,
            )
        )

        # --- triad iterations: load b, load c, store a --------------------
        triad_addr = round_robin(
            [
                sequential(b, n, 8, n_threads=t),
                sequential(c, n, 8, n_threads=t),
                sequential(a, n, 8, n_threads=t),
            ]
        )

        def triad_kinds(mem_idx: np.ndarray, thread: int) -> np.ndarray:
            # the third access of each element group is the store to a[i]
            return (np.asarray(mem_idx, dtype=np.int64) % 3) == 2

        for it in range(self.iterations):
            self.add_phase(
                Phase(
                    name=f"triad#{it}",
                    n_mem_ops=3 * ((n + t - 1) // t),
                    cpi=0.5,
                    addr_fn=triad_addr,
                    kind_fn=triad_kinds,
                    classes=seq_class,
                    group=2,
                    flops_per_group=1,
                    tag="triad",
                    pc_base=0x402000,
                )
            )
        self.finalise_dram_pressure()
