"""Workload framework: phase-structured, closed-form application models.

The paper evaluates five applications (STREAM, Rodinia CFD and BFS,
CloudSuite PageRank and In-memory Analytics).  Their relevant behaviour —
for every figure in the evaluation — is fully determined by:

* the **data objects** they allocate (sizes, when touched/freed),
* a sequence of **phases**, each with a per-thread operation count, an
  op-mix (memory/store/flop fractions), a locality mixture
  (:class:`~repro.machine.statcache.AccessClass`), and a deterministic
  **address function** mapping memory-op index -> virtual address,
* per-phase timing (cycles-per-op) and DRAM pressure.

A workload therefore never materialises its op stream.  The SPE sampler
asks a :class:`PhaseOpSource` to describe only the sampled operations
(closed form), which scales to the paper's 10^10..10^11-op runs; small
configurations can still be expanded to real traces for the exact cache
simulator via :meth:`PhaseOpSource.materialise`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cpu.ops import OpChunk, OpKind
from repro.errors import WorkloadError
from repro.machine.spec import MachineSpec
from repro.machine.statcache import AccessClass, StatCacheModel
from repro.runtime.process import SimProcess

#: Address-function signature: (mem-op indices, thread id) -> uint64 addrs.
AddrFn = Callable[[np.ndarray, int], np.ndarray]
#: Optional kind function: (mem-op indices, thread id) -> bool store mask.
KindFn = Callable[[np.ndarray, int], np.ndarray]


def hash_uniform(idx: np.ndarray, salt: int = 0) -> np.ndarray:
    """Deterministic pseudo-uniform floats in [0, 1) from op indices.

    A splitmix64-style mix keeps address/kind functions reproducible
    across calls (the same op index always maps to the same access),
    which property tests rely on.
    """
    x = (np.asarray(idx, dtype=np.uint64) + np.uint64(salt)) * np.uint64(
        0x9E3779B97F4A7C15
    )
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(2**64)


@dataclass
class Phase:
    """One execution phase of a workload.

    Parameters
    ----------
    name:
        Phase label; doubles as the NMO annotation tag when ``tag`` is
        not given separately.
    n_mem_ops:
        Memory operations *per thread* in this phase.
    group:
        Decoded ops per memory op (one mem op + ``group - 1`` filler
        compute ops); total ops per thread = ``n_mem_ops * group``.
    cpi:
        Average cycles per decoded op (sets phase duration and the SPE
        sampling gap in cycles).
    store_fraction:
        Probability a memory op is a store (ignored if ``kind_fn``).
    flops_per_group:
        How many of each group's filler ops are floating-point.
    classes:
        Locality mixture driving the statistical cache model.
    addr_fn:
        Deterministic memory-op index -> virtual address map.
    kind_fn:
        Optional exact store/load pattern (STREAM's b,c,a cycle).
    dram_latency_scale:
        Loaded-latency multiplier for DRAM accesses in this phase.
    parallel:
        Whether the phase runs on the whole team or a single thread.
    alloc / touch / free:
        Named capacity events: mappings created at phase start, bytes
        becoming resident linearly across the phase, and mappings
        released at phase end (drives the Fig. 2 capacity view).
    dram_bytes_override:
        Explicit per-phase DRAM traffic (whole team) for the bandwidth
        view; computed from ``classes`` when None.
    tag:
        NMO annotation tag covering this phase, if any.
    """

    name: str
    n_mem_ops: int
    cpi: float
    addr_fn: AddrFn
    classes: list[AccessClass]
    group: int = 2
    store_fraction: float = 0.3
    flops_per_group: int = 0
    kind_fn: KindFn | None = None
    dram_latency_scale: float = 1.0
    parallel: bool = True
    alloc: dict[str, int] = field(default_factory=dict)
    touch: dict[str, int] = field(default_factory=dict)
    free: list[str] = field(default_factory=list)
    dram_bytes_override: float | None = None
    tag: str | None = None
    pc_base: int = 0x400000
    #: SLC capacity sharers for the stat-cache model; None means the
    #: participating thread count (private working sets).  Workloads with
    #: a *shared* read-mostly structure (BFS's graph) set 1: the SLC
    #: holds one copy regardless of thread count.
    slc_sharers: int | None = None

    def __post_init__(self) -> None:
        if self.n_mem_ops < 0:
            raise WorkloadError("n_mem_ops must be >= 0")
        if self.group < 1:
            raise WorkloadError("group must be >= 1")
        if self.cpi <= 0:
            raise WorkloadError("cpi must be positive")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise WorkloadError("store_fraction must be in [0, 1]")
        if not 0 <= self.flops_per_group < self.group:
            raise WorkloadError("flops_per_group must fit in the filler ops")
        if self.dram_latency_scale < 1.0:
            raise WorkloadError("dram_latency_scale must be >= 1")
        if not self.classes:
            raise WorkloadError("phase needs at least one access class")

    @property
    def n_ops(self) -> int:
        """Decoded ops per participating thread."""
        return self.n_mem_ops * self.group

    def duration_cycles(self) -> float:
        """Per-thread phase duration (all participants run in lockstep)."""
        return self.n_ops * self.cpi

    def mem_fraction(self) -> float:
        return 1.0 / self.group


class PhaseOpSource:
    """Closed-form :class:`~repro.spe.sampler.OpSource` for one phase/thread.

    ``placement`` (a :class:`~repro.machine.tiers.PagePlacement`, set by
    :meth:`Workload.attach_tiering`) remaps DRAM-serviced samples to the
    memory tier holding their page, so SPE records carry the tier that
    serviced each access; ``None`` keeps the flat single-tier levels.
    """

    def __init__(
        self,
        phase: Phase,
        thread: int,
        stat: StatCacheModel,
        sharers: int = 1,
        placement=None,
    ) -> None:
        self.phase = phase
        self.thread = thread
        self.stat = stat
        self.sharers = sharers
        self.placement = placement
        self.n_ops = phase.n_ops
        self.cpi = phase.cpi
        self.dram_latency_scale = phase.dram_latency_scale

    def ops_at(self, idx: np.ndarray, rng: np.random.Generator):
        idx = np.asarray(idx, dtype=np.int64)
        p = self.phase
        pos = idx % p.group
        mem_idx = idx // p.group
        # The memory op's slot within each group is pseudo-randomised per
        # group.  Real instruction streams are not strictly periodic; a
        # fixed slot would alias with period-divisible sampling intervals
        # and bias the op-type mix of the samples (the exact artefact
        # SPE's hardware interval perturbation exists to counter).
        mem_slot = (
            hash_uniform(mem_idx, salt=229) * p.group
        ).astype(np.int64)
        is_mem = pos == mem_slot
        kinds = np.full(idx.shape, OpKind.OTHER, dtype=np.uint8)
        if p.flops_per_group:
            rel = (pos - mem_slot) % p.group
            kinds[(rel >= 1) & (rel <= p.flops_per_group)] = OpKind.FLOP
        if is_mem.any():
            mi = mem_idx[is_mem]
            if p.kind_fn is not None:
                stores = p.kind_fn(mi, self.thread)
            else:
                stores = hash_uniform(mi, salt=17) < p.store_fraction
            kinds[is_mem] = np.where(stores, OpKind.STORE, OpKind.LOAD).astype(
                np.uint8
            )
        addrs = np.zeros(idx.shape, dtype=np.uint64)
        if is_mem.any():
            addrs[is_mem] = p.addr_fn(mem_idx[is_mem], self.thread)
        return kinds, addrs

    def levels_at(self, idx, kinds, addrs, rng: np.random.Generator):
        levels = np.zeros(np.asarray(idx).shape, dtype=np.uint8)
        is_mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        n_mem = int(is_mem.sum())
        if n_mem:
            levels[is_mem] = self.stat.draw_levels(
                self.phase.classes, n_mem, rng, sharers=self.sharers
            )
            if self.placement is not None:
                # tier attribution: a DRAM-serviced sample reports the
                # tier holding its page (DRAM + tier index); a pure
                # post-hoc remap, so the RNG stream is untouched and the
                # placement-free path stays bit-identical
                from repro.machine.hierarchy import MemLevel

                mem_levels = levels[is_mem]
                dram = mem_levels == np.uint8(MemLevel.DRAM)
                if dram.any():
                    mem_addrs = addrs[is_mem]
                    mem_levels[dram] += self.placement.tier_of(mem_addrs[dram])
                    levels[is_mem] = mem_levels
        return levels

    def pcs_at(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.uint64)
        return (self.phase.pc_base + (idx % 4096) * 4).astype(np.uint64)

    def materialise(self, rng: np.random.Generator, limit: int = 2_000_000) -> OpChunk:
        """Expand the full op stream (small configs / exact-cache tests)."""
        if self.n_ops > limit:
            raise WorkloadError(
                f"refusing to materialise {self.n_ops} ops (> {limit}); "
                "use the closed-form sampling path instead"
            )
        idx = np.arange(self.n_ops, dtype=np.int64)
        kinds, addrs = self.ops_at(idx, rng)
        return OpChunk(kinds=kinds, addrs=addrs)


class Workload(abc.ABC):
    """Base class of the five paper applications.

    Subclasses implement :meth:`_build`, allocating named data objects in
    the process address space and appending :class:`Phase` objects via
    :meth:`add_phase`.
    """

    #: registry name, e.g. "stream"
    name: str = "workload"

    def __init__(
        self,
        machine: MachineSpec,
        n_threads: int = 1,
        scale: float = 1.0,
        mem_limit: int | None = None,
        seed: int = 0,
    ) -> None:
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        self.machine = machine
        self.n_threads = n_threads
        self.scale = scale
        self.seed = seed
        self.process = SimProcess(machine, n_threads=n_threads, mem_limit=mem_limit)
        self.stat = StatCacheModel(machine)
        #: page->tier placement set by :meth:`attach_tiering` (None = flat)
        self.placement = None
        self._phases: list[Phase] = []
        self._build()
        if not self._phases:
            raise WorkloadError(f"workload {self.name!r} defined no phases")

    def phase_sharers(self, phase: Phase) -> int:
        """SLC sharers used by the stat-cache for this phase."""
        return (
            phase.slc_sharers
            if phase.slc_sharers is not None
            else self.phase_threads(phase)
        )

    def finalise_dram_pressure(self, factor: float = 1.5) -> None:
        """Derive each phase's loaded DRAM latency from its bandwidth demand.

        Called at the end of ``_build``: bandwidth-saturating phases get
        their DRAM latency stretched (``loaded_dram_scale``), which is the
        mechanism behind the SPE sample collisions of paper Fig. 8c —
        STREAM and CFD saturate the memory system, BFS does not.
        """
        from repro.cpu.pipeline import loaded_dram_scale

        for p in self._phases:
            p.dram_latency_scale = loaded_dram_scale(
                self.bandwidth_utilisation(p), factor
            )

    # -- construction helpers -----------------------------------------------------

    @abc.abstractmethod
    def _build(self) -> None:
        """Allocate data objects and define phases."""

    def alloc_object(self, name: str, nbytes: int, populate: bool = False) -> int:
        """Allocate a named data object; returns its base address."""
        m = self.process.address_space.mmap(nbytes, name=name)
        if populate:
            m.touch_all()
        return m.start

    def add_phase(self, phase: Phase) -> None:
        self._phases.append(phase)

    # -- structure ----------------------------------------------------------------

    @property
    def phases(self) -> list[Phase]:
        return list(self._phases)

    def phase_threads(self, phase: Phase) -> int:
        return self.n_threads if phase.parallel else 1

    def attach_tiering(self, placement) -> None:
        """Attach a page→tier placement map for tiered-memory profiling.

        Subsequent op sources report DRAM-serviced samples as the tier
        holding their page (see :mod:`repro.machine.tiers`); pass
        ``None`` to detach and restore flat single-tier levels.
        """
        self.placement = placement

    def op_source(self, phase: Phase, thread: int) -> PhaseOpSource:
        if not any(p is phase for p in self._phases):
            raise WorkloadError("phase does not belong to this workload")
        if not 0 <= thread < self.phase_threads(phase):
            raise WorkloadError(f"thread {thread} not active in phase {phase.name}")
        return PhaseOpSource(
            phase, thread, self.stat, sharers=self.phase_sharers(phase),
            placement=self.placement,
        )

    # -- aggregates (the "perf stat" ground truth) -----------------------------------

    def total_mem_ops(self) -> int:
        """Team-wide retired loads+stores (the Eq. 1 ``mem_counted``)."""
        return sum(p.n_mem_ops * self.phase_threads(p) for p in self._phases)

    def total_ops(self) -> int:
        return sum(p.n_ops * self.phase_threads(p) for p in self._phases)

    def total_flops(self) -> int:
        return sum(
            p.n_mem_ops * p.flops_per_group * self.phase_threads(p)
            for p in self._phases
        )

    def baseline_cycles(self) -> float:
        """Per-thread wall cycles without profiling (phases sequential)."""
        return sum(p.duration_cycles() for p in self._phases)

    def baseline_seconds(self) -> float:
        return self.baseline_cycles() / self.machine.frequency_hz

    def phase_spans(self) -> list[tuple[Phase, float, float]]:
        """(phase, start_s, end_s) under baseline timing."""
        out = []
        t = 0.0
        for p in self._phases:
            d = p.duration_cycles() / self.machine.frequency_hz
            out.append((p, t, t + d))
            t += d
        return out

    # -- temporal capacity model -------------------------------------------------------

    def rss_at(self, t_seconds: np.ndarray) -> np.ndarray:
        """Resident set size (bytes) at given times, from phase metadata.

        Bytes in ``phase.touch`` become resident linearly across the
        phase; ``phase.free`` releases whole objects at phase end.  This
        is the ground truth the capacity profiler samples (Fig. 2).
        """
        t = np.atleast_1d(np.asarray(t_seconds, dtype=np.float64))
        rss = np.zeros(t.shape, dtype=np.float64)
        for phase, t0, t1 in self.phase_spans():
            dur = max(t1 - t0, 1e-12)
            frac = np.clip((t - t0) / dur, 0.0, 1.0)
            touched = float(sum(phase.touch.values()))
            rss += frac * touched
            if phase.free:
                freed = float(
                    sum(
                        self.process.address_space.region(n).length
                        for n in phase.free
                    )
                )
                rss -= (t >= t1) * freed
        return rss

    # -- temporal bandwidth model -------------------------------------------------------

    def phase_dram_bytes(self, phase: Phase) -> float:
        """Team DRAM traffic of a phase (bytes)."""
        if phase.dram_bytes_override is not None:
            return float(phase.dram_bytes_override)
        frac = self.stat.dram_fraction(
            phase.classes, sharers=self.phase_sharers(phase)
        )
        n_mem = phase.n_mem_ops * self.phase_threads(phase)
        return n_mem * frac * self.machine.line_size

    def phase_bandwidth(self, phase: Phase) -> float:
        """Achieved DRAM bandwidth of a phase (bytes/second, rooflined)."""
        dur = phase.duration_cycles() / self.machine.frequency_hz
        if dur <= 0:
            return 0.0
        demand = self.phase_dram_bytes(phase) / dur
        return min(demand, self.machine.dram.peak_bandwidth)

    def bandwidth_utilisation(self, phase: Phase) -> float:
        """Demand / peak (may exceed 1 when the roofline saturates)."""
        dur = phase.duration_cycles() / self.machine.frequency_hz
        if dur <= 0:
            return 0.0
        return (self.phase_dram_bytes(phase) / dur) / self.machine.dram.peak_bandwidth

    # -- tags ------------------------------------------------------------------------

    def tagged_objects(self) -> list[tuple[str, int, int]]:
        """(name, start, end) of the data objects for ``nmo_tag_addr``."""
        return self.process.address_space.layout()

    def tags(self) -> list[str]:
        """Distinct phase tags, in first-appearance order."""
        seen: list[str] = []
        for p in self._phases:
            t = p.tag or p.name
            if t not in seen:
                seen.append(t)
        return seen
