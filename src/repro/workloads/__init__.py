"""The paper's five evaluation workloads as phase-structured models."""

from repro.workloads.access_patterns import (
    local_window,
    random_in,
    round_robin,
    sequential,
    strided,
    weighted_mix,
)
from repro.workloads.base import (
    AddrFn,
    KindFn,
    Phase,
    PhaseOpSource,
    Workload,
    hash_uniform,
)
from repro.workloads.bfs import BfsWorkload
from repro.workloads.cfd import CfdWorkload
from repro.workloads.inmem_analytics import InMemoryAnalyticsWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.registry import (
    get_workload_class,
    make_workload,
    register_workload,
    workload_names,
)
from repro.workloads.stream import StreamWorkload

__all__ = [
    "AddrFn",
    "BfsWorkload",
    "CfdWorkload",
    "InMemoryAnalyticsWorkload",
    "KindFn",
    "PageRankWorkload",
    "Phase",
    "PhaseOpSource",
    "StreamWorkload",
    "Workload",
    "get_workload_class",
    "hash_uniform",
    "local_window",
    "make_workload",
    "random_in",
    "register_workload",
    "round_robin",
    "sequential",
    "strided",
    "weighted_mix",
    "workload_names",
]
