"""CloudSuite In-memory Analytics: ALS recommendation (simulated).

The paper's second CloudSuite workload runs alternating least squares on
a user-movie ratings dataset, in-memory under Spark.  Its signatures in
the NMO views are:

* **capacity** (Fig. 2): RSS saturates near 52.3 GiB — 20.4 % of the
  256 GiB container — most of it the cached ratings RDD,
* **bandwidth** (Fig. 3): clean ~15 s periodicity over the ~121 s run:
  each ALS half-iteration alternates a ratings sweep (~100 GiB/s peaks)
  with a factor-matrix solve (much lower traffic).

As with PageRank, the JVM stack is replaced by its phase timeline (see
DESIGN.md §1); the ALS structure itself — alternate user-side and
item-side updates over a shared ratings structure — is modelled
explicitly so the periodic bandwidth pattern *emerges from the phase
sequence* rather than being painted onto a curve.
"""

from __future__ import annotations

from repro.machine.spec import GiB
from repro.machine.statcache import AccessClass
from repro.workloads.access_patterns import random_in, sequential, weighted_mix
from repro.workloads.base import Phase, Workload

#: ALS iteration count and per-half-iteration seconds at scale=1: the
#: run is ~2.5 + 15 + 7 * (7.5 + 7.5) ~= 122 s, matching Fig. 2/3.
N_ITERATIONS = 7
USER_HALF_S = 7.5
ITEM_HALF_S = 7.5
STARTUP_S = 2.5
LOAD_S = 15.0

#: bandwidth targets (GiB/s)
USER_HALF_BW = 97.0
ITEM_HALF_BW = 34.0
LOAD_BW = 58.0
STARTUP_BW = 4.0

#: per-phase newly-resident GiB; totals 52.3 GiB (paper's plateau)
STARTUP_TOUCH = 4.0
LOAD_TOUCH = 30.0
ITER_TOUCH = (6.0, 5.0, 3.0, 2.0, 1.3, 0.7, 0.3)

SATURATED_RSS_GIB = STARTUP_TOUCH + LOAD_TOUCH + sum(ITER_TOUCH)


class InMemoryAnalyticsWorkload(Workload):
    """Phase-timeline model of CloudSuite In-memory Analytics (ALS)."""

    name = "inmem_analytics"

    def __init__(
        self,
        machine,
        n_threads: int = 32,
        scale: float = 1.0,
        mem_limit: int | None = 256 * GiB,
        **kwargs,
    ) -> None:
        super().__init__(
            machine, n_threads=n_threads, scale=scale, mem_limit=mem_limit, **kwargs
        )

    def _timed_phase(
        self, name: str, dur_s: float, bw_gibs: float, touch_gib: float,
        addr_fn, classes, tag: str,
    ) -> Phase:
        cpi, group = 0.8, 2
        dur = dur_s * self.scale
        n_ops_thread = max(1, int(dur * self.machine.frequency_hz / cpi))
        return Phase(
            name=name,
            n_mem_ops=max(1, n_ops_thread // group),
            cpi=cpi,
            group=group,
            addr_fn=addr_fn,
            store_fraction=0.3,
            classes=classes,
            touch={"spark_heap": int(touch_gib * GiB)} if touch_gib else {},
            dram_bytes_override=bw_gibs * GiB * dur,
            tag=tag,
            flops_per_group=1,
            pc_base=0x441000,
        )

    def _build(self) -> None:
        heap_bytes = int(SATURATED_RSS_GIB * GiB) + 2 * GiB
        heap = self.alloc_object("spark_heap", heap_bytes)
        ratings = heap + 1 * GiB
        factors = heap + int(40 * GiB)

        ratings_sweep = weighted_mix(
            [
                (sequential(ratings, int(30 * GiB) // 8, 8,
                            n_threads=self.n_threads), 0.7),
                (random_in(factors, int(6 * GiB) // 8, 8, salt=51), 0.3),
            ],
            salt=53,
        )
        solve_mix = weighted_mix(
            [
                (random_in(factors, int(6 * GiB) // 8, 8, salt=57), 0.8),
                (sequential(ratings, int(30 * GiB) // 8, 8,
                            n_threads=self.n_threads), 0.2),
            ],
            salt=59,
        )
        sweep_classes = [
            AccessClass(footprint=int(30 * GiB) // self.n_threads, stride=8,
                        weight=0.7),
            AccessClass(footprint=int(6 * GiB), stride=0, weight=0.3),
        ]
        solve_classes = [
            AccessClass(footprint=int(6 * GiB), stride=0, weight=0.8),
            AccessClass(footprint=int(30 * GiB) // self.n_threads, stride=8,
                        weight=0.2),
        ]

        self.add_phase(
            self._timed_phase(
                "jvm_startup", STARTUP_S, STARTUP_BW, STARTUP_TOUCH,
                solve_mix, solve_classes, tag="startup",
            )
        )
        self.add_phase(
            self._timed_phase(
                "load_ratings", LOAD_S, LOAD_BW, LOAD_TOUCH,
                ratings_sweep, sweep_classes, tag="load",
            )
        )
        for it in range(N_ITERATIONS):
            self.add_phase(
                self._timed_phase(
                    f"als_user#{it}", USER_HALF_S, USER_HALF_BW, ITER_TOUCH[it],
                    ratings_sweep, sweep_classes, tag="als",
                )
            )
            self.add_phase(
                self._timed_phase(
                    f"als_item#{it}", ITEM_HALF_S, ITEM_HALF_BW, 0.0,
                    solve_mix, solve_classes, tag="als",
                )
            )
