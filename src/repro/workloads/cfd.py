"""Rodinia CFD (euler3d): unstructured-grid finite-volume Euler solver.

The solver sweeps an unstructured mesh every iteration.  Per element the
flux kernel loads the four neighbour indices
(``elements_surrounding_elements``), gathers the neighbours' conserved
``variables`` (density, momentum, energy — *indirect*, mesh-ordered),
reads the face ``normals`` (sequential), and stores ``fluxes``; a
``time_step`` kernel then integrates sequentially.  The paper tags the
whole iteration loop "computation loop" (Figs. 5-6); the indirect
neighbour gathers are the irregular accesses its Fig. 6 high-resolution
trace exposes at 32 threads, while ``normals`` remains cleanly split per
thread.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.machine.statcache import AccessClass
from repro.runtime.openmp import chunk_of
from repro.workloads.access_patterns import (
    local_window,
    sequential,
    weighted_mix,
)
from repro.workloads.base import Phase, Workload

#: Mesh elements at ``scale=1`` (sized so the CFD op count is ~8x
#: STREAM's, matching the sample-count ratio of paper Fig. 7).
DEFAULT_ELEMS = 29_000_000

# bytes per element of each array (float32 solver, 5 conserved variables)
VAR_BYTES = 5 * 4
ESE_BYTES = 4 * 4       # four neighbour indices
NORMALS_BYTES = 4 * 3 * 4
FLUX_BYTES = 5 * 4
STEP_BYTES = 4

#: accesses per element in the flux kernel, by array
FLUX_ESE_ACC = 4
FLUX_VAR_ACC = 16
FLUX_NORMALS_ACC = 8
FLUX_STORE_ACC = 5
FLUX_ACC = FLUX_ESE_ACC + FLUX_VAR_ACC + FLUX_NORMALS_ACC + FLUX_STORE_ACC
#: accesses per element in the time-step kernel
STEP_ACC = 5


class CfdWorkload(Workload):
    """Rodinia ``euler3d``-style solver with an OpenMP element loop."""

    name = "cfd"

    def __init__(
        self,
        machine,
        n_threads: int = 32,
        scale: float = 1.0,
        iterations: int = 20,
        n_elems: int | None = None,
        **kwargs,
    ) -> None:
        if iterations <= 0:
            raise WorkloadError("iterations must be >= 1")
        self.iterations = iterations
        self.reference_locality = kwargs.pop("reference_locality", True)
        self._n_elems_arg = n_elems
        super().__init__(machine, n_threads=n_threads, scale=scale, **kwargs)

    @property
    def n_elems(self) -> int:
        return self._n_elems

    def _build(self) -> None:
        nel = (
            self._n_elems_arg
            if self._n_elems_arg is not None
            else max(4096, int(self.scale * DEFAULT_ELEMS))
        )
        self._n_elems = nel
        t = self.n_threads

        variables = self.alloc_object("variables", nel * VAR_BYTES)
        old_vars = self.alloc_object("old_variables", nel * VAR_BYTES)
        ese = self.alloc_object("ese", nel * ESE_BYTES)
        normals = self.alloc_object("normals", nel * NORMALS_BYTES)
        fluxes = self.alloc_object("fluxes", nel * FLUX_BYTES)
        step = self.alloc_object("step_factors", nel * STEP_BYTES)

        # locality footprints at reference (paper) scale unless disabled
        loc_nel = DEFAULT_ELEMS if self.reference_locality else nel
        lo, hi = chunk_of(loc_nel, t, 0)
        chunk_el = max(hi - lo, 1)
        total_bytes = loc_nel * (
            2 * VAR_BYTES + ESE_BYTES + NORMALS_BYTES + FLUX_BYTES + STEP_BYTES
        )

        # --- init: populate every array sequentially ----------------------
        init_addr = weighted_mix(
            [
                (sequential(variables, nel * 5, 4, n_threads=t), 5.0),
                (sequential(old_vars, nel * 5, 4, n_threads=t), 5.0),
                (sequential(ese, nel * 4, 4, n_threads=t), 4.0),
                (sequential(normals, nel * 12, 4, n_threads=t), 12.0),
                (sequential(fluxes, nel * 5, 4, n_threads=t), 5.0),
                (sequential(step, nel, 4, n_threads=t), 1.0),
            ],
            salt=5,
        )
        self.add_phase(
            Phase(
                name="init",
                n_mem_ops=32 * ((nel + t - 1) // t),
                cpi=0.5,
                addr_fn=init_addr,
                store_fraction=1.0,
                classes=[
                    AccessClass(footprint=total_bytes // t, stride=4)
                ],
                group=2,
                tag="init",
                touch={
                    "variables": nel * VAR_BYTES,
                    "old_variables": nel * VAR_BYTES,
                    "ese": nel * ESE_BYTES,
                    "normals": nel * NORMALS_BYTES,
                    "fluxes": nel * FLUX_BYTES,
                    "step_factors": nel * STEP_BYTES,
                },
                pc_base=0x411000,
            )
        )

        # --- the tagged "computation loop" ---------------------------------
        flux_addr = weighted_mix(
            [
                (sequential(ese, nel * 4, 4, n_threads=t), float(FLUX_ESE_ACC)),
                (
                    local_window(
                        variables,
                        nel * 5,
                        4,
                        window=5 * 1500,
                        n_threads=t,
                        salt=23,
                        global_fraction=0.3,
                    ),
                    float(FLUX_VAR_ACC),
                ),
                (
                    sequential(normals, nel * 12, 4, n_threads=t),
                    float(FLUX_NORMALS_ACC),
                ),
                (sequential(fluxes, nel * 5, 4, n_threads=t), float(FLUX_STORE_ACC)),
            ],
            salt=7,
        )
        flux_classes = [
            AccessClass(footprint=chunk_el * ESE_BYTES, stride=4,
                        weight=float(FLUX_ESE_ACC)),
            AccessClass(footprint=loc_nel * VAR_BYTES, stride=0,
                        weight=float(FLUX_VAR_ACC)),
            AccessClass(footprint=chunk_el * NORMALS_BYTES, stride=4,
                        weight=float(FLUX_NORMALS_ACC)),
            AccessClass(footprint=chunk_el * FLUX_BYTES, stride=4,
                        weight=float(FLUX_STORE_ACC)),
        ]
        step_addr = weighted_mix(
            [
                (sequential(fluxes, nel * 5, 4, n_threads=t), 2.0),
                (sequential(old_vars, nel * 5, 4, n_threads=t), 1.0),
                (sequential(variables, nel * 5, 4, n_threads=t), 2.0),
            ],
            salt=11,
        )
        step_classes = [
            AccessClass(footprint=chunk_el * (2 * VAR_BYTES + FLUX_BYTES), stride=4)
        ]
        for it in range(self.iterations):
            self.add_phase(
                Phase(
                    name=f"compute_flux#{it}",
                    n_mem_ops=FLUX_ACC * ((nel + t - 1) // t),
                    cpi=0.55,
                    addr_fn=flux_addr,
                    store_fraction=FLUX_STORE_ACC / FLUX_ACC,
                    classes=flux_classes,
                    group=2,
                    flops_per_group=1,
                    tag="computation loop",
                    pc_base=0x412000,
                )
            )
            self.add_phase(
                Phase(
                    name=f"time_step#{it}",
                    n_mem_ops=STEP_ACC * ((nel + t - 1) // t),
                    cpi=0.5,
                    addr_fn=step_addr,
                    store_fraction=2.0 / STEP_ACC,
                    classes=step_classes,
                    group=2,
                    flops_per_group=1,
                    tag="computation loop",
                    pc_base=0x413000,
                )
            )
        self.finalise_dram_pressure()
