"""Reusable address-function builders.

Workloads compose their per-phase address functions from these
primitives.  Every builder returns an ``AddrFn``: a deterministic,
vectorised map from memory-op index (within a thread's phase stream) to
a virtual address.  Determinism matters: the SPE sampler may evaluate
any subset of indices, in any order, across trials.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.openmp import chunk_of
from repro.workloads.base import AddrFn, hash_uniform


def sequential(
    base: int, n_elems: int, elem_size: int, n_threads: int = 1,
    passes: int = 1,
) -> AddrFn:
    """OpenMP-chunked sequential sweep over an array.

    Thread ``t`` walks its static chunk of ``n_elems`` elements in order,
    ``passes`` times; the memory-op index wraps accordingly.  Produces the
    per-thread contiguous segments of the paper's Fig. 4.
    """
    if n_elems <= 0 or elem_size <= 0 or passes <= 0:
        raise WorkloadError("n_elems, elem_size and passes must be positive")

    def fn(mem_idx: np.ndarray, thread: int) -> np.ndarray:
        lo, hi = chunk_of(n_elems, n_threads, thread)
        span = max(hi - lo, 1)
        e = lo + (np.asarray(mem_idx, dtype=np.int64) % span)
        return (np.uint64(base) + e.astype(np.uint64) * np.uint64(elem_size))

    return fn


def strided(base: int, n_elems: int, elem_size: int, stride_elems: int,
            n_threads: int = 1) -> AddrFn:
    """Strided sweep (stride in elements) over a thread's chunk."""
    if stride_elems <= 0:
        raise WorkloadError("stride_elems must be positive")

    def fn(mem_idx: np.ndarray, thread: int) -> np.ndarray:
        lo, hi = chunk_of(n_elems, n_threads, thread)
        span = max(hi - lo, 1)
        e = lo + (np.asarray(mem_idx, dtype=np.int64) * stride_elems) % span
        return np.uint64(base) + e.astype(np.uint64) * np.uint64(elem_size)

    return fn


def random_in(base: int, n_elems: int, elem_size: int, salt: int = 0) -> AddrFn:
    """Uniform pseudo-random accesses over a whole object (hash-based)."""
    if n_elems <= 0:
        raise WorkloadError("n_elems must be positive")

    def fn(mem_idx: np.ndarray, thread: int) -> np.ndarray:
        u = hash_uniform(np.asarray(mem_idx, dtype=np.int64), salt=salt + thread * 7919)
        e = (u * n_elems).astype(np.uint64)
        return np.uint64(base) + e * np.uint64(elem_size)

    return fn


def local_window(
    base: int, n_elems: int, elem_size: int, window: int,
    n_threads: int = 1, salt: int = 0, global_fraction: float = 0.0,
) -> AddrFn:
    """Neighbour-style access: near the sweep position, occasionally far.

    Models unstructured-mesh indirection (CFD's
    ``elements_surrounding_elements``): accesses land within ``window``
    elements of the thread's current sweep position, except a
    ``global_fraction`` that jump anywhere in the array — the irregular
    pattern visible in the paper's Fig. 6 high-resolution trace.
    """
    if window <= 0:
        raise WorkloadError("window must be positive")
    if not 0.0 <= global_fraction <= 1.0:
        raise WorkloadError("global_fraction must be in [0, 1]")

    def fn(mem_idx: np.ndarray, thread: int) -> np.ndarray:
        mi = np.asarray(mem_idx, dtype=np.int64)
        lo, hi = chunk_of(n_elems, n_threads, thread)
        span = max(hi - lo, 1)
        centre = lo + mi % span
        jitter = ((hash_uniform(mi, salt=salt) - 0.5) * 2 * window).astype(np.int64)
        e = np.clip(centre + jitter, 0, n_elems - 1)
        if global_fraction > 0.0:
            far = hash_uniform(mi, salt=salt + 31) < global_fraction
            e_far = (hash_uniform(mi, salt=salt + 63) * n_elems).astype(np.int64)
            e = np.where(far, e_far, e)
        return np.uint64(base) + e.astype(np.uint64) * np.uint64(elem_size)

    return fn


def round_robin(patterns: Sequence[AddrFn]) -> AddrFn:
    """Cycle deterministically through sub-patterns per memory op.

    Memory op ``m`` uses pattern ``m % len(patterns)`` with sub-index
    ``m // len(patterns)`` — the natural encoding of a kernel that
    touches several arrays per loop iteration (STREAM's b, c, a).
    """
    if not patterns:
        raise WorkloadError("round_robin needs at least one pattern")
    k = len(patterns)

    def fn(mem_idx: np.ndarray, thread: int) -> np.ndarray:
        mi = np.asarray(mem_idx, dtype=np.int64)
        which = mi % k
        sub = mi // k
        out = np.zeros(mi.shape, dtype=np.uint64)
        for w, p in enumerate(patterns):
            m = which == w
            if m.any():
                out[m] = p(sub[m], thread)
        return out

    return fn


def weighted_mix(patterns: Sequence[tuple[AddrFn, float]], salt: int = 0) -> AddrFn:
    """Choose a sub-pattern per op with deterministic pseudo-random weights."""
    if not patterns:
        raise WorkloadError("weighted_mix needs at least one pattern")
    weights = np.array([w for _p, w in patterns], dtype=np.float64)
    if (weights <= 0).any():
        raise WorkloadError("weights must be positive")
    cdf = np.cumsum(weights / weights.sum())

    def fn(mem_idx: np.ndarray, thread: int) -> np.ndarray:
        mi = np.asarray(mem_idx, dtype=np.int64)
        u = hash_uniform(mi, salt=salt + 101)
        which = np.searchsorted(cdf, u, side="right")
        which = np.minimum(which, len(patterns) - 1)
        out = np.zeros(mi.shape, dtype=np.uint64)
        for w, (p, _wt) in enumerate(patterns):
            m = which == w
            if m.any():
                out[m] = p(mi[m], thread)
        return out

    return fn
