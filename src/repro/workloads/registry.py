"""Workload registry: name -> constructor, used by benches and examples."""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.machine.spec import MachineSpec
from repro.workloads.base import Workload
from repro.workloads.bfs import BfsWorkload
from repro.workloads.cfd import CfdWorkload
from repro.workloads.inmem_analytics import InMemoryAnalyticsWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.stream import StreamWorkload

_REGISTRY: dict[str, type[Workload]] = {
    StreamWorkload.name: StreamWorkload,
    CfdWorkload.name: CfdWorkload,
    BfsWorkload.name: BfsWorkload,
    PageRankWorkload.name: PageRankWorkload,
    InMemoryAnalyticsWorkload.name: InMemoryAnalyticsWorkload,
}


def workload_names() -> list[str]:
    """Registered workload names, sorted."""
    return sorted(_REGISTRY)


def get_workload_class(name: str) -> type[Workload]:
    """Resolve a registry name to its :class:`Workload` subclass.

    Unknown names raise with the sorted list of known names, so every
    caller (CLI, scenarios, co-location) reports the same error.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        ) from None


def make_workload(name: str, machine: MachineSpec, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    return get_workload_class(name)(machine, **kwargs)


def register_workload(cls: type[Workload]) -> type[Workload]:
    """Register a user-defined workload class (decorator-friendly)."""
    if not issubclass(cls, Workload):
        raise WorkloadError("register_workload expects a Workload subclass")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"workload name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls
