"""Generic parameter-sweep utility.

The figure experiments are specific sweeps; this helper supports the
ablation benches (cost-model factors, jitter windows, watermark ratios)
without duplicating the trial/aggregation logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class SweepResult:
    """One sweep point: the parameter value plus per-metric trial stats."""

    value: Any
    metrics: dict[str, float]
    stds: dict[str, float]
    trials: int


def sweep(
    values: Iterable[Any],
    run: Callable[[Any, int], dict[str, float]],
    trials: int = 1,
) -> list[SweepResult]:
    """Run ``run(value, trial_seed)`` over the grid and aggregate.

    ``run`` returns a flat metric dict; every trial must return the same
    keys.  Means and (sample) standard deviations are reported per key.
    """
    if trials <= 0:
        raise ReproError("trials must be >= 1")
    out: list[SweepResult] = []
    for v in values:
        rows: list[dict[str, float]] = []
        for t in range(trials):
            m = run(v, t)
            if rows and set(m) != set(rows[0]):
                raise ReproError(
                    f"inconsistent metric keys at value {v!r}: "
                    f"{sorted(m)} vs {sorted(rows[0])}"
                )
            rows.append(m)
        keys = rows[0].keys()
        means = {k: float(np.mean([r[k] for r in rows])) for k in keys}
        stds = {
            k: float(np.std([r[k] for r in rows], ddof=1)) if trials > 1 else 0.0
            for k in keys
        }
        out.append(SweepResult(value=v, metrics=means, stds=stds, trials=trials))
    return out


def crossover(
    results: list[SweepResult], metric_a: str, metric_b: str
) -> Any | None:
    """First sweep value where metric_a overtakes metric_b (or None)."""
    if not results:
        raise ReproError("empty sweep")
    for r in results:
        if metric_a not in r.metrics or metric_b not in r.metrics:
            raise ReproError(f"metrics missing at value {r.value!r}")
        if r.metrics[metric_a] > r.metrics[metric_b]:
            return r.value
    return None
