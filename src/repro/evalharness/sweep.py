"""Generic parameter-sweep utility.

The figure experiments are specific sweeps; this helper supports the
ablation benches (cost-model factors, jitter windows, watermark ratios)
without duplicating the trial/aggregation logic.

Trials are independent, so the grid executes through
:class:`repro.orchestrate.ParallelRunner`: ``workers=1`` (the default)
is the exact legacy serial loop, ``workers>1`` fans the
``len(values) * trials`` grid over a process pool with results
collected back in grid order, and ``cache=`` short-circuits
already-computed trials from disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import ReproError
from repro.orchestrate import ParallelRunner, ResultCache, TrialSpec


@dataclass(frozen=True)
class SweepResult:
    """One sweep point: the parameter value plus per-metric trial stats."""

    value: Any
    metrics: dict[str, float]
    stds: dict[str, float]
    trials: int


def _run_point(run: Callable[[Any, int], dict[str, float]], spec: TrialSpec):
    """Module-level trampoline so grid points pickle for the pool."""
    return run(spec.config["value"], spec.seed)


def sweep(
    values: Iterable[Any],
    run: Callable[[Any, int], dict[str, float]],
    trials: int = 1,
    workers: int = 1,
    cache: ResultCache | None = None,
    experiment: str | None = None,
) -> list[SweepResult]:
    """Run ``run(value, trial_seed)`` over the grid and aggregate.

    ``run`` returns a flat metric dict; every trial must return the same
    keys.  Means and (sample) standard deviations are reported per key.

    ``workers > 1`` requires ``run`` to be picklable (a module-level
    function, or a :func:`functools.partial` of one).  ``cache``
    requires an explicit ``experiment`` name: the callable itself never
    enters the cache key, so the name is what keeps two different sweeps
    from colliding on the same values.
    """
    if trials <= 0:
        raise ReproError("trials must be >= 1")
    if cache is not None and experiment is None:
        raise ReproError("caching a sweep requires an explicit experiment name")
    values = list(values)
    name = experiment or getattr(run, "__qualname__", type(run).__name__)
    specs = [
        TrialSpec(experiment=name, config={"value": v}, seed=t)
        for v in values
        for t in range(trials)
    ]
    runner = ParallelRunner(workers=workers, cache=cache)
    rows_flat = runner.map(partial(_run_point, run), specs)

    out: list[SweepResult] = []
    for vi, v in enumerate(values):
        rows = rows_flat[vi * trials : (vi + 1) * trials]
        for m in rows:
            if set(m) != set(rows[0]):
                raise ReproError(
                    f"inconsistent metric keys at value {v!r}: "
                    f"{sorted(m)} vs {sorted(rows[0])}"
                )
        keys = rows[0].keys()
        means = {k: float(np.mean([r[k] for r in rows])) for k in keys}
        stds = {
            k: float(np.std([r[k] for r in rows], ddof=1)) if trials > 1 else 0.0
            for k in keys
        }
        out.append(SweepResult(value=v, metrics=means, stds=stds, trials=trials))
    return out


def crossover(
    results: list[SweepResult], metric_a: str, metric_b: str
) -> Any | None:
    """First sweep value where metric_a overtakes metric_b (or None)."""
    if not results:
        raise ReproError("empty sweep")
    for r in results:
        if metric_a not in r.metrics or metric_b not in r.metrics:
            raise ReproError(f"metrics missing at value {r.value!r}")
        if r.metrics[metric_a] > r.metrics[metric_b]:
            return r.value
    return None
