"""Report rendering for the experiment harness.

Turns experiment outputs into the same rows/series the paper reports,
as aligned text tables and ASCII charts.

The sweep/colo renderers live in :mod:`repro.scenarios.report` (the
declarative scenario layer renders through the same code path) and are
re-exported here for compatibility; this module keeps the temporal
exhibits (figs. 2-3) that have no scenario kind.
"""

from __future__ import annotations

from repro.analysis.plotting import line_plot
from repro.machine.spec import GiB
from repro.scenarios.report import (  # noqa: F401 — compatibility re-exports
    render_colo,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10_fig11,
    render_sweep_table,
)


def render_capacity(results: dict[str, dict]) -> str:
    """Render the Fig. 2 capacity view: one RSS-over-time chart per run."""
    parts = []
    for name, r in results.items():
        t, v = r["series"]
        parts.append(
            line_plot(
                {name: (t, v / GiB)},
                title=(
                    f"Fig.2 ({name}): peak {r['peak_gib']:.1f} GiB "
                    f"({r['peak_utilisation'] * 100:.1f}% of 256 GiB)"
                ),
            )
        )
    return "\n\n".join(parts)


def render_bandwidth(results: dict[str, dict]) -> str:
    """Render the Fig. 3 bandwidth view: bus-event rate charts per run."""
    parts = []
    for name, r in results.items():
        t, v = r["series"]
        title = f"Fig.3 ({name}): peak {r['peak_gibs']:.1f} GiB/s"
        if "period_s" in r:
            title += f", period ~{r['period_s']:.1f}s"
        parts.append(line_plot({name: (t, v / GiB)}, title=title))
    return "\n\n".join(parts)
