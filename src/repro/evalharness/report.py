"""Report rendering for the experiment harness.

Turns experiment outputs into the same rows/series the paper reports,
as aligned text tables and ASCII charts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.plotting import line_plot, table
from repro.evalharness.experiments import SweepPoint
from repro.machine.spec import GiB


def render_sweep_table(points: list[SweepPoint], title: str) -> str:
    """Fig. 7/8-style rows: one line per (workload, period)."""
    rows = []
    for p in points:
        rows.append(
            [
                p.workload,
                p.period,
                f"{p.samples_mean:.3e}",
                f"{p.samples_std:.2e}",
                f"{p.accuracy_mean * 100:.1f}%",
                f"{p.overhead_mean * 100:.2f}%",
                f"{p.collisions_mean:.1f}",
            ]
        )
    return table(
        ["workload", "period", "samples", "std", "accuracy", "overhead", "collisions"],
        rows,
        title=title,
    )


def render_fig7(results: dict[str, list[SweepPoint]]) -> str:
    """Samples vs period per workload, log-x chart + table."""
    parts = []
    series = {}
    for name, pts in results.items():
        x = np.array([p.period for p in pts], dtype=float)
        y = np.array([max(p.samples_mean, 1.0) for p in pts])
        series[name] = (x, np.log10(y))
        parts.append(render_sweep_table(pts, f"Fig.7 ({name})"))
    parts.append(
        line_plot(series, title="Fig.7: log10(samples) vs period", logx=True)
    )
    return "\n\n".join(parts)


def render_fig8(results: dict[str, list[SweepPoint]]) -> str:
    parts = []
    for metric, label, scale in (
        ("accuracy_mean", "accuracy %", 100.0),
        ("overhead_mean", "time overhead %", 100.0),
        ("collisions_mean", "sample collisions", 1.0),
    ):
        series = {}
        for name, pts in results.items():
            x = np.array([p.period for p in pts], dtype=float)
            y = np.array([getattr(p, metric) * scale for p in pts])
            series[name] = (x, y)
        parts.append(line_plot(series, title=f"Fig.8: {label} vs period", logx=True))
    for name, pts in results.items():
        parts.append(render_sweep_table(pts, f"Fig.8 ({name})"))
    return "\n\n".join(parts)


def render_fig9(rows: list[dict]) -> str:
    tbl = table(
        ["aux pages", "accuracy", "overhead", "samples", "wakeups", "working"],
        [
            [
                r["aux_pages"],
                f"{r['accuracy'] * 100:.1f}%",
                f"{r['overhead'] * 100:.2f}%",
                r["samples"],
                r["wakeups"],
                "yes" if r["working"] else "no",
            ]
            for r in rows
        ],
        title="Fig.9: aux buffer size sweep (STREAM)",
    )
    x = np.array([r["aux_pages"] for r in rows], dtype=float)
    chart = line_plot(
        {
            "accuracy%": (x, np.array([r["accuracy"] * 100 for r in rows])),
            "overhead%x10": (x, np.array([r["overhead"] * 1000 for r in rows])),
        },
        title="Fig.9 (overhead scaled x10 for visibility)",
        logx=True,
    )
    return tbl + "\n\n" + chart


def render_fig10_fig11(rows: list[dict]) -> str:
    tbl = table(
        [
            "threads", "accuracy", "overhead", "collisions",
            "throttle events", "samples",
        ],
        [
            [
                r["threads"],
                f"{r['accuracy'] * 100:.1f}%",
                f"{r['overhead'] * 100:.2f}%",
                r["collisions"],
                r["throttle_events"],
                r["samples"],
            ]
            for r in rows
        ],
        title="Fig.10/11: thread sweep (STREAM, 16-page aux)",
    )
    x = np.array([r["threads"] for r in rows], dtype=float)
    chart = line_plot(
        {
            "accuracy%": (x, np.array([r["accuracy"] * 100 for r in rows])),
            "overhead%x100": (x, np.array([r["overhead"] * 1e4 for r in rows])),
        },
        title="Fig.10: accuracy / overhead vs threads",
    )
    chart2 = line_plot(
        {
            "collisions": (x, np.array([r["collisions"] for r in rows], dtype=float)),
            "throttles": (
                x,
                np.array([r["throttle_events"] for r in rows], dtype=float),
            ),
        },
        title="Fig.11: collisions and throttling vs threads",
    )
    return "\n\n".join([tbl, chart, chart2])


def render_colo(rows: list[dict]) -> str:
    """Colo: per-runner interference table + slowdown-vs-corunners chart."""
    tbl_rows = []
    for row in rows:
        for r in row["runners"]:
            tbl_rows.append(
                [
                    row["scenario"],
                    r["workload"],
                    f"{r['demand_gibs']:.1f}",
                    f"{r['granted_gibs']:.1f}",
                    f"{r['slowdown']:.2f}x",
                    f"{r['accuracy'] * 100:.1f}%",
                    f"{r['collisions']}",
                    f"{r['samples']}",
                ]
            )
    usable = rows[0]["usable_gibs"] if rows else 0.0
    tbl = table(
        [
            "scenario", "runner", "demand GiB/s", "granted GiB/s",
            "slowdown", "accuracy", "collisions", "samples",
        ],
        tbl_rows,
        title=(
            "Colo: co-located processes on the contended channel "
            f"(usable {usable:.1f} GiB/s)"
        ),
    )
    homogeneous = [r for r in rows if set(r["scenario"].split("+")) == {"stream"}]
    if len(homogeneous) < 2:
        return tbl
    x = np.array([r["n_corunners"] for r in homogeneous], dtype=float)
    chart = line_plot(
        {
            "stream slowdown": (
                x,
                np.array([r["runners"][0]["slowdown"] for r in homogeneous]),
            ),
            "granted sum GiB/s /100": (
                x,
                np.array([r["granted_sum_gibs"] / 100 for r in homogeneous]),
            ),
        },
        title="Colo: STREAMxN slowdown and aggregate grant vs co-runners",
    )
    return tbl + "\n\n" + chart


def render_capacity(results: dict[str, dict]) -> str:
    parts = []
    for name, r in results.items():
        t, v = r["series"]
        parts.append(
            line_plot(
                {name: (t, v / GiB)},
                title=(
                    f"Fig.2 ({name}): peak {r['peak_gib']:.1f} GiB "
                    f"({r['peak_utilisation'] * 100:.1f}% of 256 GiB)"
                ),
            )
        )
    return "\n\n".join(parts)


def render_bandwidth(results: dict[str, dict]) -> str:
    parts = []
    for name, r in results.items():
        t, v = r["series"]
        title = f"Fig.3 ({name}): peak {r['peak_gibs']:.1f} GiB/s"
        if "period_s" in r:
            title += f", period ~{r['period_s']:.1f}s"
        parts.append(line_plot({name: (t, v / GiB)}, title=title))
    return "\n\n".join(parts)
