"""One entry point per paper table/figure (the per-experiment index).

Every function regenerates the data behind one exhibit of the paper's
evaluation (§V-§VII) on the simulated Ampere Altra Max and returns plain
dict/array results that the benches print and EXPERIMENTS.md records.

The sweep-style exhibits (figs. 7-11, colo) are thin shims over the
declarative scenario layer: each builds its
:class:`~repro.scenarios.ScenarioSpec` preset and runs it through
:class:`~repro.scenarios.Session`, which owns trial planning, the
parallel runner, and the canonical cache-key path.  The golden-parity
suite pins that these shims stay byte-identical to their specs.

Scales: the generators run the workloads' access *structure* at reduced
op counts (locality is evaluated at reference scale, see
``reference_locality``).  Sample counts therefore scale linearly with
``scale`` while accuracies, overheads, and collision *shapes* are
scale-free; each result carries its scale so reports can say so.
"""

from __future__ import annotations

import numpy as np

from repro.machine.spec import GiB, MachineSpec, ampere_altra_max
from repro.nmo.bandwidth import dominant_period_s, summarise_bandwidth
from repro.nmo.capacity import summarise_capacity
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler
from repro.nmo.regions import RegionProfile
from repro.orchestrate import ResultCache
from repro.scenarios import (  # noqa: F401 — compatibility re-exports
    COLO_MIX,
    COLO_TIMELINE_SECONDS,
    colo_scenarios,
)
from repro.scenarios import (
    FIG7_PERIODS,
    FIG8_PERIODS,
    FIG9_AUX_PAGES,
    FIG10_THREADS,
    SWEEP_SCALES,
    Session,
    SweepPoint,
    colo_interference_spec,
    fig7_spec,
    fig8_spec,
    fig9_spec,
    fig10_spec,
)
from repro.workloads.cfd import CfdWorkload
from repro.workloads.inmem_analytics import InMemoryAnalyticsWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.registry import get_workload_class
from repro.workloads.stream import StreamWorkload

#: deprecated alias — workload lookup goes through the registry now
SWEEP_CLASSES = {name: get_workload_class(name) for name in SWEEP_SCALES}


# --------------------------------------------------------------------------
# Figures 2 and 3: temporal capacity and bandwidth of the CloudSuite pair
# --------------------------------------------------------------------------

def fig2_capacity(
    machine: MachineSpec | None = None, scale: float = 1.0
) -> dict[str, dict]:
    """Fig. 2: memory capacity over time, PageRank + In-memory Analytics."""
    machine = machine or ampere_altra_max()
    out: dict[str, dict] = {}
    for cls in (InMemoryAnalyticsWorkload, PageRankWorkload):
        w = cls(machine, n_threads=32, scale=scale)
        settings = NmoSettings(enable=True, mode=NmoMode.NONE, track_rss=True)
        r = NmoProfiler(w, settings).run()
        assert r.rss_series is not None
        summary = summarise_capacity(r.rss_series, limit_bytes=256 * GiB)
        out[w.name] = {
            "series": r.rss_series,
            "peak_gib": summary.peak_gib,
            "peak_utilisation": summary.peak_utilisation,
            "saturation_time_s": summary.saturation_time_s,
            "duration_s": w.baseline_seconds(),
            "scale": scale,
        }
    return out


def fig3_bandwidth(
    machine: MachineSpec | None = None, scale: float = 1.0
) -> dict[str, dict]:
    """Fig. 3: memory bandwidth over time for the same two workloads."""
    machine = machine or ampere_altra_max()
    out: dict[str, dict] = {}
    for cls in (InMemoryAnalyticsWorkload, PageRankWorkload):
        w = cls(machine, n_threads=32, scale=scale)
        settings = NmoSettings(enable=True, mode=NmoMode.BANDWIDTH)
        r = NmoProfiler(w, settings).run()
        assert r.bw_series is not None
        summary = summarise_bandwidth(r.bw_series, machine)
        entry: dict = {
            "series": r.bw_series,
            "peak_gibs": summary.peak_gibs,
            "time_of_peak_s": summary.time_of_peak_s,
            "mean_gibs": summary.mean_gibs,
            "duration_s": w.baseline_seconds(),
            "scale": scale,
        }
        if w.name == "inmem_analytics":
            entry["period_s"] = dominant_period_s(r.bw_series)
        out[w.name] = entry
    return out


# --------------------------------------------------------------------------
# Figures 4-6: region profiling scatters
# --------------------------------------------------------------------------

def fig4_stream_regions(
    machine: MachineSpec | None = None,
    n_threads: int = 8,
    period: int = 2048,
    n_elems: int = 1 << 21,
) -> dict:
    """Fig. 4: STREAM triad address scatter, 8 threads, tags a/b/c."""
    machine = machine or ampere_altra_max()
    w = StreamWorkload(machine, n_threads=n_threads, n_elems=n_elems, iterations=5)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)
    r = NmoProfiler(w, settings).run()
    prof = RegionProfile.build(r)
    times, addrs = prof.scatter()
    return {
        "result": r,
        "profile": prof,
        "times": times,
        "addrs": addrs,
        "bands": w.tagged_objects(),
        "triad_spans": r.annotations.spans_for("triad"),
        "stats": prof.stats,
    }


def _cfd_regions(machine, n_threads, period, n_elems) -> dict:
    w = CfdWorkload(
        machine, n_threads=n_threads, n_elems=n_elems, iterations=20
    )
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)
    r = NmoProfiler(w, settings).run()
    prof = RegionProfile.build(r)
    times, addrs = prof.scatter()
    return {
        "result": r,
        "profile": prof,
        "times": times,
        "addrs": addrs,
        "bands": w.tagged_objects(),
        "loop_spans": r.annotations.spans_for("computation loop"),
        "stats": prof.stats,
    }


def fig5_cfd_single_thread(
    machine: MachineSpec | None = None, period: int = 4096,
    n_elems: int = 1 << 17,
) -> dict:
    """Fig. 5: CFD scatter at one thread — a continuous traverse."""
    return _cfd_regions(machine or ampere_altra_max(), 1, period, n_elems)


def fig6_cfd_32_threads(
    machine: MachineSpec | None = None, period: int = 1024,
    n_elems: int = 1 << 17,
) -> dict:
    """Fig. 6: CFD at 32 threads plus the high-resolution zoom window.

    The headline observation: only ``normals`` splits cleanly per thread
    (high split score); the indirectly-gathered ``variables`` does not.
    """
    out = _cfd_regions(machine or ampere_altra_max(), 32, period, n_elems)
    times = out["times"]
    if times.size:
        t0 = float(np.quantile(times, 0.45))
        t1 = float(np.quantile(times, 0.55))
        ht, ha = out["profile"].scatter(t0=t0, t1=t1)
        out["hires"] = {"t0": t0, "t1": t1, "times": ht, "addrs": ha}
    stats = out["stats"]
    out["split_scores"] = {name: s.split_score for name, s in stats.items()}
    return out


# --------------------------------------------------------------------------
# Figures 7-11 + colo: scenario shims (Session owns the machinery)
# --------------------------------------------------------------------------

def fig7_samples_vs_period(
    machine: MachineSpec | None = None,
    periods: tuple[int, ...] = FIG7_PERIODS,
    trials: int = 5,
    workloads: tuple[str, ...] = ("stream", "cfd", "bfs"),
    scale: float | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, list[SweepPoint]]:
    """Fig. 7: samples vs sampling period, five trials."""
    spec = fig7_spec(
        periods=periods, trials=trials, workloads=workloads, scale=scale
    )
    return Session(machine=machine, workers=workers, cache=cache).run(spec).results


def fig8_accuracy_overhead_collisions(
    machine: MachineSpec | None = None,
    periods: tuple[int, ...] = FIG8_PERIODS,
    trials: int = 5,
    workloads: tuple[str, ...] = ("stream", "cfd", "bfs"),
    scale: float | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, list[SweepPoint]]:
    """Fig. 8: accuracy / overhead / collisions vs sampling period."""
    spec = fig8_spec(
        periods=periods, trials=trials, workloads=workloads, scale=scale
    )
    return Session(machine=machine, workers=workers, cache=cache).run(spec).results


def fig9_aux_buffer(
    machine: MachineSpec | None = None,
    aux_pages: tuple[int, ...] = FIG9_AUX_PAGES,
    period: int = 1024,
    scale: float = 0.75,
    n_threads: int = 4,
    seed: int = 0,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[dict]:
    """Fig. 9: overhead and accuracy vs aux buffer size (in 64 KiB pages).

    Defaults trade the paper's exact configuration (32 threads, 1 GiB
    arrays) for one where per-thread sample volume spans several
    watermarks across the page sweep at simulation scale — the loss
    mechanism is per-thread, so the shape is thread-count independent
    (see EXPERIMENTS.md).
    """
    spec = fig9_spec(
        aux_pages=aux_pages, period=period, scale=scale,
        n_threads=n_threads, seed=seed,
    )
    return Session(machine=machine, workers=workers, cache=cache).run(spec).results


def fig10_fig11_threads(
    machine: MachineSpec | None = None,
    thread_counts: tuple[int, ...] = FIG10_THREADS,
    period: int = 4096,
    scale: float = 4.0,
    seed: int = 0,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[dict]:
    """Figs. 10-11: overhead, accuracy, collisions, throttling vs threads."""
    spec = fig10_spec(
        thread_counts=thread_counts, period=period, scale=scale, seed=seed
    )
    return Session(machine=machine, workers=workers, cache=cache).run(spec).results


def colo_interference(
    machine: MachineSpec | None = None,
    max_corunners: int = 4,
    scale: float = 0.02,
    period: int = 16384,
    n_threads: int = 8,
    seed: int = 0,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[dict]:
    """Colo: 1-4 co-located processes on the contended DRAM channel.

    A beyond-paper extension of the Fig. 10/11 scaling study: instead of
    one workload widening its thread team, whole processes are
    co-located (each with its own SPE sessions and aux buffers) and the
    shared channel apportions bandwidth between them.  Reports each
    runner's slowdown, bandwidth grant, and profiling quality.
    """
    spec = colo_interference_spec(
        max_corunners=max_corunners, scale=scale, period=period,
        n_threads=n_threads, seed=seed,
    )
    return Session(machine=machine, workers=workers, cache=cache).run(spec).results


# --------------------------------------------------------------------------
# Tables I and II
# --------------------------------------------------------------------------

def table1_env_defaults() -> dict[str, str]:
    """Table I: the supported environment variables and defaults."""
    from repro.nmo.env import TABLE_I_DEFAULTS

    return dict(TABLE_I_DEFAULTS)


def table2_machine_spec(machine: MachineSpec | None = None) -> dict[str, str]:
    """Table II: the hardware specification rows."""
    machine = machine or ampere_altra_max()
    return machine.describe()
