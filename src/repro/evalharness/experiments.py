"""One entry point per paper table/figure (the per-experiment index).

Every function regenerates the data behind one exhibit of the paper's
evaluation (§V-§VII) on the simulated Ampere Altra Max and returns plain
dict/array results that the benches print and EXPERIMENTS.md records.

Scales: the generators run the workloads' access *structure* at reduced
op counts (locality is evaluated at reference scale, see
``reference_locality``).  Sample counts therefore scale linearly with
``scale`` while accuracies, overheads, and collision *shapes* are
scale-free; each result carries its scale so reports can say so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.colocation import CoRunnerSpec, run_colocation
from repro.machine.spec import GiB, MachineSpec, ampere_altra_max
from repro.orchestrate import (
    ParallelRunner,
    ResultCache,
    TrialSpec,
    canonical_config,
)
from repro.nmo.bandwidth import dominant_period_s, summarise_bandwidth
from repro.nmo.capacity import summarise_capacity
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler, ProfileResult
from repro.nmo.regions import RegionProfile
from repro.workloads.bfs import BfsWorkload
from repro.workloads.cfd import CfdWorkload
from repro.workloads.inmem_analytics import InMemoryAnalyticsWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.stream import StreamWorkload

#: default sampling-study scales per workload (sample counts shrink
#: linearly; shapes are scale-free)
SWEEP_SCALES = {"stream": 1 / 32, "cfd": 1 / 256, "bfs": 0.5}
SWEEP_CLASSES = {
    "stream": StreamWorkload,
    "cfd": CfdWorkload,
    "bfs": BfsWorkload,
}

FIG7_PERIODS = (512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)
FIG8_PERIODS = (1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000)
FIG9_AUX_PAGES = (2, 4, 8, 16, 32, 64, 128, 512, 2048)
FIG10_THREADS = (1, 2, 4, 8, 16, 32, 48, 64, 96, 128)

#: mixed co-runner line-up for the colo_interference exhibit: the
#: bandwidth hog, the two CloudSuite timeline models, then a second hog
COLO_MIX = ("stream", "pagerank", "inmem_analytics", "stream")
#: seconds the CloudSuite timeline models run at scale=1 (PageRank's
#: phase plan); STREAM's iteration count is sized to match
COLO_TIMELINE_SECONDS = 23.6


@dataclass
class SweepPoint:
    """One measured configuration (averaged over trials)."""

    workload: str
    period: int
    samples_mean: float
    samples_std: float
    samples_trials: list[int]
    accuracy_mean: float
    accuracy_std: float
    overhead_mean: float
    collisions_mean: float
    wakeups_mean: float
    extra: dict = field(default_factory=dict)


def _run_sampling(
    cls,
    machine: MachineSpec,
    *,
    scale: float,
    period: int,
    n_threads: int = 32,
    aux_mib: int = 1,
    seed: int = 0,
    workload_kwargs: dict | None = None,
) -> ProfileResult:
    w = cls(machine, n_threads=n_threads, scale=scale, **(workload_kwargs or {}))
    settings = NmoSettings(
        enable=True,
        mode=NmoMode.SAMPLING,
        period=period,
        auxbufsize_mib=aux_mib,
    )
    return NmoProfiler(w, settings, seed=seed).run()


def _period_trial(machine: MachineSpec, spec: TrialSpec) -> dict[str, float]:
    """One period-sweep trial (module-level: crosses the pool boundary)."""
    cfg = spec.config
    r = _run_sampling(
        SWEEP_CLASSES[cfg["workload"]],
        machine,
        scale=cfg["scale"],
        period=cfg["period"],
        n_threads=cfg["n_threads"],
        seed=spec.seed,
    )
    return {
        "samples": float(r.samples_processed),
        "accuracy": float(r.accuracy),
        "overhead": float(r.time_overhead),
        "collisions": float(r.collisions),
        "wakeups": float(r.wakeups),
    }


def _sweep(
    name: str,
    periods: tuple[int, ...],
    trials: int,
    machine: MachineSpec,
    scale: float | None = None,
    n_threads: int = 32,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[SweepPoint]:
    sc = scale if scale is not None else SWEEP_SCALES[name]
    specs = [
        TrialSpec(
            experiment="period_sweep",
            config={
                "workload": name,
                "period": period,
                "scale": sc,
                "n_threads": n_threads,
                "machine": canonical_config(machine),
            },
            seed=trial,
        )
        for period in periods
        for trial in range(trials)
    ]
    runner = ParallelRunner(workers=workers, cache=cache)
    rows = runner.map(partial(_period_trial, machine), specs)

    out: list[SweepPoint] = []
    for pi, period in enumerate(periods):
        group = rows[pi * trials : (pi + 1) * trials]
        samples = [r["samples"] for r in group]
        s = np.array(samples, dtype=float)
        a = np.array([r["accuracy"] for r in group])
        out.append(
            SweepPoint(
                workload=name,
                period=period,
                samples_mean=float(s.mean()),
                samples_std=float(s.std(ddof=1)) if trials > 1 else 0.0,
                samples_trials=list(map(int, samples)),
                accuracy_mean=float(a.mean()),
                accuracy_std=float(a.std(ddof=1)) if trials > 1 else 0.0,
                overhead_mean=float(np.mean([r["overhead"] for r in group])),
                collisions_mean=float(np.mean([r["collisions"] for r in group])),
                wakeups_mean=float(np.mean([r["wakeups"] for r in group])),
                extra={"scale": sc, "n_threads": n_threads},
            )
        )
    return out


# --------------------------------------------------------------------------
# Figures 2 and 3: temporal capacity and bandwidth of the CloudSuite pair
# --------------------------------------------------------------------------

def fig2_capacity(
    machine: MachineSpec | None = None, scale: float = 1.0
) -> dict[str, dict]:
    """Fig. 2: memory capacity over time, PageRank + In-memory Analytics."""
    machine = machine or ampere_altra_max()
    out: dict[str, dict] = {}
    for cls in (InMemoryAnalyticsWorkload, PageRankWorkload):
        w = cls(machine, n_threads=32, scale=scale)
        settings = NmoSettings(enable=True, mode=NmoMode.NONE, track_rss=True)
        r = NmoProfiler(w, settings).run()
        assert r.rss_series is not None
        summary = summarise_capacity(r.rss_series, limit_bytes=256 * GiB)
        out[w.name] = {
            "series": r.rss_series,
            "peak_gib": summary.peak_gib,
            "peak_utilisation": summary.peak_utilisation,
            "saturation_time_s": summary.saturation_time_s,
            "duration_s": w.baseline_seconds(),
            "scale": scale,
        }
    return out


def fig3_bandwidth(
    machine: MachineSpec | None = None, scale: float = 1.0
) -> dict[str, dict]:
    """Fig. 3: memory bandwidth over time for the same two workloads."""
    machine = machine or ampere_altra_max()
    out: dict[str, dict] = {}
    for cls in (InMemoryAnalyticsWorkload, PageRankWorkload):
        w = cls(machine, n_threads=32, scale=scale)
        settings = NmoSettings(enable=True, mode=NmoMode.BANDWIDTH)
        r = NmoProfiler(w, settings).run()
        assert r.bw_series is not None
        summary = summarise_bandwidth(r.bw_series, machine)
        entry: dict = {
            "series": r.bw_series,
            "peak_gibs": summary.peak_gibs,
            "time_of_peak_s": summary.time_of_peak_s,
            "mean_gibs": summary.mean_gibs,
            "duration_s": w.baseline_seconds(),
            "scale": scale,
        }
        if w.name == "inmem_analytics":
            entry["period_s"] = dominant_period_s(r.bw_series)
        out[w.name] = entry
    return out


# --------------------------------------------------------------------------
# Figures 4-6: region profiling scatters
# --------------------------------------------------------------------------

def fig4_stream_regions(
    machine: MachineSpec | None = None,
    n_threads: int = 8,
    period: int = 2048,
    n_elems: int = 1 << 21,
) -> dict:
    """Fig. 4: STREAM triad address scatter, 8 threads, tags a/b/c."""
    machine = machine or ampere_altra_max()
    w = StreamWorkload(machine, n_threads=n_threads, n_elems=n_elems, iterations=5)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)
    r = NmoProfiler(w, settings).run()
    prof = RegionProfile.build(r)
    times, addrs = prof.scatter()
    return {
        "result": r,
        "profile": prof,
        "times": times,
        "addrs": addrs,
        "bands": w.tagged_objects(),
        "triad_spans": r.annotations.spans_for("triad"),
        "stats": prof.stats,
    }


def _cfd_regions(machine, n_threads, period, n_elems) -> dict:
    w = CfdWorkload(
        machine, n_threads=n_threads, n_elems=n_elems, iterations=20
    )
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)
    r = NmoProfiler(w, settings).run()
    prof = RegionProfile.build(r)
    times, addrs = prof.scatter()
    return {
        "result": r,
        "profile": prof,
        "times": times,
        "addrs": addrs,
        "bands": w.tagged_objects(),
        "loop_spans": r.annotations.spans_for("computation loop"),
        "stats": prof.stats,
    }


def fig5_cfd_single_thread(
    machine: MachineSpec | None = None, period: int = 4096,
    n_elems: int = 1 << 17,
) -> dict:
    """Fig. 5: CFD scatter at one thread — a continuous traverse."""
    return _cfd_regions(machine or ampere_altra_max(), 1, period, n_elems)


def fig6_cfd_32_threads(
    machine: MachineSpec | None = None, period: int = 1024,
    n_elems: int = 1 << 17,
) -> dict:
    """Fig. 6: CFD at 32 threads plus the high-resolution zoom window.

    The headline observation: only ``normals`` splits cleanly per thread
    (high split score); the indirectly-gathered ``variables`` does not.
    """
    out = _cfd_regions(machine or ampere_altra_max(), 32, period, n_elems)
    times = out["times"]
    if times.size:
        t0 = float(np.quantile(times, 0.45))
        t1 = float(np.quantile(times, 0.55))
        ht, ha = out["profile"].scatter(t0=t0, t1=t1)
        out["hires"] = {"t0": t0, "t1": t1, "times": ht, "addrs": ha}
    stats = out["stats"]
    out["split_scores"] = {name: s.split_score for name, s in stats.items()}
    return out


# --------------------------------------------------------------------------
# Figure 7: samples vs sampling period, five trials
# --------------------------------------------------------------------------

def fig7_samples_vs_period(
    machine: MachineSpec | None = None,
    periods: tuple[int, ...] = FIG7_PERIODS,
    trials: int = 5,
    workloads: tuple[str, ...] = ("stream", "cfd", "bfs"),
    scale: float | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, list[SweepPoint]]:
    machine = machine or ampere_altra_max()
    return {
        name: _sweep(name, periods, trials, machine, scale=scale,
                     workers=workers, cache=cache)
        for name in workloads
    }


# --------------------------------------------------------------------------
# Figure 8: accuracy / overhead / collisions vs sampling period
# --------------------------------------------------------------------------

def fig8_accuracy_overhead_collisions(
    machine: MachineSpec | None = None,
    periods: tuple[int, ...] = FIG8_PERIODS,
    trials: int = 5,
    workloads: tuple[str, ...] = ("stream", "cfd", "bfs"),
    scale: float | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, list[SweepPoint]]:
    machine = machine or ampere_altra_max()
    return {
        name: _sweep(name, periods, trials, machine, scale=scale,
                     workers=workers, cache=cache)
        for name in workloads
    }


# --------------------------------------------------------------------------
# Figure 9: aux buffer size sweep (STREAM, 32 threads, ring fixed)
# --------------------------------------------------------------------------

def _aux_buffer_point(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One Fig. 9 aux-buffer point (module-level for the process pool)."""
    cfg = spec.config
    pages = cfg["aux_pages"]
    aux_mib = max(1, pages * machine.page_size // (1 << 20))
    settings = NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=cfg["period"],
        auxbufsize_mib=aux_mib,
    )
    w = StreamWorkload(machine, n_threads=cfg["n_threads"], scale=cfg["scale"])
    prof = NmoProfiler(w, settings, seed=spec.seed)
    if settings.aux_pages(machine.page_size) != pages:
        # Table I sizes are MiB-granular; the sweep's sub-MiB points
        # (2-8 pages of 64 KiB) override the page count directly
        from repro.nmo.backends import FixedAuxPagesBackend

        prof.backend = FixedAuxPagesBackend(pages)
    r = prof.run()
    return {
        "aux_pages": pages,
        "accuracy": r.accuracy,
        "overhead": r.time_overhead,
        "samples": r.samples_processed,
        "wakeups": r.wakeups,
        "working": pages >= 4,
    }


def fig9_aux_buffer(
    machine: MachineSpec | None = None,
    aux_pages: tuple[int, ...] = FIG9_AUX_PAGES,
    period: int = 1024,
    scale: float = 0.75,
    n_threads: int = 4,
    seed: int = 0,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[dict]:
    """Fig. 9: overhead and accuracy vs aux buffer size (in 64 KiB pages).

    Defaults trade the paper's exact configuration (32 threads, 1 GiB
    arrays) for one where per-thread sample volume spans several
    watermarks across the page sweep at simulation scale — the loss
    mechanism is per-thread, so the shape is thread-count independent
    (see EXPERIMENTS.md).
    """
    machine = machine or ampere_altra_max()
    specs = [
        TrialSpec(
            experiment="fig9_aux_buffer",
            config={
                "aux_pages": pages,
                "period": period,
                "scale": scale,
                "n_threads": n_threads,
                "machine": canonical_config(machine),
            },
            seed=seed,
        )
        for pages in aux_pages
    ]
    runner = ParallelRunner(workers=workers, cache=cache)
    return runner.map(partial(_aux_buffer_point, machine), specs)


# --------------------------------------------------------------------------
# Figures 10 and 11: thread-count sweep (STREAM, 16-page aux)
# --------------------------------------------------------------------------

def _thread_point(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One Fig. 10/11 thread-count point (module-level for the pool)."""
    cfg = spec.config
    r = _run_sampling(
        StreamWorkload, machine, scale=cfg["scale"], period=cfg["period"],
        n_threads=cfg["threads"], seed=spec.seed,
    )
    return {
        "threads": cfg["threads"],
        "accuracy": r.accuracy,
        "overhead": r.time_overhead,
        "collisions": r.collisions,
        "throttle_events": r.throttle_events,
        "throttled_samples": r.throttled_samples,
        "samples": r.samples_processed,
        "wakeups": r.wakeups,
    }


def fig10_fig11_threads(
    machine: MachineSpec | None = None,
    thread_counts: tuple[int, ...] = FIG10_THREADS,
    period: int = 4096,
    scale: float = 4.0,
    seed: int = 0,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[dict]:
    """Figs. 10-11: overhead, accuracy, collisions, throttling vs threads."""
    machine = machine or ampere_altra_max()
    specs = [
        TrialSpec(
            experiment="fig10_fig11_threads",
            config={
                "threads": t,
                "period": period,
                "scale": scale,
                "machine": canonical_config(machine),
            },
            seed=seed,
        )
        for t in thread_counts
    ]
    runner = ParallelRunner(workers=workers, cache=cache)
    return runner.map(partial(_thread_point, machine), specs)


# --------------------------------------------------------------------------
# Colo: multi-tenant interference sweep (beyond-paper extension of Fig. 10/11)
# --------------------------------------------------------------------------

def colo_scenarios(max_corunners: int = 4) -> list[tuple[str, ...]]:
    """The co-runner line-ups swept by :func:`colo_interference`.

    For each co-runner count 1..N: a homogeneous all-STREAM scenario
    (worst-case channel pressure) and, from two runners up, the mixed
    STREAM / PageRank / In-memory Analytics pairing (cycling through
    :data:`COLO_MIX` beyond four runners, so every count yields a
    distinct scenario).
    """
    if max_corunners < 1:
        raise ValueError("max_corunners must be >= 1")
    out: list[tuple[str, ...]] = []
    for n in range(1, max_corunners + 1):
        out.append(("stream",) * n)
        if n >= 2:
            out.append(tuple(COLO_MIX[i % len(COLO_MIX)] for i in range(n)))
    return out


def _stream_iterations(machine: MachineSpec, n_threads: int, scale: float) -> int:
    """Triad iterations that keep STREAM co-resident with the CloudSuite
    timeline models at the given scale (their wall time is
    ``COLO_TIMELINE_SECONDS * scale``; STREAM's scale knob sizes its
    arrays, not its duration, so the iteration count carries it)."""
    probe = StreamWorkload(machine, n_threads=n_threads, scale=1.0, iterations=1)
    _phase, t0, t1 = probe.phase_spans()[-1]  # one triad iteration
    iter_s = t1 - t0
    target_s = COLO_TIMELINE_SECONDS * scale
    return max(2, int(round(target_s / iter_s)))


def _colo_runners(
    machine: MachineSpec, names: tuple[str, ...], n_threads: int, scale: float
) -> list[CoRunnerSpec]:
    runners = []
    for name in names:
        if name == "stream":
            runners.append(
                CoRunnerSpec(
                    "stream",
                    n_threads=n_threads,
                    scale=1.0,
                    kwargs={
                        "iterations": _stream_iterations(machine, n_threads, scale)
                    },
                )
            )
        else:
            runners.append(CoRunnerSpec(name, n_threads=n_threads, scale=scale))
    return runners


def _colo_point(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One co-location scenario (module-level for the process pool)."""
    cfg = spec.config
    names = tuple(cfg["workloads"])
    settings = NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=cfg["period"]
    )
    res = run_colocation(
        _colo_runners(machine, names, cfg["n_threads"], cfg["scale"]),
        machine=machine,
        settings=settings,
        seed=spec.seed,
    )
    runners = [
        {
            "workload": r.workload,
            "slowdown": float(r.slowdown),
            "demand_gibs": float(r.demand_bps / GiB),
            "granted_gibs": float(r.granted_bps / GiB),
            "accuracy": float(r.profile.accuracy),
            "overhead": float(r.profile.time_overhead),
            "collisions": int(r.profile.collisions),
            "samples": int(r.profile.samples_processed),
        }
        for r in res.runners
    ]
    return {
        "scenario": "+".join(names),
        "n_corunners": len(names),
        "runners": runners,
        "wall_seconds": float(res.wall_seconds),
        "granted_sum_gibs": float(res.granted_sum_bps() / GiB),
        "usable_gibs": float(res.usable_bandwidth / GiB),
    }


def colo_interference(
    machine: MachineSpec | None = None,
    max_corunners: int = 4,
    scale: float = 0.02,
    period: int = 16384,
    n_threads: int = 8,
    seed: int = 0,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[dict]:
    """Colo: 1-4 co-located processes on the contended DRAM channel.

    A beyond-paper extension of the Fig. 10/11 scaling study: instead of
    one workload widening its thread team, whole processes are
    co-located (each with its own SPE sessions and aux buffers) and the
    shared channel apportions bandwidth between them.  Reports each
    runner's slowdown, bandwidth grant, and profiling quality.
    """
    machine = machine or ampere_altra_max()
    specs = [
        TrialSpec(
            experiment="colo_interference",
            config={
                "workloads": list(names),
                "scale": scale,
                "period": period,
                "n_threads": n_threads,
                "machine": canonical_config(machine),
            },
            seed=seed,
        )
        for names in colo_scenarios(max_corunners)
    ]
    runner = ParallelRunner(workers=workers, cache=cache)
    return runner.map(partial(_colo_point, machine), specs)


# --------------------------------------------------------------------------
# Tables I and II
# --------------------------------------------------------------------------

def table1_env_defaults() -> dict[str, str]:
    """Table I: the supported environment variables and defaults."""
    from repro.nmo.env import TABLE_I_DEFAULTS

    return dict(TABLE_I_DEFAULTS)


def table2_machine_spec(machine: MachineSpec | None = None) -> dict[str, str]:
    """Table II: the hardware specification rows."""
    machine = machine or ampere_altra_max()
    return machine.describe()
