"""The columnar payload container: header + typed column buffers.

One encoded payload is a single contiguous byte string::

    magic "RCOL" | u16 version | u16 reserved | u32 header_len
    | header (UTF-8 JSON)
    | padding to a 64-byte boundary
    | column 0 bytes | padding | column 1 bytes | padding | ...

The JSON header is self-describing: it carries the payload *meta tree*
(the non-array part of the object, produced by
:mod:`repro.substrate.codec`) plus one ``[dtype, shape, offset, nbytes]``
entry per column.  Offsets are absolute and 64-byte aligned, so a
decoder can hand out :func:`numpy.frombuffer` views straight into the
source buffer — decoding a payload from an ``mmap``'d cache file or a
shared-memory segment costs one JSON parse, never an array copy
(:func:`decode_payload` with ``copy=False``, the default).

The format is versioned: a decoder refuses payloads whose version it
does not understand, and a truncated or corrupt payload raises
:class:`~repro.errors.SubstrateError` — callers (the result cache, the
worker transport) treat that as "not columnar" and fall back to pickle.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import SubstrateError

#: leading magic of every columnar payload
MAGIC = b"RCOL"
#: current (and only) format version
FORMAT_VERSION = 1
#: column buffers start on multiples of this (numpy-friendly alignment)
ALIGN = 64

_PREAMBLE = len(MAGIC) + 2 + 2 + 4  # magic, version, reserved, header_len


def _pad(n: int) -> int:
    """Bytes needed to round ``n`` up to the next :data:`ALIGN` boundary."""
    return (ALIGN - n % ALIGN) % ALIGN


def _render_header(meta: Any, descs: list[list]) -> bytes:
    # NB: no sort_keys — dict insertion order in the meta tree is part
    # of the payload (pickle byte-identity depends on it)
    return json.dumps(
        {"meta": meta, "cols": descs}, separators=(",", ":")
    ).encode("utf-8")


def encode_payload(meta: Any, columns: list[np.ndarray]) -> bytes:
    """Serialise a meta tree plus column arrays into one payload.

    ``meta`` must be JSON-serialisable (the codec guarantees this);
    columns must be numpy arrays of fixed-width dtypes.  Column data is
    written C-contiguous in little-endian byte order.
    """
    bufs: list[np.ndarray] = []
    descs: list[list] = []
    for col in columns:
        arr = np.ascontiguousarray(col)
        if arr.dtype.hasobject:
            raise SubstrateError("object-dtype columns are not encodable")
        arr = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
        bufs.append(arr)
        descs.append([arr.dtype.str, list(arr.shape), 0, arr.nbytes])

    # offsets are absolute, but they feed back into the header length;
    # iterate to the (immediately reached) fixed point
    while True:
        header = _render_header(meta, descs)
        cols_start = _PREAMBLE + len(header) + _pad(_PREAMBLE + len(header))
        rel, changed = 0, False
        for desc, arr in zip(descs, bufs):
            want = cols_start + rel
            if desc[2] != want:
                desc[2] = want
                changed = True
            rel += arr.nbytes + _pad(arr.nbytes)
        if not changed:
            break

    out = bytearray(cols_start + rel)
    out[: len(MAGIC)] = MAGIC
    out[4:6] = FORMAT_VERSION.to_bytes(2, "little")
    # bytes 6:8 reserved (zero)
    out[8:12] = len(header).to_bytes(4, "little")
    out[_PREAMBLE : _PREAMBLE + len(header)] = header
    for desc, arr in zip(descs, bufs):
        out[desc[2] : desc[2] + arr.nbytes] = arr.tobytes()
    return bytes(out)


def payload_version(buf) -> int:
    """The format version of an encoded payload (validates the magic)."""
    view = memoryview(buf)
    if len(view) < _PREAMBLE or bytes(view[: len(MAGIC)]) != MAGIC:
        raise SubstrateError("not a columnar payload (bad magic)")
    return int.from_bytes(view[4:6], "little")


def is_payload(buf) -> bool:
    """Cheap magic check — True if ``buf`` starts like a payload."""
    try:
        payload_version(buf)
        return True
    except SubstrateError:
        return False


def decode_payload(buf, copy: bool = False) -> tuple[Any, list[np.ndarray]]:
    """Parse a payload back into ``(meta, columns)``.

    With ``copy=False`` (the default) columns are zero-copy views into
    ``buf`` — read-only when the buffer is (an ``mmap`` opened with
    ``ACCESS_READ``, a ``bytes`` object); the views keep the source
    buffer alive.  ``copy=True`` detaches them.

    Truncation or corruption anywhere — short preamble, bad magic,
    unparseable header, column extents past the end of the buffer —
    raises :class:`~repro.errors.SubstrateError`.
    """
    view = memoryview(buf)
    version = payload_version(view)
    if version > FORMAT_VERSION:
        raise SubstrateError(
            f"payload format v{version} is newer than supported "
            f"v{FORMAT_VERSION}"
        )
    header_len = int.from_bytes(view[8:12], "little")
    if _PREAMBLE + header_len > len(view):
        raise SubstrateError("truncated payload: header extends past end")
    try:
        header = json.loads(bytes(view[_PREAMBLE : _PREAMBLE + header_len]))
        meta, descs = header["meta"], header["cols"]
    except (ValueError, KeyError, TypeError) as exc:
        raise SubstrateError(f"corrupt payload header: {exc}") from None
    columns: list[np.ndarray] = []
    try:
        items = [
            (np.dtype(dtype_str), shape, int(offset), int(nbytes))
            for dtype_str, shape, offset, nbytes in descs
        ]
    except (TypeError, ValueError) as exc:
        raise SubstrateError(f"corrupt column descriptor: {exc}") from None
    for dtype, shape, offset, nbytes in items:
        if offset < 0 or offset + nbytes > len(view):
            raise SubstrateError(
                f"truncated payload: column [{offset}, {offset + nbytes}) "
                f"extends past end ({len(view)} bytes)"
            )
        arr = np.frombuffer(view[offset : offset + nbytes], dtype=dtype)
        try:
            arr = arr.reshape(shape)
        except (ValueError, TypeError) as exc:
            raise SubstrateError(f"corrupt column shape: {exc}") from None
        columns.append(arr.copy() if copy else arr)
    return meta, columns
