"""Shared-memory result transport for worker -> parent shipping.

Workers historically returned trial results by pickling them through a
``multiprocessing`` pipe: every ndarray column was pickled in the
worker, chunked through a kernel pipe, and unpickled in the parent —
three copies plus codec overhead per trial.  This module ships columnar
results through :class:`multiprocessing.shared_memory.SharedMemory`
arenas instead:

* the **worker** encodes the result with the substrate codec and writes
  the payload into a fresh shared-memory segment (one copy); only a
  tiny :class:`ShmResult` handle (name + size) crosses the pipe,
* the **parent** attaches the segment, decodes the payload
  (zero-copy column views, materialised with one copy so the segment
  can be released immediately), and unlinks it.

Results that are not columnar-encodable, or smaller than
:data:`SHM_MIN_BYTES` (where a pipe round trip is cheaper than two
``shm_open`` syscalls), fall back to the plain pickle path — the
transport is an optimisation, never a requirement.  Parity tests force
the fallback globally with ``REPRO_RESULT_TRANSPORT=pickle``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

from repro.errors import SubstrateError
from repro.substrate import codec

#: payloads below this many bytes take the pipe (syscall overhead wins)
SHM_MIN_BYTES = 64 * 1024

#: environment switch: "shm" (default) or "pickle"
TRANSPORT_ENV = "REPRO_RESULT_TRANSPORT"


def transport() -> str:
    """The configured result transport: ``"shm"`` or ``"pickle"``."""
    value = os.environ.get(TRANSPORT_ENV, "shm").strip().lower()
    return "pickle" if value == "pickle" else "shm"


@dataclass(frozen=True)
class ShmResult:
    """Handle to a columnar payload parked in a shared-memory segment.

    The only thing that crosses the worker->parent pipe when the shm
    transport engages; the parent redeems it with :func:`unmarshal`.
    """

    name: str
    size: int


def marshal(value: Any, min_bytes: int = SHM_MIN_BYTES) -> Any:
    """Worker side: park a large columnar result in shared memory.

    Returns an :class:`ShmResult` handle if the value was shipped via
    shared memory, or the value itself (caller pickles it as before)
    when the transport is disabled, the value is not columnar-encodable,
    or the payload is too small to be worth two syscalls.
    """
    if transport() != "shm":
        return value
    payload = codec.encode(value)
    if payload is None or len(payload) < min_bytes:
        return value
    try:
        seg = shared_memory.SharedMemory(create=True, size=len(payload))
    except OSError:
        return value  # /dev/shm unavailable or full: pipe still works
    try:
        seg.buf[: len(payload)] = payload
        name, size = seg.name, len(payload)
    finally:
        seg.close()
    # the parent owns the segment's lifetime from here: drop the
    # worker-side tracker registration so the worker exiting does not
    # unlink (or warn about) a segment the parent is still reading
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass
    return ShmResult(name=name, size=size)


def unmarshal(value: Any) -> Any:
    """Parent side: redeem an :class:`ShmResult` into the real object.

    The payload is copied out of the segment once (so the segment can be
    unlinked immediately — no cross-process lifetime bookkeeping), then
    decoded; column views alias that single copy.  Non-handle values
    pass through untouched.
    """
    if not isinstance(value, ShmResult):
        return value
    try:
        seg = shared_memory.SharedMemory(name=value.name)
    except OSError as exc:
        raise SubstrateError(
            f"shared-memory result segment {value.name!r} vanished "
            "before the parent could read it"
        ) from exc
    try:
        payload = bytes(seg.buf[: value.size])
    finally:
        seg.close()
        try:
            seg.unlink()
        except OSError:
            pass
    return codec.decode(payload)


def discard(value: Any) -> None:
    """Release a marshalled result that will never be redeemed (e.g. a
    late event for a task already reported lost)."""
    if not isinstance(value, ShmResult):
        return
    try:
        seg = shared_memory.SharedMemory(name=value.name)
        seg.close()
        seg.unlink()
    except OSError:
        pass
