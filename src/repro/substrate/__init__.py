"""Zero-copy columnar result substrate.

The data plane that moves profiling results between layers — worker to
pool, pool to cache, cache to server — historically paid a full pickle
round trip at every hop.  This package replaces the representation with
a versioned, self-describing columnar payload (:mod:`.format`), an
object codec pinned byte-identical to pickle (:mod:`.codec`), and a
shared-memory transport (:mod:`.shm`):

* :func:`encode` / :func:`decode` — object tree <-> payload bytes, with
  ndarray leaves decoded as zero-copy views,
* :func:`encode_payload` / :func:`decode_payload` — the raw container
  (meta tree + typed column buffers),
* :func:`marshal` / :func:`unmarshal` — ship a result through a
  ``multiprocessing.shared_memory`` segment instead of the pipe,
* :func:`register` — opt a dataclass or enum into the codec.

Pickle remains the fallback at every seam: :func:`encode` returns
``None`` for unsupported objects, corrupt payloads raise
:class:`~repro.errors.SubstrateError`, and callers fall back rather
than fail.  See ``docs/architecture.md`` (result substrate) and
``docs/performance.md`` for layout and measurements.
"""

from __future__ import annotations

from repro.substrate.codec import decode, encodable, encode, register
from repro.substrate.format import (
    ALIGN,
    FORMAT_VERSION,
    MAGIC,
    decode_payload,
    encode_payload,
    is_payload,
    payload_version,
)
from repro.substrate.shm import (
    SHM_MIN_BYTES,
    TRANSPORT_ENV,
    ShmResult,
    discard,
    marshal,
    transport,
    unmarshal,
)

__all__ = [
    "ALIGN",
    "FORMAT_VERSION",
    "MAGIC",
    "SHM_MIN_BYTES",
    "TRANSPORT_ENV",
    "ShmResult",
    "decode",
    "decode_payload",
    "discard",
    "encodable",
    "encode",
    "encode_payload",
    "is_payload",
    "marshal",
    "payload_version",
    "register",
    "transport",
    "unmarshal",
]
