"""Object tree <-> columnar payload, pinned byte-identical to pickle.

:func:`encode` walks an arbitrary result object — a trial row dict, a
:class:`~repro.spe.records.SampleBatch`, a full
:class:`~repro.nmo.profiler.ProfileResult` — and splits it into

* a JSON-safe **meta tree** (scalars, strings, containers, and typed
  markers for tuples, enums, registered dataclasses, numpy scalars),
* a flat list of **columns**: every ndarray leaf, lifted out and
  replaced by a ``{"__col__": i}`` placeholder.

Both halves go through :func:`repro.substrate.format.encode_payload`;
:func:`decode` reverses the walk, handing ndarray leaves back as
zero-copy views into the payload buffer.  The round trip is *pickle
byte-identical*: ``pickle.dumps(decode(encode(x))) == pickle.dumps(x)``
for every supported type, which is what lets the result cache serve
either representation interchangeably (pinned by
``tests/substrate/test_parity.py``).

Dataclasses and enums participate via a registry.  Types register
themselves at definition site with :func:`register` (e.g.
``SampleBatch``, ``ProfileResult``, ``ThreadStats``); decoding a payload
that names a type whose module is not imported yet imports it lazily —
payloads are self-describing, not import-order-dependent.

:func:`encode` returns ``None`` for objects containing anything outside
this vocabulary (open file handles, arbitrary classes, object-dtype
arrays); callers fall back to pickle.  That fallback is part of the
contract: the substrate is an accelerated representation, never a
constraint on what a trial may return.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
from typing import Any

import numpy as np

from repro.errors import SubstrateError
from repro.substrate.format import decode_payload, encode_payload

#: registered dataclass/enum types, keyed by "module.QualName"
_REGISTRY: dict[str, type] = {}

# marker keys (chosen to be implausible as real dict keys; any dict
# containing one is encoded through the escaped-items form)
_TUPLE = "__tuple__"
_COL = "__col__"
_DC = "__dataclass__"
_ENUM = "__enum__"
_NPSCALAR = "__npscalar__"
_BYTES = "__bytes__"
_ITEMS = "__items__"
_MARKERS = frozenset(
    {_TUPLE, _COL, _DC, _ENUM, _NPSCALAR, _BYTES, _ITEMS}
)


def register(cls: type) -> type:
    """Class decorator: make a dataclass or enum substrate-encodable.

    Idempotent; the class is keyed by ``module.QualName``, which is what
    encoded payloads carry, so renaming or moving a registered type is a
    format change.
    """
    if not (dataclasses.is_dataclass(cls)
            or (isinstance(cls, type) and issubclass(cls, enum.Enum))):
        raise SubstrateError(
            f"only dataclasses and enums register with the substrate "
            f"codec, got {cls!r}"
        )
    _REGISTRY[f"{cls.__module__}.{cls.__qualname__}"] = cls
    return cls


def _lookup(name: str) -> type:
    """Resolve a registered type name, importing its module if needed."""
    cls = _REGISTRY.get(name)
    if cls is not None:
        return cls
    module = name.rsplit(".", 1)[0]
    try:
        importlib.import_module(module)
    except ImportError as exc:
        raise SubstrateError(
            f"payload names type {name!r} from unimportable module"
        ) from exc
    cls = _REGISTRY.get(name)
    if cls is None:
        raise SubstrateError(
            f"payload names unregistered type {name!r}"
        )
    return cls


class _Unencodable(Exception):
    """Internal: the tree contains something outside the vocabulary."""


def _to_meta(obj: Any, columns: list[np.ndarray]) -> Any:
    # exact-type checks throughout: a subclass (IntEnum, OrderedDict,
    # namedtuple) pickles differently from its base, so anything that is
    # not *exactly* a known type must register or fall back to pickle
    if obj is None:
        return None
    t = type(obj)
    if t in (bool, str, int, float):
        # json round-trips Python ints exactly and floats via shortest
        # repr (including nan/inf), so plain emission is byte-faithful
        return obj
    if isinstance(obj, enum.Enum):  # before int/str subclass rejection
        name = f"{t.__module__}.{t.__qualname__}"
        if _REGISTRY.get(name) is not t:
            raise _Unencodable
        return {_ENUM: [name, _to_meta(obj.value, columns)]}
    if t is np.ndarray:
        if obj.dtype.hasobject:
            raise _Unencodable
        columns.append(obj)
        return {_COL: len(columns) - 1}
    if isinstance(obj, np.generic):
        return {_NPSCALAR: [obj.dtype.str, obj.tobytes().hex()]}
    if t is bytes:
        columns.append(np.frombuffer(obj, dtype=np.uint8))
        return {_BYTES: len(columns) - 1}
    if t is tuple:
        return {_TUPLE: [_to_meta(v, columns) for v in obj]}
    if t is list:
        return [_to_meta(v, columns) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = f"{t.__module__}.{t.__qualname__}"
        if _REGISTRY.get(name) is not t:
            raise _Unencodable
        fields = {
            f.name: _to_meta(getattr(obj, f.name), columns)
            for f in dataclasses.fields(obj)
        }
        return {_DC: name, "fields": fields}
    if t is dict:
        plain = all(type(k) is str for k in obj) and not (
            set(obj) & _MARKERS
        )
        if plain:
            return {k: _to_meta(v, columns) for k, v in obj.items()}
        return {
            _ITEMS: [
                [_to_meta(k, columns), _to_meta(v, columns)]
                for k, v in obj.items()
            ]
        }
    raise _Unencodable


def _from_meta(node: Any, columns: list[np.ndarray], strings: dict) -> Any:
    # `strings` interns every decoded string within one payload: equal
    # strings decode to one shared object, mirroring how real result
    # graphs share interned literals — pickle memoises by object
    # identity, so matching the sharing keeps re-pickles byte-identical
    if type(node) is str:
        return strings.setdefault(node, node)
    if isinstance(node, list):
        return [_from_meta(v, columns, strings) for v in node]
    if not isinstance(node, dict):
        return node
    if _COL in node:
        return columns[node[_COL]]
    if _BYTES in node:
        return columns[node[_BYTES]].tobytes()
    if _TUPLE in node:
        return tuple(_from_meta(v, columns, strings) for v in node[_TUPLE])
    if _NPSCALAR in node:
        dtype_str, hexed = node[_NPSCALAR]
        return np.frombuffer(bytes.fromhex(hexed), dtype=dtype_str)[0]
    if _ENUM in node:
        name, value = node[_ENUM]
        return _lookup(name)(_from_meta(value, columns, strings))
    if _DC in node:
        cls = _lookup(node[_DC])
        fields = {
            strings.setdefault(k, k): _from_meta(v, columns, strings)
            for k, v in node["fields"].items()
        }
        return _construct_dataclass(cls, fields)
    if _ITEMS in node:
        return {
            _from_meta(k, columns, strings): _from_meta(v, columns, strings)
            for k, v in node[_ITEMS]
        }
    return {
        strings.setdefault(k, k): _from_meta(v, columns, strings)
        for k, v in node.items()
    }


def _construct_dataclass(cls: type, fields: dict[str, Any]):
    """Rebuild a dataclass instance without re-running validation.

    ``__init__``/``__post_init__`` may coerce or reject values (frozen
    specs validating invariants); the payload already holds the *final*
    field values, so they are restored directly — exactly what pickle
    does when it restores ``__dict__``.
    """
    inst = object.__new__(cls)
    if getattr(cls, "__slots__", None):
        for k, v in fields.items():
            object.__setattr__(inst, k, v)
    else:
        inst.__dict__.update(fields)
    return inst


def encodable(obj: Any) -> bool:
    """Whether :func:`encode` would succeed (no payload is built)."""
    try:
        _to_meta(obj, [])
        return True
    except (_Unencodable, SubstrateError):
        return False


def encode(obj: Any) -> bytes | None:
    """Encode an object into a columnar payload; ``None`` if it cannot
    be represented (callers fall back to pickle)."""
    columns: list[np.ndarray] = []
    try:
        meta = _to_meta(obj, columns)
    except (_Unencodable, SubstrateError):
        return None
    return encode_payload(meta, columns)


def decode(buf, copy: bool = False) -> Any:
    """Decode a columnar payload produced by :func:`encode`.

    ndarray leaves are zero-copy views into ``buf`` unless ``copy=True``
    (views into read-only buffers — mmap'd cache entries — come back
    non-writable, like any :func:`numpy.frombuffer` view).
    """
    meta, columns = decode_payload(buf, copy=copy)
    return _from_meta(meta, columns, {})
