"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any paper exhibit from the shell, mirroring how NMO's
post-processing scripts are driven:

    python -m repro table2
    python -m repro fig8 --trials 2 --scale 0.1
    python -m repro fig8 --trials 2 --workers 4 --cache
    python -m repro cache stats
    python -m repro list

``--workers N`` fans the sweep-style exhibits (fig7-fig11) out over N
processes; ``--cache`` short-circuits already-computed trials from the
on-disk result cache (see ``docs/cli.md`` and ``repro.orchestrate``).
"""

from __future__ import annotations

import argparse
import sys

from repro.evalharness import (
    colo_interference,
    fig2_capacity,
    fig3_bandwidth,
    fig7_samples_vs_period,
    fig8_accuracy_overhead_collisions,
    fig9_aux_buffer,
    fig10_fig11_threads,
    render_bandwidth,
    render_capacity,
    render_colo,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10_fig11,
    table1_env_defaults,
    table2_machine_spec,
)
from repro.analysis.plotting import table
from repro.orchestrate import ResultCache, make_cache


def _cache_of(args) -> ResultCache | None:
    # unset --cache + explicit --cache-dir counts as opting in;
    # an explicit --no-cache always wins
    if args.cache is False:
        return None
    return make_cache(bool(args.cache), args.cache_dir)


def _table1(_args) -> str:
    return table(
        ["Option", "Default"],
        [[k, v] for k, v in table1_env_defaults().items()],
        title="Table I",
    )


def _table2(_args) -> str:
    return table(
        ["Component", "Spec"],
        [[k, v] for k, v in table2_machine_spec().items()],
        title="Table II",
    )


def _fig2(args) -> str:
    return render_capacity(fig2_capacity(scale=args.scale))


def _fig3(args) -> str:
    return render_bandwidth(fig3_bandwidth(scale=args.scale))


def _fig7(args) -> str:
    return render_fig7(
        fig7_samples_vs_period(
            trials=args.trials, scale=args.workload_scale,
            workers=args.workers, cache=_cache_of(args),
        )
    )


def _fig8(args) -> str:
    return render_fig8(
        fig8_accuracy_overhead_collisions(
            trials=args.trials, scale=args.workload_scale,
            workers=args.workers, cache=_cache_of(args),
        )
    )


def _fig9(args) -> str:
    return render_fig9(
        fig9_aux_buffer(workers=args.workers, cache=_cache_of(args))
    )


def _fig10(args) -> str:
    scale = args.workload_scale if args.workload_scale is not None else 2.0
    return render_fig10_fig11(
        fig10_fig11_threads(
            scale=scale, workers=args.workers, cache=_cache_of(args),
        )
    )


def _colo(args) -> str:
    kwargs = dict(
        max_corunners=args.corunners,
        workers=args.workers,
        cache=_cache_of(args),
    )
    if args.workload_scale is not None:
        kwargs["scale"] = args.workload_scale
    return render_colo(colo_interference(**kwargs))


def _cache_cmd(args) -> str:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        n = cache.clear()
        return f"cleared {n} entries from {cache.dir}"
    return cache.describe()


#: exhibit name -> (handler, one-line description); ``docs/cli.md`` and
#: ``python -m repro list`` both render from this registry
COMMANDS: dict[str, tuple] = {
    "table1": (_table1, "Table I: NMO environment variables and defaults"),
    "table2": (_table2, "Table II: simulated Ampere Altra Max specification"),
    "fig2": (_fig2, "Fig. 2: memory capacity over time (CloudSuite pair)"),
    "fig3": (_fig3, "Fig. 3: memory bandwidth over time (CloudSuite pair)"),
    "fig7": (_fig7, "Fig. 7: SPE samples vs sampling period, with trials"),
    "fig8": (_fig8, "Fig. 8: accuracy/overhead/collisions vs period"),
    "fig9": (_fig9, "Fig. 9: accuracy/overhead vs aux buffer size"),
    "fig10": (_fig10, "Figs. 10-11: thread-count sweep (overhead/throttling)"),
    "fig11": (_fig10, "Figs. 10-11: thread-count sweep (overhead/throttling)"),
    "colo_interference": (
        _colo, "Colo: co-located processes on a contended DRAM channel"
    ),
    "cache": (_cache_cmd, "result-cache maintenance: `cache stats` / `cache clear`"),
}

#: the experiment subset (no maintenance commands) — kept for tests and
#: backwards compatibility with the pre-orchestration CLI
EXPERIMENTS = {
    name: fn for name, (fn, _desc) in COMMANDS.items() if name != "cache"
}

#: exhibits that accept --workers / --cache
PARALLEL_EXPERIMENTS = (
    "fig7", "fig8", "fig9", "fig10", "fig11", "colo_interference"
)

#: colo_interference pins 8 threads per co-runner on the 128-core Altra
#: Max, so at most 16 processes fit
MAX_CORUNNERS = 16


def _render_list() -> str:
    width = max(len(n) for n in COMMANDS) + 2
    lines = [f"{name:<{width}}{desc}" for name, (_fn, desc) in
             sorted(COMMANDS.items())]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a paper table/figure on the simulated testbed.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["list"],
        help="which exhibit to regenerate (or: list, cache)",
    )
    parser.add_argument(
        "action", nargs="?", choices=("stats", "clear"),
        help="cache subcommand action (cache only)",
    )
    parser.add_argument("--trials", type=int, default=3,
                        help="trials per sweep point (fig7/fig8)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="wall-clock scale for fig2/fig3")
    parser.add_argument("--workload-scale", type=float, default=None,
                        help="op-count scale override for sweeps")
    parser.add_argument("--corunners", type=int, default=4,
                        help="max co-located processes swept by "
                             "colo_interference (default 4)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for sweep exhibits "
                             "(1 = serial, 0 = one per core)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="reuse trial results from the on-disk cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro); implies --cache")
    args = parser.parse_args(argv)

    if args.action is not None and args.experiment != "cache":
        parser.error(f"{args.experiment} takes no action argument")
    if args.workers < 0:
        parser.error(f"--workers must be >= 0 (0 = auto), got {args.workers}")
    if not 1 <= args.corunners <= MAX_CORUNNERS:
        parser.error(
            f"--corunners must be in [1, {MAX_CORUNNERS}] "
            f"(8 threads per co-runner on 128 cores), got {args.corunners}"
        )
    if args.experiment == "cache" and args.action is None:
        parser.error("cache requires an action: stats or clear")
    if args.experiment == "list":
        print(_render_list())
        return 0
    fn, _desc = COMMANDS[args.experiment]
    print(fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
