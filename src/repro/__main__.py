"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any paper exhibit from the shell, mirroring how NMO's
post-processing scripts are driven:

    python -m repro table2
    python -m repro fig8 --trials 2 --scale 0.1
    python -m repro fig9
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from repro.evalharness import (
    fig2_capacity,
    fig3_bandwidth,
    fig7_samples_vs_period,
    fig8_accuracy_overhead_collisions,
    fig9_aux_buffer,
    fig10_fig11_threads,
    render_bandwidth,
    render_capacity,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10_fig11,
    table1_env_defaults,
    table2_machine_spec,
)
from repro.analysis.plotting import table


def _table1(_args) -> str:
    return table(
        ["Option", "Default"],
        [[k, v] for k, v in table1_env_defaults().items()],
        title="Table I",
    )


def _table2(_args) -> str:
    return table(
        ["Component", "Spec"],
        [[k, v] for k, v in table2_machine_spec().items()],
        title="Table II",
    )


def _fig2(args) -> str:
    return render_capacity(fig2_capacity(scale=args.scale))


def _fig3(args) -> str:
    return render_bandwidth(fig3_bandwidth(scale=args.scale))


def _fig7(args) -> str:
    return render_fig7(
        fig7_samples_vs_period(trials=args.trials, scale=args.workload_scale)
    )


def _fig8(args) -> str:
    return render_fig8(
        fig8_accuracy_overhead_collisions(
            trials=args.trials, scale=args.workload_scale
        )
    )


def _fig9(_args) -> str:
    return render_fig9(fig9_aux_buffer())


def _fig10(args) -> str:
    return render_fig10_fig11(fig10_fig11_threads(scale=args.workload_scale or 2.0))


EXPERIMENTS = {
    "table1": _table1,
    "table2": _table2,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig10,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a paper table/figure on the simulated testbed.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list"],
        help="which exhibit to regenerate",
    )
    parser.add_argument("--trials", type=int, default=3,
                        help="trials per sweep point (fig7/fig8)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="wall-clock scale for fig2/fig3")
    parser.add_argument("--workload-scale", type=float, default=None,
                        help="op-count scale override for sweeps")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("\n".join(sorted(EXPERIMENTS)))
        return 0
    print(EXPERIMENTS[args.experiment](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
