"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any paper exhibit from the shell, mirroring how NMO's
post-processing scripts are driven:

    python -m repro table2
    python -m repro fig8 --trials 2 --scale 0.1
    python -m repro fig8 --trials 2 --workers 4 --cache
    python -m repro run examples/scenarios/colo_smoke.json --workers 2
    python -m repro run fig8 --cache
    python -m repro scenarios list
    python -m repro cache stats
    python -m repro list

``run`` executes any declarative scenario — a ``.json`` spec file or a
preset name from ``scenarios list`` — through the one
:class:`~repro.scenarios.Session` path.  ``--workers N`` fans trials
out over N processes; ``--cache`` short-circuits already-computed
trials from the on-disk result cache (see ``docs/cli.md``,
``docs/scenarios.md`` and ``repro.orchestrate``).
"""

from __future__ import annotations

import argparse
import sys

from repro.evalharness import (
    colo_interference,
    fig2_capacity,
    fig3_bandwidth,
    fig7_samples_vs_period,
    fig8_accuracy_overhead_collisions,
    fig9_aux_buffer,
    fig10_fig11_threads,
    render_bandwidth,
    render_capacity,
    render_colo,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10_fig11,
    table1_env_defaults,
    table2_machine_spec,
)
from repro.analysis.plotting import table
from repro.errors import ReproError
from repro.orchestrate import ResultCache, make_cache
from repro.scenarios import SCENARIO_PRESETS, Session, load_scenario


def _table1(_args) -> str:
    return table(
        ["Option", "Default"],
        [[k, v] for k, v in table1_env_defaults().items()],
        title="Table I",
    )


def _table2(_args) -> str:
    return table(
        ["Component", "Spec"],
        [[k, v] for k, v in table2_machine_spec().items()],
        title="Table II",
    )


def _fig2(args) -> str:
    return render_capacity(fig2_capacity(scale=args.scale))


def _fig3(args) -> str:
    return render_bandwidth(fig3_bandwidth(scale=args.scale))


def _fig7(args) -> str:
    return render_fig7(
        fig7_samples_vs_period(
            trials=args.trials, scale=args.workload_scale,
            workers=args.workers, cache=make_cache(args.cache, args.cache_dir),
        )
    )


def _fig8(args) -> str:
    return render_fig8(
        fig8_accuracy_overhead_collisions(
            trials=args.trials, scale=args.workload_scale,
            workers=args.workers, cache=make_cache(args.cache, args.cache_dir),
        )
    )


def _fig9(args) -> str:
    return render_fig9(
        fig9_aux_buffer(
            workers=args.workers, cache=make_cache(args.cache, args.cache_dir)
        )
    )


def _fig10(args) -> str:
    scale = args.workload_scale if args.workload_scale is not None else 2.0
    return render_fig10_fig11(
        fig10_fig11_threads(
            scale=scale, workers=args.workers,
            cache=make_cache(args.cache, args.cache_dir),
        )
    )


def _colo(args) -> str:
    kwargs = dict(
        max_corunners=args.corunners,
        workers=args.workers,
        cache=make_cache(args.cache, args.cache_dir),
    )
    if args.workload_scale is not None:
        kwargs["scale"] = args.workload_scale
    return render_colo(colo_interference(**kwargs))


def _run(args) -> str:
    spec = load_scenario(args.action)
    session = Session(
        workers=args.workers, cache=make_cache(args.cache, args.cache_dir)
    )
    report = session.run(spec)
    if args.report_json:
        report.dump(args.report_json)
    return report.render()


def _serve(args) -> str:
    from repro.orchestrate import default_workers
    from repro.serve import ProfilingServer

    server = ProfilingServer(
        host=args.host,
        port=args.port,
        workers=args.workers if args.workers > 0 else default_workers(),
        cache=make_cache(args.cache, args.cache_dir),
        queue_limit=args.queue_limit,
    )
    host, port = server.address
    print(f"serving on {host}:{port} "
          f"(workers={server.pool.workers}, "
          f"queue_limit={server.queue.limit})", flush=True)
    server.serve_forever()
    return "server stopped"


def _parse_agents(raw: str | None) -> list[tuple[str, int]]:
    if not raw:
        raise ReproError(
            "cluster coordinator needs --agents host:port[,host:port...]"
        )
    agents = []
    for item in raw.split(","):
        host, sep, port = item.strip().rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ReproError(
                f"bad --agents entry {item.strip()!r}; expected host:port"
            )
        agents.append((host, int(port)))
    return agents


def _cluster_agents(args) -> str:
    """Query or change a running coordinator's membership table."""
    from repro.serve import ServerClient

    if not args.coordinator:
        raise ReproError(
            "cluster agents needs --coordinator host:port"
        )
    chost, cport = _parse_agents(args.coordinator)[0]
    with ServerClient(chost, cport) as client:
        if args.join:
            ahost, aport = _parse_agents(args.join)[0]
            info = client.request("agents_join", host=ahost, port=aport)
            agent = info["agent"]
            return (
                f"joined {ahost}:{aport} "
                f"(state={agent['state']}, epoch={info['epoch']})"
            )
        if args.leave:
            ahost, aport = _parse_agents(args.leave)[0]
            info = client.request("agents_leave", host=ahost, port=aport)
            agent = info["agent"]
            return (
                f"left {ahost}:{aport} "
                f"(state={agent['state']}, epoch={info['epoch']})"
            )
        info = client.request("agents_status")
        lines = [
            f"membership epoch {info['epoch']} "
            f"(probes={info['probes']}, "
            f"interval={info['probe_interval_s']}, "
            f"suspect_after={info['suspect_after']}, "
            f"dead_after={info['dead_after']})"
        ]
        for a in info["agents"]:
            lines.append(
                f"  {a['host']}:{a['port']:<6} {a['state']:<8}"
                f" misses={a['misses']} revivals={a['revivals']}"
                + (f"  ({a['reason']})" if a.get("reason") else "")
            )
        return "\n".join(lines)


def _cluster(args) -> str:
    from repro.cluster import Coordinator, HttpGateway, QuotaPolicy, ShardAgent
    from repro.orchestrate import default_workers

    if args.action == "agents":
        return _cluster_agents(args)

    if args.action == "agent":
        agent = ShardAgent(
            host=args.host,
            port=args.port,
            workers=args.workers if args.workers > 0 else default_workers(),
            cache=make_cache(args.cache, args.cache_dir),
            queue_limit=args.queue_limit,
        )
        host, port = agent.address
        print(
            f"shard agent on {host}:{port} "
            f"(workers={agent.pool.workers}, "
            f"queue_limit={agent.queue.limit})",
            flush=True,
        )
        agent.serve_forever()
        return "agent stopped"

    quota = None
    if args.quota_capacity is not None:
        quota = QuotaPolicy(
            capacity=args.quota_capacity, refill_per_s=args.quota_refill
        )
    if args.resume and args.journal is None:
        raise ReproError("cluster coordinator --resume needs --journal PATH")
    coordinator = Coordinator(
        host=args.host,
        port=args.port,
        agents=_parse_agents(args.agents),
        cache=make_cache(args.cache, args.cache_dir),
        queue_limit=args.queue_limit,
        quota=quota,
        probe_interval_s=args.probe_interval,
        journal=args.journal,
        resume=args.resume,
    )
    coordinator.start()  # handshakes every agent before we claim ready
    host, port = coordinator.address
    print(
        f"coordinator on {host}:{port} "
        f"(agents={len(coordinator.agents)}, "
        f"queue_limit={coordinator.queue.limit}, "
        f"journal={coordinator.journal.path if coordinator.journal else None}, "
        f"resumed_jobs={coordinator.resumed_jobs})",
        flush=True,
    )
    gateway = None
    if args.http_port is not None:
        gateway = HttpGateway(coordinator, host=args.host, port=args.http_port)
        gateway.start()
        ghost, gport = gateway.address
        print(f"http gateway on {ghost}:{gport}", flush=True)
    try:
        coordinator.serve_forever()
    finally:
        if gateway is not None:
            gateway.stop()
    return "coordinator stopped"


def _scenarios_cmd(_args) -> str:
    width = max(len(n) for n in SCENARIO_PRESETS) + 2
    return "\n".join(
        f"{name:<{width}}{desc}"
        for name, (_factory, desc) in sorted(SCENARIO_PRESETS.items())
    )


def _cache_cmd(args) -> str:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        n = cache.clear()
        return f"cleared {n} entries from {cache.dir}"
    return cache.describe()


#: exhibit name -> (handler, one-line description); ``docs/cli.md`` and
#: ``python -m repro list`` both render from this registry
COMMANDS: dict[str, tuple] = {
    "table1": (_table1, "Table I: NMO environment variables and defaults"),
    "table2": (_table2, "Table II: simulated Ampere Altra Max specification"),
    "fig2": (_fig2, "Fig. 2: memory capacity over time (CloudSuite pair)"),
    "fig3": (_fig3, "Fig. 3: memory bandwidth over time (CloudSuite pair)"),
    "fig7": (_fig7, "Fig. 7: SPE samples vs sampling period, with trials"),
    "fig8": (_fig8, "Fig. 8: accuracy/overhead/collisions vs period"),
    "fig9": (_fig9, "Fig. 9: accuracy/overhead vs aux buffer size"),
    "fig10": (_fig10, "Figs. 10-11: thread-count sweep (overhead/throttling)"),
    "fig11": (_fig10, "Figs. 10-11: thread-count sweep (overhead/throttling)"),
    "colo_interference": (
        _colo, "Colo: co-located processes on a contended DRAM channel"
    ),
    "run": (_run, "run a declarative scenario: `run <scenario.json|name>`"),
    "serve": (
        _serve, "profiling service: persistent Session server over a socket"
    ),
    "cluster": (
        _cluster,
        "multi-host profiling: `cluster agent` / `cluster coordinator` / "
        "`cluster agents`",
    ),
    "scenarios": (
        _scenarios_cmd, "scenario registry: `scenarios list` names presets"
    ),
    "cache": (_cache_cmd, "result-cache maintenance: `cache stats` / `cache clear`"),
}

#: commands that are not paper exhibits (maintenance / scenario plumbing)
UTILITY_COMMANDS = ("cache", "cluster", "run", "scenarios", "serve")

#: the experiment subset (no maintenance commands) — kept for tests and
#: backwards compatibility with the pre-orchestration CLI
EXPERIMENTS = {
    name: fn
    for name, (fn, _desc) in COMMANDS.items()
    if name not in UTILITY_COMMANDS
}

#: exhibits that accept --workers / --cache
PARALLEL_EXPERIMENTS = (
    "fig7", "fig8", "fig9", "fig10", "fig11", "colo_interference"
)

#: commands whose ``action`` positional is required (and what it means)
ACTION_COMMANDS = {
    "cache": ("stats", "clear"),
    "cluster": ("agent", "coordinator", "agents"),
    "scenarios": ("list",),
    "run": None,  # any scenario file path or preset name
}

#: colo_interference pins 8 threads per co-runner on the 128-core Altra
#: Max, so at most 16 processes fit
MAX_CORUNNERS = 16


def _render_list() -> str:
    width = max(len(n) for n in COMMANDS) + 2
    lines = [f"{name:<{width}}{desc}" for name, (_fn, desc) in
             sorted(COMMANDS.items())]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a paper table/figure on the simulated testbed.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["list"],
        help="which exhibit to regenerate (or: list, run, scenarios, cache)",
    )
    parser.add_argument(
        "action", nargs="?",
        help="subcommand argument: `cache stats|clear`, `scenarios list`, "
             "`run <scenario.json|name>`",
    )
    parser.add_argument("--trials", type=int, default=None,
                        help="trials per sweep point (fig7/fig8; default 3)")
    parser.add_argument("--scale", type=float, default=None,
                        help="wall-clock scale for fig2/fig3 (default 0.1)")
    parser.add_argument("--workload-scale", type=float, default=None,
                        help="op-count scale override for sweeps")
    parser.add_argument("--corunners", type=int, default=None,
                        help="max co-located processes swept by "
                             "colo_interference (default 4)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for sweep exhibits "
                             "(1 = serial, 0 = one per core)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="reuse trial results from the on-disk cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro); implies --cache")
    parser.add_argument("--report-json", default=None, metavar="PATH",
                        help="also dump the run's JSON report (run only)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve: interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7123,
                        help="serve: TCP port to listen on "
                             "(default 7123, 0 = OS-assigned)")
    parser.add_argument("--queue-limit", type=int, default=16,
                        help="serve: max queued+running jobs before "
                             "admission rejects (default 16)")
    parser.add_argument("--agents", default=None, metavar="HOST:PORT,...",
                        help="cluster coordinator: comma-separated shard "
                             "agent addresses (required)")
    parser.add_argument("--http-port", type=int, default=None, metavar="PORT",
                        help="cluster coordinator: also serve the HTTP/JSON "
                             "gateway on this port (0 = OS-assigned)")
    parser.add_argument("--quota-capacity", type=float, default=None,
                        metavar="TRIALS",
                        help="cluster coordinator: per-tenant token-bucket "
                             "burst, in trial tokens (unset = no quotas)")
    parser.add_argument("--quota-refill", type=float, default=1.0,
                        metavar="TRIALS_PER_S",
                        help="cluster coordinator: sustained per-tenant "
                             "refill rate (default 1.0 trials/s)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="cluster coordinator: append-only NDJSON job "
                             "journal for crash recovery (unset = none)")
    parser.add_argument("--resume", action="store_true",
                        help="cluster coordinator: replay --journal on boot, "
                             "re-adopting journaled jobs without recomputing "
                             "landed trials")
    parser.add_argument("--probe-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="cluster coordinator: background health-probe "
                             "interval for agent failure detection and "
                             "revival (unset = no prober)")
    parser.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                        help="cluster agents: coordinator address to query "
                             "or change membership on")
    parser.add_argument("--join", default=None, metavar="HOST:PORT",
                        help="cluster agents: admit (or revive) this shard "
                             "agent in the coordinator's membership")
    parser.add_argument("--leave", default=None, metavar="HOST:PORT",
                        help="cluster agents: deregister this shard agent "
                             "(state `left`; never auto-revived)")
    args = parser.parse_args(argv)

    if args.experiment in ACTION_COMMANDS:
        allowed = ACTION_COMMANDS[args.experiment]
        if args.action is None:
            wanted = "a scenario file or name" if allowed is None else (
                " or ".join(allowed)
            )
            parser.error(f"{args.experiment} requires an action: {wanted}")
        if allowed is not None and args.action not in allowed:
            parser.error(
                f"{args.experiment} action must be one of "
                f"{', '.join(allowed)}; got {args.action!r}"
            )
    elif args.action is not None:
        parser.error(f"{args.experiment} takes no action argument")
    if args.experiment in ("run", "scenarios", "serve", "cluster"):
        # a scenario's grid comes from its spec — refuse flags that
        # would otherwise be silently ignored
        passed = [
            flag
            for attr, flag in (
                ("trials", "--trials"), ("scale", "--scale"),
                ("workload_scale", "--workload-scale"),
                ("corunners", "--corunners"),
            )
            if getattr(args, attr) is not None
        ]
        if passed:
            parser.error(
                f"{args.experiment} takes its grid from the scenario spec; "
                f"{', '.join(passed)} not allowed (edit the spec instead)"
            )
    if args.report_json is not None and args.experiment != "run":
        parser.error("--report-json applies to run only")
    if args.trials is None:
        args.trials = 3
    if args.scale is None:
        args.scale = 0.1
    if args.corunners is None:
        args.corunners = 4
    if args.workers < 0:
        parser.error(f"--workers must be >= 0 (0 = auto), got {args.workers}")
    if not 1 <= args.corunners <= MAX_CORUNNERS:
        parser.error(
            f"--corunners must be in [1, {MAX_CORUNNERS}] "
            f"(8 threads per co-runner on 128 cores), got {args.corunners}"
        )
    if args.experiment == "list":
        print(_render_list())
        return 0
    fn, _desc = COMMANDS[args.experiment]
    try:
        print(fn(args))
    except ReproError as e:
        # bad scenario files, unknown workload/machine names, ... —
        # user input problems, not tracebacks
        print(f"error: {e}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
