"""The SPE sampling engine.

Implements the hardware flow of paper Fig. 1 for one core:

1. the **sampling interval counter** is loaded with the period and
   decremented per decoded operation; a random perturbation avoids
   lock-step bias (``jitter`` config bit),
2. the selected operation is **tracked** through the pipeline for its
   full latency; if the interval counter fires again while the tracker is
   busy, the *new* sample is discarded — a **sample collision** — before
   filtering, so it costs no buffer space and no processing time
   (paper §VII-A),
3. surviving samples pass the **filter** (operation type, minimum
   latency); NMO's memory profiling keeps loads and stores only,
4. filtered-in samples become 64-byte records destined for the aux
   buffer (handled by :mod:`repro.spe.driver`).

The sampler never materialises the full op stream: it draws sample
*positions* arithmetically and asks an :class:`OpSource` to describe just
those operations, which is what lets the reproduction sample workloads
with 10^10+ operations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.cpu.clock import GenericTimer
from repro.cpu.ops import OpKind
from repro.cpu.pipeline import PipelineModel
from repro.errors import SpeError
from repro.spe.config import SpeConfig
from repro.spe.records import SampleBatch
from repro.spe.refpath import reference_active
from repro.spe.strategies import check_period, get_strategy


class OpSource(Protocol):
    """What the sampler needs to know about one core's op stream.

    Implementations: closed-form workload phases
    (:class:`repro.workloads.base.PhaseOpSource`) and the exact
    trace-driven adapter (:class:`TraceOpSource`).
    """

    #: total decoded operations in this stream
    n_ops: int
    #: average cycles per decoded op (converts op index -> cycles)
    cpi: float

    def ops_at(
        self, idx: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(kinds uint8, addrs uint64) of the ops at global indices."""
        ...

    def levels_at(
        self, idx: np.ndarray, kinds: np.ndarray, addrs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """MemLevel uint8 per op (0 where not a memory op)."""
        ...

    def pcs_at(self, idx: np.ndarray) -> np.ndarray:
        """Program counter of each op (uint64)."""
        ...


class TraceOpSource:
    """Exact :class:`OpSource` over a materialised execution result."""

    def __init__(self, kinds: np.ndarray, addrs: np.ndarray,
                 levels: np.ndarray, cpi: float, pc_base: int = 0x400000) -> None:
        self._kinds = np.asarray(kinds, dtype=np.uint8)
        self._addrs = np.asarray(addrs, dtype=np.uint64)
        self._levels = np.asarray(levels, dtype=np.uint8)
        if not (len(self._kinds) == len(self._addrs) == len(self._levels)):
            raise SpeError("kinds/addrs/levels must be equal length")
        if cpi <= 0:
            raise SpeError("cpi must be positive")
        self.n_ops = int(len(self._kinds))
        self.cpi = float(cpi)
        self.pc_base = pc_base

    def ops_at(self, idx, rng):
        return self._kinds[idx], self._addrs[idx]

    def levels_at(self, idx, kinds, addrs, rng):
        return self._levels[idx]

    def pcs_at(self, idx):
        return (self.pc_base + (np.asarray(idx, dtype=np.uint64) % 256) * 4).astype(
            np.uint64
        )


def sample_positions(
    n_ops: int,
    period: int,
    jitter: bool,
    rng: np.random.Generator,
    carry: int | None = None,
) -> tuple[np.ndarray, int]:
    """Indices selected by the interval counter, plus the carried counter.

    SPE always perturbs the counter reload slightly — "when the counter
    reaches zero, with some random perturbation added to avoid bias, an
    operation is selected" (paper §II-A) — otherwise periodic code would
    alias with the sampling interval.  The ``jitter`` config bit widens
    that window from the inherent ``period/256`` to ``period/16``.

    ``carry`` is the counter value left over from the previous op stream
    (the hardware counter runs continuously across program phases);
    the second return value is the residue to pass to the next stream.
    """
    check_period(period)
    if n_ops < 0:
        raise SpeError("n_ops must be >= 0")
    window = max(2, period // 16) if jitter else max(2, period // 256)

    def draw(k: int) -> np.ndarray:
        return period - rng.integers(0, window, size=k, dtype=np.int64)

    first = int(carry) if carry is not None else int(draw(1)[0])
    if first <= 0:
        raise SpeError(f"carry must be positive, got {first}")
    if n_ops == 0:
        return np.zeros(0, dtype=np.int64), first
    if first > n_ops:
        return np.zeros(0, dtype=np.int64), first - n_ops
    # draw enough intervals to exceed n_ops, then trim; a short draw is
    # topped up chunk by chunk (accumulated in a list and joined once at
    # the end, so the already-drawn prefix is never re-copied and the
    # total grows geometrically instead of quadratically)
    n_est = int((n_ops - first) // max(1, period - window)) + 2
    chunks = [first - 1 + np.concatenate([[0], np.cumsum(draw(n_est))])]
    last = int(chunks[-1][-1])
    while last < n_ops - 1:
        more = last + np.cumsum(draw(n_est))
        chunks.append(more)
        last = int(more[-1])
    pos = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
    past = pos[pos >= n_ops]
    residue = int(past[0]) - (n_ops - 1) if past.size else int(draw(1)[0])
    return pos[pos < n_ops], residue


def _reference_collision_scan(
    select_cycles: np.ndarray, latencies: np.ndarray
) -> tuple[np.ndarray, int]:
    """Scalar reference for :func:`collision_scan`.

    The original O(n) Python loop, retained verbatim: the differential
    suite pins the vectorized scan bit-identical to this implementation.
    """
    n = select_cycles.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool), 0
    gaps = np.diff(select_cycles)
    if gaps.size == 0 or gaps.min() >= latencies.max():
        return np.ones(n, dtype=bool), 0  # fast path: no overlap possible
    keep = np.ones(n, dtype=bool)
    t = select_cycles.tolist()
    lat = latencies.tolist()
    busy_until = t[0] + lat[0]
    collisions = 0
    for j in range(1, n):
        if t[j] < busy_until:
            keep[j] = False
            collisions += 1
        else:
            busy_until = t[j] + lat[j]
    return keep, collisions


#: block size for the vectorized successor-map computation
_SCAN_BLOCK = 16384
#: estimated keep fraction below which the lazy per-step search wins
_SCAN_SPARSE_FRAC = 1 / 16


def _successor_blocks(t: np.ndarray, end: np.ndarray) -> np.ndarray:
    """Successor map ``f[j]`` = first index whose select time clears the
    tracker freed by a kept sample at ``j`` (computed vectorized in
    blocks; clamped strictly forward so zero-latency ties cannot stall
    the chain)."""
    n = t.shape[0]
    f = np.empty(n, dtype=np.int64)
    for s in range(0, n, _SCAN_BLOCK):
        eb = end[s : s + _SCAN_BLOCK]
        f[s : s + eb.shape[0]] = np.searchsorted(t, eb, side="left")
    np.maximum(f, np.arange(1, n + 1, dtype=np.int64), out=f)
    return f


def collision_scan(
    select_cycles: np.ndarray, latencies: np.ndarray
) -> tuple[np.ndarray, int]:
    """Greedy in-flight tracking: drop samples that arrive while busy.

    ``select_cycles`` are the (sorted) cycle times at which the interval
    counter fired; ``latencies`` the pipeline lifetime of each selected
    op.  Only a *kept* sample occupies the tracker.  Returns (keep mask,
    number of collisions).

    Bit-identical to :func:`_reference_collision_scan` but never walks
    the full stream in Python.  The key structural fact: because
    ``select_cycles`` is sorted, a kept sample at ``j`` drops exactly
    the *contiguous* run of following samples with ``t < t[j] + lat[j]``
    — so the kept set is the orbit of index 0 under a "next kept"
    successor map, and only the ``n_kept`` chain nodes need any scalar
    work.  Two exact strategies, picked by a cheap density probe:

    * **dense** (many survivors): the successor map is materialised with
      blocked vectorized ``searchsorted`` passes and the chain is walked
      through a memoryview (O(1) per *kept* sample);
    * **sparse** (collision-heavy): the successor of each chain node is
      found lazily with a C ``bisect`` per kept sample, skipping the
      per-element ``searchsorted`` cost entirely.  A bail-out bound
      (chain much longer than the probe predicted) falls back to the
      dense strategy, so adversarial inputs degrade gracefully.
    """
    if reference_active():
        return _reference_collision_scan(select_cycles, latencies)
    n = select_cycles.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool), 0
    gaps = np.diff(select_cycles)
    if gaps.size == 0 or gaps.min() >= latencies.max():
        return np.ones(n, dtype=bool), 0  # fast path: no overlap possible
    t = np.ascontiguousarray(select_cycles, dtype=np.float64)
    end = t + np.asarray(latencies, dtype=np.float64)

    kept: list[int] | None = None
    if n >= 4096:
        # strided probe of the overlap ratio: keep rate of the renewal
        # process is ~ 1 / (1 + E[lat] / E[gap])
        stride = max(1, n // 512)
        probe = np.arange(0, n - 1, stride)
        gap_mean = float(np.mean(t[probe + 1] - t[probe]))
        lat_mean = float(np.mean(end[probe] - t[probe]))
        est_frac = 1.0 / (1.0 + lat_mean / max(gap_mean, 1e-300))
        if est_frac <= _SCAN_SPARSE_FRAC:
            kept = _sparse_chain_walk(
                t, end, bail=int(2.5 * est_frac * n) + 1024
            )
    if kept is None:
        f = memoryview(_successor_blocks(t, end))
        kept = []
        append = kept.append
        j = 0
        while j < n:
            append(j)
            j = f[j]
    keep = np.zeros(n, dtype=bool)
    keep[kept] = True
    return keep, n - len(kept)


def _sparse_chain_walk(
    t: np.ndarray, end: np.ndarray, bail: int
) -> list[int] | None:
    """Kept-chain indices via lazy per-node bisect; None past ``bail``."""
    haystack = memoryview(t)
    targets = memoryview(end)
    n = t.shape[0]
    kept: list[int] = []
    append = kept.append
    search = bisect.bisect_left
    j = 0
    while j < n:
        if len(kept) > bail:
            return None  # probe misjudged the density: redo vectorized
        append(j)
        j = search(haystack, targets[j], j + 1)
    return kept


@dataclass
class SamplerOutput:
    """Result of sampling one op stream on one core."""

    batch: SampleBatch            #: samples that survived collisions + filter
    arrival_cycles: np.ndarray    #: absolute cycle time each record completes
    n_selected: int               #: interval-counter firings
    n_collisions: int             #: dropped while tracker busy (pre-filter)
    n_filtered: int               #: dropped by the event filter
    duration_cycles: float        #: op-stream execution span covered

    @property
    def n_kept(self) -> int:
        return len(self.batch)


class SpeSampler:
    """Per-core sampling pipeline (Fig. 1 stages 1-3)."""

    def __init__(
        self,
        period: int,
        config: SpeConfig,
        pipeline: PipelineModel,
        timer: GenericTimer,
        rng: np.random.Generator,
        track_collisions: bool = True,
    ) -> None:
        """``track_collisions=False`` disables the in-flight tracking
        window (PEBS-style backends, which do not collide)."""
        check_period(period)
        self.period = period
        self.config = config
        self.pipeline = pipeline
        self.timer = timer
        self.rng = rng
        self.track_collisions = track_collisions
        #: the selection rule (None on the config means ``periodic``,
        #: which delegates straight back to :func:`sample_positions`)
        self.strategy = get_strategy(config.strategy or "periodic")
        #: interval-counter residue carried across op streams (phases);
        #: the hardware counter never resets between code regions
        self._carry: int | None = None

    def _filter_mask(self, kinds: np.ndarray, total_lat: np.ndarray) -> np.ndarray:
        cfg = self.config
        mask = np.zeros(kinds.shape, dtype=bool)
        if cfg.loads:
            mask |= kinds == OpKind.LOAD
        if cfg.stores:
            mask |= kinds == OpKind.STORE
        if cfg.branches:
            mask |= kinds == OpKind.BRANCH
        if cfg.min_latency > 0:
            mask &= total_lat >= cfg.min_latency
        return mask

    def sample_stream(
        self, source: OpSource, start_cycle: float = 0.0
    ) -> SamplerOutput:
        """Sample one op stream starting at ``start_cycle`` (core clock)."""
        pos, self._carry = self.strategy.sample(
            source, self.period, self.config.jitter, self.rng, self._carry
        )
        n_selected = int(pos.size)
        duration = source.n_ops * source.cpi
        if n_selected == 0:
            return SamplerOutput(
                batch=SampleBatch(),
                arrival_cycles=np.zeros(0),
                n_selected=0,
                n_collisions=0,
                n_filtered=0,
                duration_cycles=duration,
            )
        kinds, addrs = source.ops_at(pos, self.rng)
        levels = source.levels_at(pos, kinds, addrs, self.rng)
        dram_scale = float(getattr(source, "dram_latency_scale", 1.0))
        lat = self.pipeline.op_latencies(
            kinds, levels, rng=self.rng, dram_scale=dram_scale
        )

        select_cycles = start_cycle + pos.astype(np.float64) * source.cpi
        if self.track_collisions:
            keep, n_collisions = collision_scan(select_cycles, lat)
        else:
            keep = np.ones(n_selected, dtype=bool)
            n_collisions = 0

        kinds, addrs, levels, lat = kinds[keep], addrs[keep], levels[keep], lat[keep]
        pos_kept = pos[keep]
        retire_cycles = select_cycles[keep] + lat

        total_lat = np.minimum(lat, 0xFFFF).astype(np.uint16)
        fmask = self._filter_mask(kinds, total_lat)
        n_filtered = int((~fmask).sum())

        retire_cycles = retire_cycles[fmask]
        ts = self.timer.cycles_to_ticks(retire_cycles)
        ts = np.maximum(ts, 1).astype(np.uint64)  # 0 would be decode-skipped
        issue_lat = np.minimum(
            np.maximum(total_lat[fmask].astype(np.float64) * 0.25, 1), 0xFFFF
        ).astype(np.uint16)
        batch = SampleBatch(
            pc=source.pcs_at(pos_kept[fmask]),
            addr=addrs[fmask],
            ts=ts,
            level=levels[fmask],
            kind=kinds[fmask],
            total_lat=total_lat[fmask],
            issue_lat=issue_lat,
        )
        return SamplerOutput(
            batch=batch,
            arrival_cycles=retire_cycles,
            n_selected=n_selected,
            n_collisions=n_collisions,
            n_filtered=n_filtered,
            duration_cycles=duration,
        )
