"""Toggle between the vectorized and scalar-reference SPE record paths.

The hot record path (:func:`repro.spe.sampler.collision_scan` and
:meth:`repro.spe.driver.SpeDriver.feed`) is vectorized; the original
scalar implementations are retained as ``_reference_*`` twins and pinned
byte-identical by the differential suite in
``tests/spe/test_vectorized_parity.py``.  :func:`reference_path` routes
every call inside its scope through the scalar twins, which is how the
golden-parity tests produce the reference side of the comparison without
plumbing a flag through profiler, backends, and sessions.

The toggle is mirrored into ``$REPRO_SPE_REFERENCE`` so it survives the
:class:`~concurrent.futures.ProcessPoolExecutor` boundary: worker
processes spawned *inside* a ``reference_path()`` scope (e.g. a
``workers > 1`` sweep) inherit the environment and take the scalar path
too.  Workers forked before the scope opened keep their own setting —
process pools are created per ``ParallelRunner.map`` call, so in
practice the scope covers them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENV_FLAG = "REPRO_SPE_REFERENCE"
_use_reference = False


def reference_active() -> bool:
    """Whether calls should take the retained scalar reference path."""
    return _use_reference or bool(os.environ.get(_ENV_FLAG))


@contextmanager
def reference_path() -> Iterator[None]:
    """Route the SPE record path through the scalar reference twins.

    Affects :func:`~repro.spe.sampler.collision_scan` and
    :meth:`~repro.spe.driver.SpeDriver.feed` for the duration of the
    ``with`` block (reentrant; restores the previous state on exit),
    including in worker processes spawned within the block.
    """
    global _use_reference
    prev = _use_reference
    prev_env = os.environ.get(_ENV_FLAG)
    _use_reference = True
    os.environ[_ENV_FLAG] = "1"
    try:
        yield
    finally:
        _use_reference = prev
        if prev_env is None:
            os.environ.pop(_ENV_FLAG, None)
        else:
            os.environ[_ENV_FLAG] = prev_env
