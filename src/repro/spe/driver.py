"""SPE driver: aux-buffer management, interrupts, and the cost model.

This module wires the sampler's record stream into the perf substrate the
way the kernel's ``arm_spe_pmu`` driver does (paper §II-A, §IV-A):

* records are written into the **aux buffer**; every ``aux_watermark``
  bytes the kernel posts a ``PERF_RECORD_AUX`` into the data ring and
  wakes the consumer (an interrupt),
* while the driver services the buffer, SPE profiling is **quiesced**:
  samples arriving in that window are dropped and the next AUX record
  carries ``PERF_AUX_FLAG_TRUNCATED`` — this is the buffer-size-dependent
  accuracy loss of paper Fig. 9,
* interrupt handling and consumer-side record processing steal cycles
  from the application — the **time overhead** of Fig. 8b/9/10,
* aux buffers smaller than :attr:`SpeCostModel.min_working_pages` cannot
  be double-buffered by the driver and produce no samples at all (the
  paper's observation that "ARM SPE loses all samples if the Aux buffer
  is not large enough; the minimum size to ensure SPE works is 4 pages").

Cost-model constants are calibrated so the *shapes* of Fig. 8-11 emerge;
see EXPERIMENTS.md for calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SpeError
from repro.kernel.perf_event import PerfEvent
from repro.kernel.records import (
    PERF_AUX_FLAG_COLLISION,
    PERF_AUX_FLAG_TRUNCATED,
    AuxRecord,
)
from repro.spe.packets import RECORD_SIZE, DecodeStats, decode_buffer, encode_batch
from repro.spe.records import SampleBatch
from repro.spe.sampler import SamplerOutput


@dataclass(frozen=True)
class SpeCostModel:
    """Timing constants of the SPE/perf service path (core cycles).

    The defaults are calibrated against the paper's reported magnitudes
    (sub-percent overhead at large periods, 90 %+ accuracy at 16+ aux
    pages on a 3 GHz core with 64 KB pages).
    """

    #: per-interrupt cost charged to the interrupted core (IRQ entry,
    #: buffer management, consumer wakeup: ~33 us at 3 GHz)
    irq_cycles: float = 100_000.0
    #: per-record consumer-side processing cost (decode, hash, store).
    #: Charged as records are produced: NMO's monitor drains on watermark
    #: wakeups *and* on its periodic epoll timeout, so every record
    #: written during the run is processed during the run.
    user_record_cycles: float = 30.0
    #: records lost around each buffer-management pass: SPE must be
    #: stopped and its write pointer switched, tearing a fixed window of
    #: in-flight records.  Loss fraction is therefore ``K / watermark`` —
    #: strongly buffer-size dependent (Fig. 9) but period independent
    #: (BFS keeps high accuracy at small periods, Fig. 8a).
    service_loss_records: int = 450
    #: scale factor on the service loss (consumer pipelining across
    #: many per-thread buffers shrinks it; single-buffer runs pay more)
    service_loss_scale: float = 1.0
    #: below this many aux pages the driver cannot start (paper: 4)
    min_working_pages: int = 4
    #: residual cost of an armed-but-idle session (epoll timeouts etc.)
    idle_overhead_cycles: float = 50_000.0
    #: aggregate interrupt rate beyond which perf throttles sampling
    max_irq_rate_hz: float = 11_000.0


@dataclass
class DriverResult:
    """Outcome of streaming one phase's samples through the buffers."""

    batch: SampleBatch                 #: samples delivered to the profiler
    n_input: int                       #: records offered by the sampler
    n_written: int                     #: records written to the aux buffer
    n_lost_stall: int                  #: dropped while SPE was quiesced
    n_wakeups: int                     #: interrupts / consumer wakeups
    overhead_cycles: float             #: cycles stolen from the app
    truncated_records: int             #: AUX records flagged TRUNCATED
    decode: DecodeStats | None = None
    aux_records: list[AuxRecord] = field(default_factory=list)


class SpeDriver:
    """Per-core SPE session: sampler output -> aux/ring -> decoded samples."""

    def __init__(
        self,
        event: PerfEvent,
        cost: SpeCostModel | None = None,
    ) -> None:
        if event.ring is None or event.aux is None:
            raise SpeError("SPE event needs ring and aux buffers mmap'd")
        self.event = event
        self.cost = cost or SpeCostModel()
        self.total_collisions = 0
        self.total_wakeups = 0
        self.total_lost = 0
        self.total_input = 0
        self.total_written = 0
        # persistent-session state: records pending below the watermark
        # carry over between feed() calls (phases), like real SPE
        self._pending_rec = 0
        self._pending_loss = 0  # torn-window records still to drop
        self._prev_lost = False
        self._announced_collisions = False
        self._idle_charged = False

    @property
    def working(self) -> bool:
        """Whether the aux buffer is large enough for SPE to operate."""
        assert self.event.aux is not None
        return self.event.aux.n_pages >= self.cost.min_working_pages

    def _service(self, aux, ring, aux_records, charge: bool) -> tuple[
        SampleBatch, DecodeStats, float
    ]:
        """One buffer-management pass: AUX record, drain, decode.

        ``charge=False`` models the end-of-run drain, which the paper
        notes happens after the timed region ("the monitoring process in
        NMO drains the buffer after the exit of the program ... influence
        from the final buffer drain on timing overhead is minimal").
        """
        offset, size = aux.take_signal()
        flags = 0
        if self._prev_lost:
            flags |= PERF_AUX_FLAG_TRUNCATED
        if self.total_collisions and not self._announced_collisions:
            flags |= PERF_AUX_FLAG_COLLISION
            self._announced_collisions = True
        rec = AuxRecord(aux_offset=offset, aux_size=size, flags=flags)
        ring.write_record(rec)
        aux_records.append(rec)
        self.event.wakeups += 1
        self.total_wakeups += 1

        data = aux.read(offset, size)
        aux.advance_tail(offset + size)
        got, stats = decode_buffer(data)
        cost = self.cost.irq_cycles if charge else 0.0
        return got, stats, cost

    def feed(self, out: SamplerOutput) -> DriverResult:
        """Stream one phase's sampler output into the session.

        Records accumulate in the aux buffer across calls; whenever the
        watermark is crossed, the kernel posts ``PERF_RECORD_AUX``, the
        consumer drains and decodes the bytes (they really round-trip
        through the buffer and packet decoder), interrupt and processing
        costs are charged, and a torn window of in-flight records is lost
        while SPE restarts (TRUNCATED on the next AUX record).
        """
        aux = self.event.aux
        ring = self.event.ring
        assert aux is not None and ring is not None
        self.total_collisions += out.n_collisions

        n = out.n_kept
        self.total_input += n
        if not self.working or not self.event.enabled:
            # session armed but inert: everything is lost; a one-off
            # fixed cost covers the armed-but-idle monitoring machinery
            self.total_lost += n
            idle = 0.0
            if n and not self._idle_charged:
                idle = self.cost.idle_overhead_cycles
                self._idle_charged = True
            return DriverResult(
                batch=SampleBatch(),
                n_input=n,
                n_written=0,
                n_lost_stall=n,
                n_wakeups=0,
                overhead_cycles=idle,
                truncated_records=0,
            )
        if n == 0:
            return DriverResult(
                batch=SampleBatch(),
                n_input=0,
                n_written=0,
                n_lost_stall=0,
                n_wakeups=0,
                overhead_cycles=0.0,
                truncated_records=0,
            )

        order = np.argsort(out.arrival_cycles, kind="stable")
        batch = out.batch.select(order)
        encoded = np.frombuffer(encode_batch(batch), dtype=np.uint8).reshape(
            n, RECORD_SIZE
        )

        wm_rec = max(1, aux.watermark // RECORD_SIZE)
        loss_window = max(
            0, int(round(self.cost.service_loss_records * self.cost.service_loss_scale))
        )
        delivered: list[SampleBatch] = []
        aux_records: list[AuxRecord] = []
        overhead = 0.0
        wakeups_before = self.total_wakeups
        lost = 0
        truncated = 0
        decode_records = 0
        decode_valid = 0
        decode_skipped = 0

        i = 0
        while i < n:
            # drop samples torn by a previous restart (may span calls)
            if self._pending_loss:
                skip = min(self._pending_loss, n - i)
                self._pending_loss -= skip
                lost += skip
                i += skip
                self._prev_lost = self._prev_lost or skip > 0
                continue
            take = min(wm_rec - self._pending_rec, n - i)
            chunk = encoded[i : i + take].reshape(-1)
            accepted = aux.write(chunk.tobytes())
            if accepted != chunk.shape[0]:
                raise SpeError("aux overflow despite watermark-paced writes")
            self._pending_rec += take
            i += take
            # consumer-side processing: every record written during the
            # run is decoded during the run (watermark wakeups plus the
            # monitor's periodic epoll timeout)
            overhead += take * self.cost.user_record_cycles
            if self._pending_rec >= wm_rec:
                got, stats, cost = self._service(aux, ring, aux_records, charge=True)
                if stats.n_records and self._prev_lost:
                    truncated += 1
                self._prev_lost = False
                delivered.append(got)
                decode_records += stats.n_records
                decode_valid += stats.n_valid
                decode_skipped += stats.n_skipped
                overhead += cost
                self._pending_rec = 0
                self._pending_loss = loss_window

        result_batch = SampleBatch.concat(delivered)
        n_lost_now = lost
        self.total_lost += n_lost_now
        self.total_written += n - n_lost_now
        return DriverResult(
            batch=result_batch,
            n_input=n,
            n_written=n - n_lost_now,
            n_lost_stall=n_lost_now,
            n_wakeups=self.total_wakeups - wakeups_before,
            overhead_cycles=overhead,
            truncated_records=truncated,
            decode=DecodeStats(
                n_records=decode_records,
                n_valid=decode_valid,
                n_skipped=decode_skipped,
                trailing_bytes=0,
            ),
            aux_records=aux_records,
        )

    def flush(self) -> DriverResult:
        """End-of-run drain of the sub-watermark remainder (uncharged)."""
        aux = self.event.aux
        ring = self.event.ring
        assert aux is not None and ring is not None
        aux_records: list[AuxRecord] = []
        if not self.working or aux.pending_signal() <= 0:
            return DriverResult(
                batch=SampleBatch(),
                n_input=0,
                n_written=0,
                n_lost_stall=0,
                n_wakeups=0,
                overhead_cycles=0.0,
                truncated_records=0,
            )
        got, stats, _cost = self._service(aux, ring, aux_records, charge=False)
        self._pending_rec = 0
        self._prev_lost = False
        return DriverResult(
            batch=got,
            n_input=0,
            n_written=0,
            n_lost_stall=0,
            n_wakeups=1,
            overhead_cycles=0.0,
            truncated_records=0,
            decode=stats,
            aux_records=aux_records,
        )

    def process(self, out: SamplerOutput) -> DriverResult:
        """Convenience: feed one stream and flush (single-phase use).

        The flush's delivered samples are merged into the returned batch;
        its drain stays uncharged, matching the paper's measurement
        methodology.
        """
        res = self.feed(out)
        tail = self.flush()
        merged = SampleBatch.concat([res.batch, tail.batch])
        return DriverResult(
            batch=merged,
            n_input=res.n_input,
            n_written=res.n_written,
            n_lost_stall=res.n_lost_stall,
            n_wakeups=res.n_wakeups + tail.n_wakeups,
            overhead_cycles=res.overhead_cycles,
            truncated_records=res.truncated_records,
            decode=res.decode,
            aux_records=res.aux_records + tail.aux_records,
        )


@dataclass(frozen=True)
class ThrottleModel:
    """Sampling throttling at high core counts (paper Fig. 10-11).

    The paper observes "a substantial increase in sampling throttling at
    a high thread count" and a corresponding accuracy dip.  The per-core
    interrupt rates involved are far below perf's kernel rate limiter, so
    the effect is modelled as PMU/interrupt-fabric contention: beyond an
    onset thread count, a fraction of samples (growing linearly with the
    thread count, reaching ``peak_fraction`` at ``peak_threads``) is
    dropped, and throttle events are emitted in proportion.
    """

    onset_threads: int = 48
    peak_threads: int = 128
    peak_fraction: float = 0.035

    def throttled_fraction(self, irq_rate_hz: float, n_threads: int) -> float:
        """Fraction of samples lost to throttling.

        ``irq_rate_hz`` gates the effect: a session that produced no
        interrupts (tiny sample volume) is never throttled.
        """
        if irq_rate_hz < 0 or n_threads <= 0:
            raise SpeError("need irq_rate >= 0 and n_threads >= 1")
        if irq_rate_hz == 0 or n_threads <= self.onset_threads:
            return 0.0
        span = max(1, self.peak_threads - self.onset_threads)
        frac = self.peak_fraction * (n_threads - self.onset_threads) / span
        return min(frac, 1.0)

    def throttle_events(
        self, irq_rate_hz: float, n_threads: int, duration_s: float
    ) -> int:
        """Number of PERF_RECORD_THROTTLE events over the run."""
        frac = self.throttled_fraction(irq_rate_hz, n_threads)
        if frac <= 0.0 or duration_s <= 0:
            return 0
        # one throttle/unthrottle pair per throttled buffer service
        return max(1, int(frac * irq_rate_hz * duration_s))
